//! Integration: the load drivers and scenarios against real mounted stacks.

use std::time::Duration;

use loadgen::{
    prepare, run_eio_under_load, run_load, run_upgrade_under_load, ErrorPolicy, LoadConfig, OpKind,
    WorkloadSpec,
};
use simkernel::cost::CostModel;
use workloads::{mount_stack, FsStack};

const DISK_BLOCKS: u64 = 24 * 1024;

fn quick(spec: WorkloadSpec) -> WorkloadSpec {
    spec.with_files(40)
}

#[test]
fn closed_loop_personalities_run_clean_on_every_stack() {
    // CI-sized sweep: every mix personality on the three journalling
    // stacks, no op may fail, histograms must be populated.
    for stack in [FsStack::BentoXv6, FsStack::VfsXv6, FsStack::Ext4] {
        for spec in [WorkloadSpec::varmail(), WorkloadSpec::fileserver(), WorkloadSpec::webserver()]
        {
            let spec = quick(spec);
            let mounted = mount_stack(stack, CostModel::zero(), DISK_BLOCKS)
                .unwrap_or_else(|e| panic!("mount {stack:?}: {e}"));
            let cfg = LoadConfig::closed(2, Duration::from_millis(80));
            prepare(&mounted.vfs, &spec, &cfg).unwrap();
            let result = run_load(&mounted.vfs, &spec, &cfg)
                .unwrap_or_else(|e| panic!("{} on {stack:?}: {e}", spec.name));
            assert!(result.is_clean(), "{} on {stack:?} must be clean", spec.name);
            assert!(result.operations > 0);
            assert!(result.overall.count() == result.operations);
            assert!(result.p_us(50.0) <= result.p_us(99.0));
            assert!(
                result.timeline.iter().sum::<u64>() == result.operations,
                "timeline must account for every completed op"
            );
            mounted.unmount().unwrap();
        }
    }
}

#[test]
fn per_class_stats_cover_the_mix() {
    let mounted = mount_stack(FsStack::BentoXv6, CostModel::zero(), DISK_BLOCKS).unwrap();
    let spec = quick(WorkloadSpec::varmail());
    let cfg = LoadConfig::closed(2, Duration::from_millis(150));
    prepare(&mounted.vfs, &spec, &cfg).unwrap();
    let result = run_load(&mounted.vfs, &spec, &cfg).unwrap();
    // Every class the mix weights must see traffic on a 150 ms run.
    for (kind, _) in spec.mix.entries() {
        let class =
            result.class(*kind).unwrap_or_else(|| panic!("{} saw no traffic", kind.label()));
        assert!(class.completed > 0, "{} completed nothing", kind.label());
        assert_eq!(class.latency.count(), class.completed);
        assert_eq!(class.errors, 0);
    }
    mounted.unmount().unwrap();
}

#[test]
fn traced_run_attributes_phases_per_class() {
    use simkernel::trace::{self, Phase};

    let mounted = mount_stack(FsStack::BentoXv6, CostModel::zero(), DISK_BLOCKS).unwrap();
    let spec = quick(WorkloadSpec::varmail());
    let cfg = LoadConfig::closed(2, Duration::from_millis(150));
    prepare(&mounted.vfs, &spec, &cfg).unwrap();
    let _tracing = trace::enable();
    let result = run_load(&mounted.vfs, &spec, &cfg).unwrap();
    assert!(result.is_clean());
    assert!(!result.traces.is_empty(), "tracing was on: traces must be captured");
    for class in &result.traces {
        let stats = result.class(class.kind).expect("traced class saw traffic");
        assert_eq!(
            class.spans,
            stats.completed,
            "{}: every completed op spans",
            class.kind.label()
        );
        assert_eq!(class.total.count(), class.spans);
        // Exclusive attribution never exceeds the measured total.
        assert!(class.attributed_ns() <= class.total_sum_ns, "{}", class.kind.label());
        assert!(!class.slowest.is_empty() && class.slowest.len() <= loadgen::SLOWEST_K);
        assert!(
            class.slowest.windows(2).all(|w| w[0].total_ns >= w[1].total_ns),
            "slowest spans are kept sorted, slowest first"
        );
    }
    // The durability class on a journalling stack must have passed through
    // the journal commit and touched the device.
    let fsync = result.trace_class(OpKind::Fsync).expect("varmail fsyncs");
    assert!(fsync.per_phase[Phase::CommitWait.index()].count() > 0, "fsync saw no commit-wait");
    assert!(fsync.per_phase[Phase::DevIo.index()].count() > 0, "fsync saw no device I/O");
    mounted.unmount().unwrap();

    // Without tracing the same run keeps traces empty (the disabled path).
    drop(_tracing);
    let mounted = mount_stack(FsStack::BentoXv6, CostModel::zero(), DISK_BLOCKS).unwrap();
    prepare(&mounted.vfs, &spec, &cfg).unwrap();
    let result = run_load(&mounted.vfs, &spec, &cfg).unwrap();
    assert!(result.traces.is_empty(), "tracing off: no spans may be captured");
    mounted.unmount().unwrap();
}

#[test]
fn untar_replay_extracts_the_manifest_with_latency() {
    let mounted = mount_stack(FsStack::BentoXv6, CostModel::zero(), DISK_BLOCKS).unwrap();
    let spec = WorkloadSpec::untar_replay(60, 7);
    let manifest = spec.replay.clone().unwrap();
    let cfg = LoadConfig::closed(2, Duration::from_secs(30)); // replay ends when done
    let result = run_load(&mounted.vfs, &spec, &cfg).unwrap();
    assert!(result.is_clean());
    let entries = manifest.entries.len() as u64;
    assert_eq!(result.operations, entries, "every manifest entry replays exactly once");
    assert_eq!(result.bytes, manifest.total_bytes());
    assert!(result.class(OpKind::Mkdir).unwrap().completed >= 8);
    assert!(result.class(OpKind::Create).unwrap().completed as usize == manifest.file_count());
    // Replay finished long before the deadline.
    assert!(result.elapsed < Duration::from_secs(25));
    mounted.unmount().unwrap();
}

#[test]
fn open_loop_overload_is_measured_not_hidden() {
    // Offer far more load than a single worker can serve under a real
    // device model: the virtual clock must fall behind (backlog) and the
    // open-loop p99 must include that queueing delay.
    let mounted =
        mount_stack(FsStack::BentoXv6, CostModel::nvme_ssd_scaled(4), DISK_BLOCKS).unwrap();
    let spec = quick(WorkloadSpec::varmail());
    let closed_cfg = LoadConfig::closed(1, Duration::from_millis(120));
    prepare(&mounted.vfs, &spec, &closed_cfg).unwrap();
    let closed = run_load(&mounted.vfs, &spec, &closed_cfg).unwrap();
    let sustainable = closed.ops_per_sec();

    let open_cfg = LoadConfig::open(1, sustainable * 20.0, Duration::from_millis(120));
    let open = run_load(&mounted.vfs, &spec, &open_cfg).unwrap();
    assert!(open.is_clean());
    assert!(
        open.max_backlog > Duration::ZERO,
        "20x overload must leave a measured backlog (sustainable ≈ {sustainable:.0} ops/s)"
    );
    assert!(
        open.p_us(99.0) > closed.p_us(99.0),
        "open-loop p99 ({:.0}µs) must exceed closed-loop p99 ({:.0}µs) under overload",
        open.p_us(99.0),
        closed.p_us(99.0)
    );
    mounted.unmount().unwrap();
}

#[test]
fn upgrade_under_load_pauses_briefly_and_fails_nothing() {
    let mounted = mount_stack(FsStack::BentoXv6, CostModel::zero(), DISK_BLOCKS).unwrap();
    let spec = quick(WorkloadSpec::varmail());
    let cfg = LoadConfig::closed(2, Duration::from_millis(250));
    prepare(&mounted.vfs, &spec, &cfg).unwrap();
    let (result, outcome) = run_upgrade_under_load(&mounted.vfs, &spec, &cfg).unwrap();
    // The paper's bar: traffic keeps flowing (FailFast would have errored),
    // nothing fails, and the pause is bounded and measured.
    assert!(result.is_clean(), "zero failed ops across the live upgrade");
    assert!(result.operations > 0);
    assert!(outcome.report.pause_ns > 0, "pause must be measured");
    assert!(
        outcome.report.pause_ns < 1_000_000_000,
        "upgrade paused {} ms",
        outcome.report.pause_ns / 1_000_000
    );
    assert_eq!(outcome.report.generation, 1);
    assert!(outcome.fired_at >= cfg.duration / 4, "fired mid-run");
    // The swapped-in instance keeps serving: ops completed in windows after
    // the upgrade fired.
    let fired_window = (outcome.fired_at.as_nanos() / cfg.window.as_nanos()) as usize;
    let after: u64 = result.timeline[fired_window.min(result.timeline.len() - 1)..].iter().sum();
    assert!(after > 0, "no completions observed after the upgrade fired");
    mounted.unmount().unwrap();

    // On a non-Bento stack the scenario refuses cleanly.
    let vfs_stack = mount_stack(FsStack::VfsXv6, CostModel::zero(), DISK_BLOCKS).unwrap();
    assert!(run_upgrade_under_load(&vfs_stack.vfs, &spec, &cfg).is_err());
    vfs_stack.unmount().unwrap();
}

#[test]
fn transient_eio_under_load_is_counted_and_survived() {
    let spec = quick(WorkloadSpec::varmail());
    let cfg = LoadConfig {
        error_policy: ErrorPolicy::Count,
        ..LoadConfig::closed(2, Duration::from_millis(240))
    };
    let (result, outcome) =
        run_eio_under_load(FsStack::BentoXv6, CostModel::zero(), DISK_BLOCKS, &spec, &cfg, 0.02)
            .unwrap();
    assert!(result.operations > 0, "traffic must flow around the fault window");
    assert!(outcome.recovered, "stack must serve durable writes after the fault clears");
    let injected = outcome.fault_stats.read_errors + outcome.fault_stats.write_errors;
    if injected > 0 {
        assert!(
            result.errors > 0,
            "{injected} injected device EIOs must surface as counted op failures"
        );
    }
}
