//! Closed-loop and open-loop load drivers with per-op-class latency
//! histograms and a windowed throughput timeline.
//!
//! * **Closed loop**: `workers` threads each issue one operation at a time,
//!   optionally separated by think time.  Offered load adapts to service
//!   rate — the classic benchmark shape, good for peak-throughput numbers.
//! * **Open loop**: operations *arrive* on a virtual clock at a target rate
//!   regardless of how fast the stack serves them, and each op's latency is
//!   measured from its **scheduled arrival**, not from when a worker got
//!   around to issuing it.  When the stack can't keep up, the backlog shows
//!   up as growing latency instead of silently throttled load — the
//!   coordinated-omission-free way to measure overload and tail latency.
//!
//! Every completed operation is recorded into a per-class
//! [`LatencyHistogram`] (merged across workers at the end) and into the
//! per-window throughput timeline.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use simkernel::error::{Errno, KernelError, KernelResult};
use simkernel::metrics::LatencyHistogram;
use simkernel::trace::{self, Phase, SpanRecord};
use simkernel::vfs::{OpenFlags, Vfs};
use workloads::UntarEntry;

use crate::spec::{OpKind, WorkloadSpec};
use crate::zipf::Zipfian;

/// How operations are offered to the stack.
#[derive(Debug, Clone, Copy)]
pub enum Driver {
    /// `workers` threads, each issuing the next op after the previous one
    /// completes plus `think` time.
    Closed {
        /// Number of worker threads.
        workers: usize,
        /// Per-op think time (zero = tight loop).
        think: Duration,
    },
    /// Operations arrive at `rate` ops/sec on a virtual clock, served by
    /// `workers` threads; latency includes time spent queued behind the
    /// backlog.
    Open {
        /// Number of serving threads.
        workers: usize,
        /// Target arrival rate in operations/second.
        rate: f64,
    },
}

impl Driver {
    /// Row label: `"closed-4w"` / `"open-500ops"`.
    pub fn label(&self) -> String {
        match self {
            Driver::Closed { workers, .. } => format!("closed-{workers}w"),
            Driver::Open { rate, .. } => format!("open-{rate:.0}ops"),
        }
    }

    fn workers(&self) -> usize {
        match *self {
            Driver::Closed { workers, .. } | Driver::Open { workers, .. } => workers.max(1),
        }
    }
}

/// What the driver does when an operation fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorPolicy {
    /// Abort the run on the first failed operation (the default: clean
    /// stacks must not fail ops).
    FailFast,
    /// Count the failure per op class and keep driving (fault-injection
    /// scenarios measure *how many* ops fail, so one EIO must not end the
    /// run).
    Count,
}

/// Knobs for one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Measured duration (replays may finish earlier).
    pub duration: Duration,
    /// Closed- or open-loop offering.
    pub driver: Driver,
    /// Abort or count on op failure.
    pub error_policy: ErrorPolicy,
    /// Throughput timeline window.
    pub window: Duration,
    /// Seed for all sampling (file popularity, sizes, offsets).
    pub seed: u64,
    /// Health monitor fed by every worker: each completed/failed op is
    /// observed (with its trace span when tracing is on), and the monitor
    /// closes its op-indexed windows as the observations cross window
    /// boundaries.  `None` costs nothing.
    pub monitor: Option<Arc<monitor::HealthMonitor>>,
}

impl LoadConfig {
    /// A closed-loop config with no think time.
    pub fn closed(workers: usize, duration: Duration) -> Self {
        LoadConfig {
            duration,
            driver: Driver::Closed { workers, think: Duration::ZERO },
            error_policy: ErrorPolicy::FailFast,
            window: Duration::from_millis(50),
            seed: 0x10ad_6e4e,
            monitor: None,
        }
    }

    /// An open-loop config at `rate` ops/sec.
    pub fn open(workers: usize, rate: f64, duration: Duration) -> Self {
        LoadConfig { driver: Driver::Open { workers, rate }, ..LoadConfig::closed(1, duration) }
    }

    /// Attaches a health monitor to the run.
    #[must_use]
    pub fn with_monitor(mut self, monitor: Arc<monitor::HealthMonitor>) -> Self {
        self.monitor = Some(monitor);
        self
    }
}

/// Completed/error counters plus the latency histogram for one op class.
#[derive(Debug, Clone)]
pub struct OpClassStats {
    /// Which op class.
    pub kind: OpKind,
    /// Operations completed successfully.
    pub completed: u64,
    /// Operations that failed (only nonzero under [`ErrorPolicy::Count`]).
    pub errors: u64,
    /// Latency of successful operations, ns.
    pub latency: LatencyHistogram,
}

/// How many of the slowest spans each op class keeps for tail forensics.
pub const SLOWEST_K: usize = 5;

/// Phase-attributed latency for one op class, aggregated from the trace
/// spans the driver opened around each operation (service time: issue to
/// completion, excluding open-loop queueing).  Populated only while
/// [`simkernel::trace`] is enabled; with tracing off every run leaves
/// [`LoadResult::traces`] empty at the cost of one atomic load per op.
#[derive(Debug, Clone)]
pub struct ClassPhaseTrace {
    /// Which op class.
    pub kind: OpKind,
    /// Spans aggregated (successful ops observed under tracing).
    pub spans: u64,
    /// End-to-end service latency, ns.
    pub total: LatencyHistogram,
    /// Per-phase exclusive latency, ns, indexed by [`Phase::index`]; a
    /// span contributes to a phase's histogram only when it entered that
    /// phase, so "how long is a commit wait *when one happens*" is not
    /// diluted by ops that never waited.
    pub per_phase: Vec<LatencyHistogram>,
    /// Total exclusive ns attributed to each phase across all spans.
    pub phase_sum_ns: [u64; Phase::COUNT],
    /// Sum of span totals, ns (the reconciliation denominator).
    pub total_sum_ns: u64,
    /// The [`SLOWEST_K`] slowest spans by total latency, slowest first —
    /// full per-phase breakdowns of exactly the ops a p99 debugger wants.
    pub slowest: Vec<SpanRecord>,
}

impl ClassPhaseTrace {
    fn new(kind: OpKind) -> Self {
        ClassPhaseTrace {
            kind,
            spans: 0,
            total: LatencyHistogram::new(),
            per_phase: (0..Phase::COUNT).map(|_| LatencyHistogram::new()).collect(),
            phase_sum_ns: [0; Phase::COUNT],
            total_sum_ns: 0,
            slowest: Vec::new(),
        }
    }

    fn observe(&mut self, rec: SpanRecord) {
        self.spans += 1;
        self.total.record(rec.total_ns);
        self.total_sum_ns += rec.total_ns;
        for p in Phase::ALL {
            let ns = rec.phase_ns[p.index()];
            self.phase_sum_ns[p.index()] += ns;
            if rec.phase_counts[p.index()] > 0 {
                self.per_phase[p.index()].record(ns);
            }
        }
        self.keep_if_slow(rec);
    }

    fn keep_if_slow(&mut self, rec: SpanRecord) {
        if self.slowest.len() < SLOWEST_K {
            self.slowest.push(rec);
        } else if self.slowest.last().is_some_and(|tail| rec.total_ns > tail.total_ns) {
            self.slowest.pop();
            self.slowest.push(rec);
        } else {
            return;
        }
        self.slowest.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    }

    fn merge(&mut self, other: &ClassPhaseTrace) {
        self.spans += other.spans;
        self.total.merge(&other.total);
        self.total_sum_ns += other.total_sum_ns;
        for i in 0..Phase::COUNT {
            self.phase_sum_ns[i] += other.phase_sum_ns[i];
            self.per_phase[i].merge(&other.per_phase[i]);
        }
        for &rec in &other.slowest {
            self.keep_if_slow(rec);
        }
    }

    /// Total exclusive ns attributed to instrumented phases.
    pub fn attributed_ns(&self) -> u64 {
        self.phase_sum_ns.iter().sum()
    }

    /// Fraction of total service time spent in `phase` (0 when no spans).
    pub fn phase_share(&self, phase: Phase) -> f64 {
        self.phase_sum_ns[phase.index()] as f64 / (self.total_sum_ns as f64).max(1.0)
    }
}

/// The outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// Personality name.
    pub spec: String,
    /// Driver label (`"closed-4w"` / `"open-500ops"`).
    pub driver: String,
    /// Wall-clock duration of the measured phase.
    pub elapsed: Duration,
    /// Total operations completed.
    pub operations: u64,
    /// Total operations failed.
    pub errors: u64,
    /// Operations skipped because their target vanished under concurrency
    /// (e.g. a popular file deleted by another worker) — neither completed
    /// nor failed.
    pub skipped: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Per-class stats, reporting order, classes with no traffic omitted.
    pub per_op: Vec<OpClassStats>,
    /// All classes merged.
    pub overall: LatencyHistogram,
    /// Completed ops per [`LoadResult::window`].
    pub timeline: Vec<u64>,
    /// The timeline window width.
    pub window: Duration,
    /// Open loop only: the worst observed lag between an op's scheduled
    /// arrival and the moment a worker picked it up (zero when keeping up).
    pub max_backlog: Duration,
    /// Phase-attributed traces per op class (classes with no spans
    /// omitted).  Empty unless [`simkernel::trace`] was enabled for the
    /// run.
    pub traces: Vec<ClassPhaseTrace>,
}

impl LoadResult {
    /// Completed operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.operations as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Overall latency percentile in microseconds.
    pub fn p_us(&self, p: f64) -> f64 {
        self.overall.percentile(p) as f64 / 1_000.0
    }

    /// Stats for one op class, if it saw traffic.
    pub fn class(&self, kind: OpKind) -> Option<&OpClassStats> {
        self.per_op.iter().find(|c| c.kind == kind)
    }

    /// Phase-attributed trace for one op class, if tracing captured any.
    pub fn trace_class(&self, kind: OpKind) -> Option<&ClassPhaseTrace> {
        self.traces.iter().find(|t| t.kind == kind)
    }

    /// A run is clean when it completed work and failed nothing.
    pub fn is_clean(&self) -> bool {
        self.errors == 0 && !self.overall.is_empty()
    }

    /// Min/mean/max completed-op rate in ops/sec over the run's *complete*
    /// timeline windows (the trailing partial window would bias the min
    /// low), or `None` when the run spanned less than one full window.
    pub fn window_rate_summary(&self) -> Option<(f64, f64, f64)> {
        let full = ((self.elapsed.as_nanos() / self.window.as_nanos().max(1)) as usize)
            .min(self.timeline.len());
        if full == 0 {
            return None;
        }
        let per_sec = 1.0 / self.window.as_secs_f64().max(1e-9);
        let rates = self.timeline[..full].iter().map(|&n| n as f64 * per_sec);
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut sum = 0.0;
        for rate in rates {
            min = min.min(rate);
            max = max.max(rate);
            sum += rate;
        }
        Some((min, sum / full as f64, max))
    }
}

/// Creates the spec's directory tree and pre-populates its files (sizes
/// drawn from the spec's distribution with `cfg.seed`), ending with a
/// `sync` so the measured phase starts from a quiesced stack.  Replay
/// personalities have no pre-population.
///
/// # Errors
///
/// Propagates file system errors.
pub fn prepare(vfs: &Arc<Vfs>, spec: &WorkloadSpec, cfg: &LoadConfig) -> KernelResult<()> {
    if spec.replay.is_some() {
        return Ok(());
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5e70_f11e);
    for dir in spec.fileset.dir_paths("/") {
        vfs.mkdir(&dir)?;
    }
    let scratch = vec![0xB7u8; spec.io_size.max(4096)];
    for path in spec.fileset.file_paths("/") {
        let fd = vfs.open(&path, OpenFlags::WRONLY.with(OpenFlags::CREAT))?;
        let size = spec.fileset.size.sample(&mut rng);
        write_fully(vfs, fd, size, &scratch)?;
        vfs.close(fd)?;
    }
    vfs.sync()
}

/// Runs `spec` against `vfs` under `cfg` and returns the measured result.
/// The caller prepares the fileset first ([`prepare`]); replay
/// personalities need no preparation.
///
/// # Errors
///
/// Propagates op failures under [`ErrorPolicy::FailFast`], worker panics,
/// and setup errors.
pub fn run_load(vfs: &Arc<Vfs>, spec: &WorkloadSpec, cfg: &LoadConfig) -> KernelResult<LoadResult> {
    let workers = cfg.driver.workers();
    let files = Arc::new(spec.fileset.file_paths("/"));
    let zipf = if files.is_empty() {
        None
    } else {
        Some(Arc::new(Zipfian::new(files.len(), spec.zipf_theta)))
    };
    if spec.replay.is_none() && files.is_empty() {
        return Err(KernelError::with_context(
            Errno::Inval,
            "loadgen: mix personality with an empty fileset",
        ));
    }

    let windows = (cfg.duration.as_nanos() / cfg.window.as_nanos().max(1)) as usize + 2;
    let timeline: Arc<Vec<AtomicU64>> = Arc::new((0..windows).map(|_| AtomicU64::new(0)).collect());
    let arrivals = Arc::new(AtomicU64::new(0));
    let replay_cursor = Arc::new(AtomicUsize::new(0));
    let max_backlog_ns = Arc::new(AtomicU64::new(0));
    let merged: Arc<Mutex<Vec<OpClassStats>>> = Arc::new(Mutex::new(
        OpKind::all()
            .iter()
            .map(|&kind| OpClassStats {
                kind,
                completed: 0,
                errors: 0,
                latency: LatencyHistogram::new(),
            })
            .collect(),
    ));
    let merged_traces: Arc<Mutex<Vec<ClassPhaseTrace>>> = Arc::new(Mutex::new(
        OpKind::all().iter().map(|&kind| ClassPhaseTrace::new(kind)).collect(),
    ));
    let total_bytes = Arc::new(AtomicU64::new(0));
    let total_skipped = Arc::new(AtomicU64::new(0));
    let spec = Arc::new(spec.clone());
    let cfg = Arc::new(cfg.clone());

    let dirs = Arc::new(spec.fileset.dir_paths("/"));
    let start = Instant::now();
    let deadline = start + cfg.duration;
    let mut handles = Vec::with_capacity(workers);
    for t in 0..workers {
        let vfs = Arc::clone(vfs);
        let spec = Arc::clone(&spec);
        let cfg = Arc::clone(&cfg);
        let files = Arc::clone(&files);
        let dirs = Arc::clone(&dirs);
        let zipf = zipf.clone();
        let timeline = Arc::clone(&timeline);
        let arrivals = Arc::clone(&arrivals);
        let replay_cursor = Arc::clone(&replay_cursor);
        let max_backlog_ns = Arc::clone(&max_backlog_ns);
        let merged = Arc::clone(&merged);
        let merged_traces = Arc::clone(&merged_traces);
        let total_bytes = Arc::clone(&total_bytes);
        let total_skipped = Arc::clone(&total_skipped);
        handles.push(std::thread::spawn(move || -> KernelResult<()> {
            let scratch_len = spec.io_size.max(spec.append_size).max(FSYNC_RECORD_BYTES).max(4096);
            let mut worker = Worker {
                vfs,
                spec,
                cfg: Arc::clone(&cfg),
                files,
                dirs,
                zipf,
                rng: SmallRng::seed_from_u64(cfg.seed.wrapping_add(0x9e37 * (t as u64 + 1))),
                worker_id: t,
                created: Vec::new(),
                next_name: 0,
                last_attempt: OpKind::Create,
                scratch: vec![0x6Cu8; scratch_len],
                stats: OpKind::all()
                    .iter()
                    .map(|&kind| OpClassStats {
                        kind,
                        completed: 0,
                        errors: 0,
                        latency: LatencyHistogram::new(),
                    })
                    .collect(),
                traces: OpKind::all().iter().map(|&kind| ClassPhaseTrace::new(kind)).collect(),
                bytes: 0,
                skipped: 0,
            };
            worker.drive(start, deadline, &timeline, &arrivals, &replay_cursor, &max_backlog_ns)?;
            let mut all = merged.lock();
            for (into, from) in all.iter_mut().zip(worker.stats.iter()) {
                into.completed += from.completed;
                into.errors += from.errors;
                into.latency.merge(&from.latency);
            }
            drop(all);
            let mut all_traces = merged_traces.lock();
            for (into, from) in all_traces.iter_mut().zip(worker.traces.iter()) {
                into.merge(from);
            }
            total_bytes.fetch_add(worker.bytes, Ordering::Relaxed);
            total_skipped.fetch_add(worker.skipped, Ordering::Relaxed);
            Ok(())
        }));
    }
    for handle in handles {
        handle
            .join()
            .map_err(|_| KernelError::with_context(Errno::Io, "loadgen worker panicked"))??;
    }
    let elapsed = start.elapsed();
    if let Some(mon) = &cfg.monitor {
        mon.finish(); // close the trailing partial window
    }

    let per_op: Vec<OpClassStats> = Arc::try_unwrap(merged)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone())
        .into_iter()
        .filter(|c| c.completed > 0 || c.errors > 0)
        .collect();
    let mut overall = LatencyHistogram::new();
    for class in &per_op {
        overall.merge(&class.latency);
    }
    let traces: Vec<ClassPhaseTrace> = Arc::try_unwrap(merged_traces)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone())
        .into_iter()
        .filter(|t| t.spans > 0)
        .collect();
    Ok(LoadResult {
        spec: spec.name.clone(),
        driver: cfg.driver.label(),
        elapsed,
        operations: per_op.iter().map(|c| c.completed).sum(),
        errors: per_op.iter().map(|c| c.errors).sum(),
        skipped: total_skipped.load(Ordering::Relaxed),
        bytes: total_bytes.load(Ordering::Relaxed),
        per_op,
        overall,
        timeline: timeline.iter().map(|w| w.load(Ordering::Relaxed)).collect(),
        window: cfg.window,
        max_backlog: Duration::from_nanos(max_backlog_ns.load(Ordering::Relaxed)),
        traces,
    })
}

/// One op's outcome: what actually ran and how many payload bytes moved,
/// or `None` when the target vanished under a concurrent delete/rename.
type OpOutcome = Option<(OpKind, u64)>;

struct Worker {
    vfs: Arc<Vfs>,
    spec: Arc<WorkloadSpec>,
    cfg: Arc<LoadConfig>,
    files: Arc<Vec<String>>,
    /// Every fileset directory (empty for flat filesets): rename targets
    /// rotate through these, so renames cross directories and exercise the
    /// two-parent pair-locked namespace path.
    dirs: Arc<Vec<String>>,
    zipf: Option<Arc<Zipfian>>,
    rng: SmallRng,
    worker_id: usize,
    /// Files this worker created (delete/rename targets).
    created: Vec<String>,
    next_name: u64,
    /// The op class of the in-flight attempt (error attribution under
    /// [`ErrorPolicy::Count`]).
    last_attempt: OpKind,
    /// Reusable payload/read buffer, sized once at worker start so the
    /// timed window measures the file system, not per-op allocations.
    scratch: Vec<u8>,
    stats: Vec<OpClassStats>,
    /// Phase-attributed spans per class, populated only under tracing.
    traces: Vec<ClassPhaseTrace>,
    bytes: u64,
    skipped: u64,
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &mut self,
        start: Instant,
        deadline: Instant,
        timeline: &[AtomicU64],
        arrivals: &AtomicU64,
        replay_cursor: &AtomicUsize,
        max_backlog_ns: &AtomicU64,
    ) -> KernelResult<()> {
        let window_ns = self.cfg.window.as_nanos().max(1);
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(());
            }
            // Under the open-loop driver the measured latency starts at the
            // op's *scheduled* arrival; under the closed loop, at issue.
            let measured_from = match self.cfg.driver {
                Driver::Closed { .. } => now,
                Driver::Open { rate, .. } => {
                    let k = arrivals.fetch_add(1, Ordering::Relaxed);
                    let scheduled = start + Duration::from_secs_f64(k as f64 / rate.max(1e-9));
                    if scheduled >= deadline {
                        return Ok(()); // do not admit arrivals past the run
                    }
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    } else {
                        let lag = (now - scheduled).as_nanos() as u64;
                        max_backlog_ns.fetch_max(lag, Ordering::Relaxed);
                    }
                    scheduled
                }
            };
            // The span measures service time (issue to completion) with the
            // per-phase breakdown; the class is only known afterwards, so it
            // opens generic and is relabelled at finish.  Inert (one atomic
            // load) when tracing is off.
            let span = trace::op_span("op");
            let outcome = self.one_op(replay_cursor);
            let completed_at = Instant::now();
            match outcome {
                Ok(Some((kind, bytes))) => {
                    let rec = span.finish_as(kind.label());
                    if let Some(rec) = rec {
                        self.traces[class_index(kind)].observe(rec);
                    }
                    let latency = completed_at.duration_since(measured_from);
                    if let Some(mon) = &self.cfg.monitor {
                        mon.observe(kind.label(), latency.as_nanos() as u64, false, rec.as_ref());
                    }
                    let stats = &mut self.stats[class_index(kind)];
                    stats.completed += 1;
                    stats.latency.record_duration(latency);
                    self.bytes += bytes;
                    let idx = ((completed_at.duration_since(start).as_nanos() / window_ns)
                        as usize)
                        .min(timeline.len() - 1);
                    timeline[idx].fetch_add(1, Ordering::Relaxed);
                }
                Ok(None) => {
                    span.cancel();
                    // Replay exhausted or a target vanished mid-op.
                    if self.spec.replay.is_some() {
                        return Ok(());
                    }
                    self.skipped += 1;
                }
                Err(e) => {
                    // Failed ops never record a latency sample, so they do
                    // not record a span either.
                    span.cancel();
                    match self.cfg.error_policy {
                        ErrorPolicy::FailFast => return Err(e),
                        ErrorPolicy::Count => {
                            // Attribute the failure to the class attempted.
                            let kind = self.last_attempt;
                            self.stats[class_index(kind)].errors += 1;
                            if let Some(mon) = &self.cfg.monitor {
                                mon.observe(kind.label(), 0, true, None);
                            }
                        }
                    }
                }
            }
            if let Driver::Closed { think, .. } = self.cfg.driver {
                if !think.is_zero() {
                    std::thread::sleep(think);
                }
            }
        }
    }

    fn one_op(&mut self, replay_cursor: &AtomicUsize) -> KernelResult<OpOutcome> {
        if self.spec.replay.is_some() {
            return self.replay_one(replay_cursor);
        }
        let kind = {
            let spec = Arc::clone(&self.spec);
            spec.mix.sample(&mut self.rng)
        };
        self.execute(kind)
    }

    fn replay_one(&mut self, cursor: &AtomicUsize) -> KernelResult<OpOutcome> {
        let spec = Arc::clone(&self.spec);
        let manifest = spec.replay.as_ref().expect("replay_one requires a manifest");
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(entry) = manifest.entries.get(i) else {
            return Ok(None); // manifest exhausted
        };
        // The shared cursor hands out manifest entries in order, but with
        // several workers entry i+1 can *execute* before entry i finishes —
        // so a child may arrive before its parent directory exists (NoEnt:
        // create the ancestors and retry) and a parent's own mkdir may find
        // another worker already created it on its child's behalf (Exist:
        // the directory is there, the entry's goal is achieved).
        match entry {
            UntarEntry::Dir(path) => {
                self.last_attempt = OpKind::Mkdir;
                let full = format!("/{path}");
                match self.vfs.mkdir(&full) {
                    Ok(()) => {}
                    Err(e) if e.errno() == Errno::Exist => {}
                    Err(e) if e.errno() == Errno::NoEnt => {
                        mkdir_p(&self.vfs, &full)?;
                    }
                    Err(e) => return Err(e),
                }
                Ok(Some((OpKind::Mkdir, 0)))
            }
            UntarEntry::File(path, size) => {
                self.last_attempt = OpKind::Create;
                let full = format!("/{path}");
                let flags = OpenFlags::WRONLY.with(OpenFlags::CREAT);
                let fd = match self.vfs.open(&full, flags) {
                    Ok(fd) => fd,
                    Err(e) if e.errno() == Errno::NoEnt => {
                        if let Some((parent, _)) = full.rsplit_once('/') {
                            mkdir_p(&self.vfs, parent)?;
                        }
                        self.vfs.open(&full, flags)?
                    }
                    Err(e) => return Err(e),
                };
                let scratch = std::mem::take(&mut self.scratch);
                let result = with_fd(&self.vfs, fd, |vfs| write_fully(vfs, fd, *size, &scratch));
                self.scratch = scratch;
                result?;
                Ok(Some((OpKind::Create, *size)))
            }
        }
    }

    /// Picks a popular file path.
    fn popular(&mut self) -> String {
        let zipf = self.zipf.as_ref().expect("mix personalities have files");
        let rank = zipf.sample(&mut self.rng);
        self.files[rank].clone()
    }

    /// The directory a popular file lives in.
    fn popular_dir(&mut self) -> String {
        let file = self.popular();
        file.rsplit_once('/').map(|(d, _)| d.to_string()).unwrap_or_else(|| "/".to_string())
    }

    /// An I/O-size-aligned offset within the mean file span.
    fn offset_in_span(&mut self, io: usize) -> u64 {
        let span = self.spec.fileset.size.mean().saturating_sub(io as u64).max(1);
        self.rng.gen_range(0..span) / io as u64 * io as u64
    }

    fn execute(&mut self, kind: OpKind) -> KernelResult<OpOutcome> {
        self.last_attempt = kind;
        match kind {
            OpKind::Create => self.op_create(),
            OpKind::Read => self.op_read(),
            OpKind::Write => self.op_write(),
            OpKind::Append => self.op_append(),
            OpKind::Fsync => self.op_fsync(),
            OpKind::Stat => self.op_stat(),
            // Delete and rename act on this worker's own created files so
            // the shared popularity population stays intact; with nothing
            // to act on yet they degrade to a create (which feeds them).
            OpKind::Delete => match self.created.pop() {
                Some(victim) => match self.vfs.unlink(&victim) {
                    Ok(()) => Ok(Some((OpKind::Delete, 0))),
                    Err(e) if e.errno() == Errno::NoEnt => Ok(None),
                    Err(e) => Err(e),
                },
                None => self.op_create(),
            },
            OpKind::Rename => match self.created.pop() {
                Some(old) => {
                    // Cross-directory when the fileset has directories:
                    // move the file into another fileset directory (the
                    // two-parent rename path, pair-locked by inum order in
                    // the xv6 stacks).  Flat filesets keep the old
                    // same-directory rename.
                    let new = if self.dirs.is_empty() {
                        format!("{old}.r")
                    } else {
                        let dir = &self.dirs[self.next_name as usize % self.dirs.len()];
                        self.next_name += 1;
                        format!("{dir}/mv-{}-{}", self.worker_id, self.next_name)
                    };
                    match self.vfs.rename(&old, &new) {
                        Ok(()) => {
                            self.remember(new);
                            Ok(Some((OpKind::Rename, 0)))
                        }
                        Err(e) if e.errno() == Errno::NoEnt => Ok(None),
                        Err(e) => Err(e),
                    }
                }
                None => self.op_create(),
            },
            OpKind::Mkdir => {
                let path = format!("/lg-dir-{}-{}", self.worker_id, self.next_name);
                self.next_name += 1;
                self.vfs.mkdir(&path)?;
                Ok(Some((OpKind::Mkdir, 0)))
            }
        }
    }

    fn remember(&mut self, path: String) {
        // Bound the per-worker created list; the overflow files simply stay
        // on the file system (they were real work).
        if self.created.len() < 4096 {
            self.created.push(path);
        }
    }

    fn op_create(&mut self) -> KernelResult<OpOutcome> {
        self.last_attempt = OpKind::Create;
        let dir = self.popular_dir();
        let path = format!("{dir}/n{}-{}", self.worker_id, self.next_name);
        self.next_name += 1;
        let size = {
            let spec = Arc::clone(&self.spec);
            spec.fileset.size.sample(&mut self.rng)
        };
        let fd = self.vfs.open(&path, OpenFlags::WRONLY.with(OpenFlags::CREAT))?;
        with_fd(&self.vfs, fd, |vfs| write_fully(vfs, fd, size, &self.scratch))?;
        self.remember(path);
        Ok(Some((OpKind::Create, size)))
    }

    fn op_read(&mut self) -> KernelResult<OpOutcome> {
        let path = self.popular();
        let io = self.spec.io_size;
        let offset = self.offset_in_span(io);
        let fd = match self.vfs.open(&path, OpenFlags::RDONLY) {
            Ok(fd) => fd,
            Err(e) if e.errno() == Errno::NoEnt => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = with_fd(&self.vfs, fd, |vfs| vfs.pread(fd, &mut scratch[..io], offset));
        self.scratch = scratch;
        Ok(Some((OpKind::Read, result? as u64)))
    }

    fn op_write(&mut self) -> KernelResult<OpOutcome> {
        let path = self.popular();
        let io = self.spec.io_size;
        let offset = self.offset_in_span(io);
        let fd = match self.vfs.open(&path, OpenFlags::WRONLY) {
            Ok(fd) => fd,
            Err(e) if e.errno() == Errno::NoEnt => return Ok(None),
            Err(e) => return Err(e),
        };
        let n = with_fd(&self.vfs, fd, |vfs| vfs.pwrite(fd, &self.scratch[..io], offset))?;
        Ok(Some((OpKind::Write, n as u64)))
    }

    fn op_append(&mut self) -> KernelResult<OpOutcome> {
        let path = self.popular();
        let append = self.spec.append_size.max(1);
        let fd = match self.vfs.open(&path, OpenFlags::WRONLY.with(OpenFlags::APPEND)) {
            Ok(fd) => fd,
            Err(e) if e.errno() == Errno::NoEnt => return Ok(None),
            Err(e) => return Err(e),
        };
        let n = with_fd(&self.vfs, fd, |vfs| vfs.write(fd, &self.scratch[..append]))?;
        Ok(Some((OpKind::Append, n as u64)))
    }

    fn op_fsync(&mut self) -> KernelResult<OpOutcome> {
        // The durability flowop: append a small record and fsync it, like a
        // mail delivery or a commit log record.
        let path = self.popular();
        let fd = match self.vfs.open(&path, OpenFlags::WRONLY.with(OpenFlags::APPEND)) {
            Ok(fd) => fd,
            Err(e) if e.errno() == Errno::NoEnt => return Ok(None),
            Err(e) => return Err(e),
        };
        let n = with_fd(&self.vfs, fd, |vfs| {
            let n = vfs.write(fd, &self.scratch[..FSYNC_RECORD_BYTES])?;
            vfs.fsync(fd)?;
            Ok(n)
        })?;
        Ok(Some((OpKind::Fsync, n as u64)))
    }

    fn op_stat(&mut self) -> KernelResult<OpOutcome> {
        let path = self.popular();
        match self.vfs.stat(&path) {
            Ok(_) => Ok(Some((OpKind::Stat, 0))),
            Err(e) if e.errno() == Errno::NoEnt => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Index of `kind` in [`OpKind::all`] order (the per-class stats layout).
fn class_index(kind: OpKind) -> usize {
    OpKind::all().iter().position(|&k| k == kind).expect("all() covers every kind")
}

/// Size of the record the fsync op class appends before syncing.
const FSYNC_RECORD_BYTES: usize = 512;

/// Runs `f` against an open fd and closes it on both the success and the
/// error path — an op failing mid-flight (e.g. injected EIO) must not leak
/// its descriptor, or unmount reports Busy after a fault run.
fn with_fd<R>(vfs: &Vfs, fd: u64, f: impl FnOnce(&Vfs) -> KernelResult<R>) -> KernelResult<R> {
    let result = f(vfs);
    let closed = vfs.close(fd);
    match result {
        Ok(value) => closed.map(|()| value),
        Err(e) => {
            let _ = closed; // the op error is the interesting one
            Err(e)
        }
    }
}

/// Writes `total` payload bytes to `fd` in `scratch`-sized chunks — the one
/// chunked write-out loop shared by preparation, replay and the create op.
fn write_fully(vfs: &Vfs, fd: u64, total: u64, scratch: &[u8]) -> KernelResult<()> {
    let mut remaining = total;
    while remaining > 0 {
        let n = vfs.write(fd, &scratch[..(remaining as usize).min(scratch.len())])?;
        if n == 0 {
            return Err(KernelError::with_context(Errno::Io, "loadgen: zero-length write"));
        }
        remaining -= n as u64;
    }
    Ok(())
}

/// `mkdir -p`: creates `path` and any missing ancestors, tolerating
/// directories that already exist (racing workers create each other's
/// parents).
fn mkdir_p(vfs: &Vfs, path: &str) -> KernelResult<()> {
    let mut so_far = String::new();
    for part in path.split('/').filter(|p| !p.is_empty()) {
        so_far.push('/');
        so_far.push_str(part);
        match vfs.mkdir(&so_far) {
            Ok(()) => {}
            Err(e) if e.errno() == Errno::Exist => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
