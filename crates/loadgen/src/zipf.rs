//! Seeded Zipfian sampling over file ranks.
//!
//! Real file populations are skewed: a few files take most of the traffic
//! (filebench models this the same way).  [`Zipfian`] draws ranks
//! `0..n` with `P(rank i) ∝ 1 / (i + 1)^theta` from a caller-provided
//! seeded RNG, so every run is replayable.  `theta = 0` degenerates to the
//! uniform distribution; filebench's default skew is `theta ≈ 0.99`.

use rand::rngs::SmallRng;
use rand::Rng;

/// A precomputed Zipfian distribution over `0..n`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    /// Cumulative probabilities; `cdf[i]` is `P(rank <= i)`, ending at 1.0.
    cdf: Vec<f64>,
}

impl Zipfian {
    /// Builds the distribution over `n` ranks with skew `theta >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipfian over an empty population");
        assert!(theta >= 0.0 && theta.is_finite(), "invalid zipf theta {theta}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        // Pin the tail so a sample of exactly 1.0 cannot fall off the end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipfian { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the population is empty (never true — `new` rejects `n = 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n` (rank 0 is the most popular).
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        // First index whose cumulative probability covers `u`.
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of `rank` (for tests and reporting).
    pub fn mass(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn seeded_sampling_is_deterministic_golden() {
        // Golden values: the first ten ranks drawn with this exact seed.
        // SmallRng is the workspace's SplitMix64 drop-in, so these values
        // are stable across platforms; if this test breaks, seeds recorded
        // in BENCH JSONs no longer replay.
        let zipf = Zipfian::new(100, 0.99);
        let mut rng = SmallRng::seed_from_u64(0x10adc0de);
        let first: Vec<usize> = (0..10).map(|_| zipf.sample(&mut rng)).collect();
        let mut rng2 = SmallRng::seed_from_u64(0x10adc0de);
        let again: Vec<usize> = (0..10).map(|_| zipf.sample(&mut rng2)).collect();
        assert_eq!(first, again, "same seed must give the same rank stream");
        assert_eq!(first, vec![16, 19, 18, 0, 33, 10, 0, 0, 15, 81]);
    }

    #[test]
    fn rank_frequency_follows_the_power_law() {
        let n = 50;
        let theta = 0.99;
        let zipf = Zipfian::new(n, theta);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0u64; n];
        let draws = 200_000;
        for _ in 0..draws {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate; the head (top 10%) must carry far more than
        // its uniform share.
        assert!(counts[0] > counts[10], "rank 0 must beat rank 10");
        let head: u64 = counts[..n / 10].iter().sum();
        assert!(
            head as f64 > 0.3 * draws as f64,
            "top 10% of ranks must draw >30% of traffic, got {head}"
        );
        // Empirical frequency of each rank tracks the analytic mass within
        // a loose sampling tolerance.
        for rank in [0usize, 1, 4, 19] {
            let expected = zipf.mass(rank) * draws as f64;
            let got = counts[rank] as f64;
            assert!(
                (got - expected).abs() < 0.15 * expected + 50.0,
                "rank {rank}: got {got}, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let zipf = Zipfian::new(10, 0.0);
        for rank in 0..10 {
            assert!((zipf.mass(rank) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn single_rank_population() {
        let zipf = Zipfian::new(1, 0.99);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }
}
