//! Declarative workload models: file-set shape + weighted op mix.
//!
//! A [`WorkloadSpec`] is the filebench-personality analogue: it describes a
//! file population (directory tree shape, file count, size distribution)
//! and a weighted mix of operations with Zipfian file popularity.  The
//! drivers in [`crate::driver`] interpret the spec against any mounted
//! stack; the four shipped personalities ([`WorkloadSpec::varmail`],
//! [`WorkloadSpec::fileserver`], [`WorkloadSpec::webserver`],
//! [`WorkloadSpec::untar_replay`]) are shaped like the paper's evaluation
//! workloads (§6.4, §6.6).

use rand::rngs::SmallRng;
use rand::Rng;

use workloads::{generate_linux_like_manifest, UntarManifest};

/// The operation classes a workload mixes (plus [`OpKind::Mkdir`], which
/// only appears in manifest replays — directory creation is not part of a
/// steady-state mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Create a new file, write its whole body, close.
    Create,
    /// Read `io_size` bytes from a popular file.
    Read,
    /// Overwrite `io_size` bytes in place in a popular file.
    Write,
    /// Append `append_size` bytes to a popular file.
    Append,
    /// Append a small record and fsync it (the durability op class).
    Fsync,
    /// `stat` a popular file.
    Stat,
    /// Delete a file (most recently created by this worker, else a victim).
    Delete,
    /// Rename a file this worker created.
    Rename,
    /// Create a directory (manifest replay only).
    Mkdir,
}

impl OpKind {
    /// All op classes, in reporting order.
    pub fn all() -> [OpKind; 9] {
        [
            OpKind::Create,
            OpKind::Read,
            OpKind::Write,
            OpKind::Append,
            OpKind::Fsync,
            OpKind::Stat,
            OpKind::Delete,
            OpKind::Rename,
            OpKind::Mkdir,
        ]
    }

    /// Row label (`"create"`, `"read"`, ...).
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Append => "append",
            OpKind::Fsync => "fsync",
            OpKind::Stat => "stat",
            OpKind::Delete => "delete",
            OpKind::Rename => "rename",
            OpKind::Mkdir => "mkdir",
        }
    }
}

/// A weighted op mix: each sampled operation is drawn with probability
/// proportional to its weight.
#[derive(Debug, Clone)]
pub struct OpMix {
    entries: Vec<(OpKind, u32)>,
    total: u32,
}

impl OpMix {
    /// Builds a mix from `(op, weight)` pairs; zero-weight entries are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero.
    pub fn new(weights: &[(OpKind, u32)]) -> Self {
        match Self::try_new(weights) {
            Ok(mix) => mix,
            Err(_) => panic!("op mix needs at least one nonzero weight"),
        }
    }

    /// Fallible [`OpMix::new`], for mixes built from external input (a
    /// config file, an experiment sweep): an empty or all-zero-weight list
    /// is reported as [`simkernel::error::Errno::Inval`] instead of a
    /// panic deep inside a load run.
    ///
    /// # Errors
    ///
    /// [`simkernel::error::Errno::Inval`] when no entry has a nonzero
    /// weight.
    pub fn try_new(weights: &[(OpKind, u32)]) -> simkernel::error::KernelResult<Self> {
        let entries: Vec<(OpKind, u32)> = weights.iter().copied().filter(|(_, w)| *w > 0).collect();
        let total = entries.iter().map(|(_, w)| w).sum();
        if total == 0 {
            return Err(simkernel::error::KernelError::with_context(
                simkernel::error::Errno::Inval,
                "loadgen: op mix is empty or all weights are zero",
            ));
        }
        Ok(OpMix { entries, total })
    }

    /// Draws one op class.
    pub fn sample(&self, rng: &mut SmallRng) -> OpKind {
        let mut roll = rng.gen_range(0..self.total);
        for (kind, weight) in &self.entries {
            if roll < *weight {
                return *kind;
            }
            roll -= weight;
        }
        self.entries[self.entries.len() - 1].0
    }

    /// The weight of `kind` in this mix (0 when absent).
    pub fn weight(&self, kind: OpKind) -> u32 {
        self.entries.iter().find(|(k, _)| *k == kind).map(|(_, w)| *w).unwrap_or(0)
    }

    /// The `(op, weight)` pairs of this mix.
    pub fn entries(&self) -> &[(OpKind, u32)] {
        &self.entries
    }
}

/// File size distributions.
#[derive(Debug, Clone, Copy)]
pub enum SizeDist {
    /// Every file is exactly this many bytes.
    Fixed(u64),
    /// Uniform over `[min, max]`.
    Uniform {
        /// Smallest file size.
        min: u64,
        /// Largest file size.
        max: u64,
    },
}

impl SizeDist {
    /// Draws one file size.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            SizeDist::Fixed(n) => n,
            SizeDist::Uniform { min, max } => rng.gen_range(min..=max),
        }
    }

    /// The mean file size (used for offset spans on pre-existing files).
    pub fn mean(&self) -> u64 {
        match *self {
            SizeDist::Fixed(n) => n,
            SizeDist::Uniform { min, max } => (min + max) / 2,
        }
    }
}

/// The file population: a directory tree of fixed width/depth with files
/// spread round-robin across the leaf directories.
#[derive(Debug, Clone, Copy)]
pub struct FileSetSpec {
    /// Subdirectories per directory at every level.
    pub dir_width: usize,
    /// Directory levels below the base (`0` = files directly in the base).
    pub depth: usize,
    /// Number of pre-created files.
    pub files: usize,
    /// Size distribution of the pre-created files.
    pub size: SizeDist,
}

impl FileSetSpec {
    /// Every directory path under `base`, parents before children.
    pub fn dir_paths(&self, base: &str) -> Vec<String> {
        let base = base.trim_end_matches('/');
        let mut all = Vec::new();
        let mut level: Vec<String> = vec![base.to_string()];
        for d in 0..self.depth {
            let mut next = Vec::with_capacity(level.len() * self.dir_width);
            for parent in &level {
                for w in 0..self.dir_width {
                    let path = format!("{parent}/d{d}-{w}");
                    all.push(path.clone());
                    next.push(path);
                }
            }
            level = next;
        }
        all
    }

    /// Every file path under `base` (files live in the deepest directory
    /// level, round-robin).
    pub fn file_paths(&self, base: &str) -> Vec<String> {
        let base = base.trim_end_matches('/');
        let leaves: Vec<String> = if self.depth == 0 {
            vec![base.to_string()]
        } else {
            let all = self.dir_paths(base);
            let leaf_count = self.dir_width.pow(self.depth as u32);
            all[all.len() - leaf_count..].to_vec()
        };
        (0..self.files).map(|i| format!("{}/f{}", leaves[i % leaves.len()], i)).collect()
    }
}

/// A complete declarative workload: population + op mix + popularity skew.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Personality name (BENCH row label).
    pub name: String,
    /// The file population.
    pub fileset: FileSetSpec,
    /// The weighted op mix.
    pub mix: OpMix,
    /// Zipfian skew over file popularity (0 = uniform; filebench ≈ 0.99).
    pub zipf_theta: f64,
    /// Read/write I/O size in bytes.
    pub io_size: usize,
    /// Append size in bytes.
    pub append_size: usize,
    /// When set, the drivers replay this manifest (mkdir/create+write in
    /// order) instead of sampling the mix — the untar-replay personality.
    pub replay: Option<UntarManifest>,
}

impl WorkloadSpec {
    /// The mail-server personality: small files, heavy create/delete churn,
    /// fsync on every delivery (filebench `varmail`).
    pub fn varmail() -> Self {
        WorkloadSpec {
            name: "varmail".to_string(),
            fileset: FileSetSpec {
                dir_width: 4,
                depth: 1,
                files: 200,
                size: SizeDist::Uniform { min: 2 * 1024, max: 16 * 1024 },
            },
            mix: OpMix::new(&[
                (OpKind::Create, 4),
                (OpKind::Delete, 4),
                (OpKind::Append, 4),
                (OpKind::Fsync, 8),
                (OpKind::Read, 8),
                (OpKind::Stat, 4),
            ]),
            zipf_theta: 0.99,
            io_size: 8 * 1024,
            append_size: 4 * 1024,
            replay: None,
        }
    }

    /// The file-server personality: whole-file writes and reads, appends,
    /// occasional deletes and renames over a larger population (filebench
    /// `fileserver`).
    pub fn fileserver() -> Self {
        WorkloadSpec {
            name: "fileserver".to_string(),
            fileset: FileSetSpec {
                dir_width: 5,
                depth: 2,
                files: 300,
                size: SizeDist::Uniform { min: 8 * 1024, max: 64 * 1024 },
            },
            mix: OpMix::new(&[
                (OpKind::Create, 4),
                (OpKind::Read, 8),
                (OpKind::Write, 6),
                (OpKind::Append, 4),
                (OpKind::Stat, 4),
                (OpKind::Delete, 3),
                (OpKind::Rename, 1),
            ]),
            zipf_theta: 0.8,
            io_size: 16 * 1024,
            append_size: 8 * 1024,
            replay: None,
        }
    }

    /// The web-server personality: overwhelmingly reads of popular small
    /// objects plus a log append (filebench `webserver`).
    pub fn webserver() -> Self {
        WorkloadSpec {
            name: "webserver".to_string(),
            fileset: FileSetSpec {
                dir_width: 8,
                depth: 1,
                files: 400,
                size: SizeDist::Uniform { min: 1024, max: 32 * 1024 },
            },
            mix: OpMix::new(&[
                (OpKind::Read, 20),
                (OpKind::Stat, 4),
                (OpKind::Append, 2),
                (OpKind::Fsync, 1),
            ]),
            zipf_theta: 1.1,
            io_size: 8 * 1024,
            append_size: 512,
            replay: None,
        }
    }

    /// The namespace-churn personality: create/rename/delete dominated
    /// traffic over a wide directory tree — the workload class the
    /// per-directory namespace locks (`simkernel::nslock`) exist for.
    /// Renames in a multi-directory fileset are cross-directory (see the
    /// driver), so this leans on the pair-locked two-parent path
    /// constantly, from every argument order.
    pub fn namespace_churn() -> Self {
        WorkloadSpec {
            name: "namespace-churn".to_string(),
            fileset: FileSetSpec {
                dir_width: 12,
                depth: 1,
                files: 240,
                size: SizeDist::Uniform { min: 1024, max: 8 * 1024 },
            },
            mix: OpMix::new(&[
                (OpKind::Create, 6),
                (OpKind::Rename, 8),
                (OpKind::Delete, 5),
                (OpKind::Stat, 3),
                (OpKind::Read, 2),
            ]),
            zipf_theta: 0.6,
            io_size: 4 * 1024,
            append_size: 2 * 1024,
            replay: None,
        }
    }

    /// The untar-replay personality: replays a deterministic Linux-like
    /// manifest (reusing `workloads::untar`'s generator) with per-op
    /// latency, instead of sampling a steady-state mix.
    pub fn untar_replay(files: usize, seed: u64) -> Self {
        WorkloadSpec {
            name: "untar-replay".to_string(),
            fileset: FileSetSpec { dir_width: 1, depth: 0, files: 0, size: SizeDist::Fixed(0) },
            // Replay ignores the mix, but a spec always carries a valid one.
            mix: OpMix::new(&[(OpKind::Create, 1)]),
            zipf_theta: 0.0,
            io_size: 64 * 1024,
            append_size: 0,
            replay: Some(generate_linux_like_manifest(files / 6, files, seed)),
        }
    }

    /// The five shipped personalities at the given untar scale.
    pub fn personalities(untar_files: usize) -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::varmail(),
            WorkloadSpec::fileserver(),
            WorkloadSpec::webserver(),
            WorkloadSpec::untar_replay(untar_files, 42),
            WorkloadSpec::namespace_churn(),
        ]
    }

    /// Scales the pre-created file count (builder style) so smoke tests can
    /// shrink a personality without redefining it.
    #[must_use]
    pub fn with_files(mut self, files: usize) -> Self {
        self.fileset.files = files;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_sampling_tracks_weights() {
        let mix = OpMix::new(&[(OpKind::Read, 3), (OpKind::Write, 1)]);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut reads = 0;
        for _ in 0..4000 {
            if mix.sample(&mut rng) == OpKind::Read {
                reads += 1;
            }
        }
        // 3:1 mix → ~75% reads.
        assert!((2700..=3300).contains(&reads), "reads {reads} out of proportion");
        assert_eq!(mix.weight(OpKind::Read), 3);
        assert_eq!(mix.weight(OpKind::Delete), 0);
    }

    #[test]
    fn empty_or_zero_weight_mixes_are_rejected_early() {
        let err = OpMix::try_new(&[]).unwrap_err();
        assert_eq!(err.errno(), simkernel::error::Errno::Inval);
        let err = OpMix::try_new(&[(OpKind::Read, 0), (OpKind::Write, 0)]).unwrap_err();
        assert_eq!(err.errno(), simkernel::error::Errno::Inval);
        assert!(OpMix::try_new(&[(OpKind::Read, 0), (OpKind::Write, 1)]).is_ok());
    }

    #[test]
    #[should_panic(expected = "op mix needs at least one nonzero weight")]
    fn new_still_panics_on_an_all_zero_mix() {
        let _ = OpMix::new(&[(OpKind::Read, 0)]);
    }

    #[test]
    fn fileset_paths_cover_every_leaf() {
        let spec = FileSetSpec { dir_width: 3, depth: 2, files: 20, size: SizeDist::Fixed(1024) };
        let dirs = spec.dir_paths("/");
        assert_eq!(dirs.len(), 3 + 9, "3 level-0 dirs + 9 leaves");
        assert!(dirs[0].starts_with("/d0-"));
        let files = spec.file_paths("/");
        assert_eq!(files.len(), 20);
        // Files land only in leaf directories and round-robin across all 9.
        let leaves: std::collections::HashSet<&str> =
            files.iter().map(|f| f.rsplit_once('/').unwrap().0).collect();
        assert_eq!(leaves.len(), 9);
    }

    #[test]
    fn depth_zero_puts_files_in_base() {
        let spec = FileSetSpec { dir_width: 4, depth: 0, files: 3, size: SizeDist::Fixed(10) };
        assert!(spec.dir_paths("/").is_empty());
        assert_eq!(spec.file_paths("/"), vec!["/f0", "/f1", "/f2"]);
    }

    #[test]
    fn personalities_are_shaped_as_documented() {
        let all = WorkloadSpec::personalities(120);
        assert_eq!(all.len(), 5);
        let varmail = &all[0];
        assert!(varmail.mix.weight(OpKind::Fsync) > 0, "varmail must fsync");
        let webserver = &all[2];
        assert!(
            webserver.mix.weight(OpKind::Read) > 3 * webserver.mix.weight(OpKind::Append),
            "webserver must be read-dominated"
        );
        let untar = &all[3];
        let manifest = untar.replay.as_ref().expect("untar-replay carries a manifest");
        assert_eq!(manifest.file_count(), 120);
        // Deterministic: same seed, same manifest.
        let again = WorkloadSpec::untar_replay(120, 42);
        assert_eq!(again.replay.unwrap(), *manifest);
        let churn = &all[4];
        assert_eq!(churn.name, "namespace-churn");
        assert!(
            churn.mix.weight(OpKind::Rename) >= churn.mix.weight(OpKind::Create),
            "namespace churn must be rename-heavy"
        );
        assert!(
            !churn.fileset.dir_paths("/").is_empty(),
            "namespace churn needs directories for cross-directory renames"
        );
    }
}
