//! # loadgen — workload modeling + load generation with tail-latency
//! instrumentation
//!
//! The paper evaluates its file systems with filebench application
//! personalities and demonstrates live upgrade *under sustained load*
//! (§6.2, §6.4).  The `workloads` crate reimplements the personalities as
//! fixed loops; this crate adds the missing evaluation machinery around
//! them:
//!
//! * **Declarative workload models** ([`WorkloadSpec`]): a file-set shape
//!   (directory width/depth, file count, size distribution), a weighted op
//!   mix over create / read / write / append / fsync / stat / delete /
//!   rename, and seeded Zipfian file popularity ([`zipf::Zipfian`]).  Five
//!   personalities ship: [`WorkloadSpec::varmail`],
//!   [`WorkloadSpec::fileserver`], [`WorkloadSpec::webserver`],
//!   [`WorkloadSpec::untar_replay`] (which replays the
//!   `workloads::untar` manifest with per-op latency), and
//!   [`WorkloadSpec::namespace_churn`] (rename-heavy, cross-directory —
//!   the mix that leans on the per-directory namespace locks).
//! * **Closed- and open-loop drivers** ([`driver::run_load`]): closed loop
//!   = N workers + think time (peak throughput); open loop = a target
//!   arrival rate on a virtual clock, where overload shows up as measured
//!   backlog and growing latency instead of silently throttled offered
//!   load.
//! * **Measurement**: per-op-class log-bucketed latency histograms
//!   (p50/p90/p99/p99.9 via [`simkernel::metrics::LatencyHistogram`]) and
//!   a windowed throughput timeline, emitted as BENCH rows by the `bench`
//!   crate's `load` experiment.
//! * **Scenario hooks** ([`scenario`]): [`BentoFs::upgrade`] fired mid-run
//!   under traffic (zero failed ops, measured pause — the paper's
//!   upgrade-under-load experiment) and crashsim `FaultDevice`
//!   transient-EIO injection under load (failed ops counted per class,
//!   liveness re-probed after the fault clears).
//!
//! [`BentoFs::upgrade`]: bento::bentofs::BentoFs::upgrade
//!
//! ## Example
//!
//! ```
//! use std::time::Duration;
//! use loadgen::{run_load, prepare, LoadConfig, WorkloadSpec};
//! use simkernel::cost::CostModel;
//! use workloads::{mount_stack, FsStack};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mounted = mount_stack(FsStack::BentoXv6, CostModel::zero(), 16_384)?;
//! let spec = WorkloadSpec::varmail().with_files(40);
//! let cfg = LoadConfig::closed(2, Duration::from_millis(60));
//! prepare(&mounted.vfs, &spec, &cfg)?;
//! let result = run_load(&mounted.vfs, &spec, &cfg)?;
//! assert!(result.is_clean());
//! println!("{} ops/s, p99 {:.0}µs", result.ops_per_sec() as u64, result.p_us(99.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod scenario;
pub mod spec;
pub mod zipf;

pub use driver::{
    prepare, run_load, ClassPhaseTrace, Driver, ErrorPolicy, LoadConfig, LoadResult, OpClassStats,
    SLOWEST_K,
};
pub use scenario::{run_eio_under_load, run_upgrade_under_load, EioOutcome, UpgradeOutcome};
pub use spec::{FileSetSpec, OpKind, OpMix, SizeDist, WorkloadSpec};
pub use zipf::Zipfian;
