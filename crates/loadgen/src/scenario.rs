//! Mid-run scenario hooks: events fired against a stack *while the load
//! drivers keep traffic flowing*.
//!
//! The paper's flagship demo (§6.2) is upgrading a live file system under
//! sustained traffic: applications observe a pause of milliseconds, not an
//! unmount window.  [`run_upgrade_under_load`] reproduces that experiment —
//! traffic from any personality, a [`BentoFs::upgrade`] fired halfway
//! through, the pause measured and zero failed operations asserted by the
//! caller via [`LoadResult::is_clean`].
//!
//! [`run_eio_under_load`] drives the same traffic over a crashsim
//! [`FaultDevice`] and flips transient-EIO injection on for a window
//! mid-run: the stack is allowed to fail individual operations (they are
//! counted per op class), but must keep serving once the fault clears.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bento::bentofs::BentoFs;
use bento::upgrade::UpgradeReport;
use crashsim::{FaultConfig, FaultDevice, FaultStats};
use simkernel::cost::CostModel;
use simkernel::dev::{BlockDevice, SsdDevice};
use simkernel::error::{Errno, KernelError, KernelResult};
use simkernel::vfs::{MountOptions, OpenFlags, Vfs};
use workloads::{mount_stack_on_device, FsStack, MountedStack};

use crate::driver::{run_load, ErrorPolicy, LoadConfig, LoadResult};
use crate::spec::WorkloadSpec;

/// What the upgrade scenario observed.
#[derive(Debug, Clone)]
pub struct UpgradeOutcome {
    /// The framework's report (generation, state transfer, pause).
    pub report: UpgradeReport,
    /// When the upgrade fired, relative to run start.
    pub fired_at: Duration,
}

/// Runs `spec` against an already-mounted **Bento** stack and fires
/// [`BentoFs::upgrade`] (swapping in a fresh [`xv6fs::Xv6FileSystem`])
/// halfway through the run, while the drivers keep issuing operations.
///
/// The upgrade handle is recovered from the VFS mount table through the
/// [`VfsFs::as_any`](simkernel::vfs::VfsFs::as_any) downcast hook, so the
/// scenario works on a stack mounted through the ordinary
/// [`workloads::mount_stack`] path — no bespoke test mount.
///
/// # Errors
///
/// Fails if `vfs`'s root mount is not a BentoFS mount, if the upgrade
/// itself fails, or (under [`ErrorPolicy::FailFast`]) if any operation
/// fails — the paper's bar is zero failed ops across the swap.
pub fn run_upgrade_under_load(
    vfs: &Arc<Vfs>,
    spec: &WorkloadSpec,
    cfg: &LoadConfig,
) -> KernelResult<(LoadResult, UpgradeOutcome)> {
    let mounted = vfs.mounted_fs("/")?;
    // Hold the Arc for the scenario thread; the downcast is re-done there
    // because `Any` borrows cannot cross the thread spawn.
    if mounted.as_any().and_then(|a| a.downcast_ref::<BentoFs>()).is_none() {
        return Err(KernelError::with_context(
            Errno::Inval,
            "upgrade-under-load requires a BentoFS mount at /",
        ));
    }
    let fire_after = cfg.duration / 2;
    let started = Instant::now();
    let scenario = std::thread::spawn(move || -> KernelResult<UpgradeOutcome> {
        std::thread::sleep(fire_after);
        let bento = mounted
            .as_any()
            .and_then(|a| a.downcast_ref::<BentoFs>())
            .expect("checked before spawn");
        let fired_at = started.elapsed();
        let report = bento.upgrade(Box::new(xv6fs::Xv6FileSystem::with_label("loadgen-v2")))?;
        Ok(UpgradeOutcome { report, fired_at })
    });
    let result = run_load(vfs, spec, cfg)?;
    let outcome = scenario
        .join()
        .map_err(|_| KernelError::with_context(Errno::Io, "upgrade scenario thread panicked"))??;
    Ok((result, outcome))
}

/// What the transient-EIO scenario observed.
#[derive(Debug, Clone)]
pub struct EioOutcome {
    /// Injection counters from the fault device (how many faults actually
    /// fired at the device layer).
    pub fault_stats: FaultStats,
    /// Whether the stack still served a create+fsync+stat round-trip after
    /// injection was switched off.
    pub recovered: bool,
    /// Whether the final unmount succeeded.  An op that took a device EIO
    /// mid-transaction may leave the mount degraded (orphaned in-memory
    /// state) even though it keeps serving — real kernels behave the same
    /// way — so this is reported, not required.
    pub clean_unmount: bool,
}

/// Mounts `stack` over a crashsim [`FaultDevice`] (wrapping the usual
/// latency-modelled [`SsdDevice`]), runs `spec` under [`ErrorPolicy::Count`],
/// and injects transient EIO with probability `eio_p` on writes (and
/// `eio_p / 4` on reads) for the middle half of the run.  Returns the load
/// result (failed ops counted per class) and the injection outcome,
/// including a post-fault liveness probe.
///
/// # Errors
///
/// Propagates mount/teardown errors and driver failures other than the
/// injected (counted) op errors.
pub fn run_eio_under_load(
    stack: FsStack,
    model: CostModel,
    disk_blocks: u64,
    spec: &WorkloadSpec,
    cfg: &LoadConfig,
    eio_p: f64,
) -> KernelResult<(LoadResult, EioOutcome)> {
    let ssd = Arc::new(SsdDevice::ram_backed(disk_blocks, model.clone()));
    let fault =
        Arc::new(FaultDevice::new(ssd as Arc<dyn BlockDevice>, FaultConfig::recorder(cfg.seed)));
    fault.set_trace_enabled(false); // live injection only; no crash replay
    let vfs = mount_stack_on_device(
        stack,
        model,
        Arc::clone(&fault) as Arc<dyn BlockDevice>,
        &MountOptions::default(),
    )?;
    crate::driver::prepare(&vfs, spec, cfg)?;

    let cfg = LoadConfig { error_policy: ErrorPolicy::Count, ..cfg.clone() };
    // A health monitor attached to the run gets per-window registry counter
    // deltas: publish this mount's counters into a private registry at
    // every window close.
    if let Some(mon) = &cfg.monitor {
        let mounted = MountedStack {
            vfs: Arc::clone(&vfs),
            stack,
            device: Arc::clone(&fault) as Arc<dyn BlockDevice>,
        };
        let registry = simkernel::registry::MetricsRegistry::new();
        mon.set_snapshot_source(move || {
            mounted.publish_metrics(&registry);
            registry.snapshot()
        });
    }
    let quarter = cfg.duration / 4;
    let toggle_device = Arc::clone(&fault);
    let toggler = std::thread::spawn(move || {
        std::thread::sleep(quarter);
        toggle_device.set_transient_eio(eio_p / 4.0, eio_p);
        std::thread::sleep(quarter * 2);
        toggle_device.set_transient_eio(0.0, 0.0);
    });
    let result = run_load(&vfs, spec, &cfg);
    toggler
        .join()
        .map_err(|_| KernelError::with_context(Errno::Io, "EIO toggle thread panicked"))?;
    // Make sure injection is off even if the run errored out early.
    fault.set_transient_eio(0.0, 0.0);
    let result = result?;

    // Liveness probe: with the fault cleared, the stack must still serve a
    // full durable round-trip.
    let recovered = (|| -> KernelResult<()> {
        let fd = vfs.open("/eio-probe", OpenFlags::WRONLY.with(OpenFlags::CREAT))?;
        vfs.write(fd, b"still alive")?;
        vfs.fsync(fd)?;
        vfs.close(fd)?;
        if vfs.stat("/eio-probe")?.size != 11 {
            return Err(KernelError::with_context(Errno::Io, "probe size mismatch"));
        }
        Ok(())
    })()
    .is_ok();
    let clean_unmount = vfs.unmount("/").is_ok();
    let outcome = EioOutcome { fault_stats: fault.fault_stats(), recovered, clean_unmount };
    Ok((result, outcome))
}
