//! The Bento file operations API (paper §4.3–§4.4).
//!
//! This is the interface a Bento file system implements.  It is a Rust
//! rendering of the FUSE low-level API, with two changes the paper calls
//! out:
//!
//! * every method additionally borrows the [`SuperBlock`] capability, which
//!   is how the file system performs block I/O ("the file operations API is
//!   a Rust version of FUSE low-level API augmented with a reference to the
//!   `super_block` data structure", §4.4);
//! * ownership never crosses the interface — all arguments are borrowed for
//!   the duration of the call (the ownership model).
//!
//! Unlike the single-threaded `fuse-rs` userspace library, methods take
//! `&self` and implementations must be `Send + Sync`: kernel file systems
//! are called concurrently from many threads, and the evaluation runs
//! 32-thread benchmarks.
//!
//! Methods not implemented default to returning `ENOSYS`, mirroring how the
//! FUSE protocol treats unimplemented opcodes.

use simkernel::error::{Errno, KernelError, KernelResult};
use simkernel::vfs::{DirEntry, FileMode, InodeAttr, OpenFlags, SetAttr, StatFs};

use crate::bentoks::SuperBlock;
use crate::upgrade::StateBundle;

/// Per-request context (the analogue of `fuse_req_t` / kernel credentials).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Request {
    /// Requesting user id.
    pub uid: u32,
    /// Requesting group id.
    pub gid: u32,
    /// Requesting process id.
    pub pid: u32,
}

impl Request {
    /// A request issued by the kernel itself (uid 0).
    pub fn kernel() -> Self {
        Request::default()
    }
}

/// Result of a successful `create`: the new inode plus an open file handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreateReply {
    /// Attributes of the newly created file.
    pub attr: InodeAttr,
    /// File handle, valid until `release`.
    pub fh: u64,
}

fn nosys<T>(what: &'static str) -> KernelResult<T> {
    Err(KernelError::with_context(Errno::NoSys, what))
}

/// The file operations a Bento file system implements.
///
/// All inode numbers are file-system-defined; `1` conventionally names the
/// root directory (as in FUSE).  Errors are reported as
/// [`KernelError`]s carrying errno values, which BentoFS relays to the VFS
/// unchanged.
#[allow(unused_variables)]
pub trait FileSystem: Send + Sync {
    /// Short name of the file system (used in registration and statistics).
    fn name(&self) -> &'static str;

    /// Called once when the file system is mounted.  Typical work: read the
    /// on-disk superblock through `sb`, recover the journal, set up caches.
    ///
    /// # Errors
    ///
    /// Returning an error aborts the mount.
    fn init(&self, req: &Request, sb: &SuperBlock) -> KernelResult<()> {
        Ok(())
    }

    /// Called at unmount after all writeback has completed.
    ///
    /// # Errors
    ///
    /// I/O errors may be reported but the unmount proceeds.
    fn destroy(&self, req: &Request, sb: &SuperBlock) -> KernelResult<()> {
        Ok(())
    }

    /// File system statistics.
    ///
    /// # Errors
    ///
    /// I/O errors propagate.
    fn statfs(&self, req: &Request, sb: &SuperBlock) -> KernelResult<StatFs> {
        nosys("statfs")
    }

    /// Looks up `name` within directory `parent`.
    ///
    /// # Errors
    ///
    /// `ENOENT` if absent, `ENOTDIR` if `parent` is not a directory.
    fn lookup(
        &self,
        req: &Request,
        sb: &SuperBlock,
        parent: u64,
        name: &str,
    ) -> KernelResult<InodeAttr> {
        nosys("lookup")
    }

    /// Returns the attributes of `ino`.
    ///
    /// # Errors
    ///
    /// `ENOENT` if the inode does not exist.
    fn getattr(&self, req: &Request, sb: &SuperBlock, ino: u64) -> KernelResult<InodeAttr> {
        nosys("getattr")
    }

    /// Applies attribute changes (truncate, chmod) to `ino`.
    ///
    /// # Errors
    ///
    /// `ENOENT`, `EISDIR` (truncating a directory), `ENOSPC`.
    fn setattr(
        &self,
        req: &Request,
        sb: &SuperBlock,
        ino: u64,
        set: &SetAttr,
    ) -> KernelResult<InodeAttr> {
        nosys("setattr")
    }

    /// Creates and opens a regular file.
    ///
    /// # Errors
    ///
    /// `EEXIST`, `ENOSPC`, `ENOTDIR`.
    fn create(
        &self,
        req: &Request,
        sb: &SuperBlock,
        parent: u64,
        name: &str,
        mode: FileMode,
        flags: OpenFlags,
    ) -> KernelResult<CreateReply> {
        nosys("create")
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// `EEXIST`, `ENOSPC`, `ENOTDIR`.
    fn mkdir(
        &self,
        req: &Request,
        sb: &SuperBlock,
        parent: u64,
        name: &str,
        mode: FileMode,
    ) -> KernelResult<InodeAttr> {
        nosys("mkdir")
    }

    /// Removes a regular file.
    ///
    /// # Errors
    ///
    /// `ENOENT`, `EISDIR`.
    fn unlink(&self, req: &Request, sb: &SuperBlock, parent: u64, name: &str) -> KernelResult<()> {
        nosys("unlink")
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// `ENOENT`, `ENOTEMPTY`, `ENOTDIR`.
    fn rmdir(&self, req: &Request, sb: &SuperBlock, parent: u64, name: &str) -> KernelResult<()> {
        nosys("rmdir")
    }

    /// Renames `name` in `parent` to `newname` in `newparent`, replacing an
    /// existing target when legal.
    ///
    /// # Errors
    ///
    /// `ENOENT`, `ENOTEMPTY`, `ENOSPC`.
    fn rename(
        &self,
        req: &Request,
        sb: &SuperBlock,
        parent: u64,
        name: &str,
        newparent: u64,
        newname: &str,
    ) -> KernelResult<()> {
        nosys("rename")
    }

    /// Creates a hard link to `ino` named `newname` in `newparent`.
    ///
    /// # Errors
    ///
    /// `EPERM` (directories), `EEXIST`, `ENOSPC`, `EMLINK`.
    fn link(
        &self,
        req: &Request,
        sb: &SuperBlock,
        ino: u64,
        newparent: u64,
        newname: &str,
    ) -> KernelResult<InodeAttr> {
        nosys("link")
    }

    /// Opens `ino`; returns a file handle passed back on `read`/`write`/
    /// `release`.
    ///
    /// # Errors
    ///
    /// `ENOENT`.
    fn open(
        &self,
        req: &Request,
        sb: &SuperBlock,
        ino: u64,
        flags: OpenFlags,
    ) -> KernelResult<u64> {
        nosys("open")
    }

    /// Reads up to `size` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// `ENOENT`, I/O errors.
    fn read(
        &self,
        req: &Request,
        sb: &SuperBlock,
        ino: u64,
        fh: u64,
        offset: u64,
        size: u32,
    ) -> KernelResult<Vec<u8>> {
        nosys("read")
    }

    /// Writes `data` at `offset`; returns the number of bytes written.
    ///
    /// # Errors
    ///
    /// `ENOSPC`, `EFBIG`, I/O errors.
    fn write(
        &self,
        req: &Request,
        sb: &SuperBlock,
        ino: u64,
        fh: u64,
        offset: u64,
        data: &[u8],
    ) -> KernelResult<usize> {
        nosys("write")
    }

    /// Called on every `close(2)` of a descriptor referring to `ino`.
    ///
    /// # Errors
    ///
    /// Errors are reported to the closing process.
    fn flush(&self, req: &Request, sb: &SuperBlock, ino: u64, fh: u64) -> KernelResult<()> {
        Ok(())
    }

    /// Releases a file handle returned by `open`/`create`.
    ///
    /// # Errors
    ///
    /// I/O errors from deferred work propagate.
    fn release(&self, req: &Request, sb: &SuperBlock, ino: u64, fh: u64) -> KernelResult<()> {
        Ok(())
    }

    /// Makes the file's data (and metadata unless `datasync`) durable.
    ///
    /// # Errors
    ///
    /// I/O errors propagate.
    fn fsync(
        &self,
        req: &Request,
        sb: &SuperBlock,
        ino: u64,
        fh: u64,
        datasync: bool,
    ) -> KernelResult<()> {
        nosys("fsync")
    }

    /// Opens a directory for reading.
    ///
    /// # Errors
    ///
    /// `ENOTDIR`, `ENOENT`.
    fn opendir(
        &self,
        req: &Request,
        sb: &SuperBlock,
        ino: u64,
        flags: OpenFlags,
    ) -> KernelResult<u64> {
        Ok(0)
    }

    /// Lists the entries of directory `ino`.
    ///
    /// # Errors
    ///
    /// `ENOTDIR`, `ENOENT`.
    fn readdir(
        &self,
        req: &Request,
        sb: &SuperBlock,
        ino: u64,
        fh: u64,
    ) -> KernelResult<Vec<DirEntry>> {
        nosys("readdir")
    }

    /// Releases a directory handle.
    ///
    /// # Errors
    ///
    /// I/O errors propagate.
    fn releasedir(&self, req: &Request, sb: &SuperBlock, ino: u64, fh: u64) -> KernelResult<()> {
        Ok(())
    }

    /// Makes directory metadata durable.
    ///
    /// # Errors
    ///
    /// I/O errors propagate.
    fn fsyncdir(
        &self,
        req: &Request,
        sb: &SuperBlock,
        ino: u64,
        fh: u64,
        datasync: bool,
    ) -> KernelResult<()> {
        self.fsync(req, sb, ino, fh, datasync)
    }

    /// Flushes all dirty file system state (the `sync_fs` super-operation;
    /// also used as the quiesce step before an online upgrade).
    ///
    /// # Errors
    ///
    /// I/O errors propagate.
    fn sync_fs(&self, req: &Request, sb: &SuperBlock) -> KernelResult<()> {
        Ok(())
    }

    /// Write-path batching statistics (log batching, allocator spread), if
    /// this file system tracks them.  BentoFS forwards these to the VFS so
    /// the experiment harness can report them per run.
    fn write_path_stats(&self) -> Option<simkernel::vfs::WritePathStats> {
        None
    }

    /// Operation counters (creates, removes, bytes moved, fsyncs), if this
    /// file system tracks them.  Forwarded to the VFS the same way as
    /// [`FileSystem::write_path_stats`].
    fn op_stats(&self) -> Option<simkernel::vfs::FsOpStats> {
        None
    }

    // -- online upgrade (paper §4.8) ----------------------------------------

    /// Extracts the in-memory state that must survive an online upgrade
    /// (caches, allocation cursors, statistics...).  Called on the *old*
    /// file system instance after it has been quiesced.
    ///
    /// # Errors
    ///
    /// `ENOSYS` (the default) makes BentoFS fall back to a sync-and-reinit
    /// upgrade.
    fn extract_state(&self, req: &Request, sb: &SuperBlock) -> KernelResult<StateBundle> {
        nosys("extract_state")
    }

    /// Installs state extracted from the previous version.  Called on the
    /// *new* file system instance instead of [`FileSystem::init`].
    ///
    /// # Errors
    ///
    /// Returning an error aborts the upgrade and leaves the old instance
    /// running.
    fn restore_state(
        &self,
        req: &Request,
        sb: &SuperBlock,
        state: StateBundle,
    ) -> KernelResult<()> {
        nosys("restore_state")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bentoks::{KernelBlockIo, SuperBlock};
    use simkernel::dev::RamDisk;
    use std::sync::Arc;

    struct Minimal;
    impl FileSystem for Minimal {
        fn name(&self) -> &'static str {
            "minimal"
        }
    }

    fn sb() -> SuperBlock {
        SuperBlock::from_provider(
            Arc::new(KernelBlockIo::new(Arc::new(RamDisk::new(4096, 8)), 8)),
            "ram0",
        )
    }

    #[test]
    fn unimplemented_methods_return_enosys() {
        let fs = Minimal;
        let sb = sb();
        let req = Request::kernel();
        assert_eq!(fs.lookup(&req, &sb, 1, "x").unwrap_err().errno(), Errno::NoSys);
        assert_eq!(fs.read(&req, &sb, 1, 0, 0, 16).unwrap_err().errno(), Errno::NoSys);
        assert_eq!(fs.extract_state(&req, &sb).unwrap_err().errno(), Errno::NoSys);
    }

    #[test]
    fn lifecycle_defaults_succeed() {
        let fs = Minimal;
        let sb = sb();
        let req = Request::kernel();
        fs.init(&req, &sb).unwrap();
        fs.flush(&req, &sb, 1, 0).unwrap();
        fs.release(&req, &sb, 1, 0).unwrap();
        fs.sync_fs(&req, &sb).unwrap();
        fs.destroy(&req, &sb).unwrap();
    }

    #[test]
    fn trait_is_object_safe_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Box<dyn FileSystem>>();
        let _obj: Box<dyn FileSystem> = Box::new(Minimal);
    }
}
