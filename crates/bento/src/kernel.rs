//! The kernel-environment re-exports (paper §4.9).
//!
//! A Bento file system sees the same API whether it runs in the kernel or
//! in userspace.  This module is the *kernel* face: it re-exports the
//! kernel-flavoured synchronization types from [`simkernel::sync`] and the
//! kernel-service capability types from [`crate::bentoks`].  The userspace
//! face is [`crate::userspace`], which provides standard-library-backed
//! types with the identical method surface.
//!
//! The two faces are kept from silently diverging by the compile-time
//! parity checks in the crate-private `sync_parity` module: any method-surface drift
//! between `bento::kernel` and `bento::userspace` sync types is a build
//! error, not a latent port hazard.

pub use simkernel::sync::{KMutex, KRwLock, Semaphore};

pub use crate::bentoks::{BlockIo, BufferHead, SuperBlock};
