//! The userspace Bento environment (paper §4.9, "BentoFS-User" /
//! "BentoKS-User").
//!
//! For debugging — and for the paper's FUSE baseline — the same file-system
//! code must run in userspace without modification.  That requires userspace
//! implementations of the same APIs the kernel provides:
//!
//! * [`UserDisk`] is the userspace replacement for the kernel buffer cache:
//!   block I/O goes through an `O_DIRECT`-style handle on the backing disk
//!   file, so every device access pays a user/kernel boundary crossing
//!   (200–400 ns in the paper's measurement), and making writes durable
//!   requires `fsync`ing the *whole* disk file because the file interface
//!   cannot sync a byte range (§6.4) — the dominant cost in the FUSE
//!   numbers.
//! * [`userspace_superblock`] mints a [`SuperBlock`] capability backed by a
//!   [`UserDisk`], so `xv6fs` code written against the kernel API runs here
//!   unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simkernel::buffer::BufferCache;
use simkernel::cost::{CostCounters, CostKind, CostModel};
use simkernel::dev::BlockDevice;
use simkernel::error::KernelResult;

use crate::bentoks::{BlockBuffer, BlockIo, SuperBlock};

/// Userspace block I/O provider: the stand-in for opening the disk with
/// `O_DIRECT` from a FUSE daemon.
///
/// The provider keeps a small user-level block cache (the xv6 FUSE port
/// carries its own buffer cache in userspace), but every actual device
/// access is charged a boundary crossing, and [`BlockIo::sync_all`] is
/// charged as a whole-disk-file fsync.
pub struct UserDisk {
    cache: Arc<BufferCache>,
    model: CostModel,
    counters: Arc<CostCounters>,
    blocks_written_since_sync: Arc<AtomicU64>,
}

impl std::fmt::Debug for UserDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UserDisk")
            .field("nblocks", &self.cache.device().num_blocks())
            .field("pending_blocks", &self.blocks_written_since_sync.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl UserDisk {
    /// Opens `device` from userspace with the given boundary cost model and
    /// a user-level block cache of `cache_blocks` blocks.
    pub fn new(device: Arc<dyn BlockDevice>, model: CostModel, cache_blocks: usize) -> Self {
        UserDisk {
            cache: Arc::new(BufferCache::new(device, cache_blocks)),
            model,
            counters: Arc::new(CostCounters::new()),
            blocks_written_since_sync: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Cost counters accumulated by this disk handle (crossings,
    /// whole-file syncs).
    pub fn counters(&self) -> Arc<CostCounters> {
        Arc::clone(&self.counters)
    }

    /// Blocks written since the last [`BlockIo::sync_all`] (diagnostics).
    pub fn pending_blocks(&self) -> u64 {
        self.blocks_written_since_sync.load(Ordering::Relaxed)
    }

    fn charge_crossing(&self) {
        self.model.charge(&self.counters, CostKind::BoundaryCrossing, self.model.crossing_ns);
    }
}

struct UserBlockBuffer {
    guard: simkernel::buffer::BufferGuard,
    model: CostModel,
    counters: Arc<CostCounters>,
    blocks_written_since_sync: Arc<AtomicU64>,
}

impl BlockBuffer for UserBlockBuffer {
    fn blockno(&self) -> u64 {
        self.guard.blockno()
    }

    fn data(&self) -> &[u8] {
        self.guard.data()
    }

    fn data_mut(&mut self) -> &mut [u8] {
        self.guard.data_mut()
    }

    fn write(&mut self) -> KernelResult<()> {
        // Every userspace block write is a pwrite on the O_DIRECT disk file:
        // one boundary crossing plus the device write itself.
        self.model.charge(&self.counters, CostKind::BoundaryCrossing, self.model.crossing_ns);
        self.guard.write()?;
        self.blocks_written_since_sync.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl BlockIo for UserDisk {
    fn block_size(&self) -> usize {
        self.cache.block_size()
    }

    fn nblocks(&self) -> u64 {
        self.cache.device().num_blocks()
    }

    fn bread(&self, blockno: u64) -> KernelResult<Box<dyn BlockBuffer>> {
        let misses_before = self.cache.stats().misses;
        let guard = self.cache.bread(blockno)?;
        if self.cache.stats().misses > misses_before {
            // The block actually came from the device: one pread crossing.
            self.charge_crossing();
        }
        Ok(Box::new(UserBlockBuffer {
            guard,
            model: self.model.clone(),
            counters: Arc::clone(&self.counters),
            blocks_written_since_sync: Arc::clone(&self.blocks_written_since_sync),
        }))
    }

    fn bread_zeroed(&self, blockno: u64) -> KernelResult<Box<dyn BlockBuffer>> {
        let guard = self.cache.getblk_zeroed(blockno)?;
        Ok(Box::new(UserBlockBuffer {
            guard,
            model: self.model.clone(),
            counters: Arc::clone(&self.counters),
            blocks_written_since_sync: Arc::clone(&self.blocks_written_since_sync),
        }))
    }

    fn sync_all(&self) -> KernelResult<()> {
        // fsync of the whole backing disk file: base cost plus a per-block
        // cost for everything written since the previous sync (§6.4).
        let pending = self.blocks_written_since_sync.swap(0, Ordering::Relaxed);
        let cost =
            self.model.whole_file_sync_base_ns + pending * self.model.whole_file_sync_per_block_ns;
        self.model.charge(&self.counters, CostKind::UserspaceWholeFileSync, cost);
        self.cache.flush_device()
    }

    fn write_raw(&self, blockno: u64, data: &[u8]) -> KernelResult<()> {
        // A pwrite on the O_DIRECT disk file, bypassing the user-level
        // cache: one boundary crossing plus the device write.
        self.model.charge(&self.counters, CostKind::BoundaryCrossing, self.model.crossing_ns);
        self.cache.device().write_block(blockno, data)?;
        self.blocks_written_since_sync.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Mints a [`SuperBlock`] capability backed by a userspace disk, the
/// "BentoKS-User" entry point.  The identical file-system code that runs in
/// the kernel runs against this superblock unchanged.
pub fn userspace_superblock(io: Arc<dyn BlockIo>, name: &str) -> SuperBlock {
    SuperBlock::from_provider(io, name)
}

// ---------------------------------------------------------------------------
// Userspace synchronization (the §4.9 mirror of `simkernel::sync`)
// ---------------------------------------------------------------------------

/// A counting semaphore with the same method surface as the kernel's
/// [`simkernel::sync::Semaphore`], built on the standard library.
///
/// The paper's userspace environment re-implements kernel APIs over libc /
/// std equivalents so that file-system code compiles against either face;
/// the crate-private `sync_parity` module asserts at compile time that this type and the
/// kernel type cannot drift apart.
#[derive(Debug)]
pub struct Semaphore {
    state: std::sync::Mutex<u64>,
    cond: std::sync::Condvar,
}

impl Semaphore {
    /// Creates a semaphore with `count` initial permits.
    pub fn new(count: u64) -> Self {
        Semaphore { state: std::sync::Mutex::new(count), cond: std::sync::Condvar::new() }
    }

    /// Acquires one permit, blocking until one is available (`down`).
    pub fn down(&self) {
        let mut count = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while *count == 0 {
            count = self.cond.wait(count).unwrap_or_else(|e| e.into_inner());
        }
        *count -= 1;
    }

    /// Tries to acquire one permit without blocking (`down_trylock`).
    /// Returns `true` on success.
    pub fn try_down(&self) -> bool {
        let mut count = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if *count == 0 {
            false
        } else {
            *count -= 1;
            true
        }
    }

    /// Releases one permit (`up`).
    pub fn up(&self) {
        let mut count = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *count += 1;
        drop(count);
        self.cond.notify_one();
    }
}

/// Userspace mutex with the same method surface as
/// [`simkernel::sync::KMutex`], backed by [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct KMutex<T>(std::sync::Mutex<T>);

impl<T> KMutex<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        KMutex(std::sync::Mutex::new(value))
    }

    /// Locks, blocking until the lock is available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Userspace reader/writer lock with the same method surface as
/// [`simkernel::sync::KRwLock`], backed by [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct KRwLock<T>(std::sync::RwLock<T>);

impl<T> KRwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        KRwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared (read) lock (`down_read`).
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive (write) lock (`down_write`).
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::dev::RamDisk;

    fn user_sb(model: CostModel) -> (SuperBlock, Arc<CostCounters>) {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096, 32));
        let disk = Arc::new(UserDisk::new(dev, model, 16));
        let counters = disk.counters();
        (userspace_superblock(disk, "userdisk"), counters)
    }

    #[test]
    fn userspace_superblock_reads_and_writes() {
        let (sb, _) = user_sb(CostModel::zero());
        let mut bh = sb.bread(4).unwrap();
        bh.data_mut()[0] = 0x42;
        bh.write().unwrap();
        drop(bh);
        let bh = sb.bread(4).unwrap();
        assert_eq!(bh.data()[0], 0x42);
    }

    #[test]
    fn crossings_are_charged_per_device_access_not_per_cache_hit() {
        let (sb, counters) = user_sb(CostModel::zero());
        drop(sb.bread(1).unwrap()); // miss -> crossing
        drop(sb.bread(1).unwrap()); // hit  -> no crossing
        drop(sb.bread(2).unwrap()); // miss -> crossing
        assert_eq!(counters.snapshot().crossings, 2);
        let mut bh = sb.bread(1).unwrap();
        bh.write().unwrap(); // pwrite -> crossing
        assert_eq!(counters.snapshot().crossings, 3);
    }

    #[test]
    fn sync_all_is_whole_file_sync_and_scales_with_pending_writes() {
        let model = CostModel {
            whole_file_sync_base_ns: 1_000,
            whole_file_sync_per_block_ns: 100,
            inject_delays: false,
            ..CostModel::zero()
        };
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096, 32));
        let disk = Arc::new(UserDisk::new(dev, model, 16));
        let counters = disk.counters();
        let sb = userspace_superblock(Arc::clone(&disk) as Arc<dyn BlockIo>, "userdisk");
        for i in 0..5 {
            let mut bh = sb.bread_zeroed(i).unwrap();
            bh.data_mut()[0] = i as u8;
            bh.write().unwrap();
        }
        assert_eq!(disk.pending_blocks(), 5);
        sb.sync_all().unwrap();
        assert_eq!(disk.pending_blocks(), 0);
        let snap = counters.snapshot();
        assert_eq!(snap.whole_file_syncs, 1);
        assert_eq!(snap.total_ns, 1_000 + 5 * 100);
    }
}
