//! BentoFS — the VFS interposition layer (paper §4.3, §5.2).
//!
//! BentoFS sits between the kernel VFS layer and the Bento file system.  It
//! owns the things a VFS file system would otherwise handle itself:
//!
//! * translating VFS operations into [file operations](crate::fileops) calls
//!   (with the borrowed [`SuperBlock`] capability attached);
//! * the writeback path: dirty page runs arriving from the page cache are
//!   assembled into single large `write` calls (the `writepages` behaviour
//!   BentoFS inherits from the FUSE kernel module — the source of Bento's
//!   edge over the hand-written VFS baseline on large writes and untar);
//! * mounting/registration ([`BentoFsType`], [`register_bento_fs`]);
//! * **online upgrade** ([`BentoFs::upgrade`]): swapping in a new file
//!   system implementation while the mount stays live (paper §4.8).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard};

use simkernel::dev::BlockDevice;
use simkernel::error::{Errno, KernelError, KernelResult};
use simkernel::vfs::{
    DirEntry, FileMode, FilesystemType, InodeAttr, MountOptions, OpenFlags, SetAttr, StatFs, Vfs,
    VfsFs, PAGE_SIZE,
};

use crate::bentoks::{KernelBlockIo, SuperBlock};
use crate::fileops::{FileSystem, Request};
use crate::upgrade::UpgradeReport;

/// Default number of blocks in the per-mount buffer cache (16 MiB of 4 KiB
/// blocks), matching a typical kernel buffer cache footprint for a small
/// file system.
pub const DEFAULT_BUFFER_CACHE_BLOCKS: usize = 4096;

/// A mounted Bento file system: the object registered with the VFS.
///
/// `BentoFs` implements [`VfsFs`] by forwarding every operation to the
/// currently installed [`FileSystem`] implementation.  The implementation is
/// held behind a read/write lock: ordinary operations take the read side, so
/// they proceed concurrently; [`BentoFs::upgrade`] takes the write side,
/// which quiesces the file system for the duration of the swap (applications
/// only observe a short delay, never an unmount).
pub struct BentoFs {
    name: String,
    sb: SuperBlock,
    fs: RwLock<Box<dyn FileSystem>>,
    generation: AtomicU64,
    ops: AtomicU64,
    /// Operations currently parked in [`BentoFs::read_fs`] behind an
    /// in-flight upgrade — the upgrade's quiesce barrier occupancy.
    blocked_readers: AtomicU64,
}

impl std::fmt::Debug for BentoFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BentoFs")
            .field("name", &self.name)
            .field("generation", &self.generation.load(Ordering::Relaxed))
            .field("ops", &self.ops.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl BentoFs {
    /// Mounts `fs` over `device` and returns the framework wrapper.
    ///
    /// This calls [`FileSystem::init`]; most callers go through
    /// [`BentoFsType`] / the VFS mount path instead, but tests and the
    /// online-upgrade example use this to keep a concretely typed handle.
    ///
    /// # Errors
    ///
    /// Propagates `init` failures (the mount is aborted).
    pub fn mount(
        name: &str,
        device: Arc<dyn BlockDevice>,
        cache_blocks: usize,
        fs: Box<dyn FileSystem>,
    ) -> KernelResult<Arc<BentoFs>> {
        Self::mount_sharded(name, device, cache_blocks, 0, fs)
    }

    /// Like [`BentoFs::mount`] with an explicit buffer-cache shard count
    /// (`0` = default).
    ///
    /// # Errors
    ///
    /// Propagates `init` failures (the mount is aborted).
    pub fn mount_sharded(
        name: &str,
        device: Arc<dyn BlockDevice>,
        cache_blocks: usize,
        cache_shards: usize,
        fs: Box<dyn FileSystem>,
    ) -> KernelResult<Arc<BentoFs>> {
        let io = Arc::new(KernelBlockIo::with_shards(device, cache_blocks, cache_shards));
        let sb = SuperBlock::from_provider(io, name);
        fs.init(&Request::kernel(), &sb)?;
        Ok(Arc::new(BentoFs {
            name: name.to_string(),
            sb,
            fs: RwLock::new(fs),
            generation: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            blocked_readers: AtomicU64::new(0),
        }))
    }

    /// The registered name of this mount.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The upgrade generation: 0 until the first successful
    /// [`BentoFs::upgrade`], then incremented on each one.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Total file operations dispatched through this mount.
    pub fn operations_dispatched(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// The superblock capability (for diagnostics and tests).
    pub fn superblock(&self) -> &SuperBlock {
        &self.sb
    }

    /// Replaces the running file system implementation with `new_fs`
    /// without unmounting (paper §4.8).
    ///
    /// The upgrade waits for in-flight operations to drain (the read/write
    /// lock), asks the old instance for its transferable state, installs the
    /// new instance, and hands it the state.  If the old instance does not
    /// implement state transfer, BentoFS falls back to flushing it
    /// (`sync_fs`) and freshly initializing the new instance from disk.
    ///
    /// Open files remain open: inode numbers and file handles are
    /// file-system-defined and must remain meaningful across versions (the
    /// xv6 implementations use the inode number itself, so this holds).
    ///
    /// # Errors
    ///
    /// If state extraction, restoration, or re-initialization fails the old
    /// implementation is left in place and the error is returned.
    pub fn upgrade(&self, new_fs: Box<dyn FileSystem>) -> KernelResult<UpgradeReport> {
        let req = Request::kernel();
        // The application-visible pause: waiting out in-flight operations
        // (acquiring the write lock) plus the state transfer itself, ending
        // when the new instance is installed.
        let pause_started = std::time::Instant::now();
        let mut guard = self.fs.write();
        // Cooperative quiesce barrier.  On a single-CPU host the upgrade
        // thread can otherwise run the entire state transfer without being
        // preempted, so concurrent operations never even reach the lock and
        // the pause is invisible to them.  With the write side held, wait
        // until a concurrent caller parks in `read_fs()`, then briefly
        // longer so the remaining runnable workers reach the barrier too,
        // bounded by a small deadline so an idle mount upgrades without
        // traffic to wait for.  Short sleeps, not `yield_now`: CFS's
        // `sched_yield` often leaves the yielder running, while a sleep
        // reliably hands the CPU to the workers.  Parked callers charge
        // the wait to their trace spans as commit-wait, which is what
        // makes the pause observable to the health monitor's phase-stall
        // detector.
        let grace_deadline = pause_started + std::time::Duration::from_millis(3);
        loop {
            let waiters = self.blocked_readers.load(Ordering::Relaxed);
            if waiters > 0 {
                // Settle: keep waiting while the barrier is still filling,
                // so every runnable worker parks, not just the first.
                let mut last = waiters;
                let mut stable = 0u32;
                while stable < 3 && std::time::Instant::now() < grace_deadline {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    let now_waiting = self.blocked_readers.load(Ordering::Relaxed);
                    if now_waiting > last {
                        last = now_waiting;
                        stable = 0;
                    } else {
                        stable += 1;
                    }
                }
                break;
            }
            if std::time::Instant::now() >= grace_deadline {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(20));
        }
        let mut report = match guard.extract_state(&req, &self.sb) {
            Ok(state) => {
                let entries = state.len();
                new_fs.restore_state(&req, &self.sb, state)?;
                UpgradeReport {
                    generation: self.generation.load(Ordering::Relaxed) + 1,
                    transferred_entries: entries,
                    state_transfer: true,
                    pause_ns: 0,
                }
            }
            Err(e) if e.errno() == Errno::NoSys => {
                guard.sync_fs(&req, &self.sb)?;
                new_fs.init(&req, &self.sb)?;
                UpgradeReport {
                    generation: self.generation.load(Ordering::Relaxed) + 1,
                    transferred_entries: 0,
                    state_transfer: false,
                    pause_ns: 0,
                }
            }
            Err(e) => return Err(e),
        };
        *guard = new_fs;
        self.generation.fetch_add(1, Ordering::Relaxed);
        report.pause_ns = pause_started.elapsed().as_nanos() as u64;
        Ok(report)
    }

    fn track(&self) -> Request {
        self.ops.fetch_add(1, Ordering::Relaxed);
        Request::kernel()
    }

    /// Takes the read side of the implementation lock.  Uncontended — the
    /// overwhelmingly common case — this is a single `try_read`.  When an
    /// [`BentoFs::upgrade`] holds (or is waiting for) the write side, the
    /// blocked acquisition is attributed to the caller's active trace span
    /// as commit-wait: the upgrade quiesce is a whole-filesystem
    /// drain/flush, so the pause shows up in a latency window's phase
    /// breakdown instead of as unattributed "other" time.
    fn read_fs(&self) -> RwLockReadGuard<'_, Box<dyn FileSystem>> {
        if let Some(guard) = self.fs.try_read() {
            return guard;
        }
        let _wait = simkernel::trace::phase(simkernel::trace::Phase::CommitWait);
        self.blocked_readers.fetch_add(1, Ordering::Relaxed);
        let guard = self.fs.read();
        self.blocked_readers.fetch_sub(1, Ordering::Relaxed);
        guard
    }
}

impl VfsFs for BentoFs {
    fn fs_name(&self) -> &str {
        &self.name
    }

    fn root_ino(&self) -> u64 {
        1
    }

    fn lookup(&self, dir: u64, name: &str) -> KernelResult<InodeAttr> {
        let req = self.track();
        self.read_fs().lookup(&req, &self.sb, dir, name)
    }

    fn getattr(&self, ino: u64) -> KernelResult<InodeAttr> {
        let req = self.track();
        self.read_fs().getattr(&req, &self.sb, ino)
    }

    fn setattr(&self, ino: u64, set: &SetAttr) -> KernelResult<InodeAttr> {
        let req = self.track();
        self.read_fs().setattr(&req, &self.sb, ino, set)
    }

    fn create(&self, dir: u64, name: &str, mode: FileMode) -> KernelResult<InodeAttr> {
        let req = self.track();
        let fs = self.read_fs();
        let reply = fs.create(&req, &self.sb, dir, name, mode, OpenFlags::RDWR)?;
        fs.release(&req, &self.sb, reply.attr.ino, reply.fh)?;
        Ok(reply.attr)
    }

    fn mkdir(&self, dir: u64, name: &str, mode: FileMode) -> KernelResult<InodeAttr> {
        let req = self.track();
        self.read_fs().mkdir(&req, &self.sb, dir, name, mode)
    }

    fn unlink(&self, dir: u64, name: &str) -> KernelResult<()> {
        let req = self.track();
        self.read_fs().unlink(&req, &self.sb, dir, name)
    }

    fn rmdir(&self, dir: u64, name: &str) -> KernelResult<()> {
        let req = self.track();
        self.read_fs().rmdir(&req, &self.sb, dir, name)
    }

    fn rename(&self, olddir: u64, oldname: &str, newdir: u64, newname: &str) -> KernelResult<()> {
        let req = self.track();
        self.read_fs().rename(&req, &self.sb, olddir, oldname, newdir, newname)
    }

    fn link(&self, ino: u64, newdir: u64, newname: &str) -> KernelResult<InodeAttr> {
        let req = self.track();
        self.read_fs().link(&req, &self.sb, ino, newdir, newname)
    }

    fn open(&self, ino: u64, flags: OpenFlags) -> KernelResult<u64> {
        let req = self.track();
        self.read_fs().open(&req, &self.sb, ino, flags)
    }

    fn release(&self, ino: u64, fh: u64) -> KernelResult<()> {
        let req = self.track();
        self.read_fs().release(&req, &self.sb, ino, fh)
    }

    fn readdir(&self, ino: u64) -> KernelResult<Vec<DirEntry>> {
        let req = self.track();
        let fs = self.read_fs();
        let fh = fs.opendir(&req, &self.sb, ino, OpenFlags::RDONLY)?;
        let entries = fs.readdir(&req, &self.sb, ino, fh);
        fs.releasedir(&req, &self.sb, ino, fh)?;
        entries
    }

    fn read_page(&self, ino: u64, page_index: u64, buf: &mut [u8]) -> KernelResult<usize> {
        let req = self.track();
        let data = self.read_fs().read(
            &req,
            &self.sb,
            ino,
            0,
            page_index * PAGE_SIZE as u64,
            buf.len().min(PAGE_SIZE) as u32,
        )?;
        let n = data.len().min(buf.len());
        buf[..n].copy_from_slice(&data[..n]);
        Ok(n)
    }

    fn write_page(
        &self,
        ino: u64,
        page_index: u64,
        data: &[u8],
        file_size: u64,
    ) -> KernelResult<()> {
        let req = self.track();
        let offset = page_index * PAGE_SIZE as u64;
        if offset >= file_size {
            return Ok(());
        }
        let valid = data.len().min((file_size - offset) as usize);
        let written = self.read_fs().write(&req, &self.sb, ino, 0, offset, &data[..valid])?;
        if written != valid {
            return Err(KernelError::with_context(Errno::Io, "short write during writeback"));
        }
        Ok(())
    }

    fn write_pages(
        &self,
        ino: u64,
        start_page: u64,
        pages: &[&[u8]],
        file_size: u64,
    ) -> KernelResult<()> {
        // The writepages path: assemble the contiguous dirty run into one
        // buffer and hand it to the file system as a single write, exactly
        // like the FUSE kernel module's writeback cache sends one large
        // WRITE request.  The file system turns it into as few log
        // transactions as its log size allows.
        let req = self.track();
        let offset = start_page * PAGE_SIZE as u64;
        if offset >= file_size {
            return Ok(());
        }
        let total: usize = pages.iter().map(|p| p.len()).sum();
        let valid = total.min((file_size - offset) as usize);
        let mut buf = Vec::with_capacity(valid);
        for page in pages {
            if buf.len() >= valid {
                break;
            }
            let take = page.len().min(valid - buf.len());
            buf.extend_from_slice(&page[..take]);
        }
        let written = self.read_fs().write(&req, &self.sb, ino, 0, offset, &buf)?;
        if written != buf.len() {
            return Err(KernelError::with_context(
                Errno::Io,
                "short write during batched writeback",
            ));
        }
        Ok(())
    }

    fn supports_writepages(&self) -> bool {
        true
    }

    fn fsync(&self, ino: u64, datasync: bool) -> KernelResult<()> {
        let req = self.track();
        self.read_fs().fsync(&req, &self.sb, ino, 0, datasync)
    }

    fn statfs(&self) -> KernelResult<StatFs> {
        let req = self.track();
        self.read_fs().statfs(&req, &self.sb)
    }

    fn sync_fs(&self) -> KernelResult<()> {
        let req = self.track();
        self.read_fs().sync_fs(&req, &self.sb)
    }

    fn write_path_stats(&self) -> Option<simkernel::vfs::WritePathStats> {
        let mut stats = self.read_fs().write_path_stats()?;
        // FsCore has no device handle, so the queue-depth figures are
        // filled in here where the SuperBlock is available.  They stay
        // zero on a sync (non-queued) device.
        if let Some(q) = self.sb.queued() {
            let depth = q.cost_counters().snapshot();
            stats.queue_depth_max = depth.max_inflight;
            stats.queue_depth_sum = depth.inflight_sum;
            stats.queue_depth_samples = depth.inflight_samples;
        }
        Some(stats)
    }

    fn op_stats(&self) -> Option<simkernel::vfs::FsOpStats> {
        self.read_fs().op_stats()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        // Lets holders of the VFS mount table entry recover the concrete
        // BentoFs handle — the load generator uses this to drive
        // [`BentoFs::upgrade`] against a stack mounted through the normal
        // VFS path.
        Some(self)
    }

    fn destroy(&self) -> KernelResult<()> {
        let req = Request::kernel();
        self.read_fs().destroy(&req, &self.sb)
    }
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

/// Factory for file system instances, invoked at mount (and upgrade) time.
/// It receives the mount options so implementations can expose tuning knobs
/// (e.g. xv6fs's `alloc_groups`) the way kernel file systems parse `-o`.
pub type FsFactory = dyn Fn(&MountOptions) -> Box<dyn FileSystem> + Send + Sync;

/// A mountable Bento file system type: the object registered with the VFS.
///
/// The analogue of a kernel module's `file_system_type` combined with the
/// module's init function: it knows how to produce a fresh [`FileSystem`]
/// instance for each mount.
pub struct BentoFsType {
    name: String,
    factory: Box<FsFactory>,
    cache_blocks: usize,
}

impl std::fmt::Debug for BentoFsType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BentoFsType")
            .field("name", &self.name)
            .field("cache_blocks", &self.cache_blocks)
            .finish_non_exhaustive()
    }
}

impl BentoFsType {
    /// Creates a file system type named `name` with an options-blind
    /// instance factory.
    pub fn new<F>(name: &str, factory: F) -> Self
    where
        F: Fn() -> Box<dyn FileSystem> + Send + Sync + 'static,
    {
        Self::with_options(name, move |_options| factory())
    }

    /// Creates a file system type whose factory receives the mount options
    /// (the `-o` string) so the instance can apply per-mount tuning knobs.
    pub fn with_options<F>(name: &str, factory: F) -> Self
    where
        F: Fn(&MountOptions) -> Box<dyn FileSystem> + Send + Sync + 'static,
    {
        BentoFsType {
            name: name.to_string(),
            factory: Box::new(factory),
            cache_blocks: DEFAULT_BUFFER_CACHE_BLOCKS,
        }
    }

    /// Overrides the per-mount buffer cache size (in blocks).
    #[must_use]
    pub fn with_cache_blocks(mut self, cache_blocks: usize) -> Self {
        self.cache_blocks = cache_blocks;
        self
    }

    /// Mounts an instance over `device` with default options, returning the
    /// concretely typed wrapper (useful when the caller needs
    /// [`BentoFs::upgrade`]).
    ///
    /// # Errors
    ///
    /// Propagates `init` failures.
    pub fn mount_on(&self, device: Arc<dyn BlockDevice>) -> KernelResult<Arc<BentoFs>> {
        self.mount_on_with(device, &MountOptions::default())
    }

    /// Like [`BentoFsType::mount_on`] with explicit mount options.  The
    /// `cache_shards` option tunes the per-mount buffer cache's shard count;
    /// everything else is handed to the factory.
    ///
    /// # Errors
    ///
    /// Propagates `init` failures.
    pub fn mount_on_with(
        &self,
        device: Arc<dyn BlockDevice>,
        options: &MountOptions,
    ) -> KernelResult<Arc<BentoFs>> {
        let cache_shards =
            options.get("cache_shards").and_then(|v| v.parse::<usize>().ok()).unwrap_or_default();
        BentoFs::mount_sharded(
            &self.name,
            device,
            self.cache_blocks,
            cache_shards,
            (self.factory)(options),
        )
    }
}

impl FilesystemType for BentoFsType {
    fn fs_name(&self) -> &str {
        &self.name
    }

    fn mount(
        &self,
        device: Arc<dyn BlockDevice>,
        options: &MountOptions,
    ) -> KernelResult<Arc<dyn VfsFs>> {
        Ok(self.mount_on_with(device, options)? as Arc<dyn VfsFs>)
    }
}

/// Registers a Bento file system type with the kernel VFS, like inserting
/// the kernel module and letting it call `register_filesystem`.
///
/// # Errors
///
/// Returns [`Errno::Exist`] if a type with the same name is already
/// registered.
pub fn register_bento_fs(vfs: &Vfs, fstype: Arc<BentoFsType>) -> KernelResult<()> {
    vfs.register_filesystem(fstype)
}

/// Unregisters a previously registered Bento file system type.
///
/// # Errors
///
/// Returns [`Errno::Busy`] if a mount still uses it and [`Errno::NoEnt`] if
/// it was never registered.
pub fn unregister_bento_fs(vfs: &Vfs, name: &str) -> KernelResult<()> {
    vfs.unregister_filesystem(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fileops::CreateReply;
    use crate::upgrade::StateBundle;
    use parking_lot::Mutex;
    use simkernel::dev::RamDisk;
    use simkernel::vfs::FileType;
    use std::collections::HashMap;

    /// A small in-memory Bento file system used to exercise BentoFS itself
    /// (the real xv6 implementation lives in the `xv6fs` crate).
    #[derive(Default)]
    struct TestFs {
        files: Mutex<HashMap<u64, (String, Vec<u8>)>>,
        next_ino: Mutex<u64>,
        version: u32,
    }

    impl TestFs {
        fn with_version(version: u32) -> Self {
            TestFs { files: Mutex::new(HashMap::new()), next_ino: Mutex::new(2), version }
        }
    }

    impl FileSystem for TestFs {
        fn name(&self) -> &'static str {
            "testfs"
        }

        fn getattr(&self, _req: &Request, _sb: &SuperBlock, ino: u64) -> KernelResult<InodeAttr> {
            if ino == 1 {
                return Ok(InodeAttr::directory(1));
            }
            let files = self.files.lock();
            let (_, data) = files.get(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
            Ok(InodeAttr::regular(ino, data.len() as u64))
        }

        fn lookup(
            &self,
            _req: &Request,
            _sb: &SuperBlock,
            _parent: u64,
            name: &str,
        ) -> KernelResult<InodeAttr> {
            let files = self.files.lock();
            for (ino, (fname, data)) in files.iter() {
                if fname == name {
                    return Ok(InodeAttr::regular(*ino, data.len() as u64));
                }
            }
            Err(KernelError::new(Errno::NoEnt))
        }

        fn create(
            &self,
            _req: &Request,
            _sb: &SuperBlock,
            _parent: u64,
            name: &str,
            _mode: FileMode,
            _flags: OpenFlags,
        ) -> KernelResult<CreateReply> {
            let mut next = self.next_ino.lock();
            let ino = *next;
            *next += 1;
            self.files.lock().insert(ino, (name.to_string(), Vec::new()));
            Ok(CreateReply { attr: InodeAttr::regular(ino, 0), fh: ino })
        }

        fn open(
            &self,
            _req: &Request,
            _sb: &SuperBlock,
            ino: u64,
            _flags: OpenFlags,
        ) -> KernelResult<u64> {
            Ok(ino)
        }

        fn read(
            &self,
            _req: &Request,
            _sb: &SuperBlock,
            ino: u64,
            _fh: u64,
            offset: u64,
            size: u32,
        ) -> KernelResult<Vec<u8>> {
            let files = self.files.lock();
            let (_, data) = files.get(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
            let start = (offset as usize).min(data.len());
            let end = (start + size as usize).min(data.len());
            Ok(data[start..end].to_vec())
        }

        fn write(
            &self,
            _req: &Request,
            _sb: &SuperBlock,
            ino: u64,
            _fh: u64,
            offset: u64,
            data: &[u8],
        ) -> KernelResult<usize> {
            let mut files = self.files.lock();
            let (_, file) = files.get_mut(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
            let end = offset as usize + data.len();
            if file.len() < end {
                file.resize(end, 0);
            }
            file[offset as usize..end].copy_from_slice(data);
            Ok(data.len())
        }

        fn readdir(
            &self,
            _req: &Request,
            _sb: &SuperBlock,
            _ino: u64,
            _fh: u64,
        ) -> KernelResult<Vec<DirEntry>> {
            Ok(self
                .files
                .lock()
                .iter()
                .map(|(ino, (name, _))| DirEntry {
                    ino: *ino,
                    name: name.clone(),
                    kind: FileType::Regular,
                })
                .collect())
        }

        fn fsync(
            &self,
            _req: &Request,
            _sb: &SuperBlock,
            _ino: u64,
            _fh: u64,
            _ds: bool,
        ) -> KernelResult<()> {
            Ok(())
        }

        fn statfs(&self, _req: &Request, sb: &SuperBlock) -> KernelResult<StatFs> {
            Ok(StatFs {
                total_blocks: sb.nblocks(),
                block_size: sb.block_size() as u32,
                ..StatFs::default()
            })
        }

        fn extract_state(&self, _req: &Request, _sb: &SuperBlock) -> KernelResult<StateBundle> {
            if self.version == 0 {
                // Version 0 predates state transfer: force the fallback path.
                return Err(KernelError::new(Errno::NoSys));
            }
            let mut bundle = StateBundle::new();
            let files: Vec<(u64, String, Vec<u8>)> = self
                .files
                .lock()
                .iter()
                .map(|(ino, (name, data))| (*ino, name.clone(), data.clone()))
                .collect();
            bundle.put("files", &files)?;
            bundle.put("next_ino", &*self.next_ino.lock())?;
            Ok(bundle)
        }

        fn restore_state(
            &self,
            _req: &Request,
            _sb: &SuperBlock,
            state: StateBundle,
        ) -> KernelResult<()> {
            let files: Vec<(u64, String, Vec<u8>)> = state.get("files")?;
            let next: u64 = state.get("next_ino")?;
            let mut map = self.files.lock();
            for (ino, name, data) in files {
                map.insert(ino, (name, data));
            }
            *self.next_ino.lock() = next;
            Ok(())
        }
    }

    fn mounted() -> Arc<BentoFs> {
        BentoFs::mount(
            "testfs",
            Arc::new(RamDisk::new(4096, 64)),
            16,
            Box::new(TestFs::with_version(1)),
        )
        .unwrap()
    }

    #[test]
    fn vfs_operations_route_through_fileops() {
        let fs = mounted();
        let attr = fs.create(1, "hello.txt", FileMode::regular()).unwrap();
        assert_eq!(fs.lookup(1, "hello.txt").unwrap().ino, attr.ino);
        let page = vec![0xC3u8; PAGE_SIZE];
        fs.write_page(attr.ino, 0, &page, 100).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        let n = fs.read_page(attr.ino, 0, &mut buf).unwrap();
        assert_eq!(n, 100, "write_page must clamp to the file size");
        assert!(buf[..100].iter().all(|&b| b == 0xC3));
        assert!(fs.operations_dispatched() > 0);
    }

    #[test]
    fn write_pages_batches_into_single_write() {
        let fs = mounted();
        let attr = fs.create(1, "big", FileMode::regular()).unwrap();
        let pages: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; PAGE_SIZE]).collect();
        let refs: Vec<&[u8]> = pages.iter().map(|p| p.as_slice()).collect();
        fs.write_pages(attr.ino, 0, &refs, (PAGE_SIZE * 4) as u64).unwrap();
        assert_eq!(fs.getattr(attr.ino).unwrap().size, (PAGE_SIZE * 4) as u64);
        let mut buf = vec![0u8; PAGE_SIZE];
        fs.read_page(attr.ino, 3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 4));
    }

    #[test]
    fn upgrade_with_state_transfer_preserves_files() {
        let fs = mounted();
        let attr = fs.create(1, "survivor", FileMode::regular()).unwrap();
        fs.write_page(attr.ino, 0, &vec![9u8; PAGE_SIZE], 10).unwrap();
        let report = fs.upgrade(Box::new(TestFs::with_version(2))).unwrap();
        assert!(report.state_transfer);
        assert_eq!(report.generation, 1);
        assert_eq!(fs.generation(), 1);
        // File and contents survived the swap.
        let found = fs.lookup(1, "survivor").unwrap();
        assert_eq!(found.ino, attr.ino);
        let mut buf = vec![0u8; PAGE_SIZE];
        let n = fs.read_page(found.ino, 0, &mut buf).unwrap();
        assert_eq!(n, 10);
        assert!(buf[..10].iter().all(|&b| b == 9));
    }

    #[test]
    fn upgrade_falls_back_without_state_transfer() {
        let fs = BentoFs::mount(
            "testfs",
            Arc::new(RamDisk::new(4096, 64)),
            16,
            Box::new(TestFs::with_version(0)),
        )
        .unwrap();
        fs.create(1, "lost", FileMode::regular()).unwrap();
        let report = fs.upgrade(Box::new(TestFs::with_version(2))).unwrap();
        assert!(!report.state_transfer);
        assert_eq!(report.transferred_entries, 0);
        // TestFs keeps everything in memory only, so the fallback (reinit
        // from "disk") legitimately loses the in-memory file.  A real file
        // system (xv6fs) persists to the device and would still see it.
        assert_eq!(fs.lookup(1, "lost").unwrap_err().errno(), Errno::NoEnt);
    }

    #[test]
    fn fstype_registers_and_mounts_via_vfs() {
        let vfs = Vfs::default();
        let fstype = Arc::new(BentoFsType::new("testfs", || Box::new(TestFs::with_version(1))));
        register_bento_fs(&vfs, Arc::clone(&fstype)).unwrap();
        vfs.mount("testfs", Arc::new(RamDisk::new(4096, 64)), "/", &MountOptions::default())
            .unwrap();
        let fd = vfs.open("/via_vfs", OpenFlags::WRONLY.with(OpenFlags::CREAT)).unwrap();
        vfs.write(fd, b"abc").unwrap();
        vfs.fsync(fd).unwrap();
        vfs.close(fd).unwrap();
        assert_eq!(vfs.stat("/via_vfs").unwrap().size, 3);
        assert_eq!(
            unregister_bento_fs(&vfs, "testfs").unwrap_err().errno(),
            Errno::Busy,
            "cannot unregister while mounted"
        );
        vfs.unmount("/").unwrap();
        unregister_bento_fs(&vfs, "testfs").unwrap();
    }

    #[test]
    fn upgrade_under_concurrent_load() {
        use std::thread;
        let fs = mounted();
        let attr = fs.create(1, "contended", FileMode::regular()).unwrap();
        let fs2 = Arc::clone(&fs);
        let writer = thread::spawn(move || {
            for i in 0..200u64 {
                let page = vec![(i % 256) as u8; PAGE_SIZE];
                fs2.write_page(attr.ino, 0, &page, PAGE_SIZE as u64).unwrap();
            }
        });
        for _ in 0..5 {
            let report = fs.upgrade(Box::new(TestFs::with_version(3))).unwrap();
            // The paper's §4.8 headline: upgrading under load pauses
            // applications for milliseconds, not an unmount window.  The
            // pause here is draining in-flight operations plus the state
            // transfer; a generous 1 s bound catches regressions (e.g. an
            // upgrade path that starts blocking on the whole workload)
            // without flaking on slow CI machines.
            assert!(report.pause_ns > 0, "pause must be measured");
            assert!(
                report.pause_ns < 1_000_000_000,
                "upgrade paused {} ms under load",
                report.pause_ns / 1_000_000
            );
        }
        writer.join().unwrap();
        assert_eq!(fs.generation(), 5);
        assert_eq!(fs.getattr(attr.ino).unwrap().size, PAGE_SIZE as u64);
    }
}
