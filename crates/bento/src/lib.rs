//! # Bento — high velocity kernel file systems in safe Rust
//!
//! This crate is the core contribution of *High Velocity Kernel File Systems
//! with Bento* (Miller et al., FAST '21), rebuilt on top of the [`simkernel`]
//! substrate.  Bento lets a file system be written entirely in safe Rust and
//! run "in the kernel" by interposing two thin layers:
//!
//! * **BentoFS** ([`bentofs`]) sits between the kernel's VFS layer and the
//!   file system.  It translates VFS calls into the [file operations
//!   API](fileops) — a Rust rendering of the FUSE low-level interface,
//!   augmented with a reference to the [`SuperBlock`]
//!   capability needed for block I/O (paper §4.3).  Because BentoFS inherits
//!   the FUSE kernel module's writeback path, it batches dirty pages into
//!   single large writes (`writepages`), which is where its small performance
//!   edge over the hand-written VFS baseline comes from (§6.5.2).
//! * **BentoKS** ([`bentoks`]) sits between the file system and kernel
//!   services.  Raw kernel interfaces (the buffer cache's
//!   `sb_bread`/`brelse`, the `super_block` pointer) are wrapped in
//!   unforgeable *capability types* and RAII guards so the file system never
//!   touches a raw pointer (§4.5–4.7).
//!
//! Two further paper features are implemented:
//!
//! * **Online upgrade** (§4.8, [`upgrade`] + [`bentofs::BentoFs::upgrade`]):
//!   a running file system can be replaced by a new implementation without
//!   unmounting; in-memory state is carried across through a
//!   [`StateBundle`].
//! * **Userspace debugging** (§4.9, [`userspace`]): the same file system code
//!   runs against userspace implementations of the same APIs (used by the
//!   FUSE baseline and by `examples/userspace_debug.rs`).
//!
//! ## The ownership model
//!
//! The interface follows the paper's "ownership model" (§4.4): ownership of
//! objects never crosses the interface; the caller lends references for the
//! duration of a call.  Concretely, every file-operations method borrows the
//! [`Request`] context and the
//! [`SuperBlock`], and block buffers are only reachable
//! through the [`BufferHead`] guard, whose drop releases
//! the buffer (`brelse`).
//!
//! ## Example
//!
//! ```
//! use bento::fileops::{FileSystem, Request};
//! use bento::bentoks::SuperBlock;
//! use bento::bentofs::BentoFsType;
//! use simkernel::error::KernelResult;
//! use simkernel::vfs::{FilesystemType, StatFs};
//!
//! /// A do-nothing file system: only statfs is implemented.
//! struct NullFs;
//!
//! impl FileSystem for NullFs {
//!     fn name(&self) -> &'static str { "nullfs" }
//!     fn statfs(&self, _req: &Request, sb: &SuperBlock) -> KernelResult<StatFs> {
//!         Ok(StatFs { total_blocks: sb.nblocks(), ..StatFs::default() })
//!     }
//! }
//!
//! let fstype = BentoFsType::new("nullfs", || Box::new(NullFs));
//! assert_eq!(fstype.fs_name(), "nullfs");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bentofs;
pub mod bentoks;
pub mod fileops;
pub mod kernel;
mod sync_parity;
pub mod upgrade;
pub mod userspace;

pub use bentofs::{register_bento_fs, unregister_bento_fs, BentoFs, BentoFsType};
pub use bentoks::{BlockBuffer, BlockIo, BufferHead, SuperBlock};
pub use fileops::{FileSystem, Request};
pub use upgrade::StateBundle;
