//! Compile-time parity checks between the kernel and userspace
//! synchronization APIs (paper §4.9).
//!
//! The module docs of [`simkernel::sync`] promise that `bento::kernel`
//! re-exports the kernel-flavoured types while [`crate::userspace`]
//! provides standard-library equivalents with the *same API*, so that a
//! file system written against one face compiles against the other.  That
//! promise used to be prose only; these checks make it structural: the
//! macro below instantiates one generic exercise of the full method
//! surface (`down`/`try_down`/`up`, `lock`/`try_lock`/`into_inner`,
//! `read`/`write`/`into_inner`) against **both** families, so removing or
//! renaming a method on either side is a compile error here, not a silent
//! divergence found when porting a file system.

/// Asserts (at compile time) that a semaphore/mutex/rwlock family exposes
/// the shared kernel/userspace method surface.
macro_rules! assert_sync_api {
    ($family:ident, $sem:ty, $mutex:ty, $rwlock:ty) => {
        // Never called — its body only needs to typecheck.
        #[allow(dead_code)]
        fn $family(sem: $sem, mutex: $mutex, rwlock: $rwlock) {
            sem.down();
            let _: bool = sem.try_down();
            sem.up();
            {
                let guard = mutex.lock();
                let _: &u64 = &*guard;
            }
            {
                if let Some(guard) = mutex.try_lock() {
                    let _: &u64 = &*guard;
                }
            }
            let _: u64 = mutex.into_inner();
            {
                let read = rwlock.read();
                let _: &u64 = &*read;
            }
            {
                let mut write = rwlock.write();
                *write += 1;
            }
            let _: u64 = rwlock.into_inner();
        }
    };
}

assert_sync_api!(
    kernel_face,
    crate::kernel::Semaphore,
    crate::kernel::KMutex<u64>,
    crate::kernel::KRwLock<u64>
);

assert_sync_api!(
    userspace_face,
    crate::userspace::Semaphore,
    crate::userspace::KMutex<u64>,
    crate::userspace::KRwLock<u64>
);

#[cfg(test)]
mod tests {
    /// The same generic driver runs against either face — the runtime
    /// counterpart of the compile-time checks above.
    macro_rules! exercise {
        ($sem:expr, $mutex:expr, $rwlock:expr) => {{
            let sem = $sem;
            assert!(sem.try_down(), "one initial permit");
            assert!(!sem.try_down(), "no second permit");
            sem.up();
            sem.down();
            sem.up();

            let mutex = $mutex;
            *mutex.lock() += 41;
            assert_eq!(mutex.into_inner(), 42u64);

            let rwlock = $rwlock;
            {
                let a = rwlock.read();
                let b = rwlock.read();
                assert_eq!(*a + *b, 14);
            }
            *rwlock.write() += 3;
            assert_eq!(rwlock.into_inner(), 10u64);
        }};
    }

    #[test]
    fn kernel_face_behaves() {
        exercise!(
            crate::kernel::Semaphore::new(1),
            crate::kernel::KMutex::new(1u64),
            crate::kernel::KRwLock::new(7u64)
        );
    }

    #[test]
    fn userspace_face_behaves() {
        exercise!(
            crate::userspace::Semaphore::new(1),
            crate::userspace::KMutex::new(1u64),
            crate::userspace::KRwLock::new(7u64)
        );
    }
}
