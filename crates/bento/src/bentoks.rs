//! BentoKS — the kernel services API (paper §4.5–§4.7).
//!
//! A file system needs kernel services, primarily block I/O through the
//! buffer cache.  The raw kernel interfaces (`sb_bread` takes a
//! `super_block *` and returns a `buffer_head *`; forgetting `brelse` leaks
//! the buffer) cannot be used from safe Rust.  BentoKS therefore exposes:
//!
//! * [`SuperBlock`] — a *capability type* (§4.6): an unforgeable handle that
//!   proves the file system was given access to a valid superblock by the
//!   framework.  File-system code cannot construct one; it receives a
//!   reference in every file-operations call and can use it for block I/O.
//! * [`BufferHead`] — a safe RAII wrapper (§4.7) around a locked block
//!   buffer.  `data()`/`data_mut()` expose the block contents as a sized
//!   slice, `write()` is `bwrite`, and dropping the guard is `brelse`, so
//!   buffer leaks become as hard as memory leaks in Rust.
//! * [`BlockIo`]/[`BlockBuffer`] — the provider traits behind those types.
//!   The kernel provider ([`KernelBlockIo`]) is backed by the simulated
//!   kernel's buffer cache and block device; the userspace provider
//!   ([`crate::userspace::UserDisk`]) is backed by an `O_DIRECT`-style disk
//!   file.  Because the file system only ever sees [`SuperBlock`] and
//!   [`BufferHead`], the identical file-system code runs in both
//!   environments (§4.9).

use std::sync::Arc;

use simkernel::buffer::{BufferCache, BufferGuard};
use simkernel::dev::BlockDevice;
use simkernel::error::KernelResult;
use simkernel::queue::QueuedBlockDevice;

/// Provider of block I/O for a mounted file system.
///
/// Implementations: [`KernelBlockIo`] (kernel buffer cache) and
/// [`crate::userspace::UserDisk`] (userspace `O_DIRECT` disk file).
pub trait BlockIo: Send + Sync {
    /// Block size in bytes.
    fn block_size(&self) -> usize;

    /// Number of addressable blocks.
    fn nblocks(&self) -> u64;

    /// Reads block `blockno` and returns an exclusive buffer.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    fn bread(&self, blockno: u64) -> KernelResult<Box<dyn BlockBuffer>>;

    /// Returns an exclusive, zero-filled buffer for `blockno` without
    /// reading the device (for blocks that will be fully overwritten).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    fn bread_zeroed(&self, blockno: u64) -> KernelResult<Box<dyn BlockBuffer>>;

    /// Makes every previously written block durable (an ordering barrier).
    ///
    /// In the kernel this is a device cache FLUSH; from userspace it is an
    /// `fsync` of the whole backing disk file — the cost asymmetry the paper
    /// measures in §6.4.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    fn sync_all(&self) -> KernelResult<()>;

    /// Writes `data` to `blockno` on the device *without* going through the
    /// buffer cache.  The pipelined log uses this to install a committed
    /// snapshot of a block whose cached copy has since been modified by a
    /// later, not-yet-committed transaction: the newer cached bytes stay
    /// dirty (their own group will log and install them) while the home
    /// location receives exactly the committed bytes.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    fn write_raw(&self, blockno: u64, data: &[u8]) -> KernelResult<()>;

    /// Returns the asynchronous multi-queue face of the underlying device,
    /// if it has one.  The write-ahead log uses it to batch-submit payload
    /// copies and overlap them with a previous group's installs; `None`
    /// (the default, and the userspace provider's only answer) keeps the
    /// log on the synchronous path.
    fn queued(&self) -> Option<&dyn QueuedBlockDevice> {
        None
    }
}

/// An exclusive handle to one block's contents.
///
/// Buffers are used within a single operation on the thread that obtained
/// them (like a locked `buffer_head`), so the trait does not require `Send`.
pub trait BlockBuffer {
    /// The block number.
    fn blockno(&self) -> u64;

    /// Read-only view of the block contents.
    fn data(&self) -> &[u8];

    /// Mutable view of the block contents.
    fn data_mut(&mut self) -> &mut [u8];

    /// Writes the buffer to the device (`bwrite`).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    fn write(&mut self) -> KernelResult<()>;
}

// ---------------------------------------------------------------------------
// Kernel provider
// ---------------------------------------------------------------------------

/// Block I/O provider backed by the simulated kernel's buffer cache.
pub struct KernelBlockIo {
    cache: Arc<BufferCache>,
}

impl std::fmt::Debug for KernelBlockIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelBlockIo").field("cache", &self.cache).finish()
    }
}

impl KernelBlockIo {
    /// Creates a kernel block I/O provider over `device` with a buffer cache
    /// of `cache_blocks` blocks (default shard count).
    pub fn new(device: Arc<dyn BlockDevice>, cache_blocks: usize) -> Self {
        KernelBlockIo { cache: Arc::new(BufferCache::new(device, cache_blocks)) }
    }

    /// Like [`KernelBlockIo::new`] but with an explicit shard count for the
    /// buffer cache's block map (`0` = default).
    pub fn with_shards(device: Arc<dyn BlockDevice>, cache_blocks: usize, shards: usize) -> Self {
        KernelBlockIo { cache: Arc::new(BufferCache::with_shards(device, cache_blocks, shards)) }
    }

    /// The underlying buffer cache (for diagnostics).
    pub fn cache(&self) -> &Arc<BufferCache> {
        &self.cache
    }
}

struct KernelBlockBuffer {
    guard: BufferGuard,
}

impl BlockBuffer for KernelBlockBuffer {
    fn blockno(&self) -> u64 {
        self.guard.blockno()
    }

    fn data(&self) -> &[u8] {
        self.guard.data()
    }

    fn data_mut(&mut self) -> &mut [u8] {
        self.guard.data_mut()
    }

    fn write(&mut self) -> KernelResult<()> {
        self.guard.write()
    }
}

impl BlockIo for KernelBlockIo {
    fn block_size(&self) -> usize {
        self.cache.block_size()
    }

    fn nblocks(&self) -> u64 {
        self.cache.device().num_blocks()
    }

    fn bread(&self, blockno: u64) -> KernelResult<Box<dyn BlockBuffer>> {
        Ok(Box::new(KernelBlockBuffer { guard: self.cache.bread(blockno)? }))
    }

    fn bread_zeroed(&self, blockno: u64) -> KernelResult<Box<dyn BlockBuffer>> {
        Ok(Box::new(KernelBlockBuffer { guard: self.cache.getblk_zeroed(blockno)? }))
    }

    fn sync_all(&self) -> KernelResult<()> {
        self.cache.flush_device()
    }

    fn write_raw(&self, blockno: u64, data: &[u8]) -> KernelResult<()> {
        self.cache.device().write_block(blockno, data)
    }

    fn queued(&self) -> Option<&dyn QueuedBlockDevice> {
        self.cache.device().as_queued()
    }
}

// ---------------------------------------------------------------------------
// Capability types handed to the file system
// ---------------------------------------------------------------------------

/// Capability type representing the kernel `super_block` (paper §4.6).
///
/// File-system code cannot construct a `SuperBlock`; BentoFS (or the
/// userspace harness) creates one and lends it to every file-operations
/// call.  Holding a `&SuperBlock` is proof of access to a valid, mounted
/// block device.
pub struct SuperBlock {
    io: Arc<dyn BlockIo>,
    device_name: String,
}

impl std::fmt::Debug for SuperBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuperBlock")
            .field("device_name", &self.device_name)
            .field("nblocks", &self.io.nblocks())
            .field("block_size", &self.io.block_size())
            .finish_non_exhaustive()
    }
}

impl SuperBlock {
    /// Creates a superblock capability.  Crate-internal: only BentoFS and
    /// the userspace harness may mint capabilities.
    pub(crate) fn from_provider(io: Arc<dyn BlockIo>, device_name: &str) -> Self {
        SuperBlock { io, device_name: device_name.to_string() }
    }

    /// Block size of the underlying device in bytes.
    pub fn block_size(&self) -> usize {
        self.io.block_size()
    }

    /// Number of blocks on the underlying device.
    pub fn nblocks(&self) -> u64 {
        self.io.nblocks()
    }

    /// Name of the backing device (diagnostics only).
    pub fn device_name(&self) -> &str {
        &self.device_name
    }

    /// Reads block `blockno` through the buffer cache (`sb_bread`).
    ///
    /// The returned [`BufferHead`] holds the buffer exclusively; dropping it
    /// releases the buffer (`brelse`).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn bread(&self, blockno: u64) -> KernelResult<BufferHead> {
        Ok(BufferHead { inner: self.io.bread(blockno)? })
    }

    /// Returns a zero-filled buffer for a block that will be completely
    /// overwritten (`getblk` + zeroing).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn bread_zeroed(&self, blockno: u64) -> KernelResult<BufferHead> {
        Ok(BufferHead { inner: self.io.bread_zeroed(blockno)? })
    }

    /// Makes all previously written blocks durable (kernel: device FLUSH;
    /// userspace: whole-disk-file fsync).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn sync_all(&self) -> KernelResult<()> {
        self.io.sync_all()
    }

    /// Writes `data` to `blockno` bypassing the buffer cache (see
    /// [`BlockIo::write_raw`]): the log's conflict-safe install path.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn write_raw(&self, blockno: u64, data: &[u8]) -> KernelResult<()> {
        self.io.write_raw(blockno, data)
    }

    /// The asynchronous multi-queue face of the mounted device, if it has
    /// one (see [`BlockIo::queued`]).  The write-ahead log checks this at
    /// commit time to decide between synchronous writes and batch
    /// submission with overlapped completion.
    pub fn queued(&self) -> Option<&dyn QueuedBlockDevice> {
        self.io.queued()
    }
}

/// Safe wrapper around a locked kernel `buffer_head` (paper §4.7).
///
/// `data()`/`data_mut()` expose the block as a correctly sized slice, and
/// the buffer is released automatically when the `BufferHead` is dropped,
/// so "missing `brelse`" bugs (18 of the bugs in the paper's Table 1 study
/// were missing-free leaks) are impossible in safe code.
pub struct BufferHead {
    inner: Box<dyn BlockBuffer>,
}

impl std::fmt::Debug for BufferHead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferHead").field("blockno", &self.inner.blockno()).finish_non_exhaustive()
    }
}

impl BufferHead {
    /// The block number this buffer refers to.
    pub fn blockno(&self) -> u64 {
        self.inner.blockno()
    }

    /// Read-only view of the block contents.
    pub fn data(&self) -> &[u8] {
        self.inner.data()
    }

    /// Mutable view of the block contents.
    pub fn data_mut(&mut self) -> &mut [u8] {
        self.inner.data_mut()
    }

    /// Writes the buffer to the device (`bwrite`).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn write(&mut self) -> KernelResult<()> {
        self.inner.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::dev::RamDisk;

    fn kernel_sb(blocks: u64) -> SuperBlock {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096, blocks));
        SuperBlock::from_provider(Arc::new(KernelBlockIo::new(dev, 64)), "ram0")
    }

    #[test]
    fn superblock_reports_geometry() {
        let sb = kernel_sb(128);
        assert_eq!(sb.block_size(), 4096);
        assert_eq!(sb.nblocks(), 128);
        assert_eq!(sb.device_name(), "ram0");
    }

    #[test]
    fn bufferhead_read_modify_write_roundtrip() {
        let sb = kernel_sb(16);
        {
            let mut bh = sb.bread(3).unwrap();
            bh.data_mut()[0..4].copy_from_slice(b"abcd");
            bh.write().unwrap();
        }
        let bh = sb.bread(3).unwrap();
        assert_eq!(&bh.data()[0..4], b"abcd");
        assert_eq!(bh.blockno(), 3);
    }

    #[test]
    fn modifications_without_write_stay_in_cache_only() {
        let sb = kernel_sb(16);
        {
            let mut bh = sb.bread(5).unwrap();
            bh.data_mut()[0] = 0x77;
            // dropped without write(): cached, not on device
        }
        let bh = sb.bread(5).unwrap();
        assert_eq!(bh.data()[0], 0x77, "buffer cache retains modification");
    }

    #[test]
    fn bread_zeroed_gives_zero_block() {
        let sb = kernel_sb(16);
        {
            let mut bh = sb.bread(2).unwrap();
            bh.data_mut().fill(0xFF);
            bh.write().unwrap();
        }
        let bh = sb.bread_zeroed(2).unwrap();
        assert!(bh.data().iter().all(|&b| b == 0));
    }

    #[test]
    fn sync_all_issues_device_flush() {
        let dev = Arc::new(RamDisk::new(4096, 16));
        let sb = SuperBlock::from_provider(
            Arc::new(KernelBlockIo::new(Arc::clone(&dev) as Arc<dyn BlockDevice>, 16)),
            "ram0",
        );
        sb.sync_all().unwrap();
        assert_eq!(dev.stats().flushes, 1);
    }

    #[test]
    fn out_of_range_errors_propagate() {
        let sb = kernel_sb(4);
        assert!(sb.bread(100).is_err());
    }
}
