//! Online upgrade support (paper §4.8).
//!
//! Upgrading a Linux file system normally requires unmounting: every service
//! using the file system must be stopped, the module replaced, and the file
//! system remounted.  Bento instead keeps the framework (BentoFS) resident
//! and swaps the file-system implementation underneath it.  In-memory state
//! that must survive the swap — caches of on-disk structures, allocation
//! cursors, statistics, connections — is carried across in a
//! [`StateBundle`]: the old instance serializes what it wants to keep in
//! [`FileSystem::extract_state`](crate::fileops::FileSystem::extract_state)
//! and the new instance rebuilds itself from it in
//! [`FileSystem::restore_state`](crate::fileops::FileSystem::restore_state).
//!
//! The bundle is a string-keyed map of serialized values so that old and new
//! versions do not need identical Rust types — a new version can ignore keys
//! it no longer understands and supply defaults for keys that are missing.

use std::collections::BTreeMap;

use serde::de::DeserializeOwned;
use serde::Serialize;
use simkernel::error::{Errno, KernelError, KernelResult};

/// A typed, string-keyed bundle of state transferred across an online
/// upgrade.
///
/// # Example
///
/// ```
/// use bento::upgrade::StateBundle;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut bundle = StateBundle::new();
/// bundle.put("next_inode", &42u64)?;
/// bundle.put("dirty_inodes", &vec![3u64, 7, 9])?;
///
/// let next: u64 = bundle.get("next_inode")?;
/// assert_eq!(next, 42);
/// assert!(bundle.get::<u64>("missing").is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateBundle {
    entries: BTreeMap<String, String>,
}

impl StateBundle {
    /// Creates an empty bundle.
    pub fn new() -> Self {
        StateBundle::default()
    }

    /// Serializes `value` under `key`, replacing any previous value.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Inval`] if the value cannot be serialized.
    pub fn put<T: Serialize>(&mut self, key: &str, value: &T) -> KernelResult<()> {
        let encoded = serde_json::to_string(value).map_err(|_| {
            KernelError::with_context(Errno::Inval, "state bundle: serialization failed")
        })?;
        self.entries.insert(key.to_string(), encoded);
        Ok(())
    }

    /// Deserializes the value stored under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::NoEnt`] if the key is absent and [`Errno::Inval`] if
    /// the stored value cannot be decoded as `T`.
    pub fn get<T: DeserializeOwned>(&self, key: &str) -> KernelResult<T> {
        let raw = self
            .entries
            .get(key)
            .ok_or_else(|| KernelError::with_context(Errno::NoEnt, "state bundle: missing key"))?;
        serde_json::from_str(raw).map_err(|_| {
            KernelError::with_context(Errno::Inval, "state bundle: deserialization failed")
        })
    }

    /// Like [`StateBundle::get`] but returns `None` for a missing key (still
    /// an error for an undecodable value).
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Inval`] if the stored value cannot be decoded as `T`.
    pub fn get_opt<T: DeserializeOwned>(&self, key: &str) -> KernelResult<Option<T>> {
        match self.get(key) {
            Ok(v) => Ok(Some(v)),
            Err(e) if e.errno() == Errno::NoEnt => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Whether the bundle contains `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of entries in the bundle.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bundle is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The keys present in the bundle.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Serializes the whole bundle (e.g. to persist it across a crash during
    /// upgrade).
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Inval`] if serialization fails — silently returning
    /// an empty bundle here would make a later restore quietly lose every
    /// transferred entry.
    pub fn to_json(&self) -> KernelResult<String> {
        serde_json::to_string(&self.entries).map_err(|_| {
            KernelError::with_context(Errno::Inval, "state bundle: serialization failed")
        })
    }

    /// Reconstructs a bundle from [`StateBundle::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Inval`] on malformed input.
    pub fn from_json(raw: &str) -> KernelResult<Self> {
        let entries: BTreeMap<String, String> = serde_json::from_str(raw)
            .map_err(|_| KernelError::with_context(Errno::Inval, "state bundle: malformed json"))?;
        Ok(StateBundle { entries })
    }
}

/// Statistics about an upgrade performed by BentoFS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpgradeReport {
    /// Generation number after the upgrade (starts at 0 for the initially
    /// mounted file system).
    pub generation: u64,
    /// Number of state-bundle entries transferred (0 for a sync-and-reinit
    /// fallback upgrade).
    pub transferred_entries: usize,
    /// Whether the state-transfer path was used (`extract_state` /
    /// `restore_state`), as opposed to the sync-and-reinit fallback.
    pub state_transfer: bool,
    /// How long applications were paused: the time the upgrade held the
    /// file system exclusively, from requesting the write lock (waiting
    /// out in-flight operations) to installing the new instance.  The
    /// paper's §4.8 headline is that this is milliseconds, not an
    /// unmount/remount window.
    pub pause_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct CacheState {
        entries: Vec<(u64, String)>,
        hits: u64,
    }

    #[test]
    fn roundtrip_primitive_and_struct() {
        let mut b = StateBundle::new();
        b.put("counter", &7u32).unwrap();
        let cache = CacheState { entries: vec![(1, "root".into()), (9, "etc".into())], hits: 55 };
        b.put("cache", &cache).unwrap();
        assert_eq!(b.get::<u32>("counter").unwrap(), 7);
        assert_eq!(b.get::<CacheState>("cache").unwrap(), cache);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn missing_and_mistyped_keys() {
        let mut b = StateBundle::new();
        b.put("text", &"hello".to_string()).unwrap();
        assert_eq!(b.get::<u64>("absent").unwrap_err().errno(), Errno::NoEnt);
        assert_eq!(b.get::<u64>("text").unwrap_err().errno(), Errno::Inval);
        assert_eq!(b.get_opt::<String>("absent").unwrap(), None);
        assert_eq!(b.get_opt::<String>("text").unwrap().as_deref(), Some("hello"));
    }

    #[test]
    fn json_roundtrip() {
        let mut b = StateBundle::new();
        b.put("a", &1u8).unwrap();
        b.put("b", &vec![1u64, 2, 3]).unwrap();
        let json = b.to_json().unwrap();
        let b2 = StateBundle::from_json(&json).unwrap();
        assert_eq!(b, b2);
        assert!(StateBundle::from_json("not json").is_err());
        assert_eq!(StateBundle::new().to_json().unwrap(), "{}");
    }

    #[test]
    fn overwrite_replaces_value() {
        let mut b = StateBundle::new();
        b.put("k", &1u32).unwrap();
        b.put("k", &2u32).unwrap();
        assert_eq!(b.get::<u32>("k").unwrap(), 2);
        assert_eq!(b.len(), 1);
    }
}
