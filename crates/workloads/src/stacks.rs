//! Building the four file system stacks the paper compares.
//!
//! Each stack is mounted on a RAM-backed, latency-modelled NVMe device so
//! that all four see identical storage behaviour; the FUSE stack
//! additionally receives the boundary-crossing / whole-file-fsync model
//! (§6.4).  By default the device is the synchronous [`SsdDevice`]; the
//! `queue_depth` mount option switches to the completion-based multi-queue
//! model ([`MultiQueueDevice`]) instead — see [`mount_stack_with`].

use std::sync::Arc;

use simkernel::cost::CostModel;
use simkernel::dev::{BlockDevice, SsdDevice};
use simkernel::error::KernelResult;
use simkernel::queue::{MultiQueueDevice, QueueConfig};
use simkernel::vfs::{MountOptions, Vfs, VfsConfig};

use ext4sim::Ext4FilesystemType;
use fusesim::FuseXv6FilesystemType;
use xv6fs_vfs::Xv6VfsFilesystemType;

/// The four evaluated file system stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsStack {
    /// xv6 in Rust on Bento, in the (simulated) kernel.
    BentoXv6,
    /// xv6 directly against the VFS layer (the paper's C baseline).
    VfsXv6,
    /// xv6 in Rust in userspace behind FUSE.
    FuseXv6,
    /// The ext4-like comparator (`data=journal`).
    Ext4,
}

impl FsStack {
    /// All four stacks, in the order the paper's tables list them.
    pub fn all() -> [FsStack; 4] {
        [FsStack::BentoXv6, FsStack::VfsXv6, FsStack::FuseXv6, FsStack::Ext4]
    }

    /// The three xv6 variants (Figures 2–4, Tables 4–5).
    pub fn xv6_variants() -> [FsStack; 3] {
        [FsStack::BentoXv6, FsStack::VfsXv6, FsStack::FuseXv6]
    }

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            FsStack::BentoXv6 => "Bento",
            FsStack::VfsXv6 => "C-Kernel",
            FsStack::FuseXv6 => "FUSE",
            FsStack::Ext4 => "Ext4",
        }
    }
}

/// A mounted stack: the VFS to issue syscalls against plus bookkeeping.
pub struct MountedStack {
    /// The kernel VFS; workloads issue syscalls against this.
    pub vfs: Arc<Vfs>,
    /// Which stack this is.
    pub stack: FsStack,
    /// The latency-modelled device underneath (a synchronous [`SsdDevice`]
    /// by default, a [`MultiQueueDevice`] when the mount asked for one;
    /// `device.as_queued()` distinguishes them).
    pub device: Arc<dyn BlockDevice>,
}

impl std::fmt::Debug for MountedStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MountedStack").field("stack", &self.stack).finish_non_exhaustive()
    }
}

impl MountedStack {
    /// Unmounts the stack (writes back all dirty state).
    ///
    /// # Errors
    ///
    /// Propagates unmount errors.
    pub fn unmount(&self) -> KernelResult<()> {
        self.vfs.unmount("/")
    }

    /// Publishes this mount's counters into `registry`, keyed by the
    /// stack's paper label (`"Bento.log_commits"`, `"Ext4.dev_writes"`,
    /// …).  This is the pull half of the unified metrics story: each
    /// subsystem keeps its own cheap counters on the hot path and this
    /// method absorbs whichever of them the mounted stack actually has —
    /// write-path/journal batching figures, operation counts, the ext4sim
    /// journal (reached by downcast; it predates
    /// [`simkernel::vfs::WritePathStats`]), and
    /// raw device traffic.  Counters a stack does not track are simply
    /// absent, so reports stay honest about what each baseline measures.
    pub fn publish_metrics(&self, registry: &simkernel::registry::MetricsRegistry) {
        let label = self.stack.label();
        let key = |name: &str| format!("{label}.{name}");
        if let Ok(fs) = self.vfs.mounted_fs("/") {
            if let Some(wp) = fs.write_path_stats() {
                registry.set_counter(&key("log_commits"), wp.log_commits);
                registry.set_counter(&key("log_ops"), wp.log_ops);
                registry.set_counter(&key("log_blocks"), wp.log_blocks);
                registry.set_counter(&key("log_barriers"), wp.log_barriers);
                registry.set_counter(&key("queue_depth_max"), wp.queue_depth_max);
                registry.set_counter(&key("queue_depth_sum"), wp.queue_depth_sum);
                registry.set_counter(&key("queue_depth_samples"), wp.queue_depth_samples);
            }
            if let Some(ops) = fs.op_stats() {
                registry.set_counter(&key("op_creates"), ops.creates);
                registry.set_counter(&key("op_removes"), ops.removes);
                registry.set_counter(&key("op_bytes_read"), ops.bytes_read);
                registry.set_counter(&key("op_bytes_written"), ops.bytes_written);
                registry.set_counter(&key("op_fsyncs"), ops.fsyncs);
            }
            if let Some(ext4) = fs.as_any().and_then(|any| any.downcast_ref::<ext4sim::Ext4Sim>()) {
                let js = ext4.journal_stats();
                registry.set_counter(&key("log_commits"), js.commits);
                registry.set_counter(&key("log_blocks"), js.blocks_journaled);
            }
        }
        let dev = self.device.stats();
        registry.set_counter(&key("dev_reads"), dev.reads);
        registry.set_counter(&key("dev_writes"), dev.writes);
        registry.set_counter(&key("dev_flushes"), dev.flushes);
    }

    /// Unmounts the stack and, for the two xv6 variants, runs the offline
    /// consistency checker over the raw device, failing if the on-disk
    /// image violates any invariant.
    ///
    /// This is the gate concurrency experiments run through: a locking bug
    /// in the per-directory namespace paths (lost dirent, double-allocated
    /// inode, bad nlink) surfaces here as a hard error rather than a
    /// quietly wrong throughput row.  The FUSE stack shares xv6's on-disk
    /// format but its daemon model replays through the same code, and
    /// ext4sim has its own in-memory checker, so those two just unmount.
    ///
    /// # Errors
    ///
    /// Propagates unmount errors; reports fsck violations as `Io` errors
    /// listing every violated invariant.
    pub fn unmount_and_check(&self) -> KernelResult<()> {
        self.unmount()?;
        match self.stack {
            FsStack::BentoXv6 | FsStack::VfsXv6 => {
                let report = xv6fs::fsck::fsck_device(&self.device)?;
                if !report.is_clean() {
                    eprintln!("fsck violations after unmount: {:?}", report.errors);
                    return Err(simkernel::error::KernelError::with_context(
                        simkernel::error::Errno::Io,
                        "fsck found on-disk violations after unmount",
                    ));
                }
                Ok(())
            }
            FsStack::FuseXv6 | FsStack::Ext4 => Ok(()),
        }
    }
}

/// Mounts `stack` at `/` of a fresh VFS over a RAM-backed SSD of
/// `disk_blocks` 4 KiB blocks with the given latency model and default
/// mount options.
///
/// # Errors
///
/// Propagates mkfs/mount errors.
pub fn mount_stack(
    stack: FsStack,
    model: CostModel,
    disk_blocks: u64,
) -> KernelResult<MountedStack> {
    mount_stack_with(stack, model, disk_blocks, &MountOptions::default())
}

/// Like [`mount_stack`] with explicit mount options, so experiments can
/// sweep per-mount knobs the way `-o` options would: `alloc_groups` and
/// `cache_shards` reach the file system, and `fd_shards` sets the VFS
/// [`VfsConfig::shard_count`] (fd table / page cache sharding) for this
/// mount's kernel instance — closing the loop on the construction-time-only
/// knob the ROADMAP called out.
///
/// Device-model options select the storage model underneath:
///
/// * `queue_depth=N` (N > 0) — mount on the NVMe-style multi-queue device
///   with per-queue depth N instead of the synchronous [`SsdDevice`]; the
///   write-ahead logs then batch-submit their commit payloads and overlap
///   consecutive commits (two-stage commit).
/// * `queues=N` — number of submission/completion queue pairs (default 4;
///   only meaningful with `queue_depth`).
/// * `completion=poll` — spin for completions instead of sleeping
///   (interrupt-style), the NVMe polled-queue trade-off.
///
/// # Errors
///
/// Propagates mkfs/mount errors.
pub fn mount_stack_with(
    stack: FsStack,
    model: CostModel,
    disk_blocks: u64,
    options: &MountOptions,
) -> KernelResult<MountedStack> {
    let device = device_for_options(&model, disk_blocks, options);
    let vfs = mount_stack_on_device(stack, model, Arc::clone(&device), options)?;
    Ok(MountedStack { vfs, stack, device })
}

/// Builds the backing device the mount options select: the synchronous
/// [`SsdDevice`] by default, the multi-queue model when `queue_depth` is
/// set to a nonzero value.
fn device_for_options(
    model: &CostModel,
    disk_blocks: u64,
    options: &MountOptions,
) -> Arc<dyn BlockDevice> {
    let depth = options.get("queue_depth").and_then(|v| v.parse::<usize>().ok()).unwrap_or(0);
    if depth == 0 {
        return Arc::new(SsdDevice::ram_backed(disk_blocks, model.clone()));
    }
    let queues = options.get("queues").and_then(|v| v.parse::<usize>().ok()).unwrap_or(4);
    let mut config = QueueConfig::new(queues.max(1), depth);
    if options.get("completion") == Some("poll") {
        config = config.polled();
    }
    Arc::new(MultiQueueDevice::ram_backed(disk_blocks, model.clone(), config))
}

/// Mounts `stack` at `/` of a fresh VFS over a **caller-provided** block
/// device (mkfs included for the xv6 variants), returning the VFS.
///
/// This is the hook for interposed devices: the load generator wraps the
/// usual [`SsdDevice`] in a crashsim `FaultDevice` and mounts through here,
/// so fault scenarios drive the exact same mount path as the clean runs.
///
/// # Errors
///
/// Propagates mkfs/mount errors.
pub fn mount_stack_on_device(
    stack: FsStack,
    model: CostModel,
    device: Arc<dyn BlockDevice>,
    options: &MountOptions,
) -> KernelResult<Arc<Vfs>> {
    let fd_shards =
        options.get("fd_shards").and_then(|v| v.parse::<usize>().ok()).unwrap_or_default();
    let vfs = Arc::new(Vfs::new(VfsConfig { shard_count: fd_shards, ..VfsConfig::default() }));
    match stack {
        FsStack::BentoXv6 => {
            xv6fs::mkfs::mkfs_on_device(&device, 8192)?;
            vfs.register_filesystem(Arc::new(xv6fs::fstype()))?;
            vfs.mount(xv6fs::BENTO_XV6_NAME, device, "/", options)?;
        }
        FsStack::VfsXv6 => {
            xv6fs::mkfs::mkfs_on_device(&device, 8192)?;
            vfs.register_filesystem(Arc::new(Xv6VfsFilesystemType))?;
            vfs.mount(xv6fs_vfs::VFS_XV6_NAME, device, "/", options)?;
        }
        FsStack::FuseXv6 => {
            xv6fs::mkfs::mkfs_on_device(&device, 8192)?;
            vfs.register_filesystem(Arc::new(FuseXv6FilesystemType::with_model(model, 8)))?;
            vfs.mount("xv6fs_fuse", device, "/", options)?;
        }
        FsStack::Ext4 => {
            vfs.register_filesystem(Arc::new(Ext4FilesystemType))?;
            vfs.mount(ext4sim::EXT4_NAME, device, "/", options)?;
        }
    }
    Ok(vfs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::vfs::OpenFlags;

    #[test]
    fn every_stack_mounts_and_does_basic_io() {
        for stack in FsStack::all() {
            let mounted = mount_stack(stack, CostModel::zero(), 16_384)
                .unwrap_or_else(|e| panic!("mount {stack:?}: {e}"));
            let vfs = &mounted.vfs;
            vfs.mkdir("/d").unwrap();
            let fd = vfs.open("/d/file", OpenFlags::RDWR.with(OpenFlags::CREAT)).unwrap();
            vfs.write(fd, b"stack smoke test").unwrap();
            vfs.fsync(fd).unwrap();
            vfs.close(fd).unwrap();
            assert_eq!(vfs.stat("/d/file").unwrap().size, 16, "stack {stack:?}");
            mounted.unmount().unwrap_or_else(|e| panic!("unmount {stack:?}: {e}"));
        }
    }

    #[test]
    fn fd_shards_mount_option_reaches_the_vfs() {
        for shards in ["1", "16"] {
            let options = MountOptions::default().with_option("fd_shards", shards);
            let mounted =
                mount_stack_with(FsStack::BentoXv6, CostModel::zero(), 16_384, &options).unwrap();
            let fd =
                mounted.vfs.open("/fdshard-smoke", OpenFlags::RDWR.with(OpenFlags::CREAT)).unwrap();
            mounted.vfs.write(fd, b"knob").unwrap();
            mounted.vfs.close(fd).unwrap();
            assert_eq!(mounted.vfs.stat("/fdshard-smoke").unwrap().size, 4);
            mounted.unmount().unwrap();
        }
    }

    #[test]
    fn queue_depth_mount_option_selects_the_queued_device() {
        let options =
            MountOptions::default().with_option("queue_depth", "8").with_option("queues", "2");
        for stack in FsStack::all() {
            let mounted = mount_stack_with(stack, CostModel::zero(), 16_384, &options).unwrap();
            assert!(
                mounted.device.as_queued().is_some(),
                "queue_depth must select the multi-queue model ({stack:?})"
            );
            let fd = mounted.vfs.open("/q", OpenFlags::RDWR.with(OpenFlags::CREAT)).unwrap();
            mounted.vfs.write(fd, b"queued").unwrap();
            mounted.vfs.fsync(fd).unwrap();
            mounted.vfs.close(fd).unwrap();
            assert_eq!(mounted.vfs.stat("/q").unwrap().size, 6, "stack {stack:?}");
            mounted.unmount().unwrap();
        }
        // Without the option the mount stays on the synchronous model.
        let sync = mount_stack(FsStack::BentoXv6, CostModel::zero(), 16_384).unwrap();
        assert!(sync.device.as_queued().is_none());
    }

    #[test]
    fn publish_metrics_absorbs_stack_counters_into_a_registry() {
        use simkernel::registry::MetricsRegistry;
        for stack in FsStack::all() {
            let registry = MetricsRegistry::new();
            let mounted = mount_stack(stack, CostModel::zero(), 16_384).unwrap();
            let fd = mounted.vfs.open("/m", OpenFlags::RDWR.with(OpenFlags::CREAT)).unwrap();
            mounted.vfs.write(fd, b"metrics").unwrap();
            mounted.vfs.fsync(fd).unwrap();
            mounted.vfs.close(fd).unwrap();
            mounted.publish_metrics(&registry);
            let snap = registry.snapshot();
            let label = stack.label();
            // Every stack runs on the shared device models, so raw device
            // traffic is always present; the fsync forced writes out.
            assert!(
                snap.counter(&format!("{label}.dev_writes")).is_some_and(|v| v > 0),
                "{label} published no device writes: {:?}",
                snap.counters
            );
            // The journaled stacks also surface commit counters.
            match stack {
                FsStack::BentoXv6 | FsStack::Ext4 => {
                    assert!(
                        snap.counter(&format!("{label}.log_commits")).is_some_and(|v| v > 0),
                        "{label} published no log commits: {:?}",
                        snap.counters
                    );
                }
                FsStack::VfsXv6 | FsStack::FuseXv6 => {}
            }
            mounted.unmount().unwrap();
        }
        // Bento is the only stack wiring FsStats through op_stats today.
        let registry = MetricsRegistry::new();
        let mounted = mount_stack(FsStack::BentoXv6, CostModel::zero(), 16_384).unwrap();
        let fd = mounted.vfs.open("/ops", OpenFlags::RDWR.with(OpenFlags::CREAT)).unwrap();
        mounted.vfs.write(fd, b"counted").unwrap();
        mounted.vfs.close(fd).unwrap();
        mounted.publish_metrics(&registry);
        let snap = registry.snapshot();
        assert!(snap.counter("Bento.op_creates").is_some_and(|v| v > 0));
        assert!(snap.counter("Bento.op_bytes_written").is_some_and(|v| v >= 7));
        mounted.unmount().unwrap();
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(FsStack::BentoXv6.label(), "Bento");
        assert_eq!(FsStack::VfsXv6.label(), "C-Kernel");
        assert_eq!(FsStack::FuseXv6.label(), "FUSE");
        assert_eq!(FsStack::Ext4.label(), "Ext4");
        assert_eq!(FsStack::all().len(), 4);
        assert_eq!(FsStack::xv6_variants().len(), 3);
    }
}
