//! The "untar the Linux kernel" benchmark (§6.6.3).
//!
//! The paper measures the time to untar the Linux source tree onto the file
//! system — a metadata-and-small-write heavy workload across many
//! directories.  The tree is not available here, so
//! [`generate_linux_like_manifest`] produces a deterministic synthetic tree
//! whose directory depth and file-size distribution follow the kernel
//! source's (most files a few KiB, a long tail of larger ones), scaled down
//! so the sweep over four stacks finishes quickly.  [`untar`] replays the
//! manifest against a mounted stack and reports elapsed time, as the paper
//! does (lower is better).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use simkernel::error::KernelResult;
use simkernel::vfs::{OpenFlags, Vfs};

/// One entry of the synthetic source tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UntarEntry {
    /// A directory at the given path (relative, `/`-separated).
    Dir(String),
    /// A file at the given path with the given size in bytes.
    File(String, u64),
}

/// A synthetic archive: the ordered list of entries to extract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UntarManifest {
    /// Entries in extraction order (parents precede children).
    pub entries: Vec<UntarEntry>,
}

impl UntarManifest {
    /// Number of directories in the manifest.
    pub fn dir_count(&self) -> usize {
        self.entries.iter().filter(|e| matches!(e, UntarEntry::Dir(_))).count()
    }

    /// Number of files in the manifest.
    pub fn file_count(&self) -> usize {
        self.entries.iter().filter(|e| matches!(e, UntarEntry::File(_, _))).count()
    }

    /// Total file bytes.
    pub fn total_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| match e {
                UntarEntry::File(_, size) => *size,
                UntarEntry::Dir(_) => 0,
            })
            .sum()
    }
}

/// Generates a deterministic Linux-source-like tree: `dirs` directories (two
/// levels deep) holding `files` files whose sizes follow the kernel tree's
/// skewed distribution (≈70% under 8 KiB, ≈25% 8–64 KiB, ≈5% 64–256 KiB).
pub fn generate_linux_like_manifest(dirs: usize, files: usize, seed: u64) -> UntarManifest {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut entries = Vec::with_capacity(dirs + files + 16);
    let top_level = ["arch", "drivers", "fs", "include", "kernel", "net", "mm", "lib"];
    for top in top_level {
        entries.push(UntarEntry::Dir(top.to_string()));
    }
    let mut dir_paths: Vec<String> = top_level.iter().map(|s| s.to_string()).collect();
    for d in 0..dirs.saturating_sub(top_level.len()) {
        let parent = &dir_paths[rng.gen_range(0..dir_paths.len().min(top_level.len() * 4))];
        let path = format!("{parent}/sub{d}");
        entries.push(UntarEntry::Dir(path.clone()));
        dir_paths.push(path);
    }
    for f in 0..files {
        let dir = &dir_paths[rng.gen_range(0..dir_paths.len())];
        let roll: f64 = rng.gen();
        let size = if roll < 0.70 {
            rng.gen_range(512..8 * 1024)
        } else if roll < 0.95 {
            rng.gen_range(8 * 1024..64 * 1024)
        } else {
            rng.gen_range(64 * 1024..256 * 1024)
        };
        let ext = if f % 10 == 0 { "h" } else { "c" };
        entries.push(UntarEntry::File(format!("{dir}/file{f}.{ext}"), size as u64));
    }
    UntarManifest { entries }
}

/// Extracts `manifest` under `base` (an existing directory, e.g. `/`) and
/// returns the elapsed time and bytes written.  A final `sync` is included
/// in the measurement, as `tar xf` followed by the implicit writeback would
/// be on a real system.
///
/// # Errors
///
/// Propagates file system errors.
pub fn untar(
    vfs: &Arc<Vfs>,
    base: &str,
    manifest: &UntarManifest,
) -> KernelResult<(Duration, u64)> {
    let base = base.trim_end_matches('/');
    let start = Instant::now();
    let mut bytes = 0u64;
    let payload = vec![0x42u8; 64 * 1024];
    for entry in &manifest.entries {
        match entry {
            UntarEntry::Dir(path) => {
                vfs.mkdir(&format!("{base}/{path}"))?;
            }
            UntarEntry::File(path, size) => {
                let fd =
                    vfs.open(&format!("{base}/{path}"), OpenFlags::WRONLY.with(OpenFlags::CREAT))?;
                let mut remaining = *size;
                while remaining > 0 {
                    let n = (remaining as usize).min(payload.len());
                    vfs.write(fd, &payload[..n])?;
                    remaining -= n as u64;
                    bytes += n as u64;
                }
                vfs.close(fd)?;
            }
        }
    }
    vfs.sync()?;
    Ok((start.elapsed(), bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::dev::RamDisk;
    use simkernel::memfs::MemFilesystemType;
    use simkernel::vfs::{MountOptions, VfsConfig};

    #[test]
    fn manifest_is_deterministic_and_shaped() {
        let a = generate_linux_like_manifest(64, 500, 7);
        let b = generate_linux_like_manifest(64, 500, 7);
        assert_eq!(a, b, "same seed must give the same tree");
        assert_eq!(a.file_count(), 500);
        assert!(a.dir_count() >= 64);
        // The size distribution is dominated by small files.
        let small = a
            .entries
            .iter()
            .filter(|e| matches!(e, UntarEntry::File(_, s) if *s < 8 * 1024))
            .count();
        assert!(small as f64 > 0.6 * a.file_count() as f64);
    }

    #[test]
    fn untar_extracts_every_entry() {
        let vfs = Arc::new(Vfs::new(VfsConfig::default()));
        vfs.register_filesystem(Arc::new(MemFilesystemType)).unwrap();
        vfs.mount("memfs", Arc::new(RamDisk::new(4096, 16)), "/", &MountOptions::default())
            .unwrap();
        let manifest = generate_linux_like_manifest(16, 60, 3);
        let (elapsed, bytes) = untar(&vfs, "/", &manifest).unwrap();
        assert!(elapsed.as_nanos() > 0);
        assert_eq!(bytes, manifest.total_bytes());
        // Spot check: every file exists with the right size.
        for entry in &manifest.entries {
            if let UntarEntry::File(path, size) = entry {
                assert_eq!(vfs.stat(&format!("/{path}")).unwrap().size, *size);
            }
        }
    }
}
