//! The filebench personalities used in the paper's evaluation, reimplemented
//! as multi-threaded generators over the simulated VFS.
//!
//! Sizes and file counts are scaled down from the filebench defaults so a
//! full sweep completes in minutes on one machine; the op *mixes* match the
//! personalities (EXPERIMENTS.md records the scaling).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use simkernel::error::{Errno, KernelResult};
use simkernel::metrics::LatencyHistogram;
use simkernel::vfs::{OpenFlags, Vfs};

/// Sequential or uniformly random access offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Offsets advance linearly, wrapping at end of file.
    Sequential,
    /// Offsets are uniformly random, aligned to the I/O size.
    Random,
}

impl AccessPattern {
    /// Short label used in figure rows ("seq" / "rnd").
    pub fn label(self) -> &'static str {
        match self {
            AccessPattern::Sequential => "seq",
            AccessPattern::Random => "rnd",
        }
    }
}

/// The outcome of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name (e.g. `"read-4k-rnd"`).
    pub name: String,
    /// Number of worker threads.
    pub threads: usize,
    /// Operations completed.
    pub operations: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Measured wall-clock duration.
    pub elapsed: Duration,
    /// Per-iteration latency (merged across worker threads).  For the
    /// microbenchmarks one iteration is one operation; for the
    /// macrobenchmark loops one iteration is one flowop sequence.
    pub latency: LatencyHistogram,
}

impl WorkloadResult {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.operations as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Payload throughput in MB/s (10^6 bytes, as filebench reports).
    pub fn throughput_mbps(&self) -> f64 {
        self.bytes as f64 / 1_000_000.0 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Per-iteration latency percentile in microseconds (e.g. `50.0`,
    /// `99.0`).
    pub fn latency_us(&self, p: f64) -> f64 {
        self.latency.percentile(p) as f64 / 1_000.0
    }
}

/// Runs `body` on `threads` threads until `duration` elapses; `body`
/// receives the thread index and a per-thread RNG and returns
/// (operations, bytes) for one iteration.
fn run_timed<F>(
    name: &str,
    threads: usize,
    duration: Duration,
    body: F,
) -> KernelResult<WorkloadResult>
where
    F: Fn(usize, &mut SmallRng, u64) -> KernelResult<(u64, u64)> + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let total_ops = Arc::new(AtomicU64::new(0));
    let total_bytes = Arc::new(AtomicU64::new(0));
    // Each worker records into its own histogram (lock-free hot path) and
    // merges once at the end — the shared stopwatch pattern from
    // `simkernel::metrics`.
    let merged = Arc::new(Mutex::new(LatencyHistogram::new()));
    let start = Instant::now();
    let deadline = start + duration;
    let mut handles = Vec::new();
    for t in 0..threads {
        let body = Arc::clone(&body);
        let total_ops = Arc::clone(&total_ops);
        let total_bytes = Arc::clone(&total_bytes);
        let merged = Arc::clone(&merged);
        handles.push(std::thread::spawn(move || -> KernelResult<()> {
            let mut rng = SmallRng::seed_from_u64(0x5eed_0000 + t as u64);
            let mut hist = LatencyHistogram::new();
            let mut iteration = 0u64;
            while Instant::now() < deadline {
                let iter_started = Instant::now();
                let (ops, bytes) = body(t, &mut rng, iteration)?;
                if ops == 0 && bytes == 0 {
                    break; // workload exhausted (e.g. nothing left to delete)
                }
                hist.record_duration(iter_started.elapsed());
                total_ops.fetch_add(ops, Ordering::Relaxed);
                total_bytes.fetch_add(bytes, Ordering::Relaxed);
                iteration += 1;
            }
            merged.lock().merge(&hist);
            Ok(())
        }));
    }
    for handle in handles {
        handle.join().map_err(|_| {
            simkernel::error::KernelError::with_context(Errno::Io, "worker panicked")
        })??;
    }
    let latency = merged.lock().clone();
    Ok(WorkloadResult {
        name: name.to_string(),
        threads,
        operations: total_ops.load(Ordering::Relaxed),
        bytes: total_bytes.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        latency,
    })
}

fn write_fully(vfs: &Vfs, fd: u64, total: u64, chunk: usize) -> KernelResult<u64> {
    let data = vec![0xA5u8; chunk];
    let mut written = 0u64;
    while written < total {
        let n = ((total - written) as usize).min(chunk);
        vfs.write(fd, &data[..n])?;
        written += n as u64;
    }
    Ok(written)
}

// ---------------------------------------------------------------------------
// Microbenchmarks (Figures 2-4, Tables 4-5)
// ---------------------------------------------------------------------------

/// The filebench read microbenchmark: `threads` readers issue `io_size`
/// reads (sequential or random) against one `file_size`-byte file for
/// `duration`.  The file is created and warmed into the page cache first,
/// as in the paper (§6.5.1: all three stacks serve reads from the same
/// in-kernel cache).
///
/// # Errors
///
/// Propagates file system errors.
pub fn read_micro(
    vfs: &Arc<Vfs>,
    file_size: u64,
    io_size: usize,
    pattern: AccessPattern,
    threads: usize,
    duration: Duration,
) -> KernelResult<WorkloadResult> {
    let path = "/readfile.bin";
    let fd = vfs.open(path, OpenFlags::RDWR.with(OpenFlags::CREAT))?;
    write_fully(vfs, fd, file_size, 1 << 20)?;
    vfs.fsync(fd)?;
    vfs.close(fd)?;
    // Warm the page cache.
    let fd = vfs.open(path, OpenFlags::RDONLY)?;
    let mut warm = vec![0u8; 1 << 20];
    let mut off = 0u64;
    while off < file_size {
        let n = vfs.pread(fd, &mut warm, off)?;
        if n == 0 {
            break;
        }
        off += n as u64;
    }
    vfs.close(fd)?;

    let vfs = Arc::clone(vfs);
    let name = format!("read-{}k-{}", io_size / 1024, pattern.label());
    let fds: Vec<u64> =
        (0..threads).map(|_| vfs.open(path, OpenFlags::RDONLY)).collect::<KernelResult<_>>()?;
    let fds = Arc::new(fds);
    let span = file_size.saturating_sub(io_size as u64).max(1);
    let result = {
        let vfs = Arc::clone(&vfs);
        let fds = Arc::clone(&fds);
        run_timed(&name, threads, duration, move |t, rng, iteration| {
            let mut buf = vec![0u8; io_size];
            let offset = match pattern {
                AccessPattern::Sequential => (iteration * io_size as u64) % span,
                AccessPattern::Random => rng.gen_range(0..span) / io_size as u64 * io_size as u64,
            };
            let n = vfs.pread(fds[t], &mut buf, offset)?;
            Ok((1, n as u64))
        })?
    };
    for fd in fds.iter() {
        vfs.close(*fd)?;
    }
    vfs.unlink(path)?;
    Ok(result)
}

/// The filebench write microbenchmark: `threads` writers issue `io_size`
/// writes (sequential or random) into a preallocated `file_size`-byte file.
///
/// # Errors
///
/// Propagates file system errors.
pub fn write_micro(
    vfs: &Arc<Vfs>,
    file_size: u64,
    io_size: usize,
    pattern: AccessPattern,
    threads: usize,
    duration: Duration,
) -> KernelResult<WorkloadResult> {
    let path = "/writefile.bin";
    let fd = vfs.open(path, OpenFlags::RDWR.with(OpenFlags::CREAT))?;
    write_fully(vfs, fd, file_size, 1 << 20)?;
    vfs.fsync(fd)?;
    vfs.close(fd)?;

    let name = format!("write-{}k-{}", io_size / 1024, pattern.label());
    let fds: Vec<u64> =
        (0..threads).map(|_| vfs.open(path, OpenFlags::WRONLY)).collect::<KernelResult<_>>()?;
    let fds = Arc::new(fds);
    let span = file_size.saturating_sub(io_size as u64).max(1);
    let result = {
        let vfs = Arc::clone(vfs);
        let fds = Arc::clone(&fds);
        run_timed(&name, threads, duration, move |t, rng, iteration| {
            let data = vec![0x3Cu8; io_size];
            let offset = match pattern {
                AccessPattern::Sequential => (iteration * io_size as u64) % span,
                AccessPattern::Random => rng.gen_range(0..span) / io_size as u64 * io_size as u64,
            };
            let n = vfs.pwrite(fds[t], &data, offset)?;
            Ok((1, n as u64))
        })?
    };
    for fd in fds.iter() {
        vfs.close(*fd)?;
    }
    vfs.unlink(path)?;
    Ok(result)
}

/// The filebench `createfiles` microbenchmark: each thread repeatedly
/// creates a new file in its own directory, writes `file_size` bytes, and
/// closes it.
///
/// # Errors
///
/// Propagates file system errors.
pub fn create_micro(
    vfs: &Arc<Vfs>,
    file_size: usize,
    threads: usize,
    duration: Duration,
) -> KernelResult<WorkloadResult> {
    for t in 0..threads {
        vfs.mkdir(&format!("/create-{t}"))?;
    }
    let vfs2 = Arc::clone(vfs);
    run_timed("createfiles", threads, duration, move |t, _rng, iteration| {
        let path = format!("/create-{t}/f{iteration}");
        let fd = vfs2.open(&path, OpenFlags::WRONLY.with(OpenFlags::CREAT))?;
        let written = write_fully(&vfs2, fd, file_size as u64, file_size.max(1))?;
        vfs2.close(fd)?;
        Ok((1, written))
    })
}

/// Like [`create_micro`] but over a **shared** pool of `2 * threads`
/// directories: thread `t` creates its `i`-th file in directory
/// `(t + i) % pool`, so every directory is hit by every thread.
///
/// Under a single per-mount namespace lock this workload is
/// indistinguishable from `create_micro`; with per-directory locks
/// ([`simkernel::nslock`]) the threads only contend when they land on the
/// same directory in the same instant.  File names carry the creating
/// thread's index, so no two threads ever race on the same path.
///
/// # Errors
///
/// Propagates file system errors.
pub fn create_crossdir_micro(
    vfs: &Arc<Vfs>,
    file_size: usize,
    threads: usize,
    duration: Duration,
) -> KernelResult<WorkloadResult> {
    let pool = (2 * threads).max(1);
    for d in 0..pool {
        vfs.mkdir(&format!("/crossdir-{d}"))?;
    }
    let vfs2 = Arc::clone(vfs);
    run_timed("create-crossdir", threads, duration, move |t, _rng, iteration| {
        let dir = (t as u64 + iteration) % pool as u64;
        let path = format!("/crossdir-{dir}/f-{t}-{iteration}");
        let fd = vfs2.open(&path, OpenFlags::WRONLY.with(OpenFlags::CREAT))?;
        let written = write_fully(&vfs2, fd, file_size as u64, file_size.max(1))?;
        vfs2.close(fd)?;
        Ok((1, written))
    })
}

/// Cross-directory rename storm: two pools of shared directories
/// (`/xpool-a-*`, `/xpool-b-*`); each thread owns one file and bounces it
/// between the pools, so every iteration is a cross-directory rename whose
/// two parents live in directories shared with the other threads.
///
/// The source/destination directory for thread `t` at iteration `i` is a
/// pure function of `(t, i)`, so each rename's source is exactly the
/// previous iteration's destination and threads never collide on paths —
/// but they constantly overlap on *directories*, which is the point: this
/// is the workload that exercises [`DirLockTable::lock_pair`]'s
/// ascending-inum ordering from every argument order at once.
///
/// [`DirLockTable::lock_pair`]: simkernel::nslock::DirLockTable::lock_pair
///
/// # Errors
///
/// Propagates file system errors.
pub fn rename_storm(
    vfs: &Arc<Vfs>,
    threads: usize,
    duration: Duration,
) -> KernelResult<WorkloadResult> {
    let pool = threads.div_ceil(2).max(2);
    for d in 0..pool {
        vfs.mkdir(&format!("/xpool-a-{d}"))?;
        vfs.mkdir(&format!("/xpool-b-{d}"))?;
    }
    // dir(t, i): pool side alternates with the iteration parity, the index
    // walks the pool, so consecutive iterations chain src -> dst -> src.
    let dir_at = move |t: usize, i: u64| -> String {
        let side = if i.is_multiple_of(2) { 'a' } else { 'b' };
        let idx = (t as u64 + i) % pool as u64;
        format!("/xpool-{side}-{idx}")
    };
    for t in 0..threads {
        let fd = vfs
            .open(&format!("{}/mv-{t}", dir_at(t, 0)), OpenFlags::WRONLY.with(OpenFlags::CREAT))?;
        vfs.close(fd)?;
    }
    let vfs2 = Arc::clone(vfs);
    run_timed("rename-storm", threads, duration, move |t, _rng, iteration| {
        let src = format!("{}/mv-{t}", dir_at(t, iteration));
        let dst = format!("{}/mv-{t}", dir_at(t, iteration + 1));
        vfs2.rename(&src, &dst)?;
        Ok((1, 0))
    })
}

/// The filebench `deletefiles` microbenchmark: `precreated` files per thread
/// are created beforehand; the measured phase deletes them.
///
/// # Errors
///
/// Propagates file system errors.
pub fn delete_micro(
    vfs: &Arc<Vfs>,
    precreated: usize,
    file_size: usize,
    threads: usize,
    duration: Duration,
) -> KernelResult<WorkloadResult> {
    for t in 0..threads {
        let dir = format!("/delete-{t}");
        vfs.mkdir(&dir)?;
        for i in 0..precreated {
            let fd = vfs.open(&format!("{dir}/f{i}"), OpenFlags::WRONLY.with(OpenFlags::CREAT))?;
            write_fully(vfs, fd, file_size as u64, file_size.max(1))?;
            vfs.close(fd)?;
        }
    }
    vfs.sync()?;
    let vfs2 = Arc::clone(vfs);
    run_timed("deletefiles", threads, duration, move |t, _rng, iteration| {
        if iteration as usize >= precreated {
            return Ok((0, 0));
        }
        vfs2.unlink(&format!("/delete-{t}/f{iteration}"))?;
        Ok((1, 0))
    })
}

/// Like [`read_micro`] but with one private file *per thread*: thread `t`
/// only ever touches `/scale-read-{t}.bin` through its own descriptor.
///
/// This is the workload that exposes lock sharding: with disjoint files the
/// only shared state on the hot path is the kernel's own bookkeeping (fd
/// table, page cache file table, buffer cache map), so throughput scales
/// with threads exactly when those maps are contention-free.
///
/// # Errors
///
/// Propagates file system errors.
pub fn read_micro_disjoint(
    vfs: &Arc<Vfs>,
    file_size: u64,
    io_size: usize,
    pattern: AccessPattern,
    threads: usize,
    duration: Duration,
) -> KernelResult<WorkloadResult> {
    let mut fds = Vec::with_capacity(threads);
    for t in 0..threads {
        let path = format!("/scale-read-{t}.bin");
        let fd = vfs.open(&path, OpenFlags::RDWR.with(OpenFlags::CREAT))?;
        write_fully(vfs, fd, file_size, 1 << 20)?;
        vfs.fsync(fd)?;
        vfs.close(fd)?;
        // Warm this thread's file into the page cache.
        let fd = vfs.open(&path, OpenFlags::RDONLY)?;
        let mut warm = vec![0u8; 1 << 20];
        let mut off = 0u64;
        while off < file_size {
            let n = vfs.pread(fd, &mut warm, off)?;
            if n == 0 {
                break;
            }
            off += n as u64;
        }
        fds.push(fd);
    }
    let fds = Arc::new(fds);
    let name = format!("read-{}k-{}-disjoint", io_size / 1024, pattern.label());
    let span = file_size.saturating_sub(io_size as u64).max(1);
    let result = {
        let vfs = Arc::clone(vfs);
        let fds = Arc::clone(&fds);
        run_timed(&name, threads, duration, move |t, rng, iteration| {
            let mut buf = vec![0u8; io_size];
            let offset = match pattern {
                AccessPattern::Sequential => (iteration * io_size as u64) % span,
                AccessPattern::Random => rng.gen_range(0..span) / io_size as u64 * io_size as u64,
            };
            let n = vfs.pread(fds[t], &mut buf, offset)?;
            Ok((1, n as u64))
        })?
    };
    for (t, fd) in fds.iter().enumerate() {
        vfs.close(*fd)?;
        vfs.unlink(&format!("/scale-read-{t}.bin"))?;
    }
    Ok(result)
}

/// Like [`write_micro`] but with one private preallocated file per thread
/// (see [`read_micro_disjoint`] for why).
///
/// # Errors
///
/// Propagates file system errors.
pub fn write_micro_disjoint(
    vfs: &Arc<Vfs>,
    file_size: u64,
    io_size: usize,
    pattern: AccessPattern,
    threads: usize,
    duration: Duration,
) -> KernelResult<WorkloadResult> {
    let mut fds = Vec::with_capacity(threads);
    for t in 0..threads {
        let path = format!("/scale-write-{t}.bin");
        let fd = vfs.open(&path, OpenFlags::RDWR.with(OpenFlags::CREAT))?;
        write_fully(vfs, fd, file_size, 1 << 20)?;
        vfs.fsync(fd)?;
        fds.push(fd);
    }
    let fds = Arc::new(fds);
    let name = format!("write-{}k-{}-disjoint", io_size / 1024, pattern.label());
    let span = file_size.saturating_sub(io_size as u64).max(1);
    let result = {
        let vfs = Arc::clone(vfs);
        let fds = Arc::clone(&fds);
        run_timed(&name, threads, duration, move |t, rng, iteration| {
            let data = vec![0x5Au8; io_size];
            let offset = match pattern {
                AccessPattern::Sequential => (iteration * io_size as u64) % span,
                AccessPattern::Random => rng.gen_range(0..span) / io_size as u64 * io_size as u64,
            };
            let n = vfs.pwrite(fds[t], &data, offset)?;
            Ok((1, n as u64))
        })?
    };
    for (t, fd) in fds.iter().enumerate() {
        vfs.close(*fd)?;
        vfs.unlink(&format!("/scale-write-{t}.bin"))?;
    }
    Ok(result)
}

// ---------------------------------------------------------------------------
// Macrobenchmarks (Table 6)
// ---------------------------------------------------------------------------

/// The filebench `varmail` personality (mail server): delete / create+write+
/// fsync / append+fsync / read, over a pool of small files.  Reported
/// operations count individual flowops, as filebench does.
///
/// # Errors
///
/// Propagates file system errors.
pub fn varmail(
    vfs: &Arc<Vfs>,
    files_per_thread: usize,
    mean_file_size: usize,
    threads: usize,
    duration: Duration,
) -> KernelResult<WorkloadResult> {
    for t in 0..threads {
        let dir = format!("/varmail-{t}");
        vfs.mkdir(&dir)?;
        for i in 0..files_per_thread {
            let fd = vfs.open(&format!("{dir}/m{i}"), OpenFlags::WRONLY.with(OpenFlags::CREAT))?;
            write_fully(vfs, fd, mean_file_size as u64, mean_file_size)?;
            vfs.close(fd)?;
        }
    }
    vfs.sync()?;
    let vfs2 = Arc::clone(vfs);
    run_timed("varmail", threads, duration, move |t, rng, iteration| {
        let dir = format!("/varmail-{t}");
        let victim = rng.gen_range(0..files_per_thread);
        let mut ops = 0u64;
        let mut bytes = 0u64;
        // 1. delete an existing mail file (ignore if already deleted).
        match vfs2.unlink(&format!("{dir}/m{victim}")) {
            Ok(()) => ops += 1,
            Err(e) if e.errno() == Errno::NoEnt => {}
            Err(e) => return Err(e),
        }
        // 2. create a new mail file, write it, fsync, close.
        let new_path = format!("{dir}/new-{iteration}");
        let fd = vfs2.open(&new_path, OpenFlags::WRONLY.with(OpenFlags::CREAT))?;
        bytes += write_fully(&vfs2, fd, mean_file_size as u64, mean_file_size)?;
        vfs2.fsync(fd)?;
        vfs2.close(fd)?;
        ops += 4;
        // 3. append to another mail file with fsync.
        let target = format!("{dir}/new-{}", rng.gen_range(0..=iteration));
        if let Ok(fd) = vfs2.open(&target, OpenFlags::WRONLY.with(OpenFlags::APPEND)) {
            bytes += write_fully(&vfs2, fd, (mean_file_size / 2) as u64, mean_file_size / 2)?;
            vfs2.fsync(fd)?;
            vfs2.close(fd)?;
            ops += 4;
        }
        // 4. read a whole mail file.
        if let Ok(fd) = vfs2.open(&target, OpenFlags::RDONLY) {
            let mut buf = vec![0u8; mean_file_size * 2];
            let n = vfs2.pread(fd, &mut buf, 0)?;
            vfs2.close(fd)?;
            bytes += n as u64;
            ops += 3;
        }
        Ok((ops, bytes))
    })
}

/// The filebench `fileserver` personality: create+write whole files, append,
/// whole-file reads, deletes and stats over a growing pool.
///
/// # Errors
///
/// Propagates file system errors.
pub fn fileserver(
    vfs: &Arc<Vfs>,
    files_per_thread: usize,
    mean_file_size: usize,
    threads: usize,
    duration: Duration,
) -> KernelResult<WorkloadResult> {
    for t in 0..threads {
        let dir = format!("/fileserver-{t}");
        vfs.mkdir(&dir)?;
        for i in 0..files_per_thread {
            let fd = vfs.open(&format!("{dir}/f{i}"), OpenFlags::WRONLY.with(OpenFlags::CREAT))?;
            write_fully(vfs, fd, mean_file_size as u64, 64 * 1024)?;
            vfs.close(fd)?;
        }
    }
    vfs.sync()?;
    let vfs2 = Arc::clone(vfs);
    run_timed("fileserver", threads, duration, move |t, rng, iteration| {
        let dir = format!("/fileserver-{t}");
        let mut ops = 0u64;
        let mut bytes = 0u64;
        // create + write a whole new file + close
        let new_path = format!("{dir}/new-{iteration}");
        let fd = vfs2.open(&new_path, OpenFlags::WRONLY.with(OpenFlags::CREAT))?;
        bytes += write_fully(&vfs2, fd, mean_file_size as u64, 64 * 1024)?;
        vfs2.close(fd)?;
        ops += 3;
        // append to an existing file
        let existing = format!("{dir}/f{}", rng.gen_range(0..files_per_thread));
        if let Ok(fd) = vfs2.open(&existing, OpenFlags::WRONLY.with(OpenFlags::APPEND)) {
            bytes += write_fully(&vfs2, fd, 16 * 1024, 16 * 1024)?;
            vfs2.close(fd)?;
            ops += 3;
        }
        // whole-file read
        if let Ok(fd) = vfs2.open(&existing, OpenFlags::RDONLY) {
            let mut buf = vec![0u8; 64 * 1024];
            let mut off = 0u64;
            loop {
                let n = vfs2.pread(fd, &mut buf, off)?;
                if n == 0 {
                    break;
                }
                off += n as u64;
                bytes += n as u64;
            }
            vfs2.close(fd)?;
            ops += 3;
        }
        // delete a previously created file
        if iteration > 0 {
            let old = format!("{dir}/new-{}", rng.gen_range(0..iteration));
            match vfs2.unlink(&old) {
                Ok(()) => ops += 1,
                Err(e) if e.errno() == Errno::NoEnt => {}
                Err(e) => return Err(e),
            }
        }
        // stat
        let _ = vfs2.stat(&existing);
        ops += 1;
        Ok((ops, bytes))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::dev::RamDisk;
    use simkernel::memfs::MemFilesystemType;
    use simkernel::vfs::{MountOptions, VfsConfig};

    fn memfs_vfs() -> Arc<Vfs> {
        let vfs = Arc::new(Vfs::new(VfsConfig::default()));
        vfs.register_filesystem(Arc::new(MemFilesystemType)).unwrap();
        vfs.mount("memfs", Arc::new(RamDisk::new(4096, 16)), "/", &MountOptions::default())
            .unwrap();
        vfs
    }

    #[test]
    fn read_micro_reports_ops_and_bytes() {
        let vfs = memfs_vfs();
        let result =
            read_micro(&vfs, 1 << 20, 4096, AccessPattern::Random, 2, Duration::from_millis(50))
                .unwrap();
        assert!(result.operations > 0);
        assert_eq!(result.bytes, result.operations * 4096);
        assert!(result.ops_per_sec() > 0.0);
        // Per-op latency rides along through the shared histogram: one
        // sample per completed iteration, ordered percentiles.
        assert_eq!(result.latency.count(), result.operations);
        assert!(result.latency_us(50.0) <= result.latency_us(99.0));
        assert!(result.latency.max() > 0);
    }

    #[test]
    fn write_micro_sequential_and_random() {
        let vfs = memfs_vfs();
        for pattern in [AccessPattern::Sequential, AccessPattern::Random] {
            let result =
                write_micro(&vfs, 1 << 20, 32 * 1024, pattern, 2, Duration::from_millis(50))
                    .unwrap();
            assert!(result.operations > 0, "{pattern:?}");
            assert!(result.throughput_mbps() > 0.0);
        }
    }

    #[test]
    fn disjoint_micros_report_ops_and_clean_up() {
        let vfs = memfs_vfs();
        let read = read_micro_disjoint(
            &vfs,
            256 * 1024,
            4096,
            AccessPattern::Random,
            4,
            Duration::from_millis(50),
        )
        .unwrap();
        assert!(read.operations > 0);
        assert_eq!(read.bytes, read.operations * 4096);
        let write = write_micro_disjoint(
            &vfs,
            256 * 1024,
            4096,
            AccessPattern::Sequential,
            4,
            Duration::from_millis(50),
        )
        .unwrap();
        assert!(write.operations > 0);
        // The per-thread files are unlinked afterwards.
        assert!(!vfs.exists("/scale-read-0.bin"));
        assert!(!vfs.exists("/scale-write-0.bin"));
        assert_eq!(vfs.open_fd_count(), 0);
    }

    #[test]
    fn create_and_delete_micro() {
        let vfs = memfs_vfs();
        let created = create_micro(&vfs, 4096, 2, Duration::from_millis(50)).unwrap();
        assert!(created.operations > 0);
        let deleted = delete_micro(&vfs, 50, 1024, 2, Duration::from_millis(100)).unwrap();
        assert!(deleted.operations > 0);
        assert!(deleted.operations <= 100, "cannot delete more than precreated");
    }

    #[test]
    fn crossdir_create_spreads_over_shared_directories() {
        let vfs = memfs_vfs();
        let result = create_crossdir_micro(&vfs, 1024, 4, Duration::from_millis(60)).unwrap();
        assert!(result.operations > 0);
        assert_eq!(result.bytes, result.operations * 1024);
        // The shared pool exists and at least the first directory got files.
        for d in 0..8 {
            assert!(vfs.exists(&format!("/crossdir-{d}")), "pool dir {d}");
        }
    }

    #[test]
    fn rename_storm_chains_renames_without_losing_files() {
        let vfs = memfs_vfs();
        let threads = 4;
        let result = rename_storm(&vfs, threads, Duration::from_millis(60)).unwrap();
        assert!(result.operations > 0);
        // Every thread's file still exists exactly once, somewhere in the
        // two pools — a lost or duplicated file means a rename bug.
        let pool = threads.div_ceil(2).max(2);
        for t in 0..threads {
            let found: usize = (0..pool)
                .flat_map(|d| [format!("/xpool-a-{d}/mv-{t}"), format!("/xpool-b-{d}/mv-{t}")])
                .filter(|p| vfs.exists(p))
                .count();
            assert_eq!(found, 1, "thread {t}'s file must exist exactly once");
        }
    }

    #[test]
    fn varmail_and_fileserver_run() {
        let vfs = memfs_vfs();
        let vm = varmail(&vfs, 20, 4096, 2, Duration::from_millis(60)).unwrap();
        assert!(vm.operations > 0);
        let fsrv = fileserver(&vfs, 10, 16 * 1024, 2, Duration::from_millis(60)).unwrap();
        assert!(fsrv.operations > 0);
        assert!(fsrv.bytes > 0);
    }
}
