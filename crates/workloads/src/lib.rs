//! # workloads — filebench-style workload generators
//!
//! The paper's evaluation (§6.4) drives every file system with filebench:
//! single-threaded and 32-threaded read / write / file-creation /
//! file-deletion microbenchmarks, the `varmail` and `fileserver`
//! macrobenchmarks, plus untarring the Linux kernel source tree.  filebench
//! itself is not available here, so this crate reimplements the used
//! personalities as multi-threaded generators that drive a
//! [`Vfs`](simkernel::vfs::Vfs) — any of the four stacks (Bento xv6, VFS
//! xv6, FUSE xv6, ext4sim) mounted on the simulated NVMe device.
//!
//! [`stacks`] contains the helpers that build each mounted stack;
//! [`runner`] contains the generators and the [`WorkloadResult`] they
//! produce (operations/second or MB/s, matching the units in the paper's
//! figures and tables).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod stacks;
pub mod untar;

pub use runner::{
    create_crossdir_micro, create_micro, delete_micro, fileserver, read_micro, read_micro_disjoint,
    rename_storm, varmail, write_micro, write_micro_disjoint, AccessPattern, WorkloadResult,
};
pub use stacks::{mount_stack, mount_stack_on_device, mount_stack_with, FsStack, MountedStack};
pub use untar::{generate_linux_like_manifest, untar, UntarEntry, UntarManifest};
