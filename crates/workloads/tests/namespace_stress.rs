//! Concurrency stress for the per-directory namespace locks.
//!
//! Both xv6 stacks replaced their per-mount namespace mutex with a
//! per-directory lock table (`simkernel::nslock`).  These tests hammer the
//! paths that now run under fine-grained locking — 8 threads renaming
//! between two shared directory pools, and 8 threads creating into a
//! shared pool — then unmount and run the offline fsck over the raw
//! device.  A locking bug (lost dirent, double-allocated inode, wrong
//! nlink) shows up as an fsck violation, not just a flaky count.
//!
//! Debug builds additionally run the thread-local lock-order checker on
//! every acquisition, so an ordering violation in `rename`'s pair
//! acquisition panics the worker outright.

use std::time::Duration;

use simkernel::cost::CostModel;
use workloads::{create_crossdir_micro, mount_stack, rename_storm, FsStack};

const THREADS: usize = 8;
const DISK_BLOCKS: u64 = 16_384;

#[test]
fn eight_thread_cross_directory_rename_storm_is_fsck_clean() {
    for stack in [FsStack::BentoXv6, FsStack::VfsXv6] {
        let mounted = mount_stack(stack, CostModel::zero(), DISK_BLOCKS)
            .unwrap_or_else(|e| panic!("mount {stack:?}: {e}"));
        let result = rename_storm(&mounted.vfs, THREADS, Duration::from_millis(300))
            .unwrap_or_else(|e| panic!("rename storm {stack:?}: {e}"));
        assert!(result.operations > 0, "{stack:?}: no renames completed");
        // Every thread's file survived the storm exactly once.
        let pool = THREADS.div_ceil(2).max(2);
        for t in 0..THREADS {
            let found: usize = (0..pool)
                .flat_map(|d| [format!("/xpool-a-{d}/mv-{t}"), format!("/xpool-b-{d}/mv-{t}")])
                .filter(|p| mounted.vfs.exists(p))
                .count();
            assert_eq!(found, 1, "{stack:?}: thread {t}'s file must exist exactly once");
        }
        mounted.unmount_and_check().unwrap_or_else(|e| panic!("fsck {stack:?}: {e}"));
    }
}

#[test]
fn eight_thread_shared_pool_creates_are_fsck_clean() {
    for stack in [FsStack::BentoXv6, FsStack::VfsXv6] {
        let mounted = mount_stack(stack, CostModel::zero(), DISK_BLOCKS)
            .unwrap_or_else(|e| panic!("mount {stack:?}: {e}"));
        let result = create_crossdir_micro(&mounted.vfs, 512, THREADS, Duration::from_millis(300))
            .unwrap_or_else(|e| panic!("crossdir create {stack:?}: {e}"));
        assert!(result.operations > 0, "{stack:?}: no creates completed");
        mounted.unmount_and_check().unwrap_or_else(|e| panic!("fsck {stack:?}: {e}"));
    }
}

#[test]
fn mixed_rename_and_create_traffic_is_fsck_clean() {
    // Renames and creates in flight at once: the pair guard (rename) and
    // single guards (create) interleave on the same directories.
    for stack in [FsStack::BentoXv6, FsStack::VfsXv6] {
        let mounted = mount_stack(stack, CostModel::zero(), DISK_BLOCKS)
            .unwrap_or_else(|e| panic!("mount {stack:?}: {e}"));
        let vfs = std::sync::Arc::clone(&mounted.vfs);
        let storm = std::thread::spawn(move || rename_storm(&vfs, 4, Duration::from_millis(250)));
        let created = create_crossdir_micro(&mounted.vfs, 512, 4, Duration::from_millis(250))
            .unwrap_or_else(|e| panic!("creates {stack:?}: {e}"));
        let renamed = storm.join().unwrap().unwrap_or_else(|e| panic!("renames {stack:?}: {e}"));
        assert!(created.operations > 0 && renamed.operations > 0, "{stack:?}");
        mounted.unmount_and_check().unwrap_or_else(|e| panic!("fsck {stack:?}: {e}"));
    }
}
