//! # ext4sim — the "commercial-grade" comparator
//!
//! The paper compares its xv6 implementations against ext4 mounted with
//! `data=journal` "to understand ballpark performance differences" (§6).
//! Real ext4 is far outside the scope of a reproduction, so this crate
//! provides a deliberately simplified journaling file system that captures
//! the properties responsible for ext4 beating xv6 in the paper's
//! macrobenchmarks:
//!
//! * a **JBD2-style journal with group commit**: operations join a running
//!   transaction; the transaction commits when it grows past a threshold,
//!   when an `fsync` demands durability, or at `sync`/unmount — instead of
//!   xv6's commit-per-operation;
//! * **`data=journal`** semantics: file data is journaled (written twice),
//!   like the paper's ext4 configuration and like xv6's log;
//! * **scoped fsync**: `fsync` forces one journal commit (one device
//!   flush), never a whole-file-system scan;
//! * a batched `write_pages` writeback path.
//!
//! Simplifications relative to real ext4 (documented in EXPERIMENTS.md):
//! directory and inode metadata are kept in memory and checkpointed to a
//! reserved metadata area at commit time rather than stored in block groups
//! with extent trees and htree directories.  The data path (allocation,
//! journaling, writeback, flushes) is fully device-backed, which is what the
//! macrobenchmarks measure.
//!
//! ## Crash consistency
//!
//! The checkpoint is what recovery reads, so it is written crash-safely:
//! two checkpoint *slots* alternate, each carrying a sequence number,
//! length, and an FNV-1a checksum of the serialized body, with the header
//! block written after the body.  Mount picks the highest-sequence slot
//! whose checksum verifies, so a crash that tears the in-progress
//! checkpoint falls back to the previous one.  To make that fallback safe,
//! freed blocks are *quarantined* until the checkpoint recording the free
//! is durable — a reused block can therefore never be referenced by any
//! checkpoint a crash might fall back to.  The quarantine is in-memory
//! only, so a crash can leak the quarantined blocks; the consistency
//! checker reports those as warnings (real e2fsck reclaims leaked blocks
//! the same way).
//!
//! ## Namespace locking (audit note)
//!
//! The two xv6 stacks use per-directory namespace locks
//! ([`simkernel::nslock`]) because their namespace operations do block I/O
//! (directory-entry reads/writes through the buffer cache) inside the
//! critical section, so a global lock would serialize device time across
//! unrelated directories.  ext4sim deliberately does **not** adopt them:
//! every namespace operation here (`create`, `mkdir`, `unlink`, `rmdir`,
//! `rename`, `link`) is a pure in-memory mutation of the single `Metadata`
//! map behind one `RwLock`, and all device I/O — `note_metadata_change`
//! journaling and quarantined frees — happens strictly *after* the metadata
//! guard is dropped.  The critical sections are a few `HashMap` operations
//! long; splitting them per directory would require sharding the one
//! `inodes` map (every inode lives behind the same `&mut Metadata`) for no
//! measurable win, and cross-directory rename would then need its own
//! ordering discipline.  If directory metadata ever moves onto the device
//! (block-group layout, htree directories), this decision must be
//! revisited.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use journal::checkpoint::DualSlotCheckpoint;
use simkernel::dev::BlockDevice;
use simkernel::error::{Errno, KernelError, KernelResult};
use simkernel::vfs::{
    DirEntry, FileMode, FileType, FilesystemType, InodeAttr, MountOptions, OpenFlags, SetAttr,
    StatFs, VfsFs, PAGE_SIZE,
};

/// Registered name of the simulated ext4.
pub const EXT4_NAME: &str = "ext4sim";

/// Journal area: blocks 1..=JOURNAL_BLOCKS hold journaled data, block 0 the
/// metadata checkpoint header.
const JOURNAL_START: u64 = 8;
/// Number of journal blocks (16 MiB).
const JOURNAL_BLOCKS: u64 = 4096;
/// Transaction commits automatically once it holds this many blocks.
const COMMIT_THRESHOLD_BLOCKS: usize = 2048;
/// Blocks reserved at the front of the device for the metadata checkpoints.
const METADATA_BLOCKS: u64 = 2048;
/// Each of the two alternating checkpoint slots owns half the area.
const CHECKPOINT_SLOT_BLOCKS: u64 = METADATA_BLOCKS / 2;
/// Identifies a checkpoint slot header.
const CHECKPOINT_MAGIC: u64 = 0x6578_7434_7369_6d21;

/// The dual-slot checkpoint layout, shared with the other stacks' journal
/// crate: slot geometry, header byte layout, and torn-slot rejection live
/// in [`DualSlotCheckpoint`]; ext4sim keeps the body serialization and the
/// sequence management.  The on-disk format is unchanged.
const CHECKPOINT: DualSlotCheckpoint = DualSlotCheckpoint {
    area_start: JOURNAL_START + JOURNAL_BLOCKS,
    slot_blocks: CHECKPOINT_SLOT_BLOCKS,
    block_size: PAGE_SIZE,
    magic: CHECKPOINT_MAGIC,
};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Ext4Inode {
    kind: u8, // 0 = file, 1 = directory
    size: u64,
    nlink: u32,
    /// file page index -> disk block
    blocks: BTreeMap<u64, u64>,
    /// directory entries (directories only)
    entries: BTreeMap<String, u64>,
}

impl Ext4Inode {
    fn new_file() -> Self {
        Ext4Inode { kind: 0, size: 0, nlink: 1, blocks: BTreeMap::new(), entries: BTreeMap::new() }
    }
    fn new_dir() -> Self {
        Ext4Inode { kind: 1, size: 0, nlink: 2, blocks: BTreeMap::new(), entries: BTreeMap::new() }
    }
    fn is_dir(&self) -> bool {
        self.kind == 1
    }
    fn attr(&self, ino: u64) -> InodeAttr {
        InodeAttr {
            ino,
            kind: if self.is_dir() { FileType::Directory } else { FileType::Regular },
            size: self.size,
            nlink: self.nlink,
            blocks: (self.blocks.len() as u64) * (PAGE_SIZE as u64 / 512),
            perm: if self.is_dir() { 0o755 } else { 0o644 },
        }
    }
}

#[derive(Debug, Default, Serialize, Deserialize)]
struct Metadata {
    inodes: HashMap<u64, Ext4Inode>,
    next_ino: u64,
    next_block: u64,
    free_blocks: Vec<u64>,
}

/// A running (uncommitted) journal transaction.
#[derive(Debug, Default)]
struct Transaction {
    /// (home block, contents) pairs queued for the next commit.
    blocks: Vec<(u64, Vec<u8>)>,
    /// Whether metadata changed since the last commit.
    metadata_dirty: bool,
}

/// Journal statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Committed transactions.
    pub commits: u64,
    /// Blocks written through the journal.
    pub blocks_journaled: u64,
}

/// Outcome of [`Ext4Sim::check_consistency`].
#[derive(Debug, Default)]
pub struct ConsistencyReport {
    /// Structural invariant violations.
    pub errors: Vec<String>,
    /// Blocks neither claimed by an inode nor on the free list (legal
    /// residue of a crash while frees were quarantined).
    pub leaked_blocks: u64,
}

impl ConsistencyReport {
    /// Whether the metadata satisfied every checked invariant (leaks are
    /// tolerated).
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// The simplified ext4-like file system.
pub struct Ext4Sim {
    dev: Arc<dyn BlockDevice>,
    /// All metadata (inodes, directories, free list) behind one lock.  This
    /// is intentionally *not* per-directory: critical sections are pure
    /// in-memory map mutations with device I/O done after the guard drops —
    /// see the "Namespace locking" module docs before changing this.
    meta: RwLock<Metadata>,
    txn: Mutex<Transaction>,
    stats: Mutex<JournalStats>,
    data_start: u64,
    /// Serializes commits (the two checkpoint slots alternate).
    commit_lock: Mutex<()>,
    /// Sequence number of the most recent durable checkpoint.
    checkpoint_seq: AtomicU64,
    /// Blocks freed since the last durable checkpoint: they only return to
    /// the allocatable free list once the checkpoint recording their
    /// release is on disk, so a crash-time fallback to an older checkpoint
    /// never finds its referenced blocks overwritten by a reuse.
    pending_free: Mutex<Vec<u64>>,
}

impl std::fmt::Debug for Ext4Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ext4Sim").field("stats", &*self.stats.lock()).finish_non_exhaustive()
    }
}

impl Ext4Sim {
    /// Formats `device` with an empty file system (root directory only) and
    /// mounts it.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Inval`] for devices too small to hold the journal
    /// and metadata areas.
    pub fn format_and_mount(device: Arc<dyn BlockDevice>) -> KernelResult<Arc<Self>> {
        let data_start = JOURNAL_START + JOURNAL_BLOCKS + METADATA_BLOCKS;
        if device.num_blocks() <= data_start + 16 {
            return Err(KernelError::with_context(Errno::Inval, "ext4sim: device too small"));
        }
        let mut meta = Metadata { next_ino: 2, next_block: data_start, ..Metadata::default() };
        meta.inodes.insert(1, Ext4Inode::new_dir());
        let fs = Arc::new(Ext4Sim {
            dev: device,
            meta: RwLock::new(meta),
            txn: Mutex::new(Transaction::default()),
            stats: Mutex::new(JournalStats::default()),
            data_start,
            commit_lock: Mutex::new(()),
            checkpoint_seq: AtomicU64::new(0),
            pending_free: Mutex::new(Vec::new()),
        });
        fs.checkpoint_metadata()?;
        fs.dev.flush()?;
        Ok(fs)
    }

    /// Mounts a previously formatted device (reads the newest valid
    /// metadata checkpoint, falling back across a torn one).
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Inval`] if neither checkpoint slot is valid.
    pub fn mount(device: Arc<dyn BlockDevice>) -> KernelResult<Arc<Self>> {
        let data_start = JOURNAL_START + JOURNAL_BLOCKS + METADATA_BLOCKS;
        let (seq, meta) = Self::load_metadata(&device)?;
        Ok(Arc::new(Ext4Sim {
            dev: device,
            meta: RwLock::new(meta),
            txn: Mutex::new(Transaction::default()),
            stats: Mutex::new(JournalStats::default()),
            data_start,
            commit_lock: Mutex::new(()),
            checkpoint_seq: AtomicU64::new(seq),
            pending_free: Mutex::new(Vec::new()),
        }))
    }

    /// Journal statistics (for the experiment harness).
    pub fn journal_stats(&self) -> JournalStats {
        *self.stats.lock()
    }

    /// Reads one checkpoint slot; `None` if it is absent, torn, or
    /// unparsable.
    fn load_slot(
        device: &Arc<dyn BlockDevice>,
        slot: u64,
    ) -> KernelResult<Option<(u64, Metadata)>> {
        // Slot geometry and torn-slot rejection (checksum mismatch: the
        // header persisted but part of the body did not, or vice versa —
        // the other slot is authoritative) live in the shared layout.
        let Some((seq, raw)) = CHECKPOINT.load_slot(&**device, slot)? else {
            return Ok(None);
        };
        match serde_json::from_slice(&raw) {
            Ok(meta) => Ok(Some((seq, meta))),
            Err(_) => Ok(None),
        }
    }

    fn load_metadata(device: &Arc<dyn BlockDevice>) -> KernelResult<(u64, Metadata)> {
        let mut best: Option<(u64, Metadata)> = None;
        for slot in 0..2 {
            if let Some((seq, meta)) = Self::load_slot(device, slot)? {
                if best.as_ref().is_none_or(|(best_seq, _)| seq > *best_seq) {
                    best = Some((seq, meta));
                }
            }
        }
        best.ok_or_else(|| {
            KernelError::with_context(Errno::Inval, "ext4sim: no valid metadata checkpoint")
        })
    }

    /// Writes the next checkpoint into the slot *not* holding the current
    /// one: body blocks first, header (magic, seq, length, body checksum)
    /// last, so recovery can always tell a complete checkpoint from a torn
    /// one and fall back.  The caller is responsible for the surrounding
    /// barrier; this function does not flush.
    fn checkpoint_metadata(&self) -> KernelResult<()> {
        let raw = serde_json::to_vec(&*self.meta.read())
            .map_err(|_| KernelError::with_context(Errno::Io, "ext4sim: metadata serialization"))?;
        if raw.len() > CHECKPOINT.max_body_len() {
            return Err(KernelError::with_context(Errno::NoSpc, "ext4sim: metadata area full"));
        }
        let seq = self.checkpoint_seq.load(Ordering::Relaxed) + 1;
        CHECKPOINT.write(&*self.dev, seq, &raw)?;
        self.checkpoint_seq.store(seq, Ordering::Relaxed);
        Ok(())
    }

    /// Quarantines freed blocks until the next checkpoint is durable.
    fn quarantine_free(&self, blocks: impl IntoIterator<Item = u64>) {
        self.pending_free.lock().extend(blocks);
    }

    fn alloc_block(&self, meta: &mut Metadata) -> KernelResult<u64> {
        if let Some(b) = meta.free_blocks.pop() {
            return Ok(b);
        }
        if meta.next_block >= self.dev.num_blocks() {
            return Err(KernelError::with_context(Errno::NoSpc, "ext4sim: out of space"));
        }
        let b = meta.next_block;
        meta.next_block += 1;
        Ok(b)
    }

    fn inode_attr(&self, ino: u64) -> KernelResult<InodeAttr> {
        let meta = self.meta.read();
        let inode = meta.inodes.get(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
        Ok(inode.attr(ino))
    }

    /// Queues a data block write into the running transaction, committing
    /// when the transaction is large enough.
    fn journal_block(&self, home: u64, data: Vec<u8>) -> KernelResult<()> {
        let should_commit = {
            let _stage = simkernel::trace::phase(simkernel::trace::Phase::LogStage);
            let mut txn = self.txn.lock();
            txn.blocks.push((home, data));
            txn.blocks.len() >= COMMIT_THRESHOLD_BLOCKS
        };
        if should_commit {
            self.commit()?;
        }
        Ok(())
    }

    fn note_metadata_change(&self) {
        self.txn.lock().metadata_dirty = true;
    }

    /// Commits the running transaction: journal writes, flush (commit
    /// record), install to home locations, metadata checkpoint, flush.
    /// Once the final barrier lands, the quarantined frees of earlier
    /// transactions become allocatable again.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn commit(&self) -> KernelResult<()> {
        // The committer's clock carries the whole transaction: waiting for
        // the commit lock and writing the journal/install/checkpoint
        // barriers are all commit wait (device time nests under dev-io).
        let _commit = simkernel::trace::phase(simkernel::trace::Phase::CommitWait);
        // One commit at a time: interleaved checkpoints would race on the
        // alternating slots.
        let _serial = self.commit_lock.lock();
        let (blocks, metadata_dirty) = {
            let mut txn = self.txn.lock();
            if txn.blocks.is_empty() && !txn.metadata_dirty {
                return Ok(());
            }
            (std::mem::take(&mut txn.blocks), std::mem::take(&mut txn.metadata_dirty))
        };
        // 1. Journal the data (data=journal: every block is written to the
        //    journal area first).
        for (i, (_, data)) in blocks.iter().enumerate() {
            let slot = JOURNAL_START + (i as u64 % JOURNAL_BLOCKS);
            self.dev.write_block(slot, data)?;
        }
        // 2. Commit record / barrier.
        self.dev.flush()?;
        // 3. Install to home locations.
        for (home, data) in &blocks {
            self.dev.write_block(*home, data)?;
        }
        // 4. Checkpoint metadata if it changed, then barrier.  Drain the
        //    quarantine *before* serializing: a block in the quarantine now
        //    had its metadata removal completed earlier, so the checkpoint
        //    we are about to write records it as gone; blocks freed by
        //    concurrent operations after this point stay quarantined for
        //    the next checkpoint (the checkpoint being written might not
        //    record their removal yet).
        let released = if metadata_dirty {
            std::mem::take(&mut *self.pending_free.lock())
        } else {
            Vec::new()
        };
        if metadata_dirty {
            self.checkpoint_metadata()?;
        }
        self.dev.flush()?;
        // 5. The checkpoint recording the drained frees is durable: they
        //    are safe to reallocate.
        if !released.is_empty() {
            self.meta.write().free_blocks.extend(released);
        }
        let mut stats = self.stats.lock();
        stats.commits += 1;
        stats.blocks_journaled += blocks.len() as u64;
        Ok(())
    }

    /// Verifies the structural invariants of the in-memory metadata (after
    /// a crash-image mount, this is the recovered checkpoint): directory
    /// tree connectivity, reference/link-count agreement, and block
    /// ownership (no double claims, no free-list overlap, no out-of-range
    /// blocks).  Blocks that are neither claimed nor free are *leaked* —
    /// the legal residue of the free-quarantine dying in a crash — and are
    /// counted, not treated as errors.
    pub fn check_consistency(&self) -> ConsistencyReport {
        let meta = self.meta.read();
        let pending: HashSet<u64> = self.pending_free.lock().iter().copied().collect();
        let mut report = ConsistencyReport::default();
        if !meta.inodes.get(&1).is_some_and(|i| i.is_dir()) {
            report.errors.push("root inode missing or not a directory".to_string());
            return report;
        }
        // Walk the tree: reference counts and reachability.
        let mut refs: HashMap<u64, u64> = HashMap::new();
        let mut reached: HashSet<u64> = HashSet::new();
        let mut queue = vec![1u64];
        while let Some(ino) = queue.pop() {
            if !reached.insert(ino) {
                report.errors.push(format!("directory {ino} reached twice (cycle or double link)"));
                continue;
            }
            let Some(dir) = meta.inodes.get(&ino) else { continue };
            for (name, child) in &dir.entries {
                match meta.inodes.get(child) {
                    None => report.errors.push(format!(
                        "dir {ino}: entry '{name}' references missing inode {child}"
                    )),
                    Some(target) => {
                        *refs.entry(*child).or_default() += 1;
                        if target.is_dir() {
                            queue.push(*child);
                        }
                    }
                }
            }
        }
        // Link counts and block claims.
        let mut claims: HashMap<u64, u64> = HashMap::new();
        for (&ino, inode) in &meta.inodes {
            let r = refs.get(&ino).copied().unwrap_or(0);
            if ino != 1 && r == 0 {
                report.errors.push(format!("inode {ino} is unreachable from the root"));
            }
            if inode.is_dir() {
                if r > 1 {
                    report.errors.push(format!("directory {ino} referenced {r} times"));
                }
                let subdirs = inode
                    .entries
                    .values()
                    .filter(|c| meta.inodes.get(c).is_some_and(|i| i.is_dir()))
                    .count() as u32;
                if inode.nlink != 2 + subdirs {
                    report.errors.push(format!(
                        "directory {ino}: nlink {} != 2 + {subdirs} subdirs",
                        inode.nlink
                    ));
                }
            } else if inode.nlink as u64 != r {
                report
                    .errors
                    .push(format!("file {ino}: nlink {} != {r} referencing entries", inode.nlink));
            }
            let size_pages = inode.size.div_ceil(PAGE_SIZE as u64);
            for (&page, &block) in &inode.blocks {
                if block < self.data_start || block >= meta.next_block {
                    report.errors.push(format!("inode {ino} maps out-of-range block {block}"));
                }
                if page >= size_pages {
                    report
                        .errors
                        .push(format!("inode {ino} maps page {page} past its size {}", inode.size));
                }
                if let Some(prev) = claims.insert(block, ino) {
                    report
                        .errors
                        .push(format!("block {block} doubly claimed by inodes {prev} and {ino}"));
                }
            }
        }
        // Free list vs claims, then the leak census.
        let mut free: HashSet<u64> = HashSet::new();
        for &b in &meta.free_blocks {
            if b < self.data_start || b >= meta.next_block {
                report.errors.push(format!("free list holds out-of-range block {b}"));
            }
            if !free.insert(b) {
                report.errors.push(format!("block {b} appears twice in the free list"));
            }
            if let Some(owner) = claims.get(&b) {
                report.errors.push(format!("block {b} is both free and claimed by inode {owner}"));
            }
        }
        for b in self.data_start..meta.next_block {
            if !claims.contains_key(&b) && !free.contains(&b) && !pending.contains(&b) {
                report.leaked_blocks += 1;
            }
        }
        report
    }

    fn lookup_in(&self, dir: u64, name: &str) -> KernelResult<u64> {
        let meta = self.meta.read();
        let parent = meta.inodes.get(&dir).ok_or(KernelError::new(Errno::NoEnt))?;
        if !parent.is_dir() {
            return Err(KernelError::new(Errno::NotDir));
        }
        parent.entries.get(name).copied().ok_or(KernelError::new(Errno::NoEnt))
    }
}

impl VfsFs for Ext4Sim {
    fn fs_name(&self) -> &str {
        EXT4_NAME
    }

    fn root_ino(&self) -> u64 {
        1
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        // Lets the metrics-publishing harness recover the concrete handle
        // and absorb [`Ext4Sim::journal_stats`] into the unified registry.
        Some(self)
    }

    fn lookup(&self, dir: u64, name: &str) -> KernelResult<InodeAttr> {
        let ino = self.lookup_in(dir, name)?;
        self.inode_attr(ino)
    }

    fn getattr(&self, ino: u64) -> KernelResult<InodeAttr> {
        self.inode_attr(ino)
    }

    fn setattr(&self, ino: u64, set: &SetAttr) -> KernelResult<InodeAttr> {
        if let Some(size) = set.size {
            let mut meta = self.meta.write();
            let inode = meta.inodes.get_mut(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
            if inode.is_dir() {
                return Err(KernelError::new(Errno::IsDir));
            }
            let mut freed = Vec::new();
            if size < inode.size {
                let first_invalid = size.div_ceil(PAGE_SIZE as u64);
                freed.extend(inode.blocks.range(first_invalid..).map(|(_, b)| *b));
                inode.blocks.retain(|page, _| *page < first_invalid);
            }
            inode.size = size;
            drop(meta);
            self.quarantine_free(freed);
            self.note_metadata_change();
        }
        self.inode_attr(ino)
    }

    fn create(&self, dir: u64, name: &str, _mode: FileMode) -> KernelResult<InodeAttr> {
        let mut meta = self.meta.write();
        let ino = meta.next_ino;
        {
            let parent = meta.inodes.get_mut(&dir).ok_or(KernelError::new(Errno::NoEnt))?;
            if !parent.is_dir() {
                return Err(KernelError::new(Errno::NotDir));
            }
            if parent.entries.contains_key(name) {
                return Err(KernelError::new(Errno::Exist));
            }
            parent.entries.insert(name.to_string(), ino);
        }
        meta.next_ino += 1;
        meta.inodes.insert(ino, Ext4Inode::new_file());
        drop(meta);
        self.note_metadata_change();
        self.inode_attr(ino)
    }

    fn mkdir(&self, dir: u64, name: &str, _mode: FileMode) -> KernelResult<InodeAttr> {
        let mut meta = self.meta.write();
        let ino = meta.next_ino;
        {
            let parent = meta.inodes.get_mut(&dir).ok_or(KernelError::new(Errno::NoEnt))?;
            if !parent.is_dir() {
                return Err(KernelError::new(Errno::NotDir));
            }
            if parent.entries.contains_key(name) {
                return Err(KernelError::new(Errno::Exist));
            }
            parent.entries.insert(name.to_string(), ino);
            parent.nlink += 1;
        }
        meta.next_ino += 1;
        meta.inodes.insert(ino, Ext4Inode::new_dir());
        drop(meta);
        self.note_metadata_change();
        self.inode_attr(ino)
    }

    fn unlink(&self, dir: u64, name: &str) -> KernelResult<()> {
        let mut meta = self.meta.write();
        let ino = {
            let parent = meta.inodes.get_mut(&dir).ok_or(KernelError::new(Errno::NoEnt))?;
            let ino = *parent.entries.get(name).ok_or(KernelError::new(Errno::NoEnt))?;
            if meta.inodes.get(&ino).is_some_and(|i| i.is_dir()) {
                return Err(KernelError::new(Errno::IsDir));
            }
            meta.inodes.get_mut(&dir).expect("parent exists").entries.remove(name);
            ino
        };
        let remove = {
            let inode = meta.inodes.get_mut(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
            inode.nlink = inode.nlink.saturating_sub(1);
            inode.nlink == 0
        };
        let mut freed = Vec::new();
        if remove {
            if let Some(inode) = meta.inodes.remove(&ino) {
                freed.extend(inode.blocks.values().copied());
            }
        }
        drop(meta);
        self.quarantine_free(freed);
        self.note_metadata_change();
        Ok(())
    }

    fn rmdir(&self, dir: u64, name: &str) -> KernelResult<()> {
        let mut meta = self.meta.write();
        let ino = {
            let parent = meta.inodes.get(&dir).ok_or(KernelError::new(Errno::NoEnt))?;
            *parent.entries.get(name).ok_or(KernelError::new(Errno::NoEnt))?
        };
        {
            let target = meta.inodes.get(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
            if !target.is_dir() {
                return Err(KernelError::new(Errno::NotDir));
            }
            if !target.entries.is_empty() {
                return Err(KernelError::new(Errno::NotEmpty));
            }
        }
        meta.inodes.remove(&ino);
        let parent = meta.inodes.get_mut(&dir).expect("parent exists");
        parent.entries.remove(name);
        parent.nlink = parent.nlink.saturating_sub(1);
        drop(meta);
        self.note_metadata_change();
        Ok(())
    }

    fn rename(&self, olddir: u64, oldname: &str, newdir: u64, newname: &str) -> KernelResult<()> {
        let mut meta = self.meta.write();
        let src = {
            let parent = meta.inodes.get(&olddir).ok_or(KernelError::new(Errno::NoEnt))?;
            *parent.entries.get(oldname).ok_or(KernelError::new(Errno::NoEnt))?
        };
        // Replace target if present.
        let mut freed = Vec::new();
        if let Some(target) = meta.inodes.get(&newdir).and_then(|p| p.entries.get(newname)).copied()
        {
            if target != src {
                let target_inode =
                    meta.inodes.get(&target).ok_or(KernelError::new(Errno::NoEnt))?;
                if target_inode.is_dir() && !target_inode.entries.is_empty() {
                    return Err(KernelError::new(Errno::NotEmpty));
                }
                if let Some(removed) = meta.inodes.remove(&target) {
                    if removed.is_dir() {
                        if let Some(parent) = meta.inodes.get_mut(&newdir) {
                            parent.nlink = parent.nlink.saturating_sub(1);
                        }
                    }
                    freed.extend(removed.blocks.values().copied());
                }
            }
        }
        // A directory moved across parents takes its back-reference along.
        if olddir != newdir && meta.inodes.get(&src).is_some_and(|i| i.is_dir()) {
            if let Some(old_parent) = meta.inodes.get_mut(&olddir) {
                old_parent.nlink = old_parent.nlink.saturating_sub(1);
            }
            if let Some(new_parent) = meta.inodes.get_mut(&newdir) {
                new_parent.nlink += 1;
            }
        }
        meta.inodes.get_mut(&olddir).ok_or(KernelError::new(Errno::NoEnt))?.entries.remove(oldname);
        meta.inodes
            .get_mut(&newdir)
            .ok_or(KernelError::new(Errno::NoEnt))?
            .entries
            .insert(newname.to_string(), src);
        drop(meta);
        self.quarantine_free(freed);
        self.note_metadata_change();
        Ok(())
    }

    fn link(&self, ino: u64, newdir: u64, newname: &str) -> KernelResult<InodeAttr> {
        let mut meta = self.meta.write();
        match meta.inodes.get(&ino) {
            None => return Err(KernelError::new(Errno::NoEnt)),
            Some(inode) if inode.is_dir() => return Err(KernelError::new(Errno::Perm)),
            Some(_) => {}
        }
        {
            let parent = meta.inodes.get_mut(&newdir).ok_or(KernelError::new(Errno::NoEnt))?;
            if parent.entries.contains_key(newname) {
                return Err(KernelError::new(Errno::Exist));
            }
            parent.entries.insert(newname.to_string(), ino);
        }
        let inode = meta.inodes.get_mut(&ino).expect("checked above");
        inode.nlink += 1;
        let attr = inode.attr(ino);
        drop(meta);
        self.note_metadata_change();
        Ok(attr)
    }

    fn open(&self, ino: u64, _flags: OpenFlags) -> KernelResult<u64> {
        self.inode_attr(ino)?;
        Ok(ino)
    }

    fn release(&self, _ino: u64, _fh: u64) -> KernelResult<()> {
        Ok(())
    }

    fn readdir(&self, ino: u64) -> KernelResult<Vec<DirEntry>> {
        let meta = self.meta.read();
        let dir = meta.inodes.get(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
        if !dir.is_dir() {
            return Err(KernelError::new(Errno::NotDir));
        }
        let mut out = vec![
            DirEntry { ino, name: ".".to_string(), kind: FileType::Directory },
            DirEntry { ino: 1, name: "..".to_string(), kind: FileType::Directory },
        ];
        for (name, child) in &dir.entries {
            let kind = if meta.inodes.get(child).is_some_and(|i| i.is_dir()) {
                FileType::Directory
            } else {
                FileType::Regular
            };
            out.push(DirEntry { ino: *child, name: name.clone(), kind });
        }
        Ok(out)
    }

    fn read_page(&self, ino: u64, page_index: u64, buf: &mut [u8]) -> KernelResult<usize> {
        let (block, size) = {
            let meta = self.meta.read();
            let inode = meta.inodes.get(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
            (inode.blocks.get(&page_index).copied(), inode.size)
        };
        let offset = page_index * PAGE_SIZE as u64;
        if offset >= size {
            return Ok(0);
        }
        let valid = ((size - offset) as usize).min(PAGE_SIZE).min(buf.len());
        match block {
            Some(b) => {
                let mut page = vec![0u8; PAGE_SIZE];
                self.dev.read_block(b, &mut page)?;
                buf[..valid].copy_from_slice(&page[..valid]);
            }
            None => buf[..valid].fill(0),
        }
        Ok(valid)
    }

    fn write_page(
        &self,
        ino: u64,
        page_index: u64,
        data: &[u8],
        file_size: u64,
    ) -> KernelResult<()> {
        self.write_pages(ino, page_index, &[data], file_size)
    }

    fn write_pages(
        &self,
        ino: u64,
        start_page: u64,
        pages: &[&[u8]],
        file_size: u64,
    ) -> KernelResult<()> {
        // Allocate (or reuse) a block per page, queue the data into the
        // running journal transaction (data=journal).
        let mut queued = Vec::with_capacity(pages.len());
        {
            let mut meta = self.meta.write();
            for (i, page) in pages.iter().enumerate() {
                let page_index = start_page + i as u64;
                if page_index * PAGE_SIZE as u64 >= file_size {
                    break;
                }
                let block = match meta
                    .inodes
                    .get(&ino)
                    .ok_or(KernelError::new(Errno::NoEnt))?
                    .blocks
                    .get(&page_index)
                {
                    Some(b) => *b,
                    None => {
                        let b = self.alloc_block(&mut meta)?;
                        meta.inodes.get_mut(&ino).expect("exists").blocks.insert(page_index, b);
                        b
                    }
                };
                let mut full = vec![0u8; PAGE_SIZE];
                full[..page.len().min(PAGE_SIZE)]
                    .copy_from_slice(&page[..page.len().min(PAGE_SIZE)]);
                queued.push((block, full));
            }
            let inode = meta.inodes.get_mut(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
            inode.size = inode.size.max(file_size);
        }
        self.note_metadata_change();
        for (block, data) in queued {
            self.journal_block(block, data)?;
        }
        Ok(())
    }

    fn supports_writepages(&self) -> bool {
        true
    }

    fn fsync(&self, _ino: u64, _datasync: bool) -> KernelResult<()> {
        // Scoped durability: force one commit of the running transaction.
        self.commit()
    }

    fn statfs(&self) -> KernelResult<StatFs> {
        let meta = self.meta.read();
        let total = self.dev.num_blocks() - self.data_start;
        let used =
            (meta.next_block - self.data_start).saturating_sub(meta.free_blocks.len() as u64);
        Ok(StatFs {
            total_blocks: total,
            free_blocks: total.saturating_sub(used),
            block_size: PAGE_SIZE as u32,
            total_inodes: u32::MAX as u64,
            free_inodes: u32::MAX as u64 - meta.inodes.len() as u64,
            name_max: 255,
        })
    }

    fn sync_fs(&self) -> KernelResult<()> {
        self.commit()
    }

    fn destroy(&self) -> KernelResult<()> {
        self.commit()
    }
}

/// Mountable type for [`Ext4Sim`].  Mount formats the device if it does not
/// contain a valid metadata checkpoint (convenient for benchmarks), unless
/// the `"format"` option is explicitly `"never"`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Ext4FilesystemType;

impl FilesystemType for Ext4FilesystemType {
    fn fs_name(&self) -> &str {
        EXT4_NAME
    }

    fn mount(
        &self,
        device: Arc<dyn BlockDevice>,
        options: &MountOptions,
    ) -> KernelResult<Arc<dyn VfsFs>> {
        match Ext4Sim::mount(Arc::clone(&device)) {
            Ok(fs) => Ok(fs as Arc<dyn VfsFs>),
            Err(_) if options.get("format") != Some("never") => {
                Ok(Ext4Sim::format_and_mount(device)? as Arc<dyn VfsFs>)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::dev::RamDisk;
    use simkernel::vfs::{OpenFlags, Vfs};

    fn fresh() -> Arc<Ext4Sim> {
        Ext4Sim::format_and_mount(Arc::new(RamDisk::new(4096, 32_768))).unwrap()
    }

    #[test]
    fn create_write_read_and_group_commit() {
        let fs = fresh();
        let f = fs.create(1, "a", FileMode::regular()).unwrap();
        let page = vec![0x21u8; PAGE_SIZE];
        fs.write_page(f.ino, 0, &page, 500).unwrap();
        // No fsync yet: nothing committed.
        assert_eq!(fs.journal_stats().commits, 0);
        fs.fsync(f.ino, false).unwrap();
        assert_eq!(fs.journal_stats().commits, 1);
        let mut buf = vec![0u8; PAGE_SIZE];
        assert_eq!(fs.read_page(f.ino, 0, &mut buf).unwrap(), 500);
        assert!(buf[..500].iter().all(|&b| b == 0x21));
    }

    #[test]
    fn many_ops_batch_into_few_commits() {
        let fs = fresh();
        for i in 0..200 {
            let f = fs.create(1, &format!("f{i}"), FileMode::regular()).unwrap();
            fs.write_page(f.ino, 0, &vec![1u8; PAGE_SIZE], PAGE_SIZE as u64).unwrap();
        }
        fs.sync_fs().unwrap();
        // Group commit: 200 creates+writes collapse into very few commits.
        assert!(fs.journal_stats().commits <= 2, "commits: {}", fs.journal_stats().commits);
    }

    #[test]
    fn data_survives_remount_after_sync() {
        let dev = Arc::new(RamDisk::new(4096, 32_768));
        {
            let fs = Ext4Sim::format_and_mount(Arc::clone(&dev) as Arc<dyn BlockDevice>).unwrap();
            let f = fs.create(1, "persist", FileMode::regular()).unwrap();
            fs.write_page(f.ino, 0, &vec![0x55u8; PAGE_SIZE], 4096).unwrap();
            fs.sync_fs().unwrap();
        }
        let fs = Ext4Sim::mount(dev as Arc<dyn BlockDevice>).unwrap();
        let f = fs.lookup(1, "persist").unwrap();
        assert_eq!(f.size, 4096);
        let mut buf = vec![0u8; PAGE_SIZE];
        fs.read_page(f.ino, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x55));
        assert!(fs.check_consistency().is_clean(), "{:?}", fs.check_consistency().errors);
    }

    #[test]
    fn checkpoints_alternate_and_survive_a_torn_slot() {
        let dev = Arc::new(RamDisk::new(4096, 32_768));
        {
            let fs = Ext4Sim::format_and_mount(Arc::clone(&dev) as Arc<dyn BlockDevice>).unwrap();
            let f = fs.create(1, "keep", FileMode::regular()).unwrap();
            fs.write_page(f.ino, 0, &vec![0x11u8; PAGE_SIZE], 100).unwrap();
            fs.sync_fs().unwrap(); // checkpoint seq 2 (slot 0; format wrote seq 1)
            fs.create(1, "later", FileMode::regular()).unwrap();
            fs.sync_fs().unwrap(); // checkpoint seq 3 (slot 1)
        }
        // Tear the newest checkpoint (slot 1 = seq 3): corrupt one body
        // byte so its checksum no longer verifies.
        let slot1_body = JOURNAL_START + JOURNAL_BLOCKS + CHECKPOINT_SLOT_BLOCKS + 1;
        let mut block = vec![0u8; PAGE_SIZE];
        dev.read_block(slot1_body, &mut block).unwrap();
        block[0] ^= 0xFF;
        dev.write_block(slot1_body, &block).unwrap();
        // Mount falls back to seq 2: "keep" exists, "later" is gone, and
        // the recovered metadata is structurally consistent.
        let fs = Ext4Sim::mount(Arc::clone(&dev) as Arc<dyn BlockDevice>).unwrap();
        assert_eq!(fs.lookup(1, "keep").unwrap().size, 100);
        assert_eq!(fs.lookup(1, "later").unwrap_err().errno(), Errno::NoEnt);
        assert!(fs.check_consistency().is_clean(), "{:?}", fs.check_consistency().errors);
    }

    #[test]
    fn consistency_checker_flags_planted_corruption() {
        let fs = fresh();
        let a = fs.create(1, "a", FileMode::regular()).unwrap();
        let b = fs.create(1, "b", FileMode::regular()).unwrap();
        fs.write_page(a.ino, 0, &vec![1u8; PAGE_SIZE], PAGE_SIZE as u64).unwrap();
        fs.write_page(b.ino, 0, &vec![2u8; PAGE_SIZE], PAGE_SIZE as u64).unwrap();
        fs.sync_fs().unwrap();
        assert!(fs.check_consistency().is_clean());
        // Plant a double claim: point b's page at a's block.
        {
            let mut meta = fs.meta.write();
            let a_block = *meta.inodes.get(&a.ino).unwrap().blocks.get(&0).unwrap();
            meta.inodes.get_mut(&b.ino).unwrap().blocks.insert(0, a_block);
        }
        let report = fs.check_consistency();
        assert!(report.errors.iter().any(|e| e.contains("doubly claimed")), "{:?}", report.errors);
    }

    #[test]
    fn namespace_ops_and_errors() {
        let fs = fresh();
        let d = fs.mkdir(1, "d", FileMode::directory()).unwrap();
        fs.create(d.ino, "f", FileMode::regular()).unwrap();
        assert_eq!(fs.rmdir(1, "d").unwrap_err().errno(), Errno::NotEmpty);
        fs.rename(d.ino, "f", 1, "g").unwrap();
        fs.rmdir(1, "d").unwrap();
        fs.unlink(1, "g").unwrap();
        assert_eq!(fs.lookup(1, "g").unwrap_err().errno(), Errno::NoEnt);
        assert_eq!(fs.create(1, "x", FileMode::regular()).unwrap().nlink, 1);
        assert_eq!(fs.create(1, "x", FileMode::regular()).unwrap_err().errno(), Errno::Exist);
    }

    #[test]
    fn truncate_returns_blocks() {
        let fs = fresh();
        let f = fs.create(1, "t", FileMode::regular()).unwrap();
        let pages: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; PAGE_SIZE]).collect();
        let refs: Vec<&[u8]> = pages.iter().map(|p| p.as_slice()).collect();
        fs.write_pages(f.ino, 0, &refs, (8 * PAGE_SIZE) as u64).unwrap();
        fs.sync_fs().unwrap();
        let free_before = fs.statfs().unwrap().free_blocks;
        fs.setattr(f.ino, &SetAttr::truncate(PAGE_SIZE as u64)).unwrap();
        // Freed blocks are quarantined until the checkpoint recording the
        // truncate is durable; the next commit releases them.
        assert_eq!(fs.statfs().unwrap().free_blocks, free_before);
        fs.sync_fs().unwrap();
        assert!(fs.statfs().unwrap().free_blocks > free_before);
        assert!(fs.check_consistency().is_clean());
    }

    #[test]
    fn full_stack_through_vfs() {
        let vfs = Vfs::default();
        vfs.register_filesystem(Arc::new(Ext4FilesystemType)).unwrap();
        vfs.mount(EXT4_NAME, Arc::new(RamDisk::new(4096, 32_768)), "/", &MountOptions::default())
            .unwrap();
        vfs.mkdir("/var").unwrap();
        let fd = vfs.open("/var/log.txt", OpenFlags::RDWR.with(OpenFlags::CREAT)).unwrap();
        vfs.write(fd, &vec![9u8; 100_000]).unwrap();
        vfs.fsync(fd).unwrap();
        vfs.close(fd).unwrap();
        assert_eq!(vfs.stat("/var/log.txt").unwrap().size, 100_000);
        vfs.unmount("/").unwrap();
    }
}
