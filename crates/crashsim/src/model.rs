//! The workload-side model tracker and the logical durability oracle.
//!
//! While the randomized workload drives a mounted file system, a
//! [`WorkloadModel`] mirrors every operation in memory.  Each time an
//! `fsync` completes, the model snapshots its state together with the
//! device event count at that instant.  After a crash image is recovered,
//! [`WorkloadModel::verify`] picks the newest snapshot the crash state is
//! obliged to honour (its fsync completed within the state's durable
//! prefix) and checks:
//!
//! * every file/directory in that snapshot that was **not touched after
//!   the snapshot** still exists with byte-identical content — fsync'd
//!   data must survive;
//! * nothing that was deleted before the snapshot has been resurrected,
//!   and every object on disk is accounted for (in the snapshot, or
//!   created/touched after it — a crash may legitimately surface those in
//!   either their old or new form, so only their existence is excused,
//!   not used as evidence).
//!
//! Objects touched after the snapshot are exempt from the byte-for-byte
//! check: the crash cut their updates at an arbitrary point, and any of
//! old/new/absent is legal for data that was never fsync'd.

use std::collections::{BTreeMap, BTreeSet};

use simkernel::error::{Errno, KernelResult};
use simkernel::vfs::{FileType, VfsFs, PAGE_SIZE};

/// In-memory mirror of the tree the workload has built.
#[derive(Debug, Default, Clone)]
pub struct TreeState {
    /// Path → expected content (paths are `/`-joined, root-relative).
    pub files: BTreeMap<String, Vec<u8>>,
    /// Directory paths.
    pub dirs: BTreeSet<String>,
}

/// One durability point: the model state at a completed fsync.
#[derive(Debug, Clone)]
pub struct StableSnapshot {
    /// The tree as of this fsync.
    pub tree: TreeState,
    /// Index of the workload operation that issued the fsync.
    pub op_index: usize,
    /// Device event count when the fsync returned: a crash state honours
    /// this snapshot iff its durable prefix reaches at least this far.
    pub durable_events: usize,
}

/// The model tracker.
#[derive(Debug, Default)]
pub struct WorkloadModel {
    /// Live tree (what the workload believes right now).
    pub tree: TreeState,
    snapshots: Vec<StableSnapshot>,
    /// `(op_index, path)` for every mutation, so per-snapshot dirty sets
    /// can be derived after the fact.
    touched: Vec<(usize, String)>,
    op_index: usize,
}

/// One oracle violation found while checking a crash state.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Description of the crash state the violation occurred in.
    pub state: String,
    /// What went wrong.
    pub detail: String,
}

impl WorkloadModel {
    /// Creates an empty model (root directory only).
    pub fn new() -> Self {
        WorkloadModel::default()
    }

    /// Number of stable snapshots recorded (== completed fsyncs).
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }

    /// Advances the operation counter; returns the op index for bookkeeping.
    pub fn next_op(&mut self) -> usize {
        self.op_index += 1;
        self.op_index
    }

    fn touch(&mut self, path: &str) {
        self.touched.push((self.op_index, path.to_string()));
    }

    /// Records a file creation.
    pub fn create(&mut self, path: &str) {
        self.tree.files.insert(path.to_string(), Vec::new());
        self.touch(path);
    }

    /// Records a directory creation.
    pub fn mkdir(&mut self, path: &str) {
        self.tree.dirs.insert(path.to_string());
        self.touch(path);
    }

    /// Records a whole-file content overwrite/extension: `content` is the
    /// file's bytes after the write.
    pub fn set_content(&mut self, path: &str, content: Vec<u8>) {
        self.tree.files.insert(path.to_string(), content);
        self.touch(path);
    }

    /// Records a truncation to `size` (extension pads with zeros).
    pub fn truncate(&mut self, path: &str, size: usize) {
        if let Some(content) = self.tree.files.get_mut(path) {
            content.resize(size, 0);
        }
        self.touch(path);
    }

    /// Records an unlink.
    pub fn unlink(&mut self, path: &str) {
        self.tree.files.remove(path);
        self.touch(path);
    }

    /// Records a directory removal.
    pub fn rmdir(&mut self, path: &str) {
        self.tree.dirs.remove(path);
        self.touch(path);
    }

    /// Records a rename (both names become dirty).
    pub fn rename(&mut self, from: &str, to: &str) {
        if let Some(content) = self.tree.files.remove(from) {
            self.tree.files.insert(to.to_string(), content);
        }
        self.touch(from);
        self.touch(to);
    }

    /// Records a completed fsync: everything the model holds right now is
    /// durable once a crash state's prefix covers `durable_events`.
    pub fn note_fsync(&mut self, durable_events: usize) {
        self.snapshots.push(StableSnapshot {
            tree: self.tree.clone(),
            op_index: self.op_index,
            durable_events,
        });
    }

    /// The newest snapshot a crash state with the given durable prefix must
    /// honour.
    fn snapshot_for(&self, durable_events: usize) -> Option<&StableSnapshot> {
        self.snapshots.iter().rev().find(|s| s.durable_events <= durable_events)
    }

    /// Paths mutated after `op_index` (the snapshot's dirty set).
    fn dirty_after(&self, op_index: usize) -> BTreeSet<&str> {
        self.touched
            .iter()
            .filter(|(op, _)| *op > op_index)
            .map(|(_, path)| path.as_str())
            .collect()
    }

    /// Runs the durability oracle against a recovered file system.
    ///
    /// `state` labels the crash state in reported violations;
    /// `durable_events` is the crash state's durable prefix length.
    ///
    /// # Errors
    ///
    /// Propagates device I/O errors (oracle *violations* are returned in
    /// the vector, not as errors).
    pub fn verify(
        &self,
        fs: &dyn VfsFs,
        state: &str,
        durable_events: usize,
    ) -> KernelResult<Vec<Violation>> {
        let mut violations = Vec::new();
        let Some(snapshot) = self.snapshot_for(durable_events) else {
            return Ok(violations); // nothing was ever promised durable
        };
        let dirty = self.dirty_after(snapshot.op_index);
        let mut violate = |detail: String| {
            violations.push(Violation { state: state.to_string(), detail });
        };

        // 1. Stable directories exist.
        for dir in &snapshot.tree.dirs {
            if dirty.contains(dir.as_str()) {
                continue;
            }
            match resolve(fs, dir)? {
                Some(attr) if attr.kind == FileType::Directory => {}
                Some(_) => violate(format!("stable directory '{dir}' is not a directory")),
                None => violate(format!("stable directory '{dir}' missing after recovery")),
            }
        }
        // 2. Stable, untouched files exist byte-for-byte.
        for (path, content) in &snapshot.tree.files {
            if dirty.contains(path.as_str()) {
                continue;
            }
            let attr = match resolve(fs, path)? {
                Some(attr) if attr.kind == FileType::Regular => attr,
                Some(_) => {
                    violate(format!("stable file '{path}' is not a regular file"));
                    continue;
                }
                None => {
                    violate(format!("stable file '{path}' missing after recovery"));
                    continue;
                }
            };
            if attr.size != content.len() as u64 {
                violate(format!(
                    "stable file '{path}': size {} != fsync'd {}",
                    attr.size,
                    content.len()
                ));
                continue;
            }
            let mut offset = 0usize;
            let mut page = vec![0u8; PAGE_SIZE];
            let mut page_index = 0u64;
            while offset < content.len() {
                let n = fs.read_page(attr.ino, page_index, &mut page)?;
                let expect = (content.len() - offset).min(PAGE_SIZE);
                if n < expect || page[..expect] != content[offset..offset + expect] {
                    violate(format!("stable file '{path}': content differs at offset {offset}"));
                    break;
                }
                offset += expect;
                page_index += 1;
            }
        }
        // 3. Nothing deleted before the snapshot has been resurrected, and
        //    every on-disk object is accounted for.
        let mut on_disk_files = Vec::new();
        let mut on_disk_dirs = Vec::new();
        walk(fs, fs.root_ino(), String::new(), &mut on_disk_files, &mut on_disk_dirs, 0)?;
        for path in on_disk_files {
            if !snapshot.tree.files.contains_key(&path) && !dirty.contains(path.as_str()) {
                violate(format!("unexpected file '{path}' present after recovery"));
            }
        }
        for path in on_disk_dirs {
            if !snapshot.tree.dirs.contains(&path) && !dirty.contains(path.as_str()) {
                violate(format!("unexpected directory '{path}' present after recovery"));
            }
        }
        Ok(violations)
    }
}

/// Resolves a `/`-joined root-relative path; `None` if any component is
/// missing.
///
/// # Errors
///
/// Propagates I/O errors other than `ENOENT`.
pub fn resolve(fs: &dyn VfsFs, path: &str) -> KernelResult<Option<simkernel::vfs::InodeAttr>> {
    let mut attr = fs.getattr(fs.root_ino())?;
    for component in path.split('/').filter(|c| !c.is_empty()) {
        match fs.lookup(attr.ino, component) {
            Ok(next) => attr = next,
            Err(e) if e.errno() == Errno::NoEnt => return Ok(None),
            Err(e) => return Err(e),
        }
    }
    Ok(Some(attr))
}

/// Depth-first tree walk collecting file and directory paths (dot entries
/// skipped); bounded depth as a cycle guard — a deeper tree than the
/// workload ever builds means the image is corrupt, which the fsck oracle
/// reports separately.
fn walk(
    fs: &dyn VfsFs,
    ino: u64,
    prefix: String,
    files: &mut Vec<String>,
    dirs: &mut Vec<String>,
    depth: usize,
) -> KernelResult<()> {
    if depth > 16 {
        return Ok(());
    }
    for entry in fs.readdir(ino)? {
        if entry.name == "." || entry.name == ".." {
            continue;
        }
        let path =
            if prefix.is_empty() { entry.name.clone() } else { format!("{prefix}/{}", entry.name) };
        match entry.kind {
            FileType::Directory => {
                dirs.push(path.clone());
                walk(fs, entry.ino, path, files, dirs, depth + 1)?;
            }
            _ => files.push(path),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_selection_honours_durable_bound() {
        let mut model = WorkloadModel::new();
        model.next_op();
        model.create("a");
        model.note_fsync(10);
        model.next_op();
        model.create("b");
        model.note_fsync(20);
        assert!(model.snapshot_for(5).is_none());
        assert_eq!(model.snapshot_for(10).unwrap().tree.files.len(), 1);
        assert_eq!(model.snapshot_for(15).unwrap().tree.files.len(), 1);
        assert_eq!(model.snapshot_for(20).unwrap().tree.files.len(), 2);
        assert_eq!(model.snapshot_for(usize::MAX).unwrap().tree.files.len(), 2);
    }

    #[test]
    fn dirty_set_covers_only_later_ops() {
        let mut model = WorkloadModel::new();
        model.next_op();
        model.create("early");
        model.note_fsync(5);
        let snap_op = model.snapshots.last().unwrap().op_index;
        model.next_op();
        model.create("late");
        model.next_op();
        model.rename("early", "moved");
        let dirty = model.dirty_after(snap_op);
        assert!(dirty.contains("late"));
        assert!(dirty.contains("early") && dirty.contains("moved"));
        assert_eq!(model.dirty_after(usize::MAX).len(), 0);
    }
}
