//! Crash-state enumeration.
//!
//! Given a [`WriteTrace`] recorded by a
//! [`FaultDevice`](crate::device::FaultDevice) and the base image
//! the workload started from, this module materializes disk images
//! consistent with the device contract:
//!
//! * every epoch strictly before the *crash epoch* is fully durable (its
//!   writes all reached the medium before a flush returned);
//! * within the crash epoch, **any subset** of the writes, in **any
//!   order**, with **any sector-granularity tear** of an individual write,
//!   may have reached the medium — that is exactly what a volatile write
//!   cache is allowed to do between barriers.
//!
//! Two modes are provided.  [`prefix_states`] is exhaustive over in-order
//! prefixes of the write stream (strictly stronger than stopping at
//! barrier points only, since it cuts commits mid-phase), which is cheap
//! and deterministic.  [`sampled_states`] draws randomized
//! subset/reorder/tear states from a seed, covering the adversarial
//! remainder of the space; any violation it finds is replayable from the
//! seed alone.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::device::{tear, DiskImage, Event, SnapshotDisk, WriteTrace};

/// One materialized crash state.
pub struct CrashState {
    /// The crashed disk: mount this and run recovery against it.
    pub disk: Arc<SnapshotDisk>,
    /// Human-readable description (carried into violation reports so a
    /// failing state is identifiable and replayable).
    pub description: String,
    /// Number of leading trace events guaranteed durable in this image.
    /// Durability oracles compare this against the event count recorded at
    /// each fsync completion to pick the right stable snapshot.
    pub durable_events: usize,
}

impl std::fmt::Debug for CrashState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashState").field("description", &self.description).finish()
    }
}

fn resolve<'a>(
    overlay: &'a HashMap<u64, Arc<Vec<u8>>>,
    base: &'a DiskImage,
    blockno: u64,
) -> &'a [u8] {
    match overlay.get(&blockno) {
        Some(data) => data,
        None => base.block(blockno),
    }
}

/// Exhaustive in-order prefixes: one crash state per event boundary
/// (`0..=events.len()`).  State `i` contains exactly the first `i` events.
pub fn prefix_states(trace: &WriteTrace, base: &Arc<DiskImage>) -> Vec<CrashState> {
    let mut states = Vec::with_capacity(trace.events.len() + 1);
    let mut overlay: HashMap<u64, Arc<Vec<u8>>> = HashMap::new();
    for i in 0..=trace.events.len() {
        states.push(CrashState {
            disk: Arc::new(SnapshotDisk::new(Arc::clone(base), overlay.clone())),
            description: format!("prefix {i}/{}", trace.events.len()),
            durable_events: i,
        });
        if i < trace.events.len() {
            if let Event::Write { blockno, data } = &trace.events[i] {
                overlay.insert(*blockno, Arc::new(data.clone()));
            }
        }
    }
    states
}

/// Randomized subset/reorder/tear states drawn from `seed`.
///
/// Each sample picks a crash epoch uniformly, keeps every earlier epoch
/// durable, then applies a random subset of the crash epoch's writes in a
/// random order, tearing a fraction of them at sector granularity.
pub fn sampled_states(
    trace: &WriteTrace,
    base: &Arc<DiskImage>,
    seed: u64,
    count: usize,
) -> Vec<CrashState> {
    let epochs = trace.epochs();
    // Cumulative overlays at each epoch start: overlay_at[e] holds every
    // write of epochs 0..e.
    let mut overlay_at: Vec<HashMap<u64, Arc<Vec<u8>>>> = Vec::with_capacity(epochs.len() + 1);
    let mut running: HashMap<u64, Arc<Vec<u8>>> = HashMap::new();
    for epoch in &epochs {
        overlay_at.push(running.clone());
        for i in epoch.clone() {
            if let Event::Write { blockno, data } = &trace.events[i] {
                running.insert(*blockno, Arc::new(data.clone()));
            }
        }
    }

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut states = Vec::with_capacity(count);
    for sample in 0..count {
        let e = rng.gen_range(0..epochs.len());
        let epoch = &epochs[e];
        let writes: Vec<usize> =
            epoch.clone().filter(|&i| matches!(trace.events[i], Event::Write { .. })).collect();
        // Random subset, then a Fisher–Yates shuffle for apply order.
        let mut kept: Vec<usize> = writes.iter().copied().filter(|_| rng.gen::<bool>()).collect();
        for i in (1..kept.len()).rev() {
            let j = rng.gen_range(0..=i);
            kept.swap(i, j);
        }
        let mut overlay = overlay_at[e].clone();
        let mut torn = 0usize;
        for &idx in &kept {
            let Event::Write { blockno, data } = &trace.events[idx] else { continue };
            if rng.gen::<f64>() < 0.25 {
                let current = resolve(&overlay, base, *blockno).to_vec();
                let (result, _) = tear(&current, data, &mut rng);
                overlay.insert(*blockno, Arc::new(result));
                torn += 1;
            } else {
                overlay.insert(*blockno, Arc::new(data.clone()));
            }
        }
        let durable_events = epoch.start;
        states.push(CrashState {
            disk: Arc::new(SnapshotDisk::new(Arc::clone(base), overlay)),
            description: format!(
                "sample {sample} (seed {seed}): crash in epoch {e}/{}, applied {}/{} writes ({torn} torn)",
                epochs.len(),
                kept.len(),
                writes.len(),
            ),
            durable_events,
        });
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::dev::{BlockDevice, RamDisk};

    fn trace_of(events: Vec<Event>) -> WriteTrace {
        WriteTrace { events }
    }

    fn base_image(blocks: u64) -> Arc<DiskImage> {
        let ram: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096, blocks));
        Arc::new(DiskImage::capture(&ram).unwrap())
    }

    fn write(blockno: u64, fill: u8) -> Event {
        Event::Write { blockno, data: vec![fill; 4096] }
    }

    #[test]
    fn prefixes_apply_events_in_order() {
        let trace = trace_of(vec![write(1, 0xA), Event::Flush, write(1, 0xB), write(2, 0xC)]);
        let base = base_image(8);
        let states = prefix_states(&trace, &base);
        assert_eq!(states.len(), 5);
        let mut buf = vec![0u8; 4096];
        states[0].disk.read_block(1, &mut buf).unwrap();
        assert_eq!(buf[0], 0, "empty prefix leaves the base image");
        states[1].disk.read_block(1, &mut buf).unwrap();
        assert_eq!(buf[0], 0xA);
        states[4].disk.read_block(1, &mut buf).unwrap();
        assert_eq!(buf[0], 0xB, "later same-block write wins");
        states[4].disk.read_block(2, &mut buf).unwrap();
        assert_eq!(buf[0], 0xC);
        assert_eq!(states[2].durable_events, 2);
    }

    #[test]
    fn samples_keep_earlier_epochs_durable() {
        let trace =
            trace_of(vec![write(1, 0xA), Event::Flush, write(2, 0xB), Event::Flush, write(3, 0xC)]);
        let base = base_image(8);
        let states = sampled_states(&trace, &base, 42, 64);
        assert_eq!(states.len(), 64);
        let mut buf = vec![0u8; 4096];
        for state in &states {
            // Whatever the crash epoch, every durable (pre-crash-epoch)
            // write must be present.
            if state.durable_events >= 2 {
                state.disk.read_block(1, &mut buf).unwrap();
                assert_eq!(buf[0], 0xA, "{}", state.description);
            }
            if state.durable_events >= 4 {
                state.disk.read_block(2, &mut buf).unwrap();
                assert_eq!(buf[0], 0xB, "{}", state.description);
            }
        }
        // The sampler must exercise every epoch.
        for bound in [0usize, 2, 4] {
            assert!(
                states.iter().any(|s| s.durable_events == bound),
                "no sample crashed at epoch boundary {bound}"
            );
        }
    }

    #[test]
    fn same_seed_reproduces_identical_states() {
        let trace = trace_of(vec![write(1, 1), write(2, 2), Event::Flush, write(3, 3)]);
        let base = base_image(8);
        let a = sampled_states(&trace, &base, 7, 16);
        let b = sampled_states(&trace, &base, 7, 16);
        let mut buf_a = vec![0u8; 4096];
        let mut buf_b = vec![0u8; 4096];
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.description, sb.description);
            for blockno in 0..8 {
                sa.disk.read_block(blockno, &mut buf_a).unwrap();
                sb.disk.read_block(blockno, &mut buf_b).unwrap();
                assert_eq!(buf_a, buf_b, "block {blockno}: {}", sa.description);
            }
        }
    }
}
