//! Journal-generic crash harness: every write-ahead log in the workspace
//! behind one object-safe face.
//!
//! The three log front-ends — the bare [`journal::Journal`] on a raw
//! device, the Bento stack's `xv6fs::log::Log` over the `SuperBlock`
//! capability, and the VFS baseline's `xv6fs_vfs::log::VfsLog` over the
//! kernel buffer cache — are all adapters over the same shared journal.
//! The crash-contract tests therefore apply *one* scenario (transactions,
//! crash-state enumeration, recovery, atomicity oracles) to every stack by
//! iterating [`all_stacks`]: a new stack inherits the whole suite by
//! adding one [`LogStack`] implementation here.
//!
//! Every stack mounts the same log geometry ([`test_geometry`]) so their
//! on-disk images are interchangeable — which the suite exploits by
//! asserting identical recovery behavior on identical pre-images.

use std::sync::Arc;

use simkernel::buffer::BufferCache;
use simkernel::dev::BlockDevice;
use simkernel::error::KernelResult;

use bento::bentoks::{KernelBlockIo, SuperBlock};
use journal::io::{DeviceIo, JournalIo};
use journal::record::BSIZE;
use journal::{Journal, JournalConfig, JournalStats};
use xv6fs::layout::{DiskSuperblock, FSMAGIC, LOGSIZE};
use xv6fs::log::Log;
use xv6fs_vfs::log::VfsLog;

/// The shared log geometry every harness stack mounts: log at block 2
/// (after boot block and superblock), the full double-buffered
/// [`LOGSIZE`], homes legal from the end of the log area to `disk_blocks`.
pub fn test_geometry(disk_blocks: u32) -> DiskSuperblock {
    DiskSuperblock {
        magic: FSMAGIC,
        size: disk_blocks,
        nblocks: 700,
        ninodes: 128,
        nlog: LOGSIZE as u32,
        logstart: 2,
        inodestart: 2 + LOGSIZE as u32,
        bmapstart: 2 + LOGSIZE as u32 + 4,
    }
}

fn journal_config(dsb: &DiskSuperblock) -> JournalConfig {
    JournalConfig::from_geometry(
        dsb.logstart as u64,
        dsb.nlog as usize,
        LOGSIZE,
        (dsb.inodestart as u64, dsb.size as u64),
    )
}

/// A mounted write-ahead log under test: the journal transaction API,
/// narrowed to whole-block fills (all the crash oracles need) so one
/// object-safe trait covers back-ends with otherwise incompatible buffer
/// types.
pub trait LogHandle: Send + Sync {
    /// Begins a transaction ([`Journal::begin_op`]).
    fn begin_op(&self);

    /// Writes `fill` into every byte of block `blockno` inside the current
    /// transaction.
    ///
    /// # Errors
    ///
    /// Propagates I/O and journal errors.
    fn log_fill(&self, blockno: u64, fill: u8) -> KernelResult<()>;

    /// Ends the current transaction ([`Journal::end_op`]).
    ///
    /// # Errors
    ///
    /// Propagates commit I/O errors.
    fn end_op(&self) -> KernelResult<()>;

    /// Forces everything durable-in-progress to commit
    /// ([`Journal::flush`]).
    ///
    /// # Errors
    ///
    /// Propagates commit I/O errors.
    fn flush(&self) -> KernelResult<()>;

    /// Replays committed-but-not-installed transactions
    /// ([`Journal::recover`]); returns blocks replayed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn recover(&self) -> KernelResult<usize>;

    /// Cumulative journal statistics.
    fn stats(&self) -> JournalStats;

    /// Reads block `blockno` as this stack would (through its cache, so
    /// post-recovery reads see what a remounted file system would see).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn read_block(&self, blockno: u64) -> KernelResult<Vec<u8>>;
}

/// One write-ahead-log front-end the harness can mount on an arbitrary
/// device (a fault device, a multi-queue wrapper, a plain RAM disk).
pub trait LogStack: Send + Sync {
    /// Stack name for test diagnostics.
    fn name(&self) -> &'static str;

    /// Mounts a fresh log (fresh cache, fresh in-memory state — a
    /// "reboot") on `dev` with the shared [`test_geometry`].
    fn open(&self, dev: Arc<dyn BlockDevice>, disk_blocks: u32) -> Arc<dyn LogHandle>;
}

/// Every log stack in the workspace; the crash-contract suite iterates
/// this so all of them face identical scenarios.
pub fn all_stacks() -> Vec<Box<dyn LogStack>> {
    vec![Box::new(BareJournalStack), Box::new(BentoLogStack), Box::new(VfsLogStack)]
}

/// The bare [`Journal`] straight on the device via [`DeviceIo`] — no file
/// system, no cache; the journal-level crash contract with nothing on top.
struct BareJournalStack;

struct BareHandle {
    journal: Journal,
    io: DeviceIo,
}

impl LogStack for BareJournalStack {
    fn name(&self) -> &'static str {
        "journal-bare"
    }

    fn open(&self, dev: Arc<dyn BlockDevice>, disk_blocks: u32) -> Arc<dyn LogHandle> {
        let dsb = test_geometry(disk_blocks);
        Arc::new(BareHandle { journal: Journal::new(journal_config(&dsb)), io: DeviceIo::new(dev) })
    }
}

impl LogHandle for BareHandle {
    fn begin_op(&self) {
        self.journal.begin_op();
    }

    fn log_fill(&self, blockno: u64, fill: u8) -> KernelResult<()> {
        self.journal.log_write(blockno, &[fill; BSIZE])
    }

    fn end_op(&self) -> KernelResult<()> {
        self.journal.end_op(&self.io)
    }

    fn flush(&self) -> KernelResult<()> {
        self.journal.flush(&self.io)
    }

    fn recover(&self) -> KernelResult<usize> {
        self.journal.recover(&self.io)
    }

    fn stats(&self) -> JournalStats {
        self.journal.stats()
    }

    fn read_block(&self, blockno: u64) -> KernelResult<Vec<u8>> {
        let mut buf = vec![0u8; BSIZE];
        self.io.read_block(blockno, &mut buf)?;
        Ok(buf)
    }
}

/// The Bento stack's `Log` over the `SuperBlock` capability (kernel buffer
/// cache underneath, as mounted by `xv6fs`).
struct BentoLogStack;

struct BentoHandle {
    log: Log,
    sb: SuperBlock,
}

impl LogStack for BentoLogStack {
    fn name(&self) -> &'static str {
        "bento-xv6fs"
    }

    fn open(&self, dev: Arc<dyn BlockDevice>, disk_blocks: u32) -> Arc<dyn LogHandle> {
        let dsb = test_geometry(disk_blocks);
        let sb = bento::userspace::userspace_superblock(
            Arc::new(KernelBlockIo::new(dev, 512)),
            "logharness",
        );
        Arc::new(BentoHandle { log: Log::new(&dsb), sb })
    }
}

impl LogHandle for BentoHandle {
    fn begin_op(&self) {
        self.log.begin_op();
    }

    fn log_fill(&self, blockno: u64, fill: u8) -> KernelResult<()> {
        let mut buf = self.sb.bread(blockno)?;
        buf.data_mut().fill(fill);
        self.log.log_write(&buf)
    }

    fn end_op(&self) -> KernelResult<()> {
        self.log.end_op(&self.sb)
    }

    fn flush(&self) -> KernelResult<()> {
        self.log.flush(&self.sb)
    }

    fn recover(&self) -> KernelResult<usize> {
        self.log.recover(&self.sb)
    }

    fn stats(&self) -> JournalStats {
        self.log.stats()
    }

    fn read_block(&self, blockno: u64) -> KernelResult<Vec<u8>> {
        Ok(self.sb.bread(blockno)?.data().to_vec())
    }
}

/// The VFS baseline's `VfsLog` over the kernel [`BufferCache`] (as mounted
/// by `xv6fs-vfs`).
struct VfsLogStack;

struct VfsHandle {
    log: VfsLog,
    cache: BufferCache,
}

impl LogStack for VfsLogStack {
    fn name(&self) -> &'static str {
        "vfs-xv6fs"
    }

    fn open(&self, dev: Arc<dyn BlockDevice>, disk_blocks: u32) -> Arc<dyn LogHandle> {
        let dsb = test_geometry(disk_blocks);
        Arc::new(VfsHandle { log: VfsLog::new(&dsb), cache: BufferCache::new(dev, 256) })
    }
}

impl LogHandle for VfsHandle {
    fn begin_op(&self) {
        self.log.begin_op();
    }

    fn log_fill(&self, blockno: u64, fill: u8) -> KernelResult<()> {
        let mut buf = self.cache.bread(blockno)?;
        buf.data_mut().fill(fill);
        self.log.log_write(&buf)
    }

    fn end_op(&self) -> KernelResult<()> {
        self.log.end_op(&self.cache)
    }

    fn flush(&self) -> KernelResult<()> {
        self.log.flush(&self.cache)
    }

    fn recover(&self) -> KernelResult<usize> {
        self.log.recover(&self.cache)
    }

    fn stats(&self) -> JournalStats {
        self.log.stats()
    }

    fn read_block(&self, blockno: u64) -> KernelResult<Vec<u8>> {
        Ok(self.cache.bread(blockno)?.data().to_vec())
    }
}
