//! The fault-injection device and crash-image block devices.
//!
//! [`FaultDevice`] wraps any [`BlockDevice`] and records the full write
//! stream partitioned into *barrier epochs* (runs of writes delimited by
//! [`BlockDevice::flush`]).  The recorded [`WriteTrace`] is what the crash
//! enumeration (see [`crate::enumerate`]) replays.  Driven by a seeded RNG,
//! the device can additionally inject live failures — torn
//! sector-granularity writes, silently dropped writes, write-cache
//! reordering within an epoch, transient `EIO`, and a hard
//! disconnect-after-op-N — so error-path behaviour is testable too.  Every
//! injected failure derives from [`FaultConfig::seed`], so any run is
//! replayable from its seed.
//!
//! [`DiskImage`] snapshots a device's full contents, and [`SnapshotDisk`]
//! layers a frozen crash overlay plus a private write layer on top of a
//! shared image — materializing one crash state costs a map clone, not a
//! disk copy, which is what makes enumerating thousands of states cheap.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use simkernel::dev::{BlockDevice, DeviceStats};
use simkernel::error::{Errno, KernelError, KernelResult};

/// Sector size used for torn-write granularity (one 4 KiB block is eight
/// 512-byte sectors, each of which persists atomically on real hardware).
pub const SECTOR_SIZE: usize = 512;

/// One recorded device event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A block write as issued by the file system.
    Write {
        /// Destination block.
        blockno: u64,
        /// The full block contents that were written.
        data: Vec<u8>,
    },
    /// A FLUSH barrier (ends the current epoch).
    Flush,
}

/// The recorded write/flush history of a [`FaultDevice`].
#[derive(Debug, Clone, Default)]
pub struct WriteTrace {
    /// Events in issue order.
    pub events: Vec<Event>,
}

impl WriteTrace {
    /// Number of write events in the trace.
    pub fn write_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, Event::Write { .. })).count()
    }

    /// Number of flush barriers in the trace.
    pub fn flush_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, Event::Flush)).count()
    }

    /// The barrier epochs: for each epoch, the index range of its events
    /// (flush events excluded).  The final epoch is the open tail after the
    /// last flush; a trace with `F` flushes has `F + 1` epochs.
    pub fn epochs(&self) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for (i, event) in self.events.iter().enumerate() {
            if matches!(event, Event::Flush) {
                out.push(start..i);
                start = i + 1;
            }
        }
        out.push(start..self.events.len());
        out
    }
}

/// What (and how often) a [`FaultDevice`] injects; all probabilities are in
/// `[0, 1]` and every decision comes from the seeded RNG.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the injection RNG (the whole run replays from it).
    pub seed: u64,
    /// Probability a read fails with transient `EIO`.
    pub read_eio: f64,
    /// Probability a write fails with transient `EIO`.
    pub write_eio: f64,
    /// Probability a write is torn: only a random non-empty strict subset
    /// of its eight sectors reaches the medium.
    pub torn_write: f64,
    /// Probability a write is silently dropped.
    pub drop_write: f64,
    /// When true, writes buffer in a volatile cache and reach the inner
    /// device in shuffled order at the next flush (reads still see the
    /// cached data) — live intra-epoch reordering.
    pub reorder: bool,
    /// Hard disconnect: after this many operations every read, write and
    /// flush fails with `EIO`.
    pub disconnect_after_ops: Option<u64>,
}

impl FaultConfig {
    /// A pure recorder: no live injection, just the trace.  This is what
    /// the crash-state enumeration uses (the adversarial part happens when
    /// the trace is replayed, not while the workload runs).
    pub fn recorder(seed: u64) -> Self {
        FaultConfig {
            seed,
            read_eio: 0.0,
            write_eio: 0.0,
            torn_write: 0.0,
            drop_write: 0.0,
            reorder: false,
            disconnect_after_ops: None,
        }
    }
}

/// Counters describing what a [`FaultDevice`] injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads failed with transient `EIO`.
    pub read_errors: u64,
    /// Writes failed with transient `EIO`.
    pub write_errors: u64,
    /// Writes torn (partial sector subset applied).
    pub torn_writes: u64,
    /// Writes silently dropped.
    pub dropped_writes: u64,
    /// Operations rejected after the disconnect tripped.
    pub rejected_after_disconnect: u64,
}

#[derive(Debug, Default)]
struct FaultCells {
    read_errors: AtomicU64,
    write_errors: AtomicU64,
    torn_writes: AtomicU64,
    dropped_writes: AtomicU64,
    rejected: AtomicU64,
}

/// A recording, fault-injecting wrapper over any block device.
pub struct FaultDevice {
    inner: Arc<dyn BlockDevice>,
    config: FaultConfig,
    /// Live transient-EIO probabilities (f64 bits).  Kept outside `config`
    /// so scenario hooks can flip injection on and off mid-run
    /// ([`FaultDevice::set_transient_eio`]) while a workload is driving the
    /// device from other threads.
    read_eio_bits: AtomicU64,
    write_eio_bits: AtomicU64,
    rng: Mutex<SmallRng>,
    events: Mutex<Vec<Event>>,
    /// Volatile write cache used in reorder mode: blockno → newest data.
    pending: Mutex<Vec<(u64, Vec<u8>)>>,
    ops: AtomicU64,
    disconnected: AtomicBool,
    /// When false, write/flush events are not recorded (long-running load
    /// scenarios only want live injection, not an ever-growing trace).
    trace_enabled: AtomicBool,
    cells: FaultCells,
}

impl std::fmt::Debug for FaultDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultDevice")
            .field("config", &self.config)
            .field("events", &self.events.lock().len())
            .finish_non_exhaustive()
    }
}

impl FaultDevice {
    /// Wraps `inner` with injection behaviour `config`.
    pub fn new(inner: Arc<dyn BlockDevice>, config: FaultConfig) -> Self {
        FaultDevice {
            inner,
            rng: Mutex::new(SmallRng::seed_from_u64(config.seed)),
            read_eio_bits: AtomicU64::new(config.read_eio.to_bits()),
            write_eio_bits: AtomicU64::new(config.write_eio.to_bits()),
            config,
            events: Mutex::new(Vec::new()),
            pending: Mutex::new(Vec::new()),
            ops: AtomicU64::new(0),
            disconnected: AtomicBool::new(false),
            trace_enabled: AtomicBool::new(true),
            cells: FaultCells::default(),
        }
    }

    /// Enables or disables trace recording.  Crash enumeration needs the
    /// trace; live load scenarios disable it so memory stays bounded over
    /// millions of writes.
    pub fn set_trace_enabled(&self, enabled: bool) {
        self.trace_enabled.store(enabled, Ordering::Relaxed);
    }

    /// The live transient-EIO probabilities as `(read, write)`.
    pub fn transient_eio(&self) -> (f64, f64) {
        (
            f64::from_bits(self.read_eio_bits.load(Ordering::Relaxed)),
            f64::from_bits(self.write_eio_bits.load(Ordering::Relaxed)),
        )
    }

    /// Retunes the transient-EIO probabilities while the device is live.
    ///
    /// This is the mid-run fault scenario hook: a load generator mounts a
    /// stack over a quiet recorder device, flips EIO injection on for a
    /// window under traffic, and off again — measuring how many operations
    /// the stack fails (and that it keeps serving afterwards) without
    /// remounting.  Probabilities are clamped to `[0, 1]`.
    pub fn set_transient_eio(&self, read_p: f64, write_p: f64) {
        self.read_eio_bits.store(read_p.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
        self.write_eio_bits.store(write_p.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
    }

    /// A clone of the recorded trace so far.
    pub fn trace(&self) -> WriteTrace {
        WriteTrace { events: self.events.lock().clone() }
    }

    /// Number of recorded events so far (writes + flushes).  Workload
    /// drivers record this at fsync completion so the enumeration can tell
    /// which durability points a given crash state honours.
    pub fn event_count(&self) -> usize {
        self.events.lock().len()
    }

    /// Injection counters.
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            read_errors: self.cells.read_errors.load(Ordering::Relaxed),
            write_errors: self.cells.write_errors.load(Ordering::Relaxed),
            torn_writes: self.cells.torn_writes.load(Ordering::Relaxed),
            dropped_writes: self.cells.dropped_writes.load(Ordering::Relaxed),
            rejected_after_disconnect: self.cells.rejected.load(Ordering::Relaxed),
        }
    }

    /// Whether the hard disconnect has tripped.
    pub fn disconnected(&self) -> bool {
        self.disconnected.load(Ordering::Relaxed)
    }

    /// Counts one operation; errors if the device has disconnected.
    fn gate(&self) -> KernelResult<()> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if let Some(limit) = self.config.disconnect_after_ops {
            if op >= limit {
                self.disconnected.store(true, Ordering::Relaxed);
            }
        }
        if self.disconnected.load(Ordering::Relaxed) {
            self.cells.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(KernelError::with_context(Errno::Io, "crashsim: device disconnected"));
        }
        Ok(())
    }

    fn chance(&self, p: f64) -> bool {
        p > 0.0 && self.rng.lock().gen::<f64>() < p
    }
}

/// Overlays a random non-empty strict subset of `new`'s sectors onto
/// `current`, returning the torn result and the number of sectors applied.
/// A write of one sector (or less) cannot be torn — sectors persist
/// atomically — so it is applied whole.
pub(crate) fn tear(current: &[u8], new: &[u8], rng: &mut SmallRng) -> (Vec<u8>, usize) {
    let sectors = new.len().div_ceil(SECTOR_SIZE);
    if sectors <= 1 {
        return (new.to_vec(), sectors);
    }
    let mut out = current.to_vec();
    let mut applied = 0usize;
    loop {
        for s in 0..sectors {
            if rng.gen::<bool>() {
                let lo = s * SECTOR_SIZE;
                let hi = ((s + 1) * SECTOR_SIZE).min(new.len());
                out[lo..hi].copy_from_slice(&new[lo..hi]);
                applied += 1;
            }
        }
        // A tear that applies everything (or nothing) is not a tear; retry
        // until the subset is proper.  With eight sectors this terminates
        // almost immediately.
        if applied > 0 && applied < sectors {
            return (out, applied);
        }
        out.copy_from_slice(current);
        applied = 0;
    }
}

impl BlockDevice for FaultDevice {
    fn block_size(&self) -> u32 {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&self, blockno: u64, buf: &mut [u8]) -> KernelResult<()> {
        self.gate()?;
        if self.chance(f64::from_bits(self.read_eio_bits.load(Ordering::Relaxed))) {
            self.cells.read_errors.fetch_add(1, Ordering::Relaxed);
            return Err(KernelError::with_context(Errno::Io, "crashsim: injected read error"));
        }
        if self.config.reorder {
            let pending = self.pending.lock();
            if let Some((_, data)) = pending.iter().rev().find(|(b, _)| *b == blockno) {
                buf.copy_from_slice(data);
                return Ok(());
            }
        }
        self.inner.read_block(blockno, buf)
    }

    fn write_block(&self, blockno: u64, buf: &[u8]) -> KernelResult<()> {
        self.gate()?;
        if self.chance(f64::from_bits(self.write_eio_bits.load(Ordering::Relaxed))) {
            self.cells.write_errors.fetch_add(1, Ordering::Relaxed);
            return Err(KernelError::with_context(Errno::Io, "crashsim: injected write error"));
        }
        // The trace records what the file system *issued*; live injections
        // below only affect what reaches the medium.
        if self.trace_enabled.load(Ordering::Relaxed) {
            self.events.lock().push(Event::Write { blockno, data: buf.to_vec() });
        }
        if self.chance(self.config.drop_write) {
            self.cells.dropped_writes.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let effective = if self.chance(self.config.torn_write) {
            // Tear against the *visible* current content — in reorder mode
            // that is the newest pending copy, not the stale inner block —
            // and route the torn result through the same path as any other
            // write so later same-block writes still win at the drain.
            let mut current = vec![0u8; buf.len()];
            let from_pending = if self.config.reorder {
                let pending = self.pending.lock();
                match pending.iter().rev().find(|(b, _)| *b == blockno) {
                    Some((_, data)) => {
                        current.copy_from_slice(data);
                        true
                    }
                    None => false,
                }
            } else {
                false
            };
            if !from_pending {
                self.inner.read_block(blockno, &mut current)?;
            }
            let (torn, _) = tear(&current, buf, &mut self.rng.lock());
            self.cells.torn_writes.fetch_add(1, Ordering::Relaxed);
            torn
        } else {
            buf.to_vec()
        };
        if self.config.reorder {
            self.pending.lock().push((blockno, effective));
            return Ok(());
        }
        self.inner.write_block(blockno, &effective)
    }

    fn flush(&self) -> KernelResult<()> {
        self.gate()?;
        if self.trace_enabled.load(Ordering::Relaxed) {
            self.events.lock().push(Event::Flush);
        }
        if self.config.reorder {
            let mut pending = std::mem::take(&mut *self.pending.lock());
            // Drain the volatile cache in shuffled order: legal for the
            // device contract (everything is durable once flush returns),
            // but later same-block writes must still win, so shuffle block
            // groups, not individual writes.
            let mut order: Vec<u64> = Vec::new();
            let mut newest: HashMap<u64, Vec<u8>> = HashMap::new();
            for (blockno, data) in pending.drain(..) {
                if newest.insert(blockno, data).is_none() {
                    order.push(blockno);
                }
            }
            let mut rng = self.rng.lock();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            drop(rng);
            for blockno in order {
                self.inner.write_block(blockno, &newest[&blockno])?;
            }
        }
        self.inner.flush()
    }

    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }
}

// ---------------------------------------------------------------------------
// Crash images
// ---------------------------------------------------------------------------

/// A full point-in-time copy of a device's contents (the pre-workload base
/// image the crash states are built on).
pub struct DiskImage {
    block_size: u32,
    blocks: Vec<Vec<u8>>,
}

impl std::fmt::Debug for DiskImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskImage").field("num_blocks", &self.blocks.len()).finish()
    }
}

impl DiskImage {
    /// Reads every block of `dev` into memory.
    ///
    /// # Errors
    ///
    /// Propagates device read errors.
    pub fn capture(dev: &Arc<dyn BlockDevice>) -> KernelResult<Self> {
        let block_size = dev.block_size();
        let mut blocks = Vec::with_capacity(dev.num_blocks() as usize);
        for blockno in 0..dev.num_blocks() {
            let mut buf = vec![0u8; block_size as usize];
            dev.read_block(blockno, &mut buf)?;
            blocks.push(buf);
        }
        Ok(DiskImage { block_size, blocks })
    }

    /// Number of blocks in the image.
    pub fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Contents of one block.
    ///
    /// # Panics
    ///
    /// Panics if `blockno` is out of range.
    pub fn block(&self, blockno: u64) -> &[u8] {
        &self.blocks[blockno as usize]
    }
}

/// A materialized crash state: a shared base image, a frozen overlay (the
/// subset of trace writes this state assumes reached the medium), and a
/// private write layer for whatever recovery does after "reboot".
pub struct SnapshotDisk {
    base: Arc<DiskImage>,
    frozen: HashMap<u64, Arc<Vec<u8>>>,
    writes: RwLock<HashMap<u64, Vec<u8>>>,
    reads: AtomicU64,
    write_count: AtomicU64,
    flushes: AtomicU64,
}

impl std::fmt::Debug for SnapshotDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotDisk").field("frozen", &self.frozen.len()).finish_non_exhaustive()
    }
}

impl SnapshotDisk {
    /// Builds a crash state from `base` plus the `frozen` overlay.
    pub fn new(base: Arc<DiskImage>, frozen: HashMap<u64, Arc<Vec<u8>>>) -> Self {
        SnapshotDisk {
            base,
            frozen,
            writes: RwLock::new(HashMap::new()),
            reads: AtomicU64::new(0),
            write_count: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        }
    }

    fn check(&self, blockno: u64, len: usize) -> KernelResult<()> {
        if len != self.base.block_size as usize {
            return Err(KernelError::with_context(Errno::Inval, "crashsim: bad buffer length"));
        }
        if blockno >= self.base.num_blocks() {
            return Err(KernelError::with_context(Errno::Inval, "crashsim: block out of range"));
        }
        Ok(())
    }
}

impl BlockDevice for SnapshotDisk {
    fn block_size(&self) -> u32 {
        self.base.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.base.num_blocks()
    }

    fn read_block(&self, blockno: u64, buf: &mut [u8]) -> KernelResult<()> {
        self.check(blockno, buf.len())?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        if let Some(data) = self.writes.read().get(&blockno) {
            buf.copy_from_slice(data);
            return Ok(());
        }
        if let Some(data) = self.frozen.get(&blockno) {
            buf.copy_from_slice(data);
            return Ok(());
        }
        buf.copy_from_slice(&self.base.blocks[blockno as usize]);
        Ok(())
    }

    fn write_block(&self, blockno: u64, buf: &[u8]) -> KernelResult<()> {
        self.check(blockno, buf.len())?;
        self.write_count.fetch_add(1, Ordering::Relaxed);
        self.writes.write().insert(blockno, buf.to_vec());
        Ok(())
    }

    fn flush(&self) -> KernelResult<()> {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        DeviceStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.write_count.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::dev::RamDisk;

    fn block(fill: u8) -> Vec<u8> {
        vec![fill; 4096]
    }

    #[test]
    fn records_writes_partitioned_into_epochs() {
        let inner = Arc::new(RamDisk::new(4096, 32));
        let dev = FaultDevice::new(inner, FaultConfig::recorder(1));
        dev.write_block(1, &block(1)).unwrap();
        dev.write_block(2, &block(2)).unwrap();
        dev.flush().unwrap();
        dev.write_block(3, &block(3)).unwrap();
        let trace = dev.trace();
        assert_eq!(trace.write_count(), 3);
        assert_eq!(trace.flush_count(), 1);
        let epochs = trace.epochs();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].clone().count(), 2);
        assert_eq!(epochs[1].clone().count(), 1);
    }

    #[test]
    fn disconnect_after_n_ops_fails_everything() {
        let inner = Arc::new(RamDisk::new(4096, 32));
        let config = FaultConfig { disconnect_after_ops: Some(2), ..FaultConfig::recorder(7) };
        let dev = FaultDevice::new(inner, config);
        dev.write_block(0, &block(1)).unwrap();
        let mut buf = block(0);
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(dev.write_block(1, &block(2)).unwrap_err().errno(), Errno::Io);
        assert_eq!(dev.flush().unwrap_err().errno(), Errno::Io);
        assert!(dev.disconnected());
        assert!(dev.fault_stats().rejected_after_disconnect >= 2);
    }

    #[test]
    fn transient_eio_is_injected_at_the_configured_rate() {
        let inner = Arc::new(RamDisk::new(4096, 32));
        let config = FaultConfig { write_eio: 0.5, ..FaultConfig::recorder(3) };
        let dev = FaultDevice::new(inner, config);
        let mut failures = 0;
        for i in 0..100 {
            if dev.write_block(i % 32, &block(1)).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 20 && failures < 80, "got {failures} failures");
        assert_eq!(dev.fault_stats().write_errors, failures);
    }

    #[test]
    fn torn_writes_apply_a_strict_sector_subset() {
        let inner = Arc::new(RamDisk::new(4096, 8));
        let config = FaultConfig { torn_write: 1.0, ..FaultConfig::recorder(11) };
        let dev = FaultDevice::new(Arc::clone(&inner) as Arc<dyn BlockDevice>, config);
        dev.write_block(0, &block(0xAA)).unwrap();
        let mut buf = block(0);
        inner.read_block(0, &mut buf).unwrap();
        let new_sectors = buf.chunks(SECTOR_SIZE).filter(|s| s.iter().all(|&b| b == 0xAA)).count();
        assert!(new_sectors > 0 && new_sectors < 8, "tear must be partial: {new_sectors}");
        assert_eq!(dev.fault_stats().torn_writes, 1);
    }

    #[test]
    fn reorder_mode_keeps_read_your_writes_and_drains_at_flush() {
        let inner = Arc::new(RamDisk::new(4096, 8));
        let config = FaultConfig { reorder: true, ..FaultConfig::recorder(5) };
        let dev = FaultDevice::new(Arc::clone(&inner) as Arc<dyn BlockDevice>, config);
        dev.write_block(1, &block(1)).unwrap();
        dev.write_block(1, &block(2)).unwrap();
        dev.write_block(3, &block(3)).unwrap();
        let mut buf = block(0);
        dev.read_block(1, &mut buf).unwrap();
        assert_eq!(buf[0], 2, "reads see the cached write");
        inner.read_block(1, &mut buf).unwrap();
        assert_eq!(buf[0], 0, "inner device untouched before flush");
        dev.flush().unwrap();
        inner.read_block(1, &mut buf).unwrap();
        assert_eq!(buf[0], 2, "newest same-block write wins after drain");
        inner.read_block(3, &mut buf).unwrap();
        assert_eq!(buf[0], 3);
    }

    #[test]
    fn torn_writes_compose_with_the_reorder_cache() {
        // Torn writes must go through the volatile cache like any other
        // write: a later full write to the same block wins at the drain,
        // and reads see the torn data before it.
        let inner = Arc::new(RamDisk::new(4096, 8));
        let config = FaultConfig { reorder: true, torn_write: 1.0, ..FaultConfig::recorder(13) };
        let dev = FaultDevice::new(Arc::clone(&inner) as Arc<dyn BlockDevice>, config);
        dev.write_block(0, &block(0xAA)).unwrap(); // torn, into the cache
        let mut buf = block(0);
        dev.read_block(0, &mut buf).unwrap();
        let aa = buf.chunks(SECTOR_SIZE).filter(|s| s.iter().all(|&b| b == 0xAA)).count();
        assert!(aa > 0 && aa < 8, "read sees the torn cached data: {aa}");
        dev.write_block(0, &block(0xBB)).unwrap(); // torn again, over the cached copy
        dev.flush().unwrap();
        inner.read_block(0, &mut buf).unwrap();
        for (i, sector) in buf.chunks(SECTOR_SIZE).enumerate() {
            let fill = sector[0];
            assert!(
                (fill == 0xAA || fill == 0xBB || fill == 0) && sector.iter().all(|&b| b == fill),
                "sector {i} must be one whole version, got {fill:#x}"
            );
        }
        assert_eq!(dev.fault_stats().torn_writes, 2);
    }

    #[test]
    fn snapshot_disk_layers_overlay_over_base() {
        let ram: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096, 8));
        ram.write_block(0, &block(1)).unwrap();
        let image = Arc::new(DiskImage::capture(&ram).unwrap());
        let mut frozen = HashMap::new();
        frozen.insert(2u64, Arc::new(block(9)));
        let disk = SnapshotDisk::new(image, frozen);
        let mut buf = block(0);
        disk.read_block(0, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "base");
        disk.read_block(2, &mut buf).unwrap();
        assert_eq!(buf[0], 9, "frozen overlay");
        disk.write_block(0, &block(7)).unwrap();
        disk.read_block(0, &mut buf).unwrap();
        assert_eq!(buf[0], 7, "private write layer");
    }
}
