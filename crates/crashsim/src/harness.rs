//! The end-to-end crash-consistency harness.
//!
//! [`run_crash_test`] formats a disk, mounts one of the evaluated stacks on
//! a recording [`crate::device::FaultDevice`], drives a seeded
//! randomized workload (creates, page writes, truncates, renames, unlinks,
//! directory ops, fsyncs) while mirroring it in a
//! [`crate::model::WorkloadModel`], then "crashes" by
//! dropping the mount, enumerates crash states from the recorded trace, and
//! for every state remounts (running the stack's recovery) and applies two
//! oracles:
//!
//! * **fsck** — structural consistency: [`xv6fs::fsck`] for both xv6
//!   stacks (they share one on-disk format), and
//!   [`Ext4Sim::check_consistency`] for the ext4 comparator;
//! * **durability** — everything fsync'd before the crash survives
//!   byte-for-byte ([`WorkloadModel::verify`]).
//!
//! Everything — the workload, the sampled crash states, any live
//! injections — derives from the seed in [`CrashTestConfig`], so a failing
//! run replays exactly from `(stack, seed, ops)`.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use simkernel::cost::CostModel;
use simkernel::dev::{BlockDevice, RamDisk};
use simkernel::error::{Errno, KernelResult};
use simkernel::queue::{MultiQueueDevice, QueueConfig};
use simkernel::vfs::{FileMode, VfsFs, PAGE_SIZE};

use ext4sim::Ext4Sim;
use xv6fs_vfs::Xv6VfsFilesystem;

use crate::device::{DiskImage, FaultConfig, FaultDevice};
use crate::enumerate::{prefix_states, sampled_states};
use crate::model::{resolve, Violation, WorkloadModel};

/// Block size used throughout the storage stack.
const BSIZE: usize = PAGE_SIZE;

/// The stacks the harness can put under crash test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashStack {
    /// xv6 in Rust on Bento (the paper's main subject).
    BentoXv6,
    /// xv6 directly against the VFS layer (the C baseline).
    VfsXv6,
    /// The ext4-like comparator.
    Ext4,
}

impl CrashStack {
    /// All crash-tested stacks.  (The FUSE stack shares `xv6fs` — and
    /// therefore its log and recovery — with the Bento stack; its extra
    /// layer adds boundary-crossing cost, not new on-disk states.)
    pub fn all() -> [CrashStack; 3] {
        [CrashStack::BentoXv6, CrashStack::VfsXv6, CrashStack::Ext4]
    }

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            CrashStack::BentoXv6 => "Bento",
            CrashStack::VfsXv6 => "C-Kernel",
            CrashStack::Ext4 => "Ext4",
        }
    }
}

/// How crash states are drawn from the trace.
#[derive(Debug, Clone, Copy)]
pub enum CrashMode {
    /// Every in-order prefix of the write stream (exhaustive; cost scales
    /// with trace length squared in materialized block references, so use
    /// on short traces).
    Prefixes,
    /// `states` randomized subset/reorder/tear states seeded from the run
    /// seed.
    Sampled {
        /// Number of crash states to draw.
        states: usize,
    },
}

/// Knobs for one harness run.
#[derive(Debug, Clone)]
pub struct CrashTestConfig {
    /// Master seed: workload, fsync placement, and sampled crash states all
    /// derive from it.
    pub seed: u64,
    /// Number of workload operations to run before the crash.
    pub ops: usize,
    /// Disk size in 4 KiB blocks.
    pub disk_blocks: u64,
    /// Crash-state generation mode.
    pub mode: CrashMode,
    /// Cap on *recorded* violations (the total found is always counted).
    pub max_violations: usize,
    /// When nonzero, mount through the NVMe-style multi-queue device
    /// ([`MultiQueueDevice`]) with this per-queue depth, layered *over* the
    /// recording fault device — so every queued submission is recorded in
    /// the barrier epoch it was submitted in, and crash enumeration
    /// reorders it only within that epoch.  Zero (the default) mounts the
    /// recorder directly (the synchronous device path).
    pub queue_depth: usize,
}

impl CrashTestConfig {
    /// The acceptance configuration: a 200-op randomized trace, sampled
    /// crash states.
    pub fn standard(seed: u64) -> Self {
        CrashTestConfig {
            seed,
            ops: 200,
            disk_blocks: 8192,
            mode: CrashMode::Sampled { states: 160 },
            max_violations: 32,
            queue_depth: 0,
        }
    }

    /// Same run, mounted through the queued device model at `depth`.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }
}

/// The outcome of one [`run_crash_test`].
#[derive(Debug)]
pub struct CrashReport {
    /// Which stack was tested.
    pub stack: &'static str,
    /// Workload operations completed before the crash.
    pub ops_run: usize,
    /// fsync durability points recorded.
    pub fsync_points: usize,
    /// Block writes in the recorded trace.
    pub trace_writes: usize,
    /// Barrier epochs in the recorded trace.
    pub trace_epochs: usize,
    /// Crash states materialized and checked.
    pub states_checked: usize,
    /// Total oracle violations found.
    pub violations_found: usize,
    /// Recorded violation details (capped at `max_violations`).
    pub violations: Vec<Violation>,
}

impl CrashReport {
    /// Whether every crash state recovered cleanly.
    pub fn is_clean(&self) -> bool {
        self.violations_found == 0
    }
}

/// Formats the base disk for `stack` and returns it.
fn format_base(stack: CrashStack, disk_blocks: u64) -> KernelResult<Arc<dyn BlockDevice>> {
    let base: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(BSIZE as u32, disk_blocks));
    match stack {
        CrashStack::BentoXv6 | CrashStack::VfsXv6 => {
            xv6fs::mkfs::mkfs_on_device(&base, 256)?;
        }
        CrashStack::Ext4 => {
            // format_and_mount writes (and flushes) the initial checkpoint;
            // the instance is dropped clean.
            Ext4Sim::format_and_mount(Arc::clone(&base))?;
        }
    }
    Ok(base)
}

/// A mounted stack: the generic handle, or (for ext4) the concrete handle
/// the consistency checker needs.
enum MountedState {
    Generic(Arc<dyn VfsFs>),
    Ext4(Arc<Ext4Sim>),
}

impl MountedState {
    fn vfs(&self) -> &dyn VfsFs {
        match self {
            MountedState::Generic(fs) => fs.as_ref(),
            MountedState::Ext4(fs) => fs.as_ref() as &dyn VfsFs,
        }
    }
}

/// Mounts `stack` on `device` (for crash images this runs recovery).
fn mount_stack_on(stack: CrashStack, device: Arc<dyn BlockDevice>) -> KernelResult<MountedState> {
    Ok(match stack {
        CrashStack::BentoXv6 => {
            MountedState::Generic(xv6fs::fstype().mount_on(device)? as Arc<dyn VfsFs>)
        }
        CrashStack::VfsXv6 => {
            MountedState::Generic(Xv6VfsFilesystem::mount(device)? as Arc<dyn VfsFs>)
        }
        CrashStack::Ext4 => MountedState::Ext4(Ext4Sim::mount(device)?),
    })
}

/// Runs the full harness for one stack.
///
/// # Errors
///
/// Propagates unexpected I/O errors (oracle violations are *reported*, not
/// returned as errors).
pub fn run_crash_test(stack: CrashStack, cfg: &CrashTestConfig) -> KernelResult<CrashReport> {
    // 1. Format, snapshot the base image, wrap the recorder.
    let base = format_base(stack, cfg.disk_blocks)?;
    let image = Arc::new(DiskImage::capture(&base)?);
    let fault = Arc::new(FaultDevice::new(base, FaultConfig::recorder(cfg.seed)));
    let fault_dyn: Arc<dyn BlockDevice> = Arc::clone(&fault) as Arc<dyn BlockDevice>;
    // With a queue depth, the stack sees the multi-queue device and the
    // recorder sits underneath it: queued writes reach the recorder at
    // submission time and the queued device's flush drains its queues
    // before forwarding, so epoch boundaries in the trace are exactly the
    // stack's barriers.
    let mount_dev: Arc<dyn BlockDevice> = if cfg.queue_depth > 0 {
        Arc::new(MultiQueueDevice::new(
            Arc::clone(&fault_dyn),
            CostModel::zero(),
            QueueConfig::new(4, cfg.queue_depth),
        ))
    } else {
        Arc::clone(&fault_dyn)
    };

    // 2. Mount and run the modelled workload, then crash (drop, no sync).
    let mut model = WorkloadModel::new();
    let ops_run = {
        let fs = mount_stack_on(stack, mount_dev)?;
        run_workload(fs.vfs(), &fault, &mut model, cfg)?
    };
    let trace = fault.trace();
    let epochs = trace.epochs().len();

    // 3. Enumerate crash states and run both oracles on each.
    let states = match cfg.mode {
        CrashMode::Prefixes => prefix_states(&trace, &image),
        CrashMode::Sampled { states } => sampled_states(&trace, &image, cfg.seed, states),
    };
    let mut violations: Vec<Violation> = Vec::new();
    let mut violations_found = 0usize;
    let record = |violations: &mut Vec<Violation>, found: &mut usize, list: Vec<Violation>| {
        for violation in list {
            *found += 1;
            if violations.len() < cfg.max_violations {
                violations.push(violation);
            }
        }
    };
    for state in &states {
        let disk_dyn: Arc<dyn BlockDevice> = Arc::clone(&state.disk) as Arc<dyn BlockDevice>;
        let mounted = match mount_stack_on(stack, Arc::clone(&disk_dyn)) {
            Ok(mounted) => mounted,
            Err(e) => {
                record(
                    &mut violations,
                    &mut violations_found,
                    vec![Violation {
                        state: state.description.clone(),
                        detail: format!("remount failed: {e}"),
                    }],
                );
                continue;
            }
        };
        // Structural oracle (after recovery ran during mount).
        let mut structural = Vec::new();
        match &mounted {
            MountedState::Ext4(fs) => {
                let report = fs.check_consistency();
                for error in report.errors {
                    structural.push(Violation {
                        state: state.description.clone(),
                        detail: format!("fsck: {error}"),
                    });
                }
            }
            MountedState::Generic(_) => match xv6fs::fsck::fsck_device(&disk_dyn) {
                Ok(report) => {
                    for error in report.errors {
                        structural.push(Violation {
                            state: state.description.clone(),
                            detail: format!("fsck: {error}"),
                        });
                    }
                }
                Err(e) => structural.push(Violation {
                    state: state.description.clone(),
                    detail: format!("fsck aborted with I/O error: {e}"),
                }),
            },
        }
        record(&mut violations, &mut violations_found, structural);
        // Durability oracle.  An *error* while evaluating it (e.g. the
        // root inode vanished, a directory walk hit garbage) means the
        // recovered image is broken — report it as a violation of this
        // state rather than aborting the whole run.
        let durability = match model.verify(mounted.vfs(), &state.description, state.durable_events)
        {
            Ok(list) => list,
            Err(e) => vec![Violation {
                state: state.description.clone(),
                detail: format!("durability oracle aborted: {e}"),
            }],
        };
        record(&mut violations, &mut violations_found, durability);
    }

    Ok(CrashReport {
        stack: stack.label(),
        ops_run,
        fsync_points: model.snapshot_count(),
        trace_writes: trace.write_count(),
        trace_epochs: epochs,
        states_checked: states.len(),
        violations_found,
        violations,
    })
}

// ---------------------------------------------------------------------------
// The randomized workload
// ---------------------------------------------------------------------------

/// Upper bound on simultaneously live files (keeps traces bounded).
const MAX_FILES: usize = 48;
/// Upper bound on directories under the root.
const MAX_DIRS: usize = 6;
/// Largest file size in pages (sizes stay page-aligned so the model's
/// byte-for-byte comparison is exact across all three stacks' partial-page
/// semantics).
const MAX_FILE_PAGES: u64 = 4;

/// Drives `ops` randomized operations against `fs`, mirroring each into
/// `model` and recording fsync durability points against `fault`'s event
/// counter.  Returns the number of operations completed.
fn run_workload(
    fs: &dyn VfsFs,
    fault: &FaultDevice,
    model: &mut WorkloadModel,
    cfg: &CrashTestConfig,
) -> KernelResult<usize> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut name_counter = 0usize;
    for op in 0..cfg.ops {
        model.next_op();
        let roll: f64 = rng.gen();
        // Force an early durability point so every run exercises the
        // fsync'd-data-must-survive oracle.
        let force_fsync = model.snapshot_count() == 0 && op == cfg.ops / 4;
        if force_fsync || roll < 0.12 {
            fs.fsync(fs.root_ino(), false)?;
            model.note_fsync(fault.event_count());
        } else if roll < 0.24 && model.tree.dirs.len() < MAX_DIRS {
            name_counter += 1;
            let name = format!("d{name_counter}");
            fs.mkdir(fs.root_ino(), &name, FileMode::directory())?;
            model.mkdir(&name);
        } else if roll < 0.50 || model.tree.files.is_empty() {
            if model.tree.files.len() >= MAX_FILES {
                continue;
            }
            name_counter += 1;
            let dir = pick_dir(&mut rng, model);
            let name = format!("f{name_counter}");
            let path = join(&dir, &name);
            let parent = dir_ino(fs, &dir)?;
            fs.create(parent, &name, FileMode::regular())?;
            model.create(&path);
        } else if roll < 0.74 {
            let path = pick_file(&mut rng, model);
            write_file(fs, model, &mut rng, &path)?;
        } else if roll < 0.80 {
            let path = pick_file(&mut rng, model);
            truncate_file(fs, model, &mut rng, &path)?;
        } else if roll < 0.88 {
            let path = pick_file(&mut rng, model);
            let (dir, name) = split(&path);
            let parent = dir_ino(fs, &dir)?;
            fs.unlink(parent, &name)?;
            model.unlink(&path);
        } else if roll < 0.96 {
            let path = pick_file(&mut rng, model);
            let (old_dir, old_name) = split(&path);
            name_counter += 1;
            let new_dir = pick_dir(&mut rng, model);
            let new_name = format!("r{name_counter}");
            let old_parent = dir_ino(fs, &old_dir)?;
            let new_parent = dir_ino(fs, &new_dir)?;
            fs.rename(old_parent, &old_name, new_parent, &new_name)?;
            model.rename(&path, &join(&new_dir, &new_name));
        } else {
            // rmdir an empty directory, if any.
            let empty: Vec<String> = model
                .tree
                .dirs
                .iter()
                .filter(|d| !model.tree.files.keys().any(|f| f.starts_with(&format!("{d}/"))))
                .cloned()
                .collect();
            if let Some(dir) = pick(&mut rng, &empty) {
                fs.rmdir(fs.root_ino(), dir)?;
                model.rmdir(dir);
            }
        }
    }
    Ok(cfg.ops)
}

fn pick<'a, T>(rng: &mut SmallRng, items: &'a [T]) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.gen_range(0..items.len())])
    }
}

fn pick_dir(rng: &mut SmallRng, model: &WorkloadModel) -> String {
    let dirs: Vec<String> = model.tree.dirs.iter().cloned().collect();
    if dirs.is_empty() || rng.gen::<bool>() {
        String::new() // the root
    } else {
        dirs[rng.gen_range(0..dirs.len())].clone()
    }
}

fn pick_file(rng: &mut SmallRng, model: &WorkloadModel) -> String {
    let files: Vec<String> = model.tree.files.keys().cloned().collect();
    files[rng.gen_range(0..files.len())].clone()
}

fn join(dir: &str, name: &str) -> String {
    if dir.is_empty() {
        name.to_string()
    } else {
        format!("{dir}/{name}")
    }
}

fn split(path: &str) -> (String, String) {
    match path.rsplit_once('/') {
        Some((dir, name)) => (dir.to_string(), name.to_string()),
        None => (String::new(), path.to_string()),
    }
}

fn dir_ino(fs: &dyn VfsFs, dir: &str) -> KernelResult<u64> {
    if dir.is_empty() {
        return Ok(fs.root_ino());
    }
    match resolve(fs, dir)? {
        Some(attr) => Ok(attr.ino),
        None => Err(simkernel::error::KernelError::with_context(
            Errno::NoEnt,
            "crashsim: workload lost a directory",
        )),
    }
}

/// Writes 1–2 full pages at a random page offset, extending the file as
/// needed (page-aligned sizes; gaps become holes that read as zeros for
/// both the model and every stack).
fn write_file(
    fs: &dyn VfsFs,
    model: &mut WorkloadModel,
    rng: &mut SmallRng,
    path: &str,
) -> KernelResult<()> {
    let Some(attr) = resolve(fs, path)? else { return Ok(()) };
    let old = model.tree.files.get(path).cloned().unwrap_or_default();
    let start_page: u64 = rng.gen_range(0..MAX_FILE_PAGES);
    let pages: u64 = rng.gen_range(1..=2);
    let end = ((start_page + pages) * PAGE_SIZE as u64) as usize;
    let file_size = old.len().max(end) as u64;
    let mut content = old;
    content.resize(content.len().max(end), 0);
    let pattern: u64 = rng.gen();
    for p in 0..pages {
        let page_index = start_page + p;
        let mut buf = vec![0u8; PAGE_SIZE];
        for (i, byte) in buf.iter_mut().enumerate() {
            *byte = (pattern.wrapping_add(page_index.wrapping_mul(0x9E37)).wrapping_add(i as u64))
                as u8;
        }
        fs.write_page(attr.ino, page_index, &buf, file_size)?;
        let lo = (page_index as usize) * PAGE_SIZE;
        content[lo..lo + PAGE_SIZE].copy_from_slice(&buf);
    }
    model.set_content(path, content);
    Ok(())
}

/// Truncates to a smaller page-aligned size (growth happens via writes).
fn truncate_file(
    fs: &dyn VfsFs,
    model: &mut WorkloadModel,
    rng: &mut SmallRng,
    path: &str,
) -> KernelResult<()> {
    let Some(attr) = resolve(fs, path)? else { return Ok(()) };
    let old_pages = model.tree.files.get(path).map(|c| c.len() / PAGE_SIZE).unwrap_or(0);
    if old_pages == 0 {
        return Ok(());
    }
    let new_pages = rng.gen_range(0..old_pages);
    let new_size = new_pages * PAGE_SIZE;
    fs.setattr(attr.ino, &simkernel::vfs::SetAttr::truncate(new_size as u64))?;
    model.truncate(path, new_size);
    Ok(())
}
