//! # crashsim — fault injection, crash-state enumeration, and recovery oracles
//!
//! The paper's thesis is that safe Rust eliminates the low-level bug
//! classes of its Table 1 study — but crash-consistency bugs are exactly
//! the class the type system cannot catch.  This crate turns "the log looks
//! right" into a machine-checked invariant for every storage stack in the
//! workspace:
//!
//! * [`device`] — [`device::FaultDevice`], a recording wrapper
//!   over any block device that partitions the write stream into barrier
//!   epochs and can inject torn writes, write-cache reordering, dropped
//!   writes, transient `EIO`, and a hard disconnect — all driven by a
//!   seeded RNG so every failure replays from its seed;
//! * [`enumerate`] — materializes crash images consistent with the device
//!   contract (epochs before the crash durable; any subset / order / tear
//!   within the crash epoch), exhaustively over write-stream prefixes or by
//!   seeded random sampling;
//! * [`model`] — the workload-side mirror and the logical durability
//!   oracle: everything fsync'd before the crash must survive remount
//!   byte-for-byte;
//! * [`harness`] — [`harness::run_crash_test`] wires it all
//!   together for the Bento xv6, VFS xv6, and ext4sim stacks (structural
//!   checking via [`xv6fs::fsck`] respectively
//!   [`Ext4Sim::check_consistency`](ext4sim::Ext4Sim::check_consistency)).
//!
//! ## Replaying a failure
//!
//! Every report names the crash state that failed (`sample 17 (seed 42):
//! crash in epoch 9/31, ...`).  Re-running `run_crash_test` with the same
//! `(stack, seed, ops, mode)` regenerates the identical workload, trace,
//! and crash states — no stored artifacts needed.
//!
//! ```
//! use crashsim::{run_crash_test, CrashMode, CrashStack, CrashTestConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = CrashTestConfig {
//!     seed: 7,
//!     ops: 40,
//!     disk_blocks: 4096,
//!     mode: CrashMode::Sampled { states: 16 },
//!     max_violations: 8,
//!     queue_depth: 0,
//! };
//! let report = run_crash_test(CrashStack::BentoXv6, &cfg)?;
//! assert!(report.is_clean(), "{:?}", report.violations);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod enumerate;
pub mod harness;
pub mod logharness;
pub mod model;

pub use device::{
    DiskImage, Event, FaultConfig, FaultDevice, FaultStats, SnapshotDisk, WriteTrace,
};
pub use enumerate::{prefix_states, sampled_states, CrashState};
pub use harness::{run_crash_test, CrashMode, CrashReport, CrashStack, CrashTestConfig};
pub use model::{StableSnapshot, Violation, WorkloadModel};
