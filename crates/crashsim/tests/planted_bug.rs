//! Proof that the checker has teeth: a deliberately planted ordering bug —
//! the log's commit record written (and made durable) *ahead of* its
//! payload epoch — must be caught by the oracles.
//!
//! With the record-first ordering, a crash between the record barrier and
//! the payload writes leaves a valid, checksummed commit record naming
//! blocks whose log-region copies are stale (a previous group's bytes, or
//! mkfs zeros).  Recovery then installs that stale data over live
//! metadata, which the fsck and durability oracles must flag.
//!
//! This test lives in its own integration-test binary because the hook is
//! process-global.

use std::sync::atomic::Ordering;

use crashsim::{run_crash_test, CrashMode, CrashStack, CrashTestConfig};
use xv6fs::log::TEST_UNSAFE_EARLY_COMMIT_RECORD;

#[test]
fn early_commit_record_ordering_bug_is_caught() {
    let cfg = CrashTestConfig {
        seed: 0xBAD_C0DE,
        ops: 40,
        disk_blocks: 4096,
        mode: CrashMode::Prefixes,
        max_violations: 8,
        queue_depth: 0,
    };
    // Sanity: with the correct ordering the same run is clean.
    let clean = run_crash_test(CrashStack::BentoXv6, &cfg).unwrap();
    assert!(
        clean.is_clean(),
        "correct ordering must pass: {:#?}",
        clean.violations.iter().take(3).collect::<Vec<_>>()
    );

    TEST_UNSAFE_EARLY_COMMIT_RECORD.store(true, Ordering::SeqCst);
    let report = run_crash_test(CrashStack::BentoXv6, &cfg);
    TEST_UNSAFE_EARLY_COMMIT_RECORD.store(false, Ordering::SeqCst);

    let report = report.unwrap();
    assert!(
        report.violations_found > 0,
        "the planted record-before-payload bug went undetected across {} crash states",
        report.states_checked
    );
}
