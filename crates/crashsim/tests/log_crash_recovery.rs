//! Crash-recovery property tests for the pipelined, double-buffered xv6
//! log, ported from `crates/xv6fs/tests/log_crash_recovery.rs` onto the
//! crashsim subsystem: the hand-rolled recording device became
//! [`FaultDevice`], and the hand-rolled prefix replay became
//! [`prefix_states`] — which also checks strictly more states (every write
//! boundary, not only barrier points) and layers the fsck oracle on top.

use std::collections::HashMap;
use std::sync::Arc;

use bento::bentoks::KernelBlockIo;
use bento::userspace::userspace_superblock;
use crashsim::{prefix_states, DiskImage, FaultConfig, FaultDevice};
use simkernel::dev::{BlockDevice, RamDisk};
use simkernel::vfs::{FileMode, VfsFs as _};
use xv6fs::layout::{DiskSuperblock, BSIZE, FSMAGIC, LOGSIZE};
use xv6fs::log::Log;

fn test_dsb(size: u32) -> DiskSuperblock {
    DiskSuperblock {
        magic: FSMAGIC,
        size,
        nblocks: 400,
        ninodes: 64,
        nlog: LOGSIZE as u32,
        logstart: 2,
        inodestart: 2 + LOGSIZE as u32,
        bmapstart: 2 + LOGSIZE as u32 + 2,
    }
}

fn block_fill(dev: &Arc<dyn BlockDevice>, blockno: u64) -> u8 {
    let mut buf = vec![0u8; BSIZE];
    dev.read_block(blockno, &mut buf).unwrap();
    buf[0]
}

/// Two committed transactions (one per log region) modifying overlapping
/// blocks; a crash at *every* write prefix must recover to an all-or-
/// nothing, commit-ordered state.
#[test]
fn every_write_prefix_crash_recovers_atomically_across_both_regions() {
    const DISK_BLOCKS: u64 = 1024;
    let dsb = test_dsb(DISK_BLOCKS as u32);
    let base: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(BSIZE as u32, DISK_BLOCKS));
    let image = Arc::new(DiskImage::capture(&base).unwrap());
    let recorder = Arc::new(FaultDevice::new(base, FaultConfig::recorder(0)));
    {
        let sb = userspace_superblock(
            Arc::new(KernelBlockIo::new(Arc::clone(&recorder) as Arc<dyn BlockDevice>, 512)),
            "recorder",
        );
        let log = Log::new(&dsb);
        // tx1 -> region 0: blocks 900 and 901.
        log.begin_op();
        for (blockno, fill) in [(900u64, 0xA1u8), (901, 0xA2)] {
            let mut buf = sb.bread(blockno).unwrap();
            buf.data_mut().fill(fill);
            log.log_write(&buf).unwrap();
        }
        log.end_op(&sb).unwrap();
        // tx2 -> region 1: block 900 again (conflict) and block 902.
        log.begin_op();
        for (blockno, fill) in [(900u64, 0xB1u8), (902, 0xB2)] {
            let mut buf = sb.bread(blockno).unwrap();
            buf.data_mut().fill(fill);
            log.log_write(&buf).unwrap();
        }
        log.end_op(&sb).unwrap();
    }
    let trace = recorder.trace();
    assert_eq!(trace.flush_count(), 6, "two commits, three barriers each");

    for state in prefix_states(&trace, &image) {
        let disk: Arc<dyn BlockDevice> = Arc::clone(&state.disk) as Arc<dyn BlockDevice>;
        let sb =
            userspace_superblock(Arc::new(KernelBlockIo::new(Arc::clone(&disk), 512)), "crashed");
        let log = Log::new(&dsb);
        log.recover(&sb).unwrap();
        // Second recovery must be a no-op (headers cleared).
        assert_eq!(log.recover(&sb).unwrap(), 0, "{}", state.description);
        drop(sb);

        let b900 = block_fill(&disk, 900);
        let b901 = block_fill(&disk, 901);
        let b902 = block_fill(&disk, 902);
        let tx2_applied = b902 == 0xB2;
        let tx1_applied = b901 == 0xA2;
        let state = &state.description;
        if tx2_applied {
            assert!(tx1_applied, "{state}: tx2 visible without tx1 (commit order broken)");
            assert_eq!(b900, 0xB1, "{state}: tx2 partially applied");
        } else if tx1_applied {
            assert_eq!(b900, 0xA1, "{state}: tx1 partially applied");
            assert_eq!(b902, 0x00, "{state}: tx2 leaked without committing");
        } else {
            assert_eq!((b900, b901, b902), (0, 0, 0), "{state}: partial transaction visible");
        }
    }
}

/// Full-stack variant: crash at every write prefix while a burst of
/// creates commits through alternating log regions; every remount must
/// succeed, pass fsck, and leave a usable file system.
#[test]
fn full_stack_create_burst_survives_crash_at_every_write_prefix() {
    const DISK_BLOCKS: u64 = 4096;
    let base: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(BSIZE as u32, DISK_BLOCKS));
    xv6fs::mkfs::mkfs_on_device(&base, 256).unwrap();
    let image = Arc::new(DiskImage::capture(&base).unwrap());
    let recorder = Arc::new(FaultDevice::new(base, FaultConfig::recorder(0)));
    {
        let fs = xv6fs::fstype().mount_on(Arc::clone(&recorder) as Arc<dyn BlockDevice>).unwrap();
        for i in 0..30u32 {
            fs.create(1, &format!("c{i}"), FileMode::regular()).unwrap();
        }
    }
    let trace = recorder.trace();
    assert!(trace.flush_count() >= 12, "expected several commits");

    let mut names_seen: HashMap<String, bool> = HashMap::new();
    for state in prefix_states(&trace, &image) {
        let disk: Arc<dyn BlockDevice> = Arc::clone(&state.disk) as Arc<dyn BlockDevice>;
        // Reboot: mount runs recovery.
        let fs = xv6fs::fstype().mount_on(Arc::clone(&disk)).unwrap();
        let entries = fs.readdir(1).unwrap();
        for entry in &entries {
            if entry.name.starts_with('c') {
                // Every surviving directory entry resolves to a valid inode.
                fs.getattr(entry.ino).unwrap();
                names_seen.insert(entry.name.clone(), true);
            }
        }
        // The recovered image is structurally sound...
        let report = xv6fs::fsck::fsck_device(&disk).unwrap();
        assert!(report.is_clean(), "{}: {:?}", state.description, report.errors);
        // ...and the file system stays fully usable.
        let attr = fs.create(1, "post-crash", FileMode::regular()).unwrap();
        assert_eq!(fs.lookup(1, "post-crash").unwrap().ino, attr.ino);
    }
    // The final prefix holds the whole burst.
    assert!(names_seen.len() >= 30, "all creates visible at the full prefix");
}
