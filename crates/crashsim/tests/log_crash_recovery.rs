//! Crash-recovery property tests for the shared pipelined, double-buffered
//! write-ahead log, run through the journal-generic harness
//! ([`crashsim::logharness`]): the same two-transaction scenario and the
//! same all-or-nothing, commit-ordered oracles apply to **every** log
//! stack — the bare `journal::Journal`, the Bento stack's log, and the VFS
//! baseline's log — so a stack cannot drift out of the crash contract
//! without this test failing by name.

use std::collections::HashMap;
use std::sync::Arc;

use crashsim::logharness::all_stacks;
use crashsim::{prefix_states, DiskImage, FaultConfig, FaultDevice};
use simkernel::dev::{BlockDevice, RamDisk};
use simkernel::vfs::{FileMode, VfsFs as _};
use xv6fs::layout::BSIZE;

/// Two committed transactions (one per log region) modifying overlapping
/// blocks; a crash at *every* write prefix must recover to an all-or-
/// nothing, commit-ordered state — on every stack.
#[test]
fn every_write_prefix_crash_recovers_atomically_on_every_stack() {
    const DISK_BLOCKS: u64 = 1024;
    for stack in all_stacks() {
        let name = stack.name();
        let base: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(BSIZE as u32, DISK_BLOCKS));
        let image = Arc::new(DiskImage::capture(&base).unwrap());
        let recorder = Arc::new(FaultDevice::new(base, FaultConfig::recorder(0)));
        {
            let log = stack.open(Arc::clone(&recorder) as Arc<dyn BlockDevice>, DISK_BLOCKS as u32);
            // tx1 -> region 0: blocks 900 and 901.
            log.begin_op();
            log.log_fill(900, 0xA1).unwrap();
            log.log_fill(901, 0xA2).unwrap();
            log.end_op().unwrap();
            // tx2 -> region 1: block 900 again (conflict) and block 902.
            log.begin_op();
            log.log_fill(900, 0xB1).unwrap();
            log.log_fill(902, 0xB2).unwrap();
            log.end_op().unwrap();
        }
        let trace = recorder.trace();
        assert_eq!(trace.flush_count(), 6, "{name}: two commits, three barriers each");

        for state in prefix_states(&trace, &image) {
            let disk: Arc<dyn BlockDevice> = Arc::clone(&state.disk) as Arc<dyn BlockDevice>;
            // Reboot: a fresh mount (fresh cache, fresh log state) runs
            // recovery.
            let log = stack.open(Arc::clone(&disk), DISK_BLOCKS as u32);
            log.recover().unwrap();
            // Second recovery must be a no-op (headers cleared).
            assert_eq!(log.recover().unwrap(), 0, "{name}: {}", state.description);

            let b900 = log.read_block(900).unwrap()[0];
            let b901 = log.read_block(901).unwrap()[0];
            let b902 = log.read_block(902).unwrap()[0];
            let tx2_applied = b902 == 0xB2;
            let tx1_applied = b901 == 0xA2;
            let state = &state.description;
            if tx2_applied {
                assert!(
                    tx1_applied,
                    "{name}: {state}: tx2 visible without tx1 (commit order broken)"
                );
                assert_eq!(b900, 0xB1, "{name}: {state}: tx2 partially applied");
            } else if tx1_applied {
                assert_eq!(b900, 0xA1, "{name}: {state}: tx1 partially applied");
                assert_eq!(b902, 0x00, "{name}: {state}: tx2 leaked without committing");
            } else {
                assert_eq!(
                    (b900, b901, b902),
                    (0, 0, 0),
                    "{name}: {state}: partial transaction visible"
                );
            }
        }
    }
}

/// Full-stack variant: crash at every write prefix while a burst of
/// creates commits through alternating log regions; every remount must
/// succeed, pass fsck, and leave a usable file system.
#[test]
fn full_stack_create_burst_survives_crash_at_every_write_prefix() {
    const DISK_BLOCKS: u64 = 4096;
    let base: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(BSIZE as u32, DISK_BLOCKS));
    xv6fs::mkfs::mkfs_on_device(&base, 256).unwrap();
    let image = Arc::new(DiskImage::capture(&base).unwrap());
    let recorder = Arc::new(FaultDevice::new(base, FaultConfig::recorder(0)));
    {
        let fs = xv6fs::fstype().mount_on(Arc::clone(&recorder) as Arc<dyn BlockDevice>).unwrap();
        for i in 0..30u32 {
            fs.create(1, &format!("c{i}"), FileMode::regular()).unwrap();
        }
    }
    let trace = recorder.trace();
    assert!(trace.flush_count() >= 12, "expected several commits");

    let mut names_seen: HashMap<String, bool> = HashMap::new();
    for state in prefix_states(&trace, &image) {
        let disk: Arc<dyn BlockDevice> = Arc::clone(&state.disk) as Arc<dyn BlockDevice>;
        // Reboot: mount runs recovery.
        let fs = xv6fs::fstype().mount_on(Arc::clone(&disk)).unwrap();
        let entries = fs.readdir(1).unwrap();
        for entry in &entries {
            if entry.name.starts_with('c') {
                // Every surviving directory entry resolves to a valid inode.
                fs.getattr(entry.ino).unwrap();
                names_seen.insert(entry.name.clone(), true);
            }
        }
        // The recovered image is structurally sound...
        let report = xv6fs::fsck::fsck_device(&disk).unwrap();
        assert!(report.is_clean(), "{}: {:?}", state.description, report.errors);
        // ...and the file system stays fully usable.
        let attr = fs.create(1, "post-crash", FileMode::regular()).unwrap();
        assert_eq!(fs.lookup(1, "post-crash").unwrap().ino, attr.ino);
    }
    // The final prefix holds the whole burst.
    assert!(names_seen.len() >= 30, "all creates visible at the full prefix");
}
