//! Crash-consistency coverage for the per-directory namespace locks.
//!
//! PR 8 replaced the per-mount namespace mutex in both xv6 stacks with a
//! per-directory lock table (`simkernel::nslock`) and moved the lifecycle
//! `RwLock` to an `Arc`-clone read.  The locking change must not alter
//! what reaches the disk: transactions still open after the directory
//! locks are taken and commit after they drop, so every crash state that
//! was recoverable before must still be recoverable.
//!
//! The harness workload mixes creates, cross-directory renames, unlinks
//! and rmdirs, so a sampled enumeration run here drives crash/recovery
//! straight through the new lock paths.  Fresh seeds (distinct from
//! `stacks_recover.rs`) buy different traces rather than re-checking the
//! same ones, and one run goes through the queued device at depth 8 so the
//! overlapped-commit pipeline is exercised under the new locking too.

use crashsim::{run_crash_test, CrashStack, CrashTestConfig};

fn assert_clean(stack: CrashStack, cfg: &CrashTestConfig) {
    let report = run_crash_test(stack, cfg).unwrap_or_else(|e| panic!("{stack:?}: {e}"));
    assert_eq!(report.ops_run, cfg.ops);
    assert!(report.states_checked > 0);
    assert!(
        report.is_clean(),
        "{stack:?}: {} violations, e.g. {:#?}",
        report.violations_found,
        report.violations.iter().take(5).collect::<Vec<_>>()
    );
}

#[test]
fn bento_xv6_with_per_directory_locks_survives_sampled_crashes() {
    assert_clean(CrashStack::BentoXv6, &CrashTestConfig::standard(0xD1_5108));
}

#[test]
fn vfs_xv6_with_per_directory_locks_survives_sampled_crashes() {
    assert_clean(CrashStack::VfsXv6, &CrashTestConfig::standard(0xD1_5109));
}

#[test]
fn bento_xv6_per_directory_locks_stay_clean_at_queue_depth_8() {
    // The two-stage overlapped commit interleaves with namespace traffic;
    // the directory locks drop before end_op, so commits from different
    // directories pipeline — crash states must still all recover.
    assert_clean(CrashStack::BentoXv6, &CrashTestConfig::standard(0xD1_510A).with_queue_depth(8));
}

#[test]
fn vfs_xv6_per_directory_locks_stay_clean_at_queue_depth_8() {
    assert_clean(CrashStack::VfsXv6, &CrashTestConfig::standard(0xD1_510B).with_queue_depth(8));
}
