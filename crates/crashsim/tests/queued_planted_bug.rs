//! Proof that the queued-device crash checker has teeth: a deliberately
//! planted ordering bug specific to the batched commit path — the commit
//! record submitted *without waiting for the payload completions* (no
//! payload barrier) — must be caught.
//!
//! With the barrier skipped, the batched stage-1 payload writes and the
//! commit record land in the *same* barrier epoch.  Crash enumeration is
//! free to reorder within an epoch, so some crash states persist a valid,
//! checksummed commit record whose log-region payload never made it —
//! recovery then installs stale region bytes over live metadata, which the
//! fsck and durability oracles must flag.
//!
//! This test lives in its own integration-test binary because the hook is
//! process-global.

use std::sync::atomic::Ordering;

use crashsim::{run_crash_test, CrashMode, CrashStack, CrashTestConfig};
use xv6fs::log::TEST_UNSAFE_RECORD_WITHOUT_PAYLOAD_BARRIER;

#[test]
fn record_without_payload_barrier_is_caught_on_the_queued_device() {
    // Sampled mode, deliberately: in-order prefixes can never see this bug
    // (submission order still puts the payload first); only the sampled
    // subset/reorder states exercise the freedom the missing barrier
    // grants the write cache.
    let cfg = CrashTestConfig {
        seed: 0xBAD_0B10,
        ops: 60,
        disk_blocks: 4096,
        mode: CrashMode::Sampled { states: 300 },
        max_violations: 8,
        queue_depth: 8,
    };
    // Sanity: with the payload barrier in place the same queued run is
    // clean.
    let clean = run_crash_test(CrashStack::BentoXv6, &cfg).unwrap();
    assert!(
        clean.is_clean(),
        "correct ordering must pass: {:#?}",
        clean.violations.iter().take(3).collect::<Vec<_>>()
    );

    TEST_UNSAFE_RECORD_WITHOUT_PAYLOAD_BARRIER.store(true, Ordering::SeqCst);
    let report = run_crash_test(CrashStack::BentoXv6, &cfg);
    TEST_UNSAFE_RECORD_WITHOUT_PAYLOAD_BARRIER.store(false, Ordering::SeqCst);

    let report = report.unwrap();
    assert!(
        report.violations_found > 0,
        "the planted record-without-payload-barrier bug went undetected across {} crash states",
        report.states_checked
    );
}
