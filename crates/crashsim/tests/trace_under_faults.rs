//! Tracing sanity under fault injection: op spans must finish, attribute
//! device time only for I/O that actually reached the medium, and survive
//! injected error paths without corrupting per-thread trace state.
//!
//! Aggregation uses the spans' own `finish()` records, never the global
//! `drain()` — other test binaries may be tracing concurrently.

use std::sync::Arc;

use crashsim::{FaultConfig, FaultDevice};
use simkernel::cost::CostModel;
use simkernel::dev::{BlockDevice, SsdDevice};
use simkernel::trace::{self, Phase};

#[test]
fn spans_survive_injected_device_errors() {
    let ssd: Arc<dyn BlockDevice> = Arc::new(SsdDevice::ram_backed(256, CostModel::zero()));
    let fault = FaultDevice::new(ssd, FaultConfig::recorder(7));
    let _tracing = trace::enable();
    let buf = vec![0xabu8; 4096];
    let mut read_buf = vec![0u8; 4096];

    // Clean pass: writes and a flush under a span all count as device time.
    let span = trace::op_span("fault-probe");
    for block in 0..4 {
        fault.write_block(block, &buf).expect("clean write");
    }
    fault.flush().expect("clean flush");
    let rec = span.finish().expect("armed span must yield a record");
    assert_eq!(rec.class, "fault-probe");
    assert_eq!(rec.phase_counts[Phase::DevIo.index()], 5, "4 writes + 1 flush");
    assert!(rec.attributed_ns() <= rec.total_ns, "exclusive attribution bound");

    // Fault window: injected write EIOs fire *before* the inner device, so
    // they must not be attributed as device time — and the error return
    // must leave the span finishable, not poisoned mid-phase.
    fault.set_transient_eio(0.0, 1.0);
    let span = trace::op_span("fault-probe");
    for block in 0..4 {
        assert!(fault.write_block(block, &buf).is_err(), "EIO window must inject");
    }
    fault.read_block(0, &mut read_buf).expect("reads stay clean in a write-EIO window");
    let rec = span.finish().expect("span survives injected errors");
    assert_eq!(
        rec.phase_counts[Phase::DevIo.index()],
        1,
        "only the read reached the device; failed writes attribute nothing"
    );

    // After the fault clears, attribution resumes unharmed on the same
    // thread (the per-thread phase stack unwound cleanly).
    fault.set_transient_eio(0.0, 0.0);
    let span = trace::op_span("fault-probe");
    fault.write_block(0, &buf).expect("recovered write");
    let rec = span.finish().expect("post-fault span records");
    assert_eq!(rec.phase_counts[Phase::DevIo.index()], 1);
    assert_eq!(fault.fault_stats().write_errors, 4);
}
