//! Two-stage overlapped commit on the queued (multi-queue) device model,
//! run through the journal-generic harness so **every** log stack — the
//! bare journal, the Bento stack's log, and the VFS baseline's log — faces
//! the same scenarios (ported from `xv6fs/tests/two_stage_overlap.rs`,
//! which covered only the Bento stack):
//!
//! * a deterministic two-thread scenario in which the committer prefetches
//!   the next group's stage-1 payload while its own installs are still in
//!   flight (`overlapped_commits` observes it), and
//! * an 8-thread stress run checking that staging group N+1 while group N
//!   installs never loses data, keeps the barrier discipline (3 barriers
//!   per commit), drives the device above queue depth 1, and that `flush`
//!   drains both stages.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crashsim::logharness::{all_stacks, LogHandle, LogStack};
use simkernel::cost::CostModel;
use simkernel::dev::BlockDevice;
use simkernel::queue::{MultiQueueDevice, QueueConfig};
use xv6fs::layout::BSIZE;

/// A log on a queued NVMe-style device.  `model` controls how much
/// wall-clock time barriers and writes cost (that is what makes the
/// deterministic scenario deterministic).
fn setup_queued(
    stack: &dyn LogStack,
    model: CostModel,
    config: QueueConfig,
) -> (Arc<dyn LogHandle>, Arc<MultiQueueDevice>) {
    let mqd = Arc::new(MultiQueueDevice::new(
        Arc::new(simkernel::dev::RamDisk::new(BSIZE as u32, 1024)),
        model,
        config,
    ));
    let log = stack.open(Arc::clone(&mqd) as Arc<dyn BlockDevice>, 1024);
    (log, mqd)
}

fn write_block_via_log(log: &dyn LogHandle, blockno: u64, fill: u8) {
    log.begin_op();
    log.log_fill(blockno, fill).unwrap();
    log.end_op().unwrap();
}

/// One attempt at the deterministic overlap scenario.  Returns `true` when
/// the prefetch was observed.
///
/// Thread T commits group 0 on a device whose FLUSH takes ~25 ms of wall
/// time, so its commit spends ~25 ms inside *each* barrier.  The main
/// thread waits for the payload barrier to retire (barrier counter reaches
/// `base + 1`), then merges a second operation; the in-flight commit keeps
/// `end_op` from committing it, so the group sits closed-able.  When T's
/// record barrier retires it reaches the prefetch point, adopts the group,
/// and batch-submits its payload while running its own installs —
/// `overlapped_commits` ticks.
fn overlap_attempt(stack: &dyn LogStack) -> bool {
    let name = stack.name();
    let mut model = CostModel::zero();
    model.flush_base_ns = 25_000_000;
    model.inject_delays = true;
    let (log, _mqd) = setup_queued(stack, model, QueueConfig::new(2, 8));
    let base = log.stats().barriers;

    let t = {
        let log = Arc::clone(&log);
        std::thread::spawn(move || write_block_via_log(&*log, 600, 0xAA))
    };
    // Wait out the payload barrier; the record barrier that follows gives
    // the main thread a ~25 ms window to stage the second group.
    let deadline = Instant::now() + Duration::from_secs(10);
    while log.stats().barriers < base + 1 {
        assert!(
            Instant::now() < deadline,
            "{name}: first commit never reached its payload barrier"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    write_block_via_log(&*log, 601, 0xBB);
    t.join().unwrap();

    let stats = log.stats();
    assert_eq!(stats.commits, 2, "{name}");
    assert_eq!(
        stats.barriers,
        stats.commits * 3,
        "{name}: overlap must not change barriers per commit"
    );
    for (blockno, fill) in [(600u64, 0xAAu8), (601, 0xBB)] {
        let data = log.read_block(blockno).unwrap();
        assert!(data.iter().all(|&b| b == fill), "{name}: block {blockno} lost its committed data");
    }
    stats.overlapped_commits >= 1
}

#[test]
fn committer_prefetches_next_group_during_installs_on_every_stack() {
    for stack in all_stacks() {
        // The scenario loses its race only if the main thread needs more
        // than ~25 ms (a full record barrier) to merge one operation;
        // retry a few times so scheduler noise cannot fail the build.
        let observed = (0..5).any(|_| overlap_attempt(&*stack));
        assert!(observed, "{}: no overlapped commit observed in 5 attempts", stack.name());
    }
}

#[test]
fn eight_thread_stress_overlap_preserves_data_and_flush_drains_on_every_stack() {
    // Slow enough that commits dwell in their barriers (so other threads'
    // groups pile up and get prefetched) but fast enough for CI: a barrier
    // costs ~400 µs, a queued block write ~20 µs.
    let mut model = CostModel::zero();
    model.block_write_ns = 20_000;
    model.flush_base_ns = 400_000;
    model.inject_delays = true;
    for stack in all_stacks() {
        let name = stack.name();
        let mut observed_overlap = false;
        for _attempt in 0..3 {
            let (log, mqd) = setup_queued(&*stack, model.clone(), QueueConfig::new(4, 32));
            let mut handles = Vec::new();
            for t in 0..8u64 {
                let log = Arc::clone(&log);
                handles.push(std::thread::spawn(move || {
                    for round in 0..6u64 {
                        log.begin_op();
                        for i in 0..4u64 {
                            let blockno = 500 + t * 30 + round * 4 + i;
                            log.log_fill(blockno, fill_for(t, round, i)).unwrap();
                        }
                        log.end_op().unwrap();
                    }
                }));
            }
            for handle in handles {
                handle.join().unwrap();
            }
            // fsync path: drains the forming group, any in-flight commit,
            // and every queued submission (the barrier inside the commit
            // drains the device queues).
            log.flush().unwrap();
            assert_eq!(mqd.counters().inflight_now(), 0, "{name}: flush left requests in flight");

            let stats = log.stats();
            assert!(stats.commits >= 1, "{name}");
            assert_eq!(
                stats.barriers,
                stats.commits * 3,
                "{name}: stress broke the 3-barriers-per-commit discipline"
            );
            assert!(stats.overlapped_commits <= stats.commits, "{name}");
            let depth = mqd.counters().snapshot();
            assert!(
                depth.max_inflight >= 2,
                "{name}: batched payload submission never overlapped requests (max depth {})",
                depth.max_inflight
            );
            for t in 0..8u64 {
                for round in 0..6u64 {
                    for i in 0..4u64 {
                        let blockno = 500 + t * 30 + round * 4 + i;
                        let data = log.read_block(blockno).unwrap();
                        assert!(
                            data.iter().all(|&b| b == fill_for(t, round, i)),
                            "{name}: block {blockno} lost its committed data"
                        );
                    }
                }
            }
            if stats.overlapped_commits >= 1 {
                observed_overlap = true;
                break;
            }
        }
        assert!(observed_overlap, "{name}: no overlapped commit observed in 3 stress runs");
    }
}

fn fill_for(t: u64, round: u64, i: u64) -> u8 {
    (t * 29 + round * 5 + i + 1) as u8
}
