//! Acceptance tests: crash enumeration over a seeded 200-op randomized
//! trace reports zero oracle violations (fsck clean + fsync durability) on
//! all three crash-tested stacks.

use crashsim::{run_crash_test, CrashMode, CrashStack, CrashTestConfig};

fn assert_clean(stack: CrashStack, cfg: &CrashTestConfig) {
    let report = run_crash_test(stack, cfg).unwrap_or_else(|e| panic!("{stack:?}: {e}"));
    assert_eq!(report.ops_run, cfg.ops);
    assert!(report.fsync_points > 0, "{stack:?}: workload must hit durability points");
    assert!(report.trace_writes > 0 && report.trace_epochs > 1, "{stack:?}: trace too small");
    assert!(report.states_checked > 0);
    assert!(
        report.is_clean(),
        "{stack:?}: {} violations, e.g. {:#?}",
        report.violations_found,
        report.violations.iter().take(5).collect::<Vec<_>>()
    );
}

#[test]
fn bento_xv6_survives_sampled_crash_states_over_200_ops() {
    assert_clean(CrashStack::BentoXv6, &CrashTestConfig::standard(0xB3_2021));
}

#[test]
fn vfs_xv6_survives_sampled_crash_states_over_200_ops() {
    assert_clean(CrashStack::VfsXv6, &CrashTestConfig::standard(0xC6_2021));
}

#[test]
fn ext4sim_survives_sampled_crash_states_over_200_ops() {
    assert_clean(CrashStack::Ext4, &CrashTestConfig::standard(0xE4_2021));
}

#[test]
fn exhaustive_prefix_enumeration_is_clean_on_a_short_trace() {
    // Every in-order write-stream prefix of a smaller workload, on the
    // stack with the most complex commit pipeline.
    let cfg = CrashTestConfig {
        seed: 0x9E37,
        ops: 30,
        disk_blocks: 4096,
        mode: CrashMode::Prefixes,
        max_violations: 16,
        queue_depth: 0,
    };
    let report = run_crash_test(CrashStack::BentoXv6, &cfg).unwrap();
    assert!(report.states_checked > report.trace_writes, "one state per event boundary");
    assert!(
        report.is_clean(),
        "{} violations, e.g. {:#?}",
        report.violations_found,
        report.violations.iter().take(5).collect::<Vec<_>>()
    );
}

#[test]
fn different_seeds_produce_different_traces_but_stay_clean() {
    for seed in [1u64, 2, 3] {
        let cfg = CrashTestConfig {
            ops: 60,
            mode: CrashMode::Sampled { states: 48 },
            ..CrashTestConfig::standard(seed)
        };
        for stack in CrashStack::all() {
            let report = run_crash_test(stack, &cfg).unwrap();
            assert!(
                report.is_clean(),
                "{stack:?} seed {seed}: {:#?}",
                report.violations.iter().take(3).collect::<Vec<_>>()
            );
        }
    }
}
