//! Crash enumeration through the queued (multi-queue) device model.
//!
//! The recording `FaultDevice` sits *under* the `MultiQueueDevice`, so a
//! queued submission is recorded at submission time and the queued device's
//! flush drains its queues before forwarding the FLUSH.  Two properties
//! follow, and both are checked here:
//!
//! * **epoch structure** — every batched payload write lands in the barrier
//!   epoch it was submitted in; crash enumeration therefore reorders queued
//!   writes only *within* a barrier epoch, exactly as for the synchronous
//!   device; and
//! * **end-to-end cleanliness** — full crash-test runs (fsck + durability
//!   oracles over sampled crash states) stay violation-free when the xv6
//!   stacks commit through the queued device with batched, overlapped
//!   stage-1 payloads.

use std::sync::Arc;

use crashsim::{
    run_crash_test, CrashMode, CrashStack, CrashTestConfig, Event, FaultConfig, FaultDevice,
};
use simkernel::cost::CostModel;
use simkernel::dev::{BlockDevice, RamDisk};
use simkernel::queue::{MultiQueueDevice, QueueConfig, QueuedBlockDevice};

#[test]
fn queued_writes_are_recorded_in_their_submission_epoch() {
    let inner: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096, 256));
    let fault = Arc::new(FaultDevice::new(inner, FaultConfig::recorder(7)));
    let fault_dyn: Arc<dyn BlockDevice> = Arc::clone(&fault) as Arc<dyn BlockDevice>;
    let queued = MultiQueueDevice::new(fault_dyn, CostModel::zero(), QueueConfig::new(2, 8));

    let block = vec![0x5Au8; 4096];
    let q = 0;
    // Epoch 0: blocks 10, 11, 12 batch-submitted, then a barrier.
    queued.submit_write_batch(q, &[(10, &block), (11, &block), (12, &block)]).unwrap();
    queued.flush().unwrap();
    // Epoch 1: blocks 20, 21 submitted on different queues, then a barrier.
    queued.submit_write(0, 20, &block).unwrap();
    queued.submit_write(1, 21, &block).unwrap();
    queued.flush().unwrap();

    let trace = fault.trace();
    let epochs = trace.epochs();
    assert_eq!(trace.flush_count(), 2);
    assert_eq!(epochs.len(), 3, "two flushes split the trace into three epochs");
    let blocks_in = |range: std::ops::Range<usize>| -> Vec<u64> {
        trace.events[range]
            .iter()
            .filter_map(|e| match e {
                Event::Write { blockno, .. } => Some(*blockno),
                Event::Flush => None,
            })
            .collect()
    };
    assert_eq!(blocks_in(epochs[0].clone()), vec![10, 11, 12]);
    let mut second = blocks_in(epochs[1].clone());
    second.sort_unstable();
    assert_eq!(second, vec![20, 21]);
    assert!(blocks_in(epochs[2].clone()).is_empty(), "no writes after the last barrier");
}

fn assert_clean_queued(stack: CrashStack, seed: u64) {
    let cfg = CrashTestConfig {
        ops: 120,
        mode: CrashMode::Sampled { states: 96 },
        ..CrashTestConfig::standard(seed)
    }
    .with_queue_depth(8);
    let report = run_crash_test(stack, &cfg).unwrap();
    assert!(report.trace_epochs > 1, "queued run must still produce barrier epochs");
    assert!(
        report.is_clean(),
        "{stack:?} through the queued device: {} violations, e.g. {:#?}",
        report.violations_found,
        report.violations.iter().take(3).collect::<Vec<_>>()
    );
}

#[test]
fn bento_xv6_recovers_cleanly_through_the_queued_device() {
    assert_clean_queued(CrashStack::BentoXv6, 0x0B3_4EDA);
}

#[test]
fn vfs_xv6_recovers_cleanly_through_the_queued_device() {
    assert_clean_queued(CrashStack::VfsXv6, 0x0C6_4EDA);
}
