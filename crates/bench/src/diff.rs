//! Cross-run BENCH report comparison: the `benchdiff` regression gate.
//!
//! Two BENCH reports are joined row-by-row on the `(experiment, config,
//! stack)` key and each pair is judged by the row's *kind* — inferred from
//! its unit and config label, so the gate needs no out-of-band schema:
//!
//! * **throughput** (`ops/sec`, `MB/s`, `files/sec`): higher is better;
//!   a drop beyond the tolerance regresses.
//! * **latency** (`us`/`ms`/`ns`/`seconds` rows whose config names a tail
//!   percentile or pause): lower is better; a rise beyond the tolerance
//!   regresses.  Non-tail latency rows (p50s, means, elapsed timers) are
//!   informational — medians move with machine load and gating them makes
//!   the gate cry wolf.
//! * **error counts** (`count`/`violations` rows whose config names
//!   errors, failures, violations or alerts): *any* increase regresses —
//!   these rows are exact, so they get no noise tolerance.
//!
//! Per-row noise tolerances absorb run-to-run jitter; CI additionally
//! downgrades throughput and latency to warnings (shared runners) while
//! keeping error/SLO rows hard — see `.github/workflows/ci.yml`.

use crate::report::{BenchReport, Row};

/// How a row is judged by the diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowKind {
    /// Higher is better, tolerance applies.
    Throughput,
    /// Lower is better, tolerance applies (tail-latency rows only).
    TailLatency,
    /// Exact: any increase is a regression (error/alert counters).
    ErrorCount,
    /// Compared for the report but never gated.
    Informational,
}

/// Classifies one row by unit + config label.
pub fn classify(row: &Row) -> RowKind {
    let unit = row.unit.as_str();
    let config = row.config.to_ascii_lowercase();
    if unit == "count" || unit == "violations" {
        let error_markers =
            ["error", "errors", "failed", "violation", "alert", "incident", "fsck", "lost"];
        if error_markers.iter().any(|m| config.contains(m)) {
            return RowKind::ErrorCount;
        }
        return RowKind::Informational;
    }
    if matches!(unit, "ops/sec" | "MB/s" | "files/sec") {
        return RowKind::Throughput;
    }
    if matches!(unit, "us" | "ms" | "ns" | "seconds") {
        let tail_markers = ["p99", "p999", "pause"];
        if tail_markers.iter().any(|m| config.contains(m)) {
            return RowKind::TailLatency;
        }
    }
    RowKind::Informational
}

/// Tolerances and gating switches for one diff.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Allowed relative throughput drop before a row regresses (0.25 =
    /// -25%).
    pub throughput_tolerance: f64,
    /// Allowed relative tail-latency rise before a row regresses.
    pub latency_tolerance: f64,
    /// Downgrade throughput regressions to warnings.
    pub warn_only_throughput: bool,
    /// Downgrade tail-latency regressions to warnings.
    pub warn_only_latency: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        // Wide defaults: BENCH numbers come from latency-modelled
        // simulation on shared machines, so only sizeable moves should
        // gate.  Error-count rows are exact and have no tolerance at all.
        DiffConfig {
            throughput_tolerance: 0.25,
            latency_tolerance: 0.50,
            warn_only_throughput: false,
            warn_only_latency: false,
        }
    }
}

/// One compared row pair that moved against the baseline.
#[derive(Debug, Clone)]
pub struct Finding {
    /// `experiment/config/stack` key.
    pub key: String,
    /// The row's judged kind.
    pub kind: RowKind,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub new: f64,
    /// Human-readable verdict line.
    pub detail: String,
}

/// The outcome of one report comparison.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Hard regressions (exit nonzero).
    pub regressions: Vec<Finding>,
    /// Moves beyond tolerance that the config downgraded, plus rows
    /// missing from the new report.
    pub warnings: Vec<Finding>,
    /// Gated rows that moved in the *good* direction beyond tolerance.
    pub improvements: Vec<Finding>,
    /// Row pairs compared.
    pub compared: usize,
}

impl DiffReport {
    /// Whether the diff found no hard regressions.
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn key_of(row: &Row) -> String {
    format!("{}/{}/{}", row.experiment, row.config, row.stack)
}

/// Relative change of `new` against `base`, sign-normalized so positive
/// always means "worse" for the given kind.
fn badness(kind: RowKind, base: f64, new: f64) -> f64 {
    let denom = base.abs().max(f64::MIN_POSITIVE);
    match kind {
        RowKind::Throughput => (base - new) / denom,
        _ => (new - base) / denom,
    }
}

/// Compares `new` against `base` row-by-row.  Rows present only in `base`
/// produce warnings (a vanished row silently un-gates itself otherwise);
/// rows present only in `new` are ignored (new coverage is not a
/// regression).
pub fn diff_reports(base: &BenchReport, new: &BenchReport, cfg: &DiffConfig) -> DiffReport {
    let mut out = DiffReport::default();
    for base_row in &base.rows {
        let key = key_of(base_row);
        let Some(new_row) = new.rows.iter().find(|r| key_of(r) == key) else {
            out.warnings.push(Finding {
                key,
                kind: classify(base_row),
                base: base_row.value,
                new: f64::NAN,
                detail: "row missing from new report".to_string(),
            });
            continue;
        };
        out.compared += 1;
        let kind = classify(base_row);
        let (tolerance, warn_only) = match kind {
            RowKind::Throughput => (cfg.throughput_tolerance, cfg.warn_only_throughput),
            RowKind::TailLatency => (cfg.latency_tolerance, cfg.warn_only_latency),
            RowKind::ErrorCount => (0.0, false),
            RowKind::Informational => continue,
        };
        let (base_v, new_v) = (base_row.value, new_row.value);
        let finding =
            |detail: String| Finding { key: key.clone(), kind, base: base_v, new: new_v, detail };
        if kind == RowKind::ErrorCount {
            if new_v > base_v {
                out.regressions.push(finding(format!(
                    "error-count row rose {base_v} -> {new_v} (no tolerance)"
                )));
            }
            continue;
        }
        let bad = badness(kind, base_v, new_v);
        if bad > tolerance {
            let detail = format!(
                "{} {:.1} -> {:.1} ({:+.0}% worse, tolerance {:.0}%)",
                base_row.unit,
                base_v,
                new_v,
                bad * 100.0,
                tolerance * 100.0
            );
            if warn_only {
                out.warnings.push(finding(detail));
            } else {
                out.regressions.push(finding(detail));
            }
        } else if bad < -tolerance {
            out.improvements.push(finding(format!(
                "{} {:.1} -> {:.1} ({:.0}% better)",
                base_row.unit,
                base_v,
                new_v,
                -bad * 100.0
            )));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RunMeta;

    fn report(rows: Vec<Row>) -> BenchReport {
        BenchReport { meta: RunMeta::detect(1, true), rows }
    }

    fn row(config: &str, value: f64, unit: &str) -> Row {
        Row::new("exp", config, "Bento", value, unit, None)
    }

    #[test]
    fn classification_by_unit_and_label() {
        assert_eq!(classify(&row("varmail", 100.0, "ops/sec")), RowKind::Throughput);
        assert_eq!(classify(&row("seq-read", 100.0, "MB/s")), RowKind::Throughput);
        assert_eq!(classify(&row("varmail-p99-us", 400.0, "us")), RowKind::TailLatency);
        assert_eq!(classify(&row("upgrade-pause-us", 400.0, "us")), RowKind::TailLatency);
        assert_eq!(classify(&row("varmail-p50-us", 80.0, "us")), RowKind::Informational);
        assert_eq!(classify(&row("elapsed", 2.0, "seconds")), RowKind::Informational);
        assert_eq!(classify(&row("eio-failed-ops", 3.0, "count")), RowKind::ErrorCount);
        assert_eq!(classify(&row("health-varmail-alerts", 0.0, "count")), RowKind::ErrorCount);
        assert_eq!(classify(&row("fsck-violations", 0.0, "violations")), RowKind::ErrorCount);
        assert_eq!(classify(&row("spec-ctr-log_commits", 12.0, "count")), RowKind::Informational);
    }

    #[test]
    fn tolerances_gate_throughput_and_tail_latency() {
        let base =
            report(vec![row("varmail", 1000.0, "ops/sec"), row("varmail-p99-us", 100.0, "us")]);
        let within =
            report(vec![row("varmail", 800.0, "ops/sec"), row("varmail-p99-us", 140.0, "us")]);
        let cfg = DiffConfig::default();
        let diff = diff_reports(&base, &within, &cfg);
        assert!(diff.is_pass(), "within tolerance: {:?}", diff.regressions);
        assert_eq!(diff.compared, 2);

        let beyond =
            report(vec![row("varmail", 600.0, "ops/sec"), row("varmail-p99-us", 200.0, "us")]);
        let diff = diff_reports(&base, &beyond, &cfg);
        assert_eq!(diff.regressions.len(), 2, "both gates trip: {:?}", diff.warnings);

        let warn_cfg = DiffConfig { warn_only_throughput: true, warn_only_latency: true, ..cfg };
        let diff = diff_reports(&base, &beyond, &warn_cfg);
        assert!(diff.is_pass());
        assert_eq!(diff.warnings.len(), 2, "downgraded to warnings");
    }

    #[test]
    fn error_counts_have_zero_tolerance_even_in_warn_mode() {
        let base = report(vec![row("eio-failed-ops", 0.0, "count")]);
        let new = report(vec![row("eio-failed-ops", 1.0, "count")]);
        let cfg = DiffConfig {
            warn_only_throughput: true,
            warn_only_latency: true,
            ..DiffConfig::default()
        };
        let diff = diff_reports(&base, &new, &cfg);
        assert_eq!(diff.regressions.len(), 1, "one new failed op is a hard fail");
        // Equal stays clean; decreases are fine.
        assert!(diff_reports(&base, &base, &cfg).is_pass());
        assert!(diff_reports(&new, &base, &cfg).is_pass());
    }

    #[test]
    fn missing_rows_warn_and_improvements_are_reported() {
        let base = report(vec![row("varmail", 1000.0, "ops/sec"), row("gone", 1.0, "ops/sec")]);
        let new = report(vec![row("varmail", 2000.0, "ops/sec")]);
        let diff = diff_reports(&base, &new, &DiffConfig::default());
        assert!(diff.is_pass());
        assert_eq!(diff.warnings.len(), 1, "vanished row warns");
        assert_eq!(diff.improvements.len(), 1, "doubling throughput is an improvement");
    }
}
