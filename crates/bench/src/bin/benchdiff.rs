//! `benchdiff` — the cross-run BENCH regression gate.
//!
//! ```text
//! benchdiff <base.json> <new.json> [--latency-tol F] [--throughput-tol F]
//!           [--warn-only-throughput] [--warn-only-latency]
//! ```
//!
//! Compares two BENCH report files row-by-row (joined on
//! experiment/config/stack) and exits nonzero when a gated row regressed
//! beyond its noise tolerance: throughput drops, tail-latency (p99/pause)
//! rises, or — with zero tolerance and never downgradeable — error/alert
//! count increases.  See [`bench::diff`] for the row classification rules.

use std::process::ExitCode;

use bench::diff::{diff_reports, DiffConfig, Finding};
use bench::report::report_from_json;

fn usage() -> ! {
    eprintln!(
        "usage: benchdiff <base.json> <new.json> [--latency-tol F] [--throughput-tol F] \
         [--warn-only-throughput] [--warn-only-latency]"
    );
    std::process::exit(2);
}

fn parse_tol(value: Option<String>, flag: &str) -> f64 {
    let Some(value) = value else {
        eprintln!("benchdiff: {flag} needs a value (relative fraction, e.g. 0.25)");
        usage();
    };
    match value.parse::<f64>() {
        Ok(f) if f >= 0.0 => f,
        _ => {
            eprintln!("benchdiff: {flag} must be a non-negative number, got {value:?}");
            usage();
        }
    }
}

fn print_findings(heading: &str, findings: &[Finding]) {
    if findings.is_empty() {
        return;
    }
    println!("{heading}:");
    for f in findings {
        println!("  {:<12} {:<44} {}", format!("[{:?}]", f.kind).to_lowercase(), f.key, f.detail);
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut paths: Vec<String> = Vec::new();
    let mut cfg = DiffConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--latency-tol" => cfg.latency_tolerance = parse_tol(args.next(), "--latency-tol"),
            "--throughput-tol" => {
                cfg.throughput_tolerance = parse_tol(args.next(), "--throughput-tol");
            }
            "--warn-only-throughput" => cfg.warn_only_throughput = true,
            "--warn-only-latency" => cfg.warn_only_latency = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("benchdiff: unknown flag {other}");
                usage();
            }
            path => paths.push(path.to_string()),
        }
    }
    let [base_path, new_path] = paths.as_slice() else { usage() };

    let read_report = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("benchdiff: cannot read {path}: {e}");
            std::process::exit(2);
        });
        report_from_json(&text).unwrap_or_else(|e| {
            eprintln!("benchdiff: {path}: {e}");
            std::process::exit(2);
        })
    };
    let base = read_report(base_path);
    let new = read_report(new_path);

    println!(
        "benchdiff: base {} ({} rows, rev {}) vs new {} ({} rows, rev {})",
        base_path,
        base.rows.len(),
        base.meta.git_rev,
        new_path,
        new.rows.len(),
        new.meta.git_rev,
    );
    let diff = diff_reports(&base, &new, &cfg);
    println!(
        "compared {} row pairs (throughput tol {:.0}%, latency tol {:.0}%)",
        diff.compared,
        cfg.throughput_tolerance * 100.0,
        cfg.latency_tolerance * 100.0
    );
    print_findings("REGRESSIONS", &diff.regressions);
    print_findings("warnings", &diff.warnings);
    print_findings("improvements", &diff.improvements);
    if diff.is_pass() {
        println!("PASS: no hard regressions");
        ExitCode::SUCCESS
    } else {
        println!("FAIL: {} hard regression(s)", diff.regressions.len());
        ExitCode::FAILURE
    }
}
