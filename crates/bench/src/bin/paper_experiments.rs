//! Regenerates the tables and figures of the Bento paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin paper_experiments -- all
//! cargo run --release -p bench --bin paper_experiments -- table4 table6 --quick
//! cargo run --release -p bench --bin paper_experiments -- all --json results.json
//! ```

use std::collections::BTreeSet;

use bench::{
    crash_experiment, fig2_read_4k, fig3_read_throughput, fig4_write_throughput, health_experiment,
    load_experiment, load_smoke_experiment, obs_experiment, print_rows, report_to_json,
    scaling_experiment, scaling_experiment_with_threads, table1_bug_analysis,
    table2_mechanism_comparison, table4_create, table5_delete, table6_macrobenchmarks,
    ExperimentConfig, Row, RunMeta, SCALING_SMOKE_THREADS,
};

/// Runs one experiment, appends an `elapsed` row recording how long it took
/// (wall clock, whole experiment including mounts), and folds the rows into
/// the report; a failure is printed and counted, not fatal to other
/// experiments.
fn run(
    all_rows: &mut Vec<Row>,
    failures: &mut usize,
    name: &str,
    title: &str,
    experiment: impl FnOnce() -> Result<Vec<Row>, simkernel::error::KernelError>,
) {
    let start = std::time::Instant::now();
    let result = experiment();
    let elapsed = start.elapsed().as_secs_f64();
    match result {
        Ok(mut rows) => {
            rows.push(Row::new(name, "elapsed", "-", elapsed, "seconds", None));
            print_rows(title, &rows);
            all_rows.extend(rows);
        }
        Err(e) => {
            eprintln!("{name} failed after {elapsed:.1}s: {e}");
            *failures += 1;
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();
    let mut selected: BTreeSet<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && Some(a.as_str()) != json_path.as_deref())
        .cloned()
        .collect();
    if selected.is_empty() || selected.contains("all") {
        selected = [
            "table1", "table2", "fig2", "fig3", "fig4", "table4", "table5", "table6", "scaling",
            "crash", "load", "obs", "health",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::full() };
    println!(
        "Bento reproduction: paper experiments ({} mode, {} ms per configuration, {} high-thread count)",
        if quick { "quick" } else { "full" },
        cfg.duration.as_millis(),
        cfg.threads_high
    );

    let mut all_rows: Vec<Row> = Vec::new();
    let mut failures = 0usize;

    if selected.contains("table1") {
        let rows = table1_bug_analysis();
        print_rows("Table 1: bug study (counts and derived percentages)", &rows);
        all_rows.extend(rows);
    }
    if selected.contains("table2") {
        println!("\n=== Table 2: extensibility mechanisms (safety / performance / generality / online upgrade) ===");
        for (mechanism, cells) in table2_mechanism_comparison() {
            println!(
                "{mechanism:<6} {:<6} {:<12} {:<11} {}",
                cells[0], cells[1], cells[2], cells[3]
            );
        }
    }
    if selected.contains("fig2") {
        run(
            &mut all_rows,
            &mut failures,
            "fig2",
            "Figure 2: 4 KiB read performance (ops/sec)",
            || fig2_read_4k(&cfg),
        );
    }
    if selected.contains("fig3") {
        run(&mut all_rows, &mut failures, "fig3", "Figure 3: read throughput (MB/s)", || {
            fig3_read_throughput(&cfg)
        });
    }
    if selected.contains("fig4") {
        run(&mut all_rows, &mut failures, "fig4", "Figure 4: write throughput (MB/s)", || {
            fig4_write_throughput(&cfg)
        });
    }
    if selected.contains("table4") {
        run(
            &mut all_rows,
            &mut failures,
            "table4",
            "Table 4: create microbenchmark (ops/sec)",
            || table4_create(&cfg),
        );
    }
    if selected.contains("table5") {
        run(
            &mut all_rows,
            &mut failures,
            "table5",
            "Table 5: delete microbenchmark (ops/sec)",
            || table5_delete(&cfg),
        );
    }
    if selected.contains("table6") {
        run(&mut all_rows, &mut failures, "table6", "Table 6: macrobenchmarks", || {
            table6_macrobenchmarks(&cfg)
        });
    }
    if selected.contains("scaling") {
        run(&mut all_rows, &mut failures, "scaling", "Scaling: 1-32 threads, zero-cost device, disjoint files (ops/sec + write-path batching)", || scaling_experiment(&cfg));
    }
    if selected.contains("crash") {
        // Crash-consistency: enumerate crash states of a seeded 200-op
        // trace on every stack; any fsck or fsync-durability violation
        // fails the experiment (and thus CI's crash-smoke gate).
        run(
            &mut all_rows,
            &mut failures,
            "crash",
            "Crash: seeded crash-state enumeration, fsck + durability oracles",
            || crash_experiment(&cfg),
        );
    }
    if selected.contains("load") {
        // Workload modeling + load generation: five personalities × three
        // stacks with p50/p99/p99.9, the open-loop overload probe, the
        // upgrade-under-traffic scenario (zero failed ops enforced), and
        // transient-EIO injection under load.
        run(
            &mut all_rows,
            &mut failures,
            "load",
            "Load: personalities × stacks, latency percentiles, upgrade + EIO under load",
            || load_experiment(&cfg),
        );
    }
    if selected.contains("load-smoke") {
        // CI smoke: quick closed-loop varmail on all three load stacks;
        // any failed op or empty histogram fails the run.
        run(
            &mut all_rows,
            &mut failures,
            "load-smoke",
            "Load smoke: varmail closed-loop on Bento / C-Kernel / Ext4",
            || load_smoke_experiment(&cfg),
        );
    }
    if selected.contains("scaling-smoke") {
        // CI smoke: 1 and 8 threads only, so the write-path counters (group
        // commit batching, allocator spread) are exercised on every PR.
        run(
            &mut all_rows,
            &mut failures,
            "scaling-smoke",
            "Scaling smoke: 1 and 8 threads, write-path batching counters",
            || scaling_experiment_with_threads(&cfg, &SCALING_SMOKE_THREADS),
        );
    }
    if selected.contains("health") {
        // Continuous health engine: disabled-path observe cost (gated),
        // clean-run false-positive gate, the EIO burn-rate fire/clear
        // contract, the upgrade pause as a commit-wait-attributed flagged
        // window, and schema-checked incident bundles written next to the
        // BENCH report (or into the working directory without --json).
        let incident_dir = json_path
            .as_deref()
            .and_then(|p| std::path::Path::new(p).parent())
            .filter(|p| !p.as_os_str().is_empty())
            .map(std::path::Path::to_path_buf)
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        run(
            &mut all_rows,
            &mut failures,
            "health",
            "Health: windowed SLO burn rates, stall flagging, incident bundles",
            || health_experiment(&cfg, &incident_dir),
        );
    }
    if selected.contains("obs") {
        // Observability: disabled-path hook cost (gated), traced varmail +
        // fileserver on all three load stacks with per-phase p50/p99
        // attribution, span-coverage and reconciliation gates, unified
        // registry counters, and the trace-on/off overhead probe.
        run(
            &mut all_rows,
            &mut failures,
            "obs",
            "Obs: phase-attributed tail latency, span coverage gates, metrics registry",
            || obs_experiment(&cfg),
        );
    }

    if let Some(path) = json_path {
        // Every recorded result carries its environment: git rev, detected
        // CPU count, configured thread count.  A BENCH file from the 1-CPU
        // build container explains its own flat scaling curves.
        let meta = RunMeta::detect(cfg.threads_high, quick);
        match std::fs::write(&path, report_to_json(&meta, &all_rows)) {
            Ok(()) => println!("\nwrote {} rows to {path}", all_rows.len()),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        // CI gates on this: a failed experiment must fail the run.
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
