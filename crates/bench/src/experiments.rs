//! The experiments: one function per table / figure of the paper.

use std::time::Duration;

use simkernel::cost::CostModel;
use simkernel::error::KernelResult;
use simkernel::vfs::{MountOptions, WritePathStats};

use bugdb::BugStudy;
use workloads::{
    create_crossdir_micro, create_micro, delete_micro, fileserver, generate_linux_like_manifest,
    mount_stack, mount_stack_with, read_micro, read_micro_disjoint, untar, varmail, write_micro,
    write_micro_disjoint, AccessPattern, FsStack, MountedStack,
};

use crate::report::Row;

/// Knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Measured duration of each timed workload configuration.
    pub duration: Duration,
    /// Thread count for the "32 thread" configurations.
    pub threads_high: usize,
    /// Device/boundary cost model.
    pub model: CostModel,
    /// Disk size in 4 KiB blocks.
    pub disk_blocks: u64,
    /// Size of the file used by the read/write microbenchmarks, in bytes.
    pub micro_file_size: u64,
    /// Files pre-created per thread for the delete microbenchmark.
    pub delete_precreate_total: usize,
    /// Files per thread for varmail / fileserver; threads used for macros.
    pub macro_files_per_thread: usize,
    /// Threads for the macrobenchmarks.
    pub macro_threads: usize,
    /// Files in the synthetic untar manifest.
    pub untar_files: usize,
}

impl ExperimentConfig {
    /// The full configuration used for EXPERIMENTS.md numbers.
    pub fn full() -> Self {
        ExperimentConfig {
            duration: Duration::from_millis(500),
            threads_high: 32,
            model: CostModel::nvme_ssd(),
            disk_blocks: 96 * 1024, // 384 MiB
            micro_file_size: 24 * 1024 * 1024,
            delete_precreate_total: 800,
            macro_files_per_thread: 50,
            macro_threads: 8,
            untar_files: 350,
        }
    }

    /// A scaled-down configuration for smoke tests and `cargo bench`.
    pub fn quick() -> Self {
        ExperimentConfig {
            duration: Duration::from_millis(150),
            threads_high: 8,
            model: CostModel::nvme_ssd_scaled(4),
            disk_blocks: 48 * 1024,
            micro_file_size: 8 * 1024 * 1024,
            delete_precreate_total: 200,
            macro_files_per_thread: 15,
            macro_threads: 4,
            untar_files: 120,
        }
    }

    fn delete_per_thread(&self, threads: usize) -> usize {
        (self.delete_precreate_total / threads).max(20)
    }
}

/// Table 1: the bug study counts and derived percentages.
pub fn table1_bug_analysis() -> Vec<Row> {
    let study = BugStudy::published();
    let mut rows: Vec<Row> = study
        .table1()
        .iter()
        .map(|c| Row::new("table1", c.name, "-", c.count as f64, "bugs", Some(c.count as f64)))
        .collect();
    let summary = study.summary();
    rows.push(Row::new(
        "table1",
        "memory %",
        "-",
        summary.memory_fraction * 100.0,
        "%",
        Some(68.0),
    ));
    rows.push(Row::new(
        "table1",
        "prevented by Rust %",
        "-",
        summary.prevented_by_rust_fraction * 100.0,
        "%",
        Some(93.0),
    ));
    rows.push(Row::new(
        "table1",
        "kernel oops %",
        "-",
        summary.oops_fraction * 100.0,
        "%",
        Some(26.0),
    ));
    rows.push(Row::new(
        "table1",
        "memory leak %",
        "-",
        summary.leak_fraction * 100.0,
        "%",
        Some(34.0),
    ));
    rows
}

/// Table 2: the qualitative mechanism comparison (safety / performance /
/// generality / online upgrade), encoded so the binary can print it.
pub fn table2_mechanism_comparison() -> Vec<(String, [&'static str; 4])> {
    vec![
        ("VFS".to_string(), ["no", "yes", "yes", "no"]),
        ("FUSE".to_string(), ["yes", "no", "yes", "no"]),
        ("eBPF".to_string(), ["yes", "yes", "no", "no"]),
        ("Bento".to_string(), ["yes", "yes", "yes", "yes"]),
    ]
}

/// Figure 2: 4 KiB read ops/sec for seq/rnd × 1/32 threads, three xv6
/// stacks.
///
/// # Errors
///
/// Propagates mount/workload errors.
pub fn fig2_read_4k(cfg: &ExperimentConfig) -> KernelResult<Vec<Row>> {
    let mut rows = Vec::new();
    for stack in FsStack::xv6_variants() {
        let mounted = mount_stack(stack, cfg.model.clone(), cfg.disk_blocks)?;
        for (pattern, threads, label) in [
            (AccessPattern::Sequential, 1, "seq-1t"),
            (AccessPattern::Sequential, cfg.threads_high, "seq-32t"),
            (AccessPattern::Random, 1, "rnd-1t"),
            (AccessPattern::Random, cfg.threads_high, "rnd-32t"),
        ] {
            let result = read_micro(
                &mounted.vfs,
                cfg.micro_file_size,
                4096,
                pattern,
                threads,
                cfg.duration,
            )?;
            rows.push(Row::new(
                "fig2",
                label,
                stack.label(),
                result.ops_per_sec(),
                "ops/sec",
                None,
            ));
        }
        mounted.unmount()?;
    }
    Ok(rows)
}

/// Figure 3: read throughput (MB/s) at 32 KiB / 128 KiB / 1024 KiB request
/// sizes, seq/rnd × 1/32 threads.
///
/// # Errors
///
/// Propagates mount/workload errors.
pub fn fig3_read_throughput(cfg: &ExperimentConfig) -> KernelResult<Vec<Row>> {
    let mut rows = Vec::new();
    for stack in FsStack::xv6_variants() {
        let mounted = mount_stack(stack, cfg.model.clone(), cfg.disk_blocks)?;
        for io_size in [32 * 1024usize, 128 * 1024, 1024 * 1024] {
            for (pattern, threads, label) in [
                (AccessPattern::Sequential, 1, "seq-1t"),
                (AccessPattern::Sequential, cfg.threads_high, "seq-32t"),
                (AccessPattern::Random, 1, "rnd-1t"),
                (AccessPattern::Random, cfg.threads_high, "rnd-32t"),
            ] {
                let result = read_micro(
                    &mounted.vfs,
                    cfg.micro_file_size,
                    io_size,
                    pattern,
                    threads,
                    cfg.duration,
                )?;
                let config = format!("{}k-{label}", io_size / 1024);
                rows.push(Row::new(
                    "fig3",
                    &config,
                    stack.label(),
                    result.throughput_mbps(),
                    "MB/s",
                    None,
                ));
            }
        }
        mounted.unmount()?;
    }
    Ok(rows)
}

/// Figure 4: write throughput (MB/s) at 32 KiB / 128 KiB / 1024 KiB request
/// sizes for seq-1t, rnd-1t and rnd-32t.
///
/// # Errors
///
/// Propagates mount/workload errors.
pub fn fig4_write_throughput(cfg: &ExperimentConfig) -> KernelResult<Vec<Row>> {
    let mut rows = Vec::new();
    for stack in FsStack::xv6_variants() {
        for io_size in [32 * 1024usize, 128 * 1024, 1024 * 1024] {
            for (pattern, threads, label) in [
                (AccessPattern::Sequential, 1, "seq-1t"),
                (AccessPattern::Random, 1, "rnd-1t"),
                (AccessPattern::Random, cfg.threads_high, "rnd-32t"),
            ] {
                let mounted = mount_stack(stack, cfg.model.clone(), cfg.disk_blocks)?;
                let result = write_micro(
                    &mounted.vfs,
                    cfg.micro_file_size,
                    io_size,
                    pattern,
                    threads,
                    cfg.duration,
                )?;
                let config = format!("{}k-{label}", io_size / 1024);
                rows.push(Row::new(
                    "fig4",
                    &config,
                    stack.label(),
                    result.throughput_mbps(),
                    "MB/s",
                    None,
                ));
                mounted.unmount()?;
            }
        }
    }
    Ok(rows)
}

/// Table 4: file creation ops/sec, 1 and 32 threads.
///
/// # Errors
///
/// Propagates mount/workload errors.
pub fn table4_create(cfg: &ExperimentConfig) -> KernelResult<Vec<Row>> {
    let paper: &[(&str, f64, f64)] =
        &[("Bento", 1126.0, 1072.0), ("C-Kernel", 933.0, 881.0), ("FUSE", 24.0, 24.0)];
    let mut rows = Vec::new();
    for stack in FsStack::xv6_variants() {
        for (threads, label, paper_idx) in
            [(1usize, "1 thread", 1usize), (cfg.threads_high, "32 threads", 2)]
        {
            let mounted = mount_stack(stack, cfg.model.clone(), cfg.disk_blocks)?;
            let result = create_micro(&mounted.vfs, 16 * 1024, threads, cfg.duration)?;
            let paper_value = paper
                .iter()
                .find(|(name, _, _)| *name == stack.label())
                .map(|(_, one, many)| if paper_idx == 1 { *one } else { *many });
            rows.push(Row::new(
                "table4",
                label,
                stack.label(),
                result.ops_per_sec(),
                "ops/sec",
                paper_value,
            ));
            mounted.unmount()?;
        }
    }
    Ok(rows)
}

/// Table 5: file deletion ops/sec, 1 and 32 threads.
///
/// # Errors
///
/// Propagates mount/workload errors.
pub fn table5_delete(cfg: &ExperimentConfig) -> KernelResult<Vec<Row>> {
    let paper: &[(&str, f64, f64)] =
        &[("Bento", 7499.0, 7502.0), ("C-Kernel", 7500.0, 8253.0), ("FUSE", 118.0, 116.0)];
    let mut rows = Vec::new();
    for stack in FsStack::xv6_variants() {
        for (threads, label, first) in
            [(1usize, "1 thread", true), (cfg.threads_high, "32 threads", false)]
        {
            let mounted = mount_stack(stack, cfg.model.clone(), cfg.disk_blocks)?;
            let per_thread = cfg.delete_per_thread(threads);
            let result = delete_micro(&mounted.vfs, per_thread, 4096, threads, cfg.duration)?;
            let paper_value = paper
                .iter()
                .find(|(name, _, _)| *name == stack.label())
                .map(|(_, one, many)| if first { *one } else { *many });
            rows.push(Row::new(
                "table5",
                label,
                stack.label(),
                result.ops_per_sec(),
                "ops/sec",
                paper_value,
            ));
            mounted.unmount()?;
        }
    }
    Ok(rows)
}

/// Table 6: the varmail and fileserver macrobenchmarks (ops/sec) and the
/// untar benchmark (seconds), across all four stacks.
///
/// # Errors
///
/// Propagates mount/workload errors.
pub fn table6_macrobenchmarks(cfg: &ExperimentConfig) -> KernelResult<Vec<Row>> {
    let paper_varmail = [("Bento", 320.0), ("C-Kernel", 303.0), ("FUSE", 24.0), ("Ext4", 785.0)];
    let paper_fileserver =
        [("Bento", 3860.0), ("C-Kernel", 2947.0), ("FUSE", 7.0), ("Ext4", 5172.0)];
    let paper_untar = [("Bento", 19.8), ("C-Kernel", 31.6), ("FUSE", 3404.9), ("Ext4", 6.2)];
    let paper_of = |table: &[(&str, f64)], stack: FsStack| {
        table.iter().find(|(name, _)| *name == stack.label()).map(|(_, v)| *v)
    };
    let mut rows = Vec::new();
    let macro_duration = cfg.duration.max(Duration::from_millis(300)) * 2;
    for stack in FsStack::all() {
        // varmail
        let mounted = mount_stack(stack, cfg.model.clone(), cfg.disk_blocks)?;
        let result = varmail(
            &mounted.vfs,
            cfg.macro_files_per_thread,
            8 * 1024,
            cfg.macro_threads,
            macro_duration,
        )?;
        rows.push(Row::new(
            "table6",
            "varmail",
            stack.label(),
            result.ops_per_sec(),
            "ops/sec",
            paper_of(&paper_varmail, stack),
        ));
        mounted.unmount()?;

        // fileserver
        let mounted = mount_stack(stack, cfg.model.clone(), cfg.disk_blocks)?;
        let result = fileserver(
            &mounted.vfs,
            cfg.macro_files_per_thread,
            64 * 1024,
            cfg.macro_threads,
            macro_duration,
        )?;
        rows.push(Row::new(
            "table6",
            "fileserver",
            stack.label(),
            result.ops_per_sec(),
            "ops/sec",
            paper_of(&paper_fileserver, stack),
        ));
        mounted.unmount()?;

        // untar (synthetic Linux-like tree; absolute seconds depend on the
        // scaled-down tree, so the paper column is about relative ordering).
        let mounted = mount_stack(stack, cfg.model.clone(), cfg.disk_blocks)?;
        let manifest = generate_linux_like_manifest(cfg.untar_files / 6, cfg.untar_files, 42);
        let (elapsed, _) = untar(&mounted.vfs, "/", &manifest)?;
        rows.push(Row::new(
            "table6",
            "untar",
            stack.label(),
            elapsed.as_secs_f64(),
            "seconds",
            paper_of(&paper_untar, stack),
        ));
        mounted.unmount()?;
    }
    Ok(rows)
}

/// The thread counts swept by [`scaling_experiment`]: the paper evaluates 1
/// and 32 threads; the sweep fills in the curve between them.
pub const SCALING_THREADS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The thread counts used by the CI smoke run of the scaling sweep.
pub const SCALING_SMOKE_THREADS: [usize; 2] = [1, 8];

/// Write-path batching counters accumulated by a mounted stack since a
/// snapshot (see [`write_path_snapshot`] / [`write_path_delta`]).
fn write_path_snapshot(mounted: &MountedStack) -> Option<WritePathStats> {
    mounted.vfs.mounted_fs("/").ok()?.write_path_stats()
}

fn write_path_delta(before: &WritePathStats, after: &WritePathStats) -> WritePathStats {
    WritePathStats {
        log_commits: after.log_commits.saturating_sub(before.log_commits),
        log_ops: after.log_ops.saturating_sub(before.log_ops),
        log_blocks: after.log_blocks.saturating_sub(before.log_blocks),
        log_barriers: after.log_barriers.saturating_sub(before.log_barriers),
        alloc_per_group: after
            .alloc_per_group
            .iter()
            .zip(before.alloc_per_group.iter().chain(std::iter::repeat(&0)))
            .map(|(a, b)| a.saturating_sub(*b))
            .collect(),
        // In-flight depth is a gauge sampled by the device, not a
        // monotonic counter: the max cannot be differenced, so the
        // interval keeps the device-lifetime max, and the mean components
        // are differenced like the counters.
        queue_depth_max: after.queue_depth_max,
        queue_depth_sum: after.queue_depth_sum.saturating_sub(before.queue_depth_sum),
        queue_depth_samples: after.queue_depth_samples.saturating_sub(before.queue_depth_samples),
    }
}

/// Concurrency scaling sweep: 1 → 32 threads over the read / write / create
/// microbenchmarks on the Bento and VFS stacks, with the device cost model
/// *disabled* (zero-cost preset).
///
/// With no modelled device time, all that remains on the hot path is
/// software: the stack's own code plus every lock the simulated kernel
/// takes.  Before the sharded concurrency substrate, the buffer cache map,
/// the page cache file table and the fd table were single global locks and
/// this sweep flatlined (or regressed) immediately; with sharding, the
/// read/write rows use one private file per thread
/// ([`read_micro_disjoint`]) so distinct threads share no per-file state
/// and the curve tracks available hardware parallelism.
///
/// Rows are labelled `read-4k-rnd-Nt` / `write-4k-rnd-Nt` / `create-Nt`,
/// reporting ops/s.  Each create point also reports the write-path
/// batching counters the pipelined log and the allocation groups expose:
/// `create-Nt-ops-per-commit` (group-commit batching factor),
/// `create-Nt-barriers-per-op`, and `create-Nt-groups-used` (allocation
/// spread).  A namespace-scaling pass runs the shared-pool cross-directory
/// create workload ([`create_crossdir_micro`]) at every thread count
/// (`create-Nt-crossdir` / `create-Nt-crossdir-us-per-op` rows), with each
/// point fsck-gated on unmount — the sweep that used to serialize on the
/// per-mount namespace mutex.  A second pass re-runs create at [`SCALING_SMOKE_THREADS`]
/// with the NVMe cost model (`create-nvme-Nt*` rows) — with real barrier
/// costs, group commit must drive barriers-per-op *down* as threads go up —
/// and sweeps the `alloc_groups` and `fd_shards` mount options on the
/// Bento stack (`create-8t-gN` / `create-8t-fdsN` rows).  This is what
/// BENCH_*.json tracks as write-path batching, not just ops/s.
///
/// # Errors
///
/// Propagates mount/workload errors.
pub fn scaling_experiment(cfg: &ExperimentConfig) -> KernelResult<Vec<Row>> {
    scaling_experiment_with_threads(cfg, &SCALING_THREADS)
}

/// [`scaling_experiment`] over an explicit thread list (the CI smoke run
/// passes [`SCALING_SMOKE_THREADS`]).
///
/// # Errors
///
/// Propagates mount/workload errors.
pub fn scaling_experiment_with_threads(
    cfg: &ExperimentConfig,
    thread_counts: &[usize],
) -> KernelResult<Vec<Row>> {
    let model = CostModel::zero();
    let file_size_per_thread: u64 = 2 * 1024 * 1024;
    let mut rows = Vec::new();
    for stack in [FsStack::BentoXv6, FsStack::VfsXv6] {
        for &threads in thread_counts {
            // Fresh mount per point so earlier points cannot warm or
            // pollute later ones.
            let mounted = mount_stack(stack, model.clone(), cfg.disk_blocks)?;
            let read = read_micro_disjoint(
                &mounted.vfs,
                file_size_per_thread,
                4096,
                AccessPattern::Random,
                threads,
                cfg.duration,
            )?;
            rows.push(Row::new(
                "scaling",
                &format!("read-4k-rnd-{threads}t"),
                stack.label(),
                read.ops_per_sec(),
                "ops/sec",
                None,
            ));
            let write = write_micro_disjoint(
                &mounted.vfs,
                file_size_per_thread,
                4096,
                AccessPattern::Random,
                threads,
                cfg.duration,
            )?;
            rows.push(Row::new(
                "scaling",
                &format!("write-4k-rnd-{threads}t"),
                stack.label(),
                write.ops_per_sec(),
                "ops/sec",
                None,
            ));
            let before = write_path_snapshot(&mounted);
            let create = create_micro(&mounted.vfs, 4096, threads, cfg.duration)?;
            rows.push(Row::new(
                "scaling",
                &format!("create-{threads}t"),
                stack.label(),
                create.ops_per_sec(),
                "ops/sec",
                None,
            ));
            if let (Some(before), Some(after)) = (before, write_path_snapshot(&mounted)) {
                let delta = write_path_delta(&before, &after);
                rows.push(Row::new(
                    "scaling",
                    &format!("create-{threads}t-ops-per-commit"),
                    stack.label(),
                    delta.ops_per_commit(),
                    "ops/commit",
                    None,
                ));
                rows.push(Row::new(
                    "scaling",
                    &format!("create-{threads}t-barriers-per-op"),
                    stack.label(),
                    delta.barriers_per_op(),
                    "barriers/op",
                    None,
                ));
                rows.push(Row::new(
                    "scaling",
                    &format!("create-{threads}t-groups-used"),
                    stack.label(),
                    delta.groups_used() as f64,
                    "groups",
                    None,
                ));
            }
            mounted.unmount()?;
        }
    }
    // Cross-directory create sweep over a *shared* directory pool: the
    // workload that the per-mount namespace mutex used to serialize
    // outright.  With per-directory locks the per-op cost must stay flat
    // as threads rise (this host is single-core, so the claim is
    // absence-of-collapse, not speedup).  Each point unmounts through the
    // offline fsck — a namespace-locking bug fails the experiment rather
    // than producing a quietly wrong row.
    for stack in [FsStack::BentoXv6, FsStack::VfsXv6] {
        for &threads in thread_counts {
            let mounted = mount_stack(stack, model.clone(), cfg.disk_blocks)?;
            let create = create_crossdir_micro(&mounted.vfs, 4096, threads, cfg.duration)?;
            rows.push(Row::new(
                "scaling",
                &format!("create-{threads}t-crossdir"),
                stack.label(),
                create.ops_per_sec(),
                "ops/sec",
                None,
            ));
            rows.push(Row::new(
                "scaling",
                &format!("create-{threads}t-crossdir-us-per-op"),
                stack.label(),
                1e6 / create.ops_per_sec().max(1e-9),
                "us/op",
                None,
            ));
            mounted.unmount_and_check()?;
        }
    }
    // With real barrier costs (NVMe model), group-commit batching must show
    // up as fewer device barriers per operation at higher thread counts.
    for stack in [FsStack::BentoXv6, FsStack::VfsXv6] {
        for threads in SCALING_SMOKE_THREADS {
            let (create, delta) = create_with_write_path_stats(
                stack,
                cfg,
                &MountOptions::default(),
                threads,
                CostModel::nvme_ssd_scaled(8),
            )?;
            rows.push(Row::new(
                "scaling",
                &format!("create-nvme-{threads}t"),
                stack.label(),
                create.ops_per_sec(),
                "ops/sec",
                None,
            ));
            if let Some(delta) = delta {
                rows.push(Row::new(
                    "scaling",
                    &format!("create-nvme-{threads}t-barriers-per-op"),
                    stack.label(),
                    delta.barriers_per_op(),
                    "barriers/op",
                    None,
                ));
            }
        }
    }
    // Queue-depth sweep on the queued NVMe device (Bento, 8 threads,
    // `queue_depth` mount option).  Depth 1 still queues but serializes
    // service; deeper queues let the two-stage commit overlap stage-1
    // payload copies with the previous group's installs.  Besides ops/s
    // the rows surface the write-path barrier discipline (must stay flat —
    // overlap may never add barriers) and the in-flight depth gauge the
    // device samples (mean/max), which is the direct evidence that
    // requests actually overlapped.
    for depth in [1usize, 8, 32] {
        let options = MountOptions::default().with_option("queue_depth", &depth.to_string());
        // Unscaled NVMe service time: the ~10 µs per-block service is what
        // makes in-flight overlap visible on the depth gauge (heavily
        // scaled-down service completes before the next submission).
        let (create, delta) = create_with_write_path_stats(
            FsStack::BentoXv6,
            cfg,
            &options,
            8,
            CostModel::nvme_ssd(),
        )?;
        let label = FsStack::BentoXv6.label();
        rows.push(Row::new(
            "scaling",
            &format!("create-8t-qd{depth}"),
            label,
            create.ops_per_sec(),
            "ops/sec",
            None,
        ));
        if let Some(delta) = delta {
            rows.push(Row::new(
                "scaling",
                &format!("create-8t-qd{depth}-barriers-per-op"),
                label,
                delta.barriers_per_op(),
                "barriers/op",
                None,
            ));
            rows.push(Row::new(
                "scaling",
                &format!("create-8t-qd{depth}-mean-depth"),
                label,
                delta.mean_queue_depth(),
                "requests",
                None,
            ));
            rows.push(Row::new(
                "scaling",
                &format!("create-8t-qd{depth}-max-depth"),
                label,
                delta.queue_depth_max as f64,
                "requests",
                None,
            ));
        }
    }
    // Allocation-group knob sweep through the mount options (1 group ==
    // the old single-cursor allocator), Bento stack, 8 threads.
    for groups in [1usize, 16] {
        let options = MountOptions {
            options: vec![("alloc_groups".into(), groups.to_string())],
            read_only: false,
        };
        let mounted =
            mount_stack_with(FsStack::BentoXv6, CostModel::zero(), cfg.disk_blocks, &options)?;
        let create = create_micro(&mounted.vfs, 4096, 8, cfg.duration)?;
        rows.push(Row::new(
            "scaling",
            &format!("create-8t-g{groups}"),
            FsStack::BentoXv6.label(),
            create.ops_per_sec(),
            "ops/sec",
            None,
        ));
        mounted.unmount()?;
    }
    // fd-table shard sweep (`fd_shards` mount knob → `VfsConfig::shard_count`
    // per mount): 1 shard == the old globally locked fd table.  create is
    // open/close heavy, so it exercises the fd table on every operation.
    for shards in [1usize, 16] {
        let options = MountOptions {
            options: vec![("fd_shards".into(), shards.to_string())],
            read_only: false,
        };
        let mounted =
            mount_stack_with(FsStack::BentoXv6, CostModel::zero(), cfg.disk_blocks, &options)?;
        let create = create_micro(&mounted.vfs, 4096, 8, cfg.duration)?;
        rows.push(Row::new(
            "scaling",
            &format!("create-8t-fds{shards}"),
            FsStack::BentoXv6.label(),
            create.ops_per_sec(),
            "ops/sec",
            None,
        ));
        mounted.unmount()?;
    }
    // Phase-attributed create: the same create-heavy traffic through the
    // load generator's span tracing, so the scaling story reports *where*
    // the per-op time goes (namespace lock vs log reservation vs commit
    // vs device), not just how many ops completed.  Runs on the Bento
    // stack under the scaled NVMe model so device time is visible.
    let create_spec = loadgen::WorkloadSpec {
        name: "create-phase".to_string(),
        fileset: loadgen::FileSetSpec {
            dir_width: 4,
            depth: 1,
            files: 40,
            size: loadgen::SizeDist::Fixed(4096),
        },
        mix: loadgen::OpMix::new(&[(loadgen::OpKind::Create, 1)]),
        zipf_theta: 0.0,
        io_size: 4096,
        append_size: 0,
        replay: None,
    };
    let mounted = mount_stack(FsStack::BentoXv6, CostModel::nvme_ssd_scaled(8), cfg.disk_blocks)?;
    let load_cfg = loadgen::LoadConfig::closed(8, cfg.duration);
    loadgen::prepare(&mounted.vfs, &create_spec, &load_cfg)?;
    let tracing = simkernel::trace::enable();
    let traced = loadgen::run_load(&mounted.vfs, &create_spec, &load_cfg)?;
    drop(tracing);
    rows.extend(phase_breakdown_rows("scaling", "create-8t", FsStack::BentoXv6.label(), &traced));
    mounted.unmount()?;
    Ok(rows)
}

/// The `crash` experiment: runs the crashsim harness (see the `crashsim`
/// crate) for each crash-tested stack and reports checked/found counts
/// into the BENCH JSON.  Any oracle violation fails the experiment — CI's
/// `crash-smoke` step gates on that.
///
/// # Errors
///
/// Returns an error when a stack reports oracle violations (with the first
/// few replayable state descriptions in the message) or on harness I/O
/// failure.
pub fn crash_experiment(cfg: &ExperimentConfig) -> KernelResult<Vec<Row>> {
    use crashsim::{run_crash_test, CrashMode, CrashStack, CrashTestConfig};
    let quick = cfg.threads_high < 32;
    let crash_cfg = CrashTestConfig {
        seed: 0x2021_FA57,
        ops: 200,
        disk_blocks: 8192,
        mode: CrashMode::Sampled { states: if quick { 160 } else { 400 } },
        max_violations: 8,
        queue_depth: 0,
    };
    let mut rows = Vec::new();
    let gate = |rows: &mut Vec<Row>, report: &crashsim::CrashReport, prefix: &str| {
        for (config, value) in [
            ("states-checked", report.states_checked as f64),
            ("violations", report.violations_found as f64),
            ("fsync-points", report.fsync_points as f64),
            ("trace-writes", report.trace_writes as f64),
            ("trace-epochs", report.trace_epochs as f64),
        ] {
            rows.push(Row::new(
                "crash",
                &format!("{prefix}{config}"),
                report.stack,
                value,
                "count",
                None,
            ));
        }
        if !report.is_clean() {
            eprintln!(
                "crash oracle violations on {}{}: {} found across {} states",
                prefix, report.stack, report.violations_found, report.states_checked
            );
            for violation in &report.violations {
                eprintln!("  [{}] {}", violation.state, violation.detail);
            }
            return Err(simkernel::error::KernelError::with_context(
                simkernel::error::Errno::Io,
                "crash oracle violations found (details on stderr)",
            ));
        }
        Ok(())
    };
    for stack in CrashStack::all() {
        let report = run_crash_test(stack, &crash_cfg)?;
        gate(&mut rows, &report, "")?;
    }
    // One more pass through the queued (multi-queue) device model: batched
    // payload submission and two-stage commit overlap must keep both
    // oracles clean, with the recorder observing every queued write in its
    // submission epoch.  `queued-*` rows distinguish it in the JSON.
    let queued_cfg = CrashTestConfig { queue_depth: 8, ..crash_cfg };
    let report = run_crash_test(CrashStack::BentoXv6, &queued_cfg)?;
    gate(&mut rows, &report, "queued-")?;
    Ok(rows)
}

/// The stacks the `load` experiment drives (the FUSE stack is orders of
/// magnitude slower under the boundary-crossing model and would dominate
/// the runtime for no extra signal — it stays in the table6 macros).
pub const LOAD_STACKS: [FsStack; 3] = [FsStack::BentoXv6, FsStack::VfsXv6, FsStack::Ext4];

/// Runs one personality closed-loop on a fresh mount and returns its BENCH
/// rows: throughput plus the p50/p90/p99/p99.9 latency quartet, per-class
/// error counts, and — when `traced` — the per-phase latency attribution
/// ([`phase_breakdown_rows`]).  `load-smoke` runs untraced on purpose: it
/// is the disabled-path reference the overhead methodology compares
/// against (see EXPERIMENTS.md).
fn load_personality_rows(
    stack: FsStack,
    spec: &loadgen::WorkloadSpec,
    cfg: &ExperimentConfig,
    duration: Duration,
    traced: bool,
) -> KernelResult<Vec<Row>> {
    let mounted = mount_stack(stack, cfg.model.clone(), cfg.disk_blocks)?;
    let load_cfg = loadgen::LoadConfig::closed(cfg.macro_threads, duration);
    loadgen::prepare(&mounted.vfs, spec, &load_cfg)?;
    let tracing = traced.then(simkernel::trace::enable);
    let result = loadgen::run_load(&mounted.vfs, spec, &load_cfg)?;
    drop(tracing);
    if !result.is_clean() {
        return Err(simkernel::error::KernelError::with_context(
            simkernel::error::Errno::Io,
            "load run failed ops or recorded no latency",
        ));
    }
    let label = stack.label();
    let mut rows = vec![
        Row::new("load", &spec.name, label, result.ops_per_sec(), "ops/sec", None),
        Row::new("load", &format!("{}-p50-us", spec.name), label, result.p_us(50.0), "us", None),
        Row::new("load", &format!("{}-p90-us", spec.name), label, result.p_us(90.0), "us", None),
        Row::new("load", &format!("{}-p99-us", spec.name), label, result.p_us(99.0), "us", None),
        Row::new("load", &format!("{}-p999-us", spec.name), label, result.p_us(99.9), "us", None),
    ];
    // The durability class is the tail that matters for the paper's fsync
    // claims; report it separately where the personality has one.
    if let Some(fsync) = result.class(loadgen::OpKind::Fsync) {
        rows.push(Row::new(
            "load",
            &format!("{}-fsync-p99-us", spec.name),
            label,
            fsync.latency.percentile(99.0) as f64 / 1_000.0,
            "us",
            None,
        ));
    }
    // Windowed throughput: min/mean/max completed-op rate over the run's
    // complete timeline windows.  A steady closed-loop run keeps min near
    // max; a collapse (stall, livelock) shows up as a cratered min long
    // before it moves the whole-run mean.
    if let Some((min, mean, max)) = result.window_rate_summary() {
        for (suffix, value) in [("min", min), ("mean", mean), ("max", max)] {
            rows.push(Row::new(
                "load",
                &format!("{}-window-rate-{suffix}", spec.name),
                label,
                value,
                "ops/sec",
                None,
            ));
        }
    }
    // Per-class error counts: zero on a clean run (this run is gated clean
    // above), but the row's presence keeps fault-run JSONs comparable.
    for class in &result.per_op {
        rows.push(Row::new(
            "load",
            &format!("{}-{}-errors", spec.name, class.kind.label()),
            label,
            class.errors as f64,
            "count",
            None,
        ));
    }
    if traced {
        rows.extend(phase_breakdown_rows("load", &spec.name, label, &result));
    }
    mounted.unmount()?;
    Ok(rows)
}

/// Per-phase latency attribution rows for a traced load run, aggregated
/// across op classes: `{prefix}-phase-{phase}-p50-us` / `-p99-us` for every
/// phase any op passed through, plus the share of total service time the
/// instrumented phases account for (`{prefix}-attributed-share`) and its
/// complement (`{prefix}-other-share`, path resolution + cache copies +
/// driver bookkeeping).
fn phase_breakdown_rows(
    experiment: &str,
    prefix: &str,
    label: &str,
    result: &loadgen::LoadResult,
) -> Vec<Row> {
    use simkernel::metrics::LatencyHistogram;
    use simkernel::trace::Phase;
    let mut rows = Vec::new();
    let mut merged: Vec<LatencyHistogram> =
        (0..Phase::COUNT).map(|_| LatencyHistogram::new()).collect();
    let mut attributed_ns = 0u64;
    let mut total_ns = 0u64;
    for class in &result.traces {
        for phase in Phase::ALL {
            merged[phase.index()].merge(&class.per_phase[phase.index()]);
        }
        attributed_ns += class.attributed_ns();
        total_ns += class.total_sum_ns;
    }
    for phase in Phase::ALL {
        let hist = &merged[phase.index()];
        if hist.is_empty() {
            continue;
        }
        for p in [50.0, 99.0] {
            rows.push(Row::new(
                experiment,
                &format!("{prefix}-phase-{}-p{p:.0}-us", phase.label()),
                label,
                hist.percentile(p) as f64 / 1_000.0,
                "us",
                None,
            ));
        }
    }
    if total_ns > 0 {
        let share = attributed_ns as f64 / total_ns as f64;
        rows.push(Row::new(
            experiment,
            &format!("{prefix}-attributed-share"),
            label,
            share,
            "fraction",
            None,
        ));
        rows.push(Row::new(
            experiment,
            &format!("{prefix}-other-share"),
            label,
            1.0 - share,
            "fraction",
            None,
        ));
    }
    rows
}

/// The `load` experiment: the five loadgen personalities (varmail,
/// fileserver, webserver, untar-replay, namespace-churn) closed-loop on the Bento, VFS and
/// ext4 stacks with latency percentiles, an open-loop overload probe
/// (backlog measured, not hidden), the paper's upgrade-under-traffic
/// scenario (bounded pause, zero failed ops — violations fail the
/// experiment), and transient-EIO injection under load.
///
/// # Errors
///
/// Fails when any clean run fails an operation or records an empty
/// histogram, when the upgrade scenario fails any operation, or when the
/// stack does not serve durable writes after the EIO window clears.
pub fn load_experiment(cfg: &ExperimentConfig) -> KernelResult<Vec<Row>> {
    use simkernel::error::{Errno, KernelError};
    let duration = cfg.duration.max(Duration::from_millis(200));
    let files = (cfg.macro_files_per_thread * cfg.macro_threads).max(40);
    let mut rows = Vec::new();
    for stack in LOAD_STACKS {
        for spec in loadgen::WorkloadSpec::personalities(cfg.untar_files) {
            let spec = if spec.replay.is_some() { spec } else { spec.with_files(files) };
            rows.extend(load_personality_rows(stack, &spec, cfg, duration, true)?);
        }
    }

    // Open-loop overload probes (Bento, varmail and fileserver): offer a
    // multiple of the just-measured closed-loop rate; the backlog and
    // inflated p99 are the point — open-loop drivers measure overload
    // instead of hiding it.  Each personality runs twice, on the default
    // synchronous device (`{name}-open-*` rows) and on the queued NVMe
    // model at depth 32 (`{name}-open-queued-*` rows): under overload the
    // two-stage commit overlaps consecutive groups' log I/O, so the queued
    // p99 must come in below the synchronous one at the same offered rate.
    let label = FsStack::BentoXv6.label();
    let specs: [fn() -> loadgen::WorkloadSpec; 2] =
        [loadgen::WorkloadSpec::varmail, loadgen::WorkloadSpec::fileserver];
    for make_spec in specs {
        let open_spec = make_spec().with_files(files);
        let closed_rate = rows
            .iter()
            .find(|r| r.stack == label && r.config == open_spec.name)
            .map(|r| r.value)
            .unwrap_or(1000.0);
        for (suffix, options) in [
            ("", MountOptions::default()),
            ("-queued", MountOptions::default().with_option("queue_depth", "32")),
        ] {
            let mounted =
                mount_stack_with(FsStack::BentoXv6, cfg.model.clone(), cfg.disk_blocks, &options)?;
            let open_cfg = loadgen::LoadConfig {
                error_policy: loadgen::ErrorPolicy::FailFast,
                ..loadgen::LoadConfig::open(cfg.macro_threads, closed_rate * 4.0, duration)
            };
            loadgen::prepare(&mounted.vfs, &open_spec, &open_cfg)?;
            let open = loadgen::run_load(&mounted.vfs, &open_spec, &open_cfg)?;
            rows.push(Row::new(
                "load",
                &format!("{}-open{}-p99-us", open_spec.name, suffix),
                label,
                open.p_us(99.0),
                "us",
                None,
            ));
            rows.push(Row::new(
                "load",
                &format!("{}-open{}-backlog-ms", open_spec.name, suffix),
                label,
                open.max_backlog.as_secs_f64() * 1_000.0,
                "ms",
                None,
            ));
            mounted.unmount()?;
        }
    }
    let spec = loadgen::WorkloadSpec::varmail().with_files(files);

    // Upgrade under sustained traffic (paper §6.2): swap in a fresh xv6fs
    // implementation mid-run; zero failed ops and a measured pause are the
    // acceptance bar.
    let mounted = mount_stack(FsStack::BentoXv6, cfg.model.clone(), cfg.disk_blocks)?;
    let upgrade_cfg = loadgen::LoadConfig::closed(cfg.macro_threads, duration);
    loadgen::prepare(&mounted.vfs, &spec, &upgrade_cfg)?;
    let (under_upgrade, outcome) =
        loadgen::run_upgrade_under_load(&mounted.vfs, &spec, &upgrade_cfg)?;
    if !under_upgrade.is_clean() {
        return Err(KernelError::with_context(
            Errno::Io,
            "operations failed during the live upgrade",
        ));
    }
    if outcome.report.pause_ns == 0 {
        return Err(KernelError::with_context(Errno::Io, "upgrade pause was not measured"));
    }
    rows.push(Row::new(
        "load",
        "upgrade-pause-us",
        label,
        outcome.report.pause_ns as f64 / 1_000.0,
        "us",
        None,
    ));
    rows.push(Row::new(
        "load",
        "upgrade-failed-ops",
        label,
        under_upgrade.errors as f64,
        "count",
        None,
    ));
    rows.push(Row::new("load", "upgrade-p99-us", label, under_upgrade.p_us(99.0), "us", None));
    mounted.unmount()?;

    // Transient EIO under load: the stack may fail individual ops while the
    // fault is live (counted), but must serve durable writes afterwards.
    let (under_eio, eio) = loadgen::run_eio_under_load(
        FsStack::BentoXv6,
        cfg.model.clone(),
        cfg.disk_blocks,
        &spec,
        &loadgen::LoadConfig::closed(cfg.macro_threads, duration),
        0.02,
    )?;
    if !eio.recovered {
        return Err(KernelError::with_context(
            Errno::Io,
            "stack did not serve durable writes after the EIO window",
        ));
    }
    let injected = eio.fault_stats.read_errors + eio.fault_stats.write_errors;
    rows.push(Row::new("load", "eio-injected", label, injected as f64, "count", None));
    rows.push(Row::new("load", "eio-failed-ops", label, under_eio.errors as f64, "count", None));
    rows.push(Row::new(
        "load",
        "eio-completed-ops",
        label,
        under_eio.operations as f64,
        "count",
        None,
    ));
    Ok(rows)
}

/// CI's `load-smoke`: a quick closed-loop varmail run on each of the three
/// load stacks; any failed op or empty histogram fails the experiment.
///
/// # Errors
///
/// As for [`load_experiment`].
pub fn load_smoke_experiment(cfg: &ExperimentConfig) -> KernelResult<Vec<Row>> {
    let duration = cfg.duration.max(Duration::from_millis(120));
    let spec = loadgen::WorkloadSpec::varmail().with_files(40);
    let mut rows = Vec::new();
    for stack in LOAD_STACKS {
        rows.extend(load_personality_rows(stack, &spec, cfg, duration, false)?);
    }
    Ok(rows)
}

/// The workloads the `obs` experiment traces on every load stack.
const OBS_PERSONALITIES: [fn() -> loadgen::WorkloadSpec; 2] =
    [loadgen::WorkloadSpec::varmail, loadgen::WorkloadSpec::fileserver];

/// The phases a stack's traced run must cover, or the experiment fails:
/// an op class silently bypassing an instrumented wait point is exactly
/// the regression this gate exists to catch.
///
/// The xv6 stacks journal metadata synchronously inside the op, so every
/// mix with namespace traffic owes all five phases (namespace locks, the
/// unified journal's reserve/stage/commit, the device).  ext4sim
/// deliberately has no per-directory namespace locks and its own staged
/// transaction instead of the shared WAL's reservation protocol (see the
/// ext4sim audit note) — and, like real ext4 in writeback mode, its
/// journal only runs inside an op span when `fsync` forces it.  A mix
/// without durability ops (fileserver) owes no phase at all on Ext4:
/// dirty pages stay cached until sync/unmount and a warm fileset serves
/// reads without touching the device, so zero attributed time is the
/// honest answer, not a coverage hole.
fn obs_required_phases(stack: FsStack, mix_has_fsync: bool) -> &'static [simkernel::trace::Phase] {
    use simkernel::trace::Phase;
    match stack {
        FsStack::BentoXv6 | FsStack::VfsXv6 | FsStack::FuseXv6 => &Phase::ALL,
        FsStack::Ext4 if mix_has_fsync => &[Phase::LogStage, Phase::CommitWait, Phase::DevIo],
        FsStack::Ext4 => &[],
    }
}

/// The `obs` experiment: end-to-end observability across the three load
/// stacks.
///
/// Three parts, all CI-gated via `obs-smoke`:
///
/// 1. **Disabled-path overhead**: measures the cost of one trace hook with
///    tracing off (`disabled-hook-ns` row) and fails above 250 ns — the
///    hook is a single relaxed atomic load and must stay that way.
/// 2. **Phase coverage + attribution**: varmail and fileserver run traced
///    and closed-loop on Bento, C-Kernel and Ext4.  Every op class that
///    completed work must have produced spans, the union of observed
///    phases must cover `obs_required_phases` for the stack, and the
///    summed per-phase attribution must reconcile with end-to-end latency
///    (`attributed <= 1.1 x total`; exclusive-time attribution guarantees
///    the 1.0 bound, the slack is clock granularity).  Rows report the
///    per-phase p50/p99 breakdown, the attributed/other shares, the
///    slowest traced op, and the unified metrics registry counters the
///    mount published ([`MountedStack::publish_metrics`]).
/// 3. **Enabled-path overhead**: varmail on Bento runs back-to-back with
///    tracing off and on (`trace-off-ops` / `trace-on-ops` /
///    `trace-overhead-pct` rows).  Informational, not gated: on the 1-CPU
///    CI container the run-to-run noise exceeds the ~2% target documented
///    in EXPERIMENTS.md, so the number is recorded where a quieter machine
///    can hold it to the bar.
///
/// # Errors
///
/// Fails on a hook-cost regression, a clean-run failure, a class that
/// completed ops without spans, an uncovered required phase, or an
/// attribution sum that exceeds the end-to-end total by more than 10%.
pub fn obs_experiment(cfg: &ExperimentConfig) -> KernelResult<Vec<Row>> {
    use simkernel::error::{Errno, KernelError};
    use simkernel::registry::MetricsRegistry;
    use simkernel::trace;

    let mut rows = Vec::new();

    // Part 1: the disabled path must stay one atomic load.
    let hook_ns = trace::disabled_hook_cost_ns(100_000);
    rows.push(Row::new("obs", "disabled-hook-ns", "-", hook_ns, "ns", None));
    if hook_ns > 250.0 {
        eprintln!("obs: disabled trace hook costs {hook_ns:.1} ns/call (bound 250)");
        return Err(KernelError::with_context(
            Errno::Io,
            "disabled-path trace hook exceeded its overhead bound",
        ));
    }

    // Part 2: traced runs, coverage and reconciliation gates, breakdown rows.
    let duration = cfg.duration.max(Duration::from_millis(150));
    let files = (cfg.macro_files_per_thread * cfg.macro_threads).max(40);
    for stack in LOAD_STACKS {
        let label = stack.label();
        for make_spec in OBS_PERSONALITIES {
            let spec = make_spec().with_files(files);
            let mounted = mount_stack(stack, cfg.model.clone(), cfg.disk_blocks)?;
            let load_cfg = loadgen::LoadConfig::closed(cfg.macro_threads, duration);
            loadgen::prepare(&mounted.vfs, &spec, &load_cfg)?;
            let tracing = trace::enable();
            // Fresh epoch: rings and the per-thread drop counters start at
            // zero, so `trace::dropped()` below is this run's overflow.
            trace::reset();
            let result = loadgen::run_load(&mounted.vfs, &spec, &load_cfg)?;
            drop(tracing);
            if !result.is_clean() {
                return Err(KernelError::with_context(
                    Errno::Io,
                    "obs: traced load run failed ops or recorded no latency",
                ));
            }
            // Gate: every class that completed work produced spans.  A span
            // evicted by ring overflow was still *produced* (the driver
            // aggregates the record at finish time), so ring drops are
            // reported, not a coverage hole — but a class whose span count
            // falls short by more than the run's total drops has an
            // uninstrumented path, and more spans than completions is
            // double-counting.
            let dropped = trace::dropped();
            let mut span_deficit = 0u64;
            for class in &result.per_op {
                let spans = result.trace_class(class.kind).map_or(0, |t| t.spans);
                if spans > class.completed {
                    eprintln!(
                        "obs: {label}/{}: class {} completed {} ops but traced {} spans",
                        spec.name,
                        class.kind.label(),
                        class.completed,
                        spans,
                    );
                    return Err(KernelError::with_context(
                        Errno::Io,
                        "obs: an op class traced more spans than it completed",
                    ));
                }
                span_deficit += class.completed - spans;
            }
            if span_deficit > dropped {
                eprintln!(
                    "obs: {label}/{}: {span_deficit} completed ops have no span \
                     (only {dropped} ring drops can account for them)",
                    spec.name,
                );
                return Err(KernelError::with_context(
                    Errno::Io,
                    "obs: an op class completed work without trace spans",
                ));
            }
            rows.push(Row::new(
                "obs",
                &format!("{}-dropped-spans", spec.name),
                label,
                dropped as f64,
                "spans",
                None,
            ));
            // Gate: the stack's required phases were all observed.
            let mut attributed_ns = 0u64;
            let mut total_ns = 0u64;
            let mut covered = [false; simkernel::trace::Phase::COUNT];
            for class in &result.traces {
                attributed_ns += class.attributed_ns();
                total_ns += class.total_sum_ns;
                for phase in simkernel::trace::Phase::ALL {
                    covered[phase.index()] |= class.per_phase[phase.index()].count() > 0;
                }
            }
            let mix_has_fsync = spec
                .mix
                .entries()
                .iter()
                .any(|(kind, weight)| *kind == loadgen::OpKind::Fsync && *weight > 0);
            for &phase in obs_required_phases(stack, mix_has_fsync) {
                if !covered[phase.index()] {
                    eprintln!(
                        "obs: {label}/{}: no span passed through required phase {}",
                        spec.name,
                        phase.label()
                    );
                    return Err(KernelError::with_context(
                        Errno::Io,
                        "obs: a required phase was never observed (uninstrumented path?)",
                    ));
                }
            }
            // Gate: attribution reconciles with end-to-end latency.
            if attributed_ns as f64 > total_ns as f64 * 1.10 {
                eprintln!(
                    "obs: {label}/{}: attributed {attributed_ns} ns vs total {total_ns} ns",
                    spec.name
                );
                return Err(KernelError::with_context(
                    Errno::Io,
                    "obs: per-phase attribution exceeds end-to-end latency by >10%",
                ));
            }
            rows.extend(phase_breakdown_rows("obs", &spec.name, label, &result));
            // The slowest traced op: the tail the breakdown explains.
            if let Some(worst) =
                result.traces.iter().filter_map(|t| t.slowest.first()).max_by_key(|r| r.total_ns)
            {
                rows.push(Row::new(
                    "obs",
                    &format!("{}-slowest-us", spec.name),
                    label,
                    worst.total_ns as f64 / 1_000.0,
                    "us",
                    None,
                ));
            }
            // The unified registry: absorb this mount's counters and report
            // them (stack prefix stripped — the row's stack column holds it).
            // Sync first so writeback-mode stacks flush their dirty pages
            // and the device/journal counters reflect the run's traffic.
            mounted.vfs.sync()?;
            let registry = MetricsRegistry::new();
            mounted.publish_metrics(&registry);
            // The trace subsystem's own back-pressure counters ride the
            // same registry (`trace.dropped_spans[.ringN]`), so ring
            // overflow is visible wherever the mount's counters go.
            trace::publish_dropped(&registry);
            let snapshot = registry.snapshot();
            for (key, value) in &snapshot.counters {
                let name = key.strip_prefix(&format!("{label}.")).unwrap_or(key);
                rows.push(Row::new(
                    "obs",
                    &format!("{}-ctr-{}", spec.name, name),
                    label,
                    *value as f64,
                    "count",
                    None,
                ));
            }
            mounted.unmount()?;
        }
    }

    // Part 3: enabled-path overhead, measured not gated (see doc comment).
    let spec = loadgen::WorkloadSpec::varmail().with_files(files);
    let mut ops = [0.0f64; 2];
    for (i, traced) in [(0, false), (1, true)] {
        let mounted = mount_stack(FsStack::BentoXv6, cfg.model.clone(), cfg.disk_blocks)?;
        let load_cfg = loadgen::LoadConfig::closed(cfg.macro_threads, duration);
        loadgen::prepare(&mounted.vfs, &spec, &load_cfg)?;
        let tracing = traced.then(trace::enable);
        let result = loadgen::run_load(&mounted.vfs, &spec, &load_cfg)?;
        drop(tracing);
        ops[i] = result.ops_per_sec();
        mounted.unmount()?;
    }
    let label = FsStack::BentoXv6.label();
    rows.push(Row::new("obs", "trace-off-ops", label, ops[0], "ops/sec", None));
    rows.push(Row::new("obs", "trace-on-ops", label, ops[1], "ops/sec", None));
    rows.push(Row::new(
        "obs",
        "trace-overhead-pct",
        label,
        (ops[0] - ops[1]) / ops[0].max(1e-9) * 100.0,
        "%",
        None,
    ));
    Ok(rows)
}

/// One clean, traced, monitored closed-loop run of `spec` on the Bento
/// stack: mounts, wires the monitor's registry snapshot source to the
/// mount's counters, runs under a fresh trace epoch (the monitor's flight
/// recorder drains spans from the rings), and unmounts.
fn run_monitored_clean(
    spec: &loadgen::WorkloadSpec,
    cfg: &ExperimentConfig,
    duration: Duration,
    mon: &std::sync::Arc<monitor::HealthMonitor>,
) -> KernelResult<loadgen::LoadResult> {
    use std::sync::Arc;
    let mounted = mount_stack(FsStack::BentoXv6, cfg.model.clone(), cfg.disk_blocks)?;
    let load_cfg =
        loadgen::LoadConfig::closed(cfg.macro_threads, duration).with_monitor(Arc::clone(mon));
    loadgen::prepare(&mounted.vfs, spec, &load_cfg)?;
    let source_stack = MountedStack {
        vfs: Arc::clone(&mounted.vfs),
        stack: FsStack::BentoXv6,
        device: Arc::clone(&mounted.device),
    };
    let registry = simkernel::registry::MetricsRegistry::new();
    mon.set_snapshot_source(move || {
        source_stack.publish_metrics(&registry);
        registry.snapshot()
    });
    let tracing = simkernel::trace::enable();
    simkernel::trace::reset();
    let result = loadgen::run_load(&mounted.vfs, spec, &load_cfg)?;
    drop(tracing);
    mounted.unmount()?;
    Ok(result)
}

/// The `health` experiment: the continuous health engine end to end (CI's
/// `health-smoke` gate).
///
/// Four parts:
///
/// 1. **Disabled-path overhead**: [`monitor::HealthMonitor::observe`] with
///    the monitor off must cost under 250 ns/call — a single relaxed
///    atomic load, the same bar as the disabled trace hook.
/// 2. **Calibration + false-positive gate**: varmail, fileserver, and
///    webserver run clean, traced and monitored on Bento.  A calibration
///    pass learns each workload's shape — the op-indexed window width
///    (~1/48 of the run), the clean run's slowest single op, and the
///    clean per-class commit-wait maxima for read-class ops (structurally
///    zero: reads and stats never touch the journal); the gate pass
///    re-runs with an errors-only SLO, the whole-window stall detector at
///    8x the clean maximum, and read/stat commit-wait phase-stall
///    detectors armed, and must emit **zero** alerts.  Calibrating
///    against a clean run of the same workload (rather than hard-coding
///    nanoseconds) keeps the gate meaningful on any machine speed.
/// 3. **Fault detection**: varmail over a transient-EIO fault device
///    ([`loadgen::run_eio_under_load`], 8% write-fault probability for the
///    middle half of the run).  The error-budget SLO must burn-rate-fire
///    within two windows of the first failed op, clear after the fault
///    lifts, and freeze an incident bundle.
/// 4. **Pause attribution**: the live upgrade under webserver traffic
///    ([`loadgen::run_upgrade_under_load`]) must surface as a flagged
///    window attributed to `commit-wait` — the phase BentoFs charges
///    blocked readers to while the upgrade holds the FS write lock.  The
///    whole-window stall detector cannot see this: on a busy 1-CPU run
///    the clean window *maximum* (group-commit waits, scheduler noise)
///    runs tens of milliseconds while the upgrade quiesce is a few
///    hundred microseconds.  The per-class phase-stall detector
///    ([`monitor::PhaseStallSpec`]) inverts the problem: clean reads
///    spend exactly zero ns in commit-wait, so *any* over-floor
///    commit-wait on a read is categorical evidence of the pause.
///
/// Every frozen incident bundle is written into `incident_dir`
/// (`INCIDENT_<id>_<kind>.json`, next to the BENCH report) and re-read
/// through [`monitor::IncidentBundle::schema_check`].
///
/// # Errors
///
/// Fails on any gate above, or on mount/run errors.
pub fn health_experiment(
    cfg: &ExperimentConfig,
    incident_dir: &std::path::Path,
) -> KernelResult<Vec<Row>> {
    use monitor::{
        HealthEvent, HealthMonitor, IncidentBundle, MonitorConfig, PhaseStallSpec, SloSpec,
    };
    use simkernel::error::{Errno, KernelError};
    use simkernel::trace::Phase;
    use std::sync::Arc;

    let mut rows = Vec::new();
    let label = FsStack::BentoXv6.label();
    let budget = 0.002;

    // Part 1: the disabled path must stay one atomic load.
    let probe = HealthMonitor::new(MonitorConfig::new(u64::MAX));
    probe.set_enabled(false);
    let observe_ns = monitor::disabled_observe_cost_ns(&probe, 100_000);
    rows.push(Row::new("health", "disabled-observe-ns", "-", observe_ns, "ns", None));
    if observe_ns > 250.0 {
        eprintln!("health: disabled monitor observe costs {observe_ns:.1} ns/call (bound 250)");
        return Err(KernelError::with_context(
            Errno::Io,
            "disabled-path monitor observe exceeded its overhead bound",
        ));
    }

    let duration = cfg.duration.max(Duration::from_millis(250));
    let files = (cfg.macro_files_per_thread * cfg.macro_threads).max(40);

    // Part 2: per-workload calibration, then the clean-run false-positive
    // gate with every detector armed.  Clean reads and stats never enter
    // commit-wait at all (they never touch the journal; BentoFs only
    // charges the phase to readers blocked behind the upgrade write
    // lock), so the phase-stall floor can sit at a fixed 20 us: far above
    // the structural zero, comfortably below the shortest observed quick
    // -mode pause (~70 us, of which a blocked reader eats most).
    const READ_STALL_FLOOR_NS: u64 = 20_000;
    let read_phase_stalls = |threshold_ns: u64| {
        [
            PhaseStallSpec::new("read-commit-wait", "read", Phase::CommitWait, threshold_ns),
            PhaseStallSpec::new("stat-commit-wait", "stat", Phase::CommitWait, threshold_ns),
        ]
    };
    let mut calibrations: std::collections::BTreeMap<String, (u64, u64)> =
        std::collections::BTreeMap::new();
    let specs: [fn() -> loadgen::WorkloadSpec; 3] = [
        loadgen::WorkloadSpec::varmail,
        loadgen::WorkloadSpec::fileserver,
        loadgen::WorkloadSpec::webserver,
    ];
    for make_spec in specs {
        let spec = make_spec().with_files(files);
        let cal_mon = HealthMonitor::new(MonitorConfig::new(512));
        let cal = run_monitored_clean(&spec, cfg, duration, &cal_mon)?;
        if !cal.is_clean() {
            return Err(KernelError::with_context(
                Errno::Io,
                "health: calibration run failed ops or recorded no latency",
            ));
        }
        cal_mon.finish();
        let clean_max_ns = cal_mon.windows().iter().map(|w| w.max_ns).max().unwrap_or(0);
        if clean_max_ns == 0 {
            return Err(KernelError::with_context(
                Errno::Io,
                "health: calibration run closed no windows",
            ));
        }
        // ~48 windows per run keeps the EIO run's post-fault quarter well
        // past the 5-window fast lookback; the floor keeps windows from
        // degenerating on very short runs.
        let window_ops = (cal.operations / 48).max(40);
        let stall_threshold_ns = clean_max_ns.saturating_mul(8);
        // Calibrate the phase-stall threshold against the clean per-class
        // commit-wait maximum (expected: zero) with 4x headroom.
        let clean_read_commit_wait_ns = [loadgen::OpKind::Read, loadgen::OpKind::Stat]
            .iter()
            .filter_map(|&k| cal.trace_class(k))
            .map(|t| t.per_phase[Phase::CommitWait.index()].max())
            .max()
            .unwrap_or(0);
        let phase_stall_ns = clean_read_commit_wait_ns.saturating_mul(4).max(READ_STALL_FLOOR_NS);
        rows.push(Row::new(
            "health",
            &format!("{}-window-ops", spec.name),
            label,
            window_ops as f64,
            "ops",
            None,
        ));
        rows.push(Row::new(
            "health",
            &format!("{}-clean-max-us", spec.name),
            label,
            clean_max_ns as f64 / 1_000.0,
            "us",
            None,
        ));

        let [read_stall, stat_stall] = read_phase_stalls(phase_stall_ns);
        let gate_mon = HealthMonitor::new(
            MonitorConfig::new(window_ops)
                .with_slo(SloSpec::error_budget("error-budget", "*", budget))
                .with_stall_threshold_ns(stall_threshold_ns)
                .with_phase_stall(read_stall)
                .with_phase_stall(stat_stall),
        );
        let gate = run_monitored_clean(&spec, cfg, duration, &gate_mon)?;
        if !gate.is_clean() {
            return Err(KernelError::with_context(
                Errno::Io,
                "health: clean gate run failed ops or recorded no latency",
            ));
        }
        let alerts = gate_mon.alerts();
        if !alerts.is_empty() {
            for alert in &alerts {
                eprintln!("health: {} clean-run false positive: {alert:?}", spec.name);
            }
            return Err(KernelError::with_context(
                Errno::Io,
                "health: a clean run raised alerts (false positive)",
            ));
        }
        let windows = gate_mon.windows().len();
        if windows < 5 {
            eprintln!("health: {} closed only {windows} windows", spec.name);
            return Err(KernelError::with_context(
                Errno::Io,
                "health: too few windows to evaluate burn rates",
            ));
        }
        rows.push(Row::new(
            "health",
            &format!("{}-windows", spec.name),
            label,
            windows as f64,
            "windows",
            None,
        ));
        rows.push(Row::new(
            "health",
            &format!("{}-false-positive-alerts", spec.name),
            label,
            alerts.len() as f64,
            "count",
            None,
        ));
        calibrations.insert(spec.name.to_string(), (window_ops, phase_stall_ns));
    }
    let (window_ops, _) = calibrations["varmail"];
    let spec = loadgen::WorkloadSpec::varmail().with_files(files);
    let mut incidents: Vec<IncidentBundle> = Vec::new();

    // Part 3: transient EIO must trip the error-budget SLO within two
    // windows of the first failed op, and clear once the fault lifts.
    let eio_mon =
        HealthMonitor::new(MonitorConfig::new(window_ops).with_slo(SloSpec::error_budget(
            "eio-error-budget",
            "*",
            budget,
        )));
    let eio_cfg =
        loadgen::LoadConfig::closed(cfg.macro_threads, duration).with_monitor(Arc::clone(&eio_mon));
    let tracing = simkernel::trace::enable();
    simkernel::trace::reset();
    let eio_run = loadgen::run_eio_under_load(
        FsStack::BentoXv6,
        cfg.model.clone(),
        cfg.disk_blocks,
        &spec,
        &eio_cfg,
        0.08,
    );
    drop(tracing);
    let (under_eio, eio) = eio_run?;
    if !eio.recovered {
        return Err(KernelError::with_context(
            Errno::Io,
            "health: stack did not serve durable writes after the EIO window",
        ));
    }
    if under_eio.errors == 0 {
        return Err(KernelError::with_context(
            Errno::Io,
            "health: EIO injection produced no failed ops; nothing to detect",
        ));
    }
    let first_bad = eio_mon.first_error_window().ok_or_else(|| {
        KernelError::with_context(Errno::Io, "health: failed ops never reached the monitor")
    })?;
    let events = eio_mon.events();
    let fired: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            HealthEvent::SloBurnFired { window, .. } => Some(*window),
            _ => None,
        })
        .collect();
    let &[fired_at] = fired.as_slice() else {
        eprintln!("health: expected exactly one burn alert, got {fired:?} (events: {events:?})");
        return Err(KernelError::with_context(
            Errno::Io,
            "health: the EIO run did not fire exactly one burn alert",
        ));
    };
    if fired_at > first_bad + 2 {
        eprintln!("health: errors started at window {first_bad}, alert waited until {fired_at}");
        return Err(KernelError::with_context(
            Errno::Io,
            "health: burn alert fired more than two windows after the fault",
        ));
    }
    let cleared_at = events
        .iter()
        .find_map(|e| match e {
            HealthEvent::SloBurnCleared { window, .. } => Some(*window),
            _ => None,
        })
        .ok_or_else(|| {
            eprintln!("health: alert fired at window {fired_at} but never cleared ({events:?})");
            KernelError::with_context(
                Errno::Io,
                "health: burn alert did not clear after the fault lifted",
            )
        })?;
    rows.push(Row::new(
        "health",
        "eio-fault-onset-window",
        label,
        first_bad as f64,
        "windows",
        None,
    ));
    rows.push(Row::new("health", "eio-fire-window", label, fired_at as f64, "windows", None));
    rows.push(Row::new(
        "health",
        "eio-fire-lag-windows",
        label,
        (fired_at - first_bad) as f64,
        "windows",
        None,
    ));
    rows.push(Row::new("health", "eio-clear-window", label, cleared_at as f64, "windows", None));
    // Deterministic on a passing run (the latch holds while burning), so
    // the benchdiff baseline pins it: more alerts than one is a regression.
    rows.push(Row::new("health", "eio-alerts", label, fired.len() as f64, "count", None));
    incidents.extend(eio_mon.take_incidents());
    if incidents.is_empty() {
        return Err(KernelError::with_context(
            Errno::Io,
            "health: the fired alert froze no incident bundle",
        ));
    }

    // Part 4: the live upgrade's pause must surface as a commit-wait
    // phase-stall on the read classes.  The webserver personality (20:4
    // read:stat out of 27 weights) makes the ops blocked by the upgrade's
    // write-lock quiesce almost surely reads, and clean reads never enter
    // commit-wait at all, so the calibrated floor separates a few hundred
    // microseconds of pause from tens of milliseconds of legitimate
    // group-commit noise on the write classes.
    let up_spec = loadgen::WorkloadSpec::webserver().with_files(files);
    let (up_window_ops, upgrade_stall_ns) = calibrations["webserver"];
    // The quiesce-vs-traffic rendezvous is stochastic on a one-CPU host:
    // the upgrade's grace barrier parks whichever workers the scheduler
    // happens to run, and occasionally none of them is on a read-class op
    // (the write classes hold the CPU far longer per op than their 3/27
    // weight suggests).  A bounded retry keeps the gate deterministic
    // without loosening the detector; the attempt count is reported.
    const UPGRADE_ATTEMPTS: usize = 4;
    let mut upgrade_success = None;
    for attempt in 1..=UPGRADE_ATTEMPTS {
        let [read_stall, stat_stall] = read_phase_stalls(upgrade_stall_ns);
        let up_mon = HealthMonitor::new(
            MonitorConfig::new(up_window_ops)
                .with_phase_stall(read_stall)
                .with_phase_stall(stat_stall),
        );
        let mounted = mount_stack(FsStack::BentoXv6, cfg.model.clone(), cfg.disk_blocks)?;
        let up_cfg = loadgen::LoadConfig::closed(cfg.macro_threads, duration)
            .with_monitor(Arc::clone(&up_mon));
        loadgen::prepare(&mounted.vfs, &up_spec, &up_cfg)?;
        {
            let source_stack = MountedStack {
                vfs: Arc::clone(&mounted.vfs),
                stack: FsStack::BentoXv6,
                device: Arc::clone(&mounted.device),
            };
            let registry = simkernel::registry::MetricsRegistry::new();
            up_mon.set_snapshot_source(move || {
                source_stack.publish_metrics(&registry);
                registry.snapshot()
            });
        }
        let tracing = simkernel::trace::enable();
        simkernel::trace::reset();
        let upgrade_run = loadgen::run_upgrade_under_load(&mounted.vfs, &up_spec, &up_cfg);
        drop(tracing);
        let (under_upgrade, outcome) = upgrade_run?;
        if !under_upgrade.is_clean() {
            return Err(KernelError::with_context(
                Errno::Io,
                "health: operations failed during the live upgrade",
            ));
        }
        mounted.unmount()?;
        let flagged: Vec<(u64, u64, String)> = up_mon
            .events()
            .iter()
            .filter_map(|e| match e {
                HealthEvent::LatencyWindowFlagged { window, max_ns, dominant_phase, .. } => {
                    Some((*window, *max_ns, dominant_phase.clone()))
                }
                _ => None,
            })
            .collect();
        let read_commit_wait_ns = [loadgen::OpKind::Read, loadgen::OpKind::Stat]
            .iter()
            .filter_map(|&k| under_upgrade.trace_class(k))
            .map(|t| t.per_phase[Phase::CommitWait.index()].max())
            .max()
            .unwrap_or(0);
        if flagged.is_empty() {
            eprintln!(
                "health: attempt {attempt}/{UPGRADE_ATTEMPTS}: upgrade pause {:.1} us (worst \
                 read commit-wait {:.1} us, fired at {:.1}/{:.1} ms) never tripped the read \
                 commit-wait stall floor {:.1} us",
                outcome.report.pause_ns as f64 / 1_000.0,
                read_commit_wait_ns as f64 / 1_000.0,
                outcome.fired_at.as_secs_f64() * 1_000.0,
                duration.as_secs_f64() * 1_000.0,
                upgrade_stall_ns as f64 / 1_000.0,
            );
            continue;
        }
        if !flagged.iter().any(|(_, _, phase)| phase == "commit-wait") {
            eprintln!(
                "health: attempt {attempt}/{UPGRADE_ATTEMPTS}: flagged windows {flagged:?}; \
                 none dominated by commit-wait"
            );
            continue;
        }
        upgrade_success = Some((outcome, flagged, read_commit_wait_ns, up_mon, attempt));
        break;
    }
    let Some((outcome, flagged, read_commit_wait_ns, up_mon, attempts)) = upgrade_success else {
        return Err(KernelError::with_context(
            Errno::Io,
            "health: the upgrade pause was not flagged as a latency window in any attempt",
        ));
    };
    rows.push(Row::new(
        "health",
        "upgrade-pause-us",
        label,
        outcome.report.pause_ns as f64 / 1_000.0,
        "us",
        None,
    ));
    rows.push(Row::new("health", "upgrade-attempts", label, attempts as f64, "runs", None));
    rows.push(Row::new(
        "health",
        "upgrade-stall-threshold-us",
        label,
        upgrade_stall_ns as f64 / 1_000.0,
        "us",
        None,
    ));
    rows.push(Row::new(
        "health",
        "upgrade-read-commit-wait-us",
        label,
        read_commit_wait_ns as f64 / 1_000.0,
        "us",
        None,
    ));
    rows.push(Row::new(
        "health",
        "upgrade-flagged-windows",
        label,
        flagged.len() as f64,
        "windows",
        None,
    ));
    incidents.extend(up_mon.take_incidents());

    // The flight recorder's output contract: every bundle lands next to
    // the BENCH report and re-parses through the schema check.
    std::fs::create_dir_all(incident_dir).map_err(|e| {
        eprintln!("health: cannot create incident dir {}: {e}", incident_dir.display());
        KernelError::with_context(Errno::Io, "health: cannot create the incident directory")
    })?;
    for bundle in &incidents {
        let path = bundle.write_to(incident_dir).map_err(|e| {
            eprintln!("health: cannot write incident bundle: {e}");
            KernelError::with_context(Errno::Io, "health: cannot write an incident bundle")
        })?;
        let json = std::fs::read_to_string(&path).map_err(|e| {
            eprintln!("health: cannot re-read {}: {e}", path.display());
            KernelError::with_context(Errno::Io, "health: cannot re-read an incident bundle")
        })?;
        IncidentBundle::schema_check(&json).map_err(|e| {
            eprintln!("health: {} fails its schema check: {e}", path.display());
            KernelError::with_context(Errno::Io, "health: an incident bundle failed schema check")
        })?;
        println!("health: wrote {}", path.display());
    }
    rows.push(Row::new("health", "bundles-written", "-", incidents.len() as f64, "count", None));
    Ok(rows)
}

/// Mounts `stack` under the (scaled) NVMe cost model, runs `create_micro`
/// with `threads` workers, and returns the result plus the write-path
/// counter delta for the run.
fn create_with_write_path_stats(
    stack: FsStack,
    cfg: &ExperimentConfig,
    options: &MountOptions,
    threads: usize,
    model: CostModel,
) -> KernelResult<(workloads::WorkloadResult, Option<WritePathStats>)> {
    let mounted = mount_stack_with(stack, model, cfg.disk_blocks, options)?;
    let before = write_path_snapshot(&mounted);
    let create = create_micro(&mounted.vfs, 4096, threads, cfg.duration)?;
    let delta = match (before, write_path_snapshot(&mounted)) {
        (Some(before), Some(after)) => Some(write_path_delta(&before, &after)),
        _ => None,
    };
    mounted.unmount()?;
    Ok((create, delta))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rows_cover_both_stacks_and_all_thread_counts() {
        // A very short sweep: correctness of the row structure, not numbers.
        let cfg = ExperimentConfig {
            duration: Duration::from_millis(30),
            disk_blocks: 48 * 1024,
            ..ExperimentConfig::quick()
        };
        let rows =
            scaling_experiment_with_threads(&cfg, &SCALING_SMOKE_THREADS).expect("scaling sweep");
        for stack in ["Bento", "C-Kernel"] {
            for threads in SCALING_SMOKE_THREADS {
                for prefix in ["read-4k-rnd", "write-4k-rnd", "create", "create-nvme"] {
                    let config = format!("{prefix}-{threads}t");
                    let row = rows
                        .iter()
                        .find(|r| r.stack == stack && r.config == config)
                        .unwrap_or_else(|| panic!("missing row {stack}/{config}"));
                    assert!(row.value > 0.0, "{stack}/{config} must do work");
                    assert_eq!(row.unit, "ops/sec");
                }
                // The cross-directory create sweep (per-directory namespace
                // locks over a shared pool) reports ops/s plus per-op cost,
                // and only reaches the row list if the post-run fsck came
                // back clean.
                for (suffix, unit) in [("crossdir", "ops/sec"), ("crossdir-us-per-op", "us/op")] {
                    let config = format!("create-{threads}t-{suffix}");
                    let row = rows
                        .iter()
                        .find(|r| r.stack == stack && r.config == config)
                        .unwrap_or_else(|| panic!("missing row {stack}/{config}"));
                    assert!(row.value > 0.0, "{stack}/{config} must be populated");
                    assert_eq!(row.unit, unit);
                }
                // Per-run write-path counters ride along with every create
                // point.
                for (suffix, unit) in [
                    ("ops-per-commit", "ops/commit"),
                    ("barriers-per-op", "barriers/op"),
                    ("groups-used", "groups"),
                ] {
                    let config = format!("create-{threads}t-{suffix}");
                    let row = rows
                        .iter()
                        .find(|r| r.stack == stack && r.config == config)
                        .unwrap_or_else(|| panic!("missing row {stack}/{config}"));
                    assert!(row.value > 0.0, "{stack}/{config} must be populated");
                    assert_eq!(row.unit, unit);
                }
            }
        }
        // The alloc-group knob sweep rows exist for the Bento stack.
        for groups in [1, 16] {
            assert!(
                rows.iter()
                    .any(|r| r.stack == "Bento" && r.config == format!("create-8t-g{groups}")),
                "missing alloc-group sweep row g{groups}"
            );
        }
        // ...and so do the fd-shard sweep rows.
        for shards in [1, 16] {
            assert!(
                rows.iter()
                    .any(|r| r.stack == "Bento" && r.config == format!("create-8t-fds{shards}")),
                "missing fd-shard sweep row fds{shards}"
            );
        }
        // Queue-depth sweep rows: throughput plus the in-flight depth
        // gauge the queued device samples.  At any depth the barrier
        // discipline must hold, and the device must have seen real
        // overlap (max depth above 1) once the queue allows it.
        for depth in [1, 8, 32] {
            for (suffix, unit) in
                [("", "ops/sec"), ("-barriers-per-op", "barriers/op"), ("-mean-depth", "requests")]
            {
                let config = format!("create-8t-qd{depth}{suffix}");
                let row = rows
                    .iter()
                    .find(|r| r.stack == "Bento" && r.config == config)
                    .unwrap_or_else(|| panic!("missing queue-depth sweep row {config}"));
                assert!(row.value > 0.0, "{config} must be populated");
                assert_eq!(row.unit, unit);
            }
        }
        let max_depth_row = rows
            .iter()
            .find(|r| r.config == "create-8t-qd32-max-depth")
            .expect("missing qd32 max-depth row");
        assert!(
            max_depth_row.value > 1.0,
            "depth-32 queue never overlapped requests (max depth {})",
            max_depth_row.value
        );
    }

    #[test]
    fn load_smoke_rows_cover_every_stack_with_percentiles() {
        let cfg = ExperimentConfig {
            duration: Duration::from_millis(80),
            macro_threads: 2,
            ..ExperimentConfig::quick()
        };
        let rows = load_smoke_experiment(&cfg).expect("load smoke must run clean");
        for stack in ["Bento", "C-Kernel", "Ext4"] {
            for config in ["varmail", "varmail-p50-us", "varmail-p99-us", "varmail-fsync-p99-us"] {
                let row = rows
                    .iter()
                    .find(|r| r.stack == stack && r.config == config)
                    .unwrap_or_else(|| panic!("missing load row {stack}/{config}"));
                assert!(row.value > 0.0, "{stack}/{config} must be populated");
            }
            // Percentiles must be ordered.
            let p = |config: &str| {
                rows.iter().find(|r| r.stack == stack && r.config == config).unwrap().value
            };
            assert!(p("varmail-p50-us") <= p("varmail-p99-us"), "{stack} percentiles unordered");
        }
    }

    #[test]
    fn load_experiment_upgrade_and_eio_scenarios_hold_the_bar() {
        // The full load experiment at a small scale: every personality row
        // present, the upgrade scenario clean with a measured pause, the
        // EIO scenario recovered.  (Any violation is an Err, so `expect`
        // IS the assertion for the hard requirements.)
        let cfg = ExperimentConfig {
            duration: Duration::from_millis(100),
            macro_threads: 2,
            macro_files_per_thread: 20,
            untar_files: 60,
            ..ExperimentConfig::quick()
        };
        let rows = load_experiment(&cfg).expect("load experiment must hold its invariants");
        for stack in ["Bento", "C-Kernel", "Ext4"] {
            for personality in
                ["varmail", "fileserver", "webserver", "untar-replay", "namespace-churn"]
            {
                for suffix in ["", "-p50-us", "-p99-us"] {
                    let config = format!("{personality}{suffix}");
                    assert!(
                        rows.iter().any(|r| r.stack == stack && r.config == config),
                        "missing load row {stack}/{config}"
                    );
                }
            }
        }
        let get = |config: &str| {
            rows.iter()
                .find(|r| r.stack == "Bento" && r.config == config)
                .unwrap_or_else(|| panic!("missing scenario row {config}"))
                .value
        };
        assert!(get("upgrade-pause-us") > 0.0, "pause must be measured");
        assert_eq!(get("upgrade-failed-ops"), 0.0);
        assert!(get("eio-completed-ops") > 0.0);
        assert!(get("varmail-open-p99-us") > 0.0);
    }

    #[test]
    fn obs_rows_cover_phases_registry_and_overhead_on_every_stack() {
        // The gates (span coverage per class, required-phase coverage,
        // attribution <= 1.1x total, hook cost < 250 ns) are inside
        // obs_experiment, so `expect` carries them; the assertions below
        // pin the row contract the obs-smoke CI step and EXPERIMENTS.md
        // document.
        let cfg = ExperimentConfig {
            duration: Duration::from_millis(100),
            macro_threads: 2,
            macro_files_per_thread: 20,
            ..ExperimentConfig::quick()
        };
        let rows = obs_experiment(&cfg).expect("obs experiment must hold its gates");
        assert!(
            rows.iter().any(|r| r.config == "disabled-hook-ns" && r.value < 250.0),
            "disabled hook row missing or over bound"
        );
        for stack in ["Bento", "C-Kernel", "Ext4"] {
            for personality in ["varmail", "fileserver"] {
                let p = |config: String| {
                    rows.iter()
                        .find(|r| r.stack == stack && r.config == config)
                        .unwrap_or_else(|| panic!("missing obs row {stack}/{config}"))
                        .value
                };
                // Commit wait and device I/O are owed everywhere except
                // Ext4 under a durability-free mix (fileserver has no
                // fsync and ext4sim journals in writeback style, so zero
                // in-op phase time is the honest answer — see
                // obs_required_phases).  Percentiles must be ordered.
                if stack != "Ext4" || personality == "varmail" {
                    for phase in ["commit-wait", "dev-io"] {
                        let p50 = p(format!("{personality}-phase-{phase}-p50-us"));
                        let p99 = p(format!("{personality}-phase-{phase}-p99-us"));
                        assert!(p50 > 0.0 && p50 <= p99, "{stack}/{personality}/{phase} unordered");
                    }
                }
                let share = p(format!("{personality}-attributed-share"));
                assert!((0.0..=1.1).contains(&share), "{stack} share {share} out of range");
                assert!(p(format!("{personality}-slowest-us")) > 0.0);
                // Registry counters reached the rows: the device wrote
                // (the experiment syncs before publishing, so this holds
                // for writeback-mode Ext4 too).
                assert!(p(format!("{personality}-ctr-dev_writes")) > 0.0);
            }
        }
        // The xv6 stacks also owe the namespace-lock and log-reserve
        // phases varmail's create/delete traffic passes through.
        for stack in ["Bento", "C-Kernel"] {
            for phase in ["nslock", "log-reserve", "log-stage"] {
                assert!(
                    rows.iter()
                        .any(|r| r.stack == stack
                            && r.config == format!("varmail-phase-{phase}-p99-us")),
                    "missing {stack} varmail {phase} row"
                );
            }
        }
        // Overhead probe rows exist and measured real throughput.
        for config in ["trace-off-ops", "trace-on-ops"] {
            let row = rows.iter().find(|r| r.config == config).expect("overhead rows");
            assert!(row.value > 0.0);
        }
        assert!(rows.iter().any(|r| r.config == "trace-overhead-pct"));
    }

    #[test]
    fn crash_experiment_reports_clean_counts_for_every_stack() {
        let cfg = ExperimentConfig::quick();
        let rows = crash_experiment(&cfg).expect("crash experiment must be violation-free");
        for stack in ["Bento", "C-Kernel", "Ext4"] {
            let get = |config: &str| {
                rows.iter()
                    .find(|r| r.stack == stack && r.config == config)
                    .unwrap_or_else(|| panic!("missing crash row {stack}/{config}"))
                    .value
            };
            assert!(get("states-checked") > 0.0);
            assert_eq!(get("violations"), 0.0, "{stack} must recover cleanly");
            assert!(get("fsync-points") > 0.0);
            assert!(get("trace-writes") > 0.0);
        }
    }

    #[test]
    fn nvme_create_batches_barriers_at_eight_threads() {
        // The acceptance bar for the pipelined group-commit log: with real
        // barrier costs, 8 concurrent creators must share commits, issuing
        // at most half the device barriers per operation of a lone creator
        // (which pays 3 barriers for every op: payload, commit record,
        // install — the crash-safe ordering the crashsim harness enforces).
        let cfg = ExperimentConfig {
            duration: Duration::from_millis(200),
            disk_blocks: 48 * 1024,
            ..ExperimentConfig::quick()
        };
        let rows = scaling_experiment_with_threads(&cfg, &[1]).expect("scaling sweep");
        let barriers_per_op = |threads: usize| {
            rows.iter()
                .find(|r| {
                    r.stack == "Bento"
                        && r.config == format!("create-nvme-{threads}t-barriers-per-op")
                })
                .unwrap_or_else(|| panic!("missing nvme barriers row for {threads}t"))
                .value
        };
        let single = barriers_per_op(1);
        let grouped = barriers_per_op(8);
        assert!(single > 2.0, "a lone creator pays ~3 barriers per op, got {single}");
        assert!(
            grouped * 2.0 <= single,
            "8-thread create must batch ≥2×: {grouped} vs {single} barriers/op"
        );
    }

    #[test]
    fn table1_reproduces_published_percentages() {
        let rows = table1_bug_analysis();
        let prevented = rows.iter().find(|r| r.config == "prevented by Rust %").unwrap();
        assert!((prevented.value - 93.2).abs() < 1.0);
        assert_eq!(rows.iter().filter(|r| r.unit == "bugs").count(), 15);
    }

    #[test]
    fn table2_has_only_bento_with_all_yes() {
        let table = table2_mechanism_comparison();
        let all_yes: Vec<&String> = table
            .iter()
            .filter(|(_, cells)| cells.iter().all(|c| *c == "yes"))
            .map(|(name, _)| name)
            .collect();
        assert_eq!(all_yes, vec!["Bento"]);
    }
}
