//! Result rows and rendering.

use serde::Serialize;

/// One measured cell of a table or figure.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Experiment id, e.g. `"fig2"` or `"table4"`.
    pub experiment: String,
    /// Configuration label, e.g. `"seq-1t"` or `"varmail"`.
    pub config: String,
    /// File system stack label (`"Bento"`, `"C-Kernel"`, `"FUSE"`, `"Ext4"`).
    pub stack: String,
    /// Measured value.
    pub value: f64,
    /// Unit of the value (`"ops/sec"`, `"MB/s"`, `"seconds"`, ...).
    pub unit: String,
    /// The paper's published value for this cell, when the paper states one.
    pub paper: Option<f64>,
}

impl Row {
    /// Creates a row.
    pub fn new(
        experiment: &str,
        config: &str,
        stack: &str,
        value: f64,
        unit: &str,
        paper: Option<f64>,
    ) -> Self {
        Row {
            experiment: experiment.to_string(),
            config: config.to_string(),
            stack: stack.to_string(),
            value,
            unit: unit.to_string(),
            paper,
        }
    }
}

/// Prints rows as an aligned text table with a title.
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    println!(
        "{:<10} {:<16} {:<10} {:>14} {:<10} {:>12}",
        "exp", "config", "stack", "measured", "unit", "paper"
    );
    for row in rows {
        let paper = row.paper.map(|p| format!("{p:.1}")).unwrap_or_else(|| "-".to_string());
        println!(
            "{:<10} {:<16} {:<10} {:>14.1} {:<10} {:>12}",
            row.experiment, row.config, row.stack, row.value, row.unit, paper
        );
    }
}

/// Serializes rows to pretty JSON (written next to EXPERIMENTS.md by the
/// binary when `--json <path>` is given).
pub fn rows_to_json(rows: &[Row]) -> String {
    serde_json::to_string_pretty(rows).unwrap_or_else(|_| "[]".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_rows() {
        let rows = vec![Row::new("fig2", "seq-1t", "Bento", 123.0, "ops/sec", Some(150.0))];
        let json = rows_to_json(&rows);
        assert!(json.contains("seq-1t"));
        assert!(json.contains("150"));
    }
}
