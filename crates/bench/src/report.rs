//! Result rows and rendering.

use serde::{Deserialize, Serialize};

/// One measured cell of a table or figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Experiment id, e.g. `"fig2"` or `"table4"`.
    pub experiment: String,
    /// Configuration label, e.g. `"seq-1t"` or `"varmail"`.
    pub config: String,
    /// File system stack label (`"Bento"`, `"C-Kernel"`, `"FUSE"`, `"Ext4"`).
    pub stack: String,
    /// Measured value.
    pub value: f64,
    /// Unit of the value (`"ops/sec"`, `"MB/s"`, `"seconds"`, ...).
    pub unit: String,
    /// The paper's published value for this cell, when the paper states one.
    pub paper: Option<f64>,
}

impl Row {
    /// Creates a row.
    pub fn new(
        experiment: &str,
        config: &str,
        stack: &str,
        value: f64,
        unit: &str,
        paper: Option<f64>,
    ) -> Self {
        Row {
            experiment: experiment.to_string(),
            config: config.to_string(),
            stack: stack.to_string(),
            value,
            unit: unit.to_string(),
            paper,
        }
    }
}

/// Prints rows as an aligned text table with a title.
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    println!(
        "{:<10} {:<16} {:<10} {:>14} {:<10} {:>12}",
        "exp", "config", "stack", "measured", "unit", "paper"
    );
    for row in rows {
        let paper = row.paper.map(|p| format!("{p:.1}")).unwrap_or_else(|| "-".to_string());
        println!(
            "{:<10} {:<16} {:<10} {:>14.1} {:<10} {:>12}",
            row.experiment, row.config, row.stack, row.value, row.unit, paper
        );
    }
}

/// Serializes rows to pretty JSON (written next to EXPERIMENTS.md by the
/// binary when `--json <path>` is given).
pub fn rows_to_json(rows: &[Row]) -> String {
    serde_json::to_string_pretty(rows).unwrap_or_else(|_| "[]".to_string())
}

/// Metadata describing the machine and configuration a BENCH JSON was
/// recorded on.
///
/// The ROADMAP's single-core-container caveat lives in prose; embedding the
/// detected CPU count (and git rev / thread config) in every recorded
/// result makes it visible in the data itself — a BENCH file with
/// `"cpus": 1` explains its own flat scaling curves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMeta {
    /// `git rev-parse --short HEAD` at run time (`"unknown"` outside a
    /// checkout).
    pub git_rev: String,
    /// CPUs the runtime could detect on this machine.
    pub cpus: usize,
    /// The `threads_high` configuration the experiments ran with.
    pub threads_high: usize,
    /// `"quick"` or `"full"` experiment configuration.
    pub config: String,
    /// Wall-clock start of the run, seconds since the Unix epoch — lets
    /// two BENCH files be ordered (and correlated with CI logs) without
    /// trusting file mtimes.
    pub started_unix: u64,
}

impl RunMeta {
    /// Detects the environment for a run at `threads_high` threads.
    pub fn detect(threads_high: usize, quick: bool) -> Self {
        let git_rev = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|out| out.status.success())
            .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
            .filter(|rev| !rev.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        RunMeta {
            git_rev,
            cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            threads_high,
            config: if quick { "quick" } else { "full" }.to_string(),
            started_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        }
    }
}

/// The full BENCH JSON document: run metadata plus the measured rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Where/how the rows were measured.
    pub meta: RunMeta,
    /// The measured rows.
    pub rows: Vec<Row>,
}

/// Serializes a full report (meta + rows) to pretty JSON.
pub fn report_to_json(meta: &RunMeta, rows: &[Row]) -> String {
    let report = BenchReport { meta: meta.clone(), rows: rows.to_vec() };
    serde_json::to_string_pretty(&report).unwrap_or_else(|_| "{}".to_string())
}

/// Parses a BENCH JSON document back into a report (the `benchdiff` input
/// path).
///
/// # Errors
///
/// Describes the parse/shape failure.
pub fn report_from_json(json: &str) -> Result<BenchReport, String> {
    serde_json::from_str(json).map_err(|e| format!("not a BENCH report: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_rows() {
        let rows = vec![Row::new("fig2", "seq-1t", "Bento", 123.0, "ops/sec", Some(150.0))];
        let json = rows_to_json(&rows);
        assert!(json.contains("seq-1t"));
        assert!(json.contains("150"));
    }

    #[test]
    fn hostile_labels_round_trip_through_report_json() {
        // Escaping audit: quotes, backslashes, control characters, and
        // path-separator soup in row labels (e.g. a Windows-style incident
        // path pasted into a config label) must survive serialize → parse
        // exactly.  The writer escapes `"` `\` and control chars; this pins
        // it end to end.
        let hostile = [
            "quote\"in\"label",
            "back\\slash\\path",
            "C:\\bench\\INCIDENT_0_\"slo\".json",
            "tab\there\nand newline",
            "unicode-µs-и-漢",
            "control-\u{1}-char",
        ];
        let rows: Vec<Row> = hostile
            .iter()
            .enumerate()
            .map(|(i, label)| {
                Row::new("audit", label, hostile[(i + 1) % hostile.len()], 1.5, "us", None)
            })
            .collect();
        let meta = RunMeta::detect(1, true);
        let json = report_to_json(&meta, &rows);
        let parsed = report_from_json(&json).expect("hostile labels must stay valid JSON");
        assert_eq!(parsed.rows.len(), rows.len());
        for (parsed, original) in parsed.rows.iter().zip(rows.iter()) {
            assert_eq!(parsed.config, original.config);
            assert_eq!(parsed.stack, original.stack);
        }
        // The bare rows array shape too.
        let parsed_rows: Vec<Row> =
            serde_json::from_str(&rows_to_json(&rows)).expect("rows array parses");
        assert_eq!(parsed_rows[0].config, hostile[0]);
    }

    #[test]
    fn report_from_json_rejects_garbage() {
        assert!(report_from_json("nonsense").is_err());
        assert!(report_from_json("{\"rows\": []}").is_err(), "meta is required");
    }

    #[test]
    fn report_embeds_run_metadata() {
        let meta = RunMeta::detect(32, true);
        assert!(meta.cpus >= 1);
        assert!(!meta.git_rev.is_empty());
        let rows = vec![Row::new("load", "varmail-p99-us", "Bento", 420.0, "us", None)];
        assert!(meta.started_unix > 1_700_000_000, "start timestamp must be a recent Unix time");
        let json = report_to_json(&meta, &rows);
        for key in [
            "\"meta\"",
            "\"git_rev\"",
            "\"cpus\"",
            "\"threads_high\"",
            "\"started_unix\"",
            "\"rows\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("varmail-p99-us"));
    }
}
