//! `cargo bench -p bench --bench paper_suite` — runs the full paper
//! experiment harness in quick mode and prints every table/figure.
//!
//! This is a plain binary (no Criterion harness): the paper's results are
//! throughput tables produced by the workload generators themselves, so the
//! "bench" is the harness run.  Use the `paper_experiments` binary for the
//! full-length version.

use bench::{
    fig2_read_4k, fig3_read_throughput, fig4_write_throughput, print_rows, table1_bug_analysis,
    table4_create, table5_delete, table6_macrobenchmarks, ExperimentConfig,
};

fn main() {
    // `cargo bench` passes flags like `--bench`; ignore them.
    let cfg = ExperimentConfig::quick();
    println!("paper_suite: quick-mode reproduction of every table and figure");
    print_rows("Table 1 (bug study)", &table1_bug_analysis());
    match fig2_read_4k(&cfg) {
        Ok(rows) => print_rows("Figure 2 (4 KiB reads)", &rows),
        Err(e) => eprintln!("fig2 failed: {e}"),
    }
    match fig3_read_throughput(&cfg) {
        Ok(rows) => print_rows("Figure 3 (read throughput)", &rows),
        Err(e) => eprintln!("fig3 failed: {e}"),
    }
    match fig4_write_throughput(&cfg) {
        Ok(rows) => print_rows("Figure 4 (write throughput)", &rows),
        Err(e) => eprintln!("fig4 failed: {e}"),
    }
    match table4_create(&cfg) {
        Ok(rows) => print_rows("Table 4 (creates)", &rows),
        Err(e) => eprintln!("table4 failed: {e}"),
    }
    match table5_delete(&cfg) {
        Ok(rows) => print_rows("Table 5 (deletes)", &rows),
        Err(e) => eprintln!("table5 failed: {e}"),
    }
    match table6_macrobenchmarks(&cfg) {
        Ok(rows) => print_rows("Table 6 (macrobenchmarks)", &rows),
        Err(e) => eprintln!("table6 failed: {e}"),
    }
}
