//! Microbenchmarks of the individual file system operations the paper's
//! workloads are built from, across the three xv6 stacks.
//!
//! These run with the zero-cost device model, so they measure the *software*
//! overhead of each stack (the BentoFS translation layer, the VFS baseline,
//! the FUSE round trip) rather than modelled device time — the complement of
//! the `paper_suite` bench, which measures the modelled end-to-end numbers.
//!
//! Criterion is unavailable offline, so this is a plain `harness = false`
//! bench: each operation is timed over a fixed wall-clock window and
//! reported as ns/op and ops/s.

use std::sync::Arc;
use std::time::{Duration, Instant};

use simkernel::cost::CostModel;
use simkernel::vfs::OpenFlags;
use workloads::{mount_stack, FsStack};

const MEASURE: Duration = Duration::from_millis(400);

/// Runs `op` repeatedly for [`MEASURE`] and prints mean latency/throughput.
fn time_op(group: &str, label: &str, mut op: impl FnMut()) {
    // Warmup.
    for _ in 0..10 {
        op();
    }
    let start = Instant::now();
    let mut iterations = 0u64;
    while start.elapsed() < MEASURE {
        for _ in 0..16 {
            op();
        }
        iterations += 16;
    }
    let elapsed = start.elapsed();
    let ns_per_op = elapsed.as_nanos() as f64 / iterations as f64;
    println!("{group:<20} {label:<10} {ns_per_op:>12.0} ns/op {:>14.0} ops/s", 1e9 / ns_per_op);
}

fn bench_creates() {
    for stack in FsStack::xv6_variants() {
        let mounted = mount_stack(stack, CostModel::zero(), 32 * 1024).expect("mount");
        let vfs = Arc::clone(&mounted.vfs);
        let mut i = 0u64;
        time_op("create_close_unlink", stack.label(), || {
            // Create and immediately unlink so a long run does not exhaust
            // the inode table or grow the directory without bound.
            let path = format!("/bench-create-{i}");
            i += 1;
            let fd = vfs.open(&path, OpenFlags::WRONLY.with(OpenFlags::CREAT)).expect("create");
            vfs.close(fd).expect("close");
            vfs.unlink(&path).expect("unlink");
        });
        mounted.unmount().expect("unmount");
    }
}

fn bench_write_4k() {
    for stack in FsStack::xv6_variants() {
        let mounted = mount_stack(stack, CostModel::zero(), 32 * 1024).expect("mount");
        let vfs = Arc::clone(&mounted.vfs);
        let fd = vfs.open("/bench-write", OpenFlags::RDWR.with(OpenFlags::CREAT)).expect("create");
        let data = vec![0xABu8; 4096];
        time_op("write_4k_fsync", stack.label(), || {
            vfs.pwrite(fd, &data, 0).expect("write");
            vfs.fsync(fd).expect("fsync");
        });
        vfs.close(fd).expect("close");
        mounted.unmount().expect("unmount");
    }
}

fn bench_cached_read_4k() {
    for stack in FsStack::xv6_variants() {
        let mounted = mount_stack(stack, CostModel::zero(), 32 * 1024).expect("mount");
        let vfs = Arc::clone(&mounted.vfs);
        let fd = vfs.open("/bench-read", OpenFlags::RDWR.with(OpenFlags::CREAT)).expect("create");
        vfs.write(fd, &vec![1u8; 1 << 20]).expect("fill");
        let mut buf = vec![0u8; 4096];
        let mut offset = 0u64;
        time_op("cached_read_4k", stack.label(), || {
            offset = (offset + 4096) % (1 << 20);
            vfs.pread(fd, &mut buf, offset).expect("read");
        });
        vfs.close(fd).expect("close");
        mounted.unmount().expect("unmount");
    }
}

fn main() {
    // `cargo bench` passes flags like `--bench`; ignore them.
    println!("fs_ops: software-overhead microbenchmarks (zero-cost device model)");
    println!("{:<20} {:<10} {:>15} {:>20}", "group", "stack", "latency", "throughput");
    bench_creates();
    bench_write_4k();
    bench_cached_read_4k();
}
