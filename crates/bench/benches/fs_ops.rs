//! Criterion microbenchmarks of the individual file system operations the
//! paper's workloads are built from, across the three xv6 stacks.
//!
//! These run with the zero-cost device model, so they measure the *software*
//! overhead of each stack (the BentoFS translation layer, the VFS baseline,
//! the FUSE round trip) rather than modelled device time — the complement of
//! the `paper_suite` bench, which measures the modelled end-to-end numbers.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use simkernel::cost::CostModel;
use simkernel::vfs::OpenFlags;
use workloads::{mount_stack, FsStack};

fn bench_creates(c: &mut Criterion) {
    let mut group = c.benchmark_group("create_close_unlink");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for stack in FsStack::xv6_variants() {
        group.bench_with_input(BenchmarkId::from_parameter(stack.label()), &stack, |b, &stack| {
            let mounted = mount_stack(stack, CostModel::zero(), 32 * 1024).expect("mount");
            let vfs = Arc::clone(&mounted.vfs);
            let mut i = 0u64;
            b.iter(|| {
                // Create and immediately unlink so a long Criterion run does
                // not exhaust the inode table or grow the directory without
                // bound.
                let path = format!("/bench-create-{i}");
                i += 1;
                let fd = vfs.open(&path, OpenFlags::WRONLY.with(OpenFlags::CREAT)).expect("create");
                vfs.close(fd).expect("close");
                vfs.unlink(&path).expect("unlink");
            });
        });
    }
    group.finish();
}

fn bench_write_4k(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_4k_fsync");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for stack in FsStack::xv6_variants() {
        group.bench_with_input(BenchmarkId::from_parameter(stack.label()), &stack, |b, &stack| {
            let mounted = mount_stack(stack, CostModel::zero(), 32 * 1024).expect("mount");
            let vfs = Arc::clone(&mounted.vfs);
            let fd = vfs.open("/bench-write", OpenFlags::RDWR.with(OpenFlags::CREAT)).expect("create");
            let data = vec![0xABu8; 4096];
            b.iter(|| {
                vfs.pwrite(fd, &data, 0).expect("write");
                vfs.fsync(fd).expect("fsync");
            });
        });
    }
    group.finish();
}

fn bench_cached_read_4k(c: &mut Criterion) {
    let mut group = c.benchmark_group("cached_read_4k");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for stack in FsStack::xv6_variants() {
        group.bench_with_input(BenchmarkId::from_parameter(stack.label()), &stack, |b, &stack| {
            let mounted = mount_stack(stack, CostModel::zero(), 32 * 1024).expect("mount");
            let vfs = Arc::clone(&mounted.vfs);
            let fd = vfs.open("/bench-read", OpenFlags::RDWR.with(OpenFlags::CREAT)).expect("create");
            vfs.write(fd, &vec![1u8; 1 << 20]).expect("fill");
            let mut buf = vec![0u8; 4096];
            let mut offset = 0u64;
            b.iter(|| {
                offset = (offset + 4096) % (1 << 20);
                vfs.pread(fd, &mut buf, offset).expect("read");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_creates, bench_write_4k, bench_cached_read_4k);
criterion_main!(benches);
