//! The page cache.
//!
//! Linux satisfies `read` and `write` syscalls from an in-memory page cache
//! and only calls into the file system to *fill* pages on a miss and to
//! *write back* dirty pages.  The Bento paper leans on this twice:
//!
//! * reads of a warm file are identical across Bento, the VFS baseline and
//!   FUSE because they all hit the same in-kernel cache (§6.5.1);
//! * write *throughput* differs because writeback can batch consecutive
//!   dirty pages into one `writepages` call (Bento, inherited from the FUSE
//!   kernel module) or must send them one `writepage` at a time (the paper's
//!   VFS baseline) (§6.5.2).
//!
//! [`PageCache`] reproduces exactly that: per-file page maps with dirty
//! tracking, a configurable dirty threshold that triggers synchronous
//! writeback (the stand-in for `balance_dirty_pages` throttling, which is
//! what makes a sustained write benchmark device-bound rather than
//! memcpy-bound), and a writeback routine that batches contiguous dirty
//! runs when the file system supports it.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::KernelResult;
use crate::shard::{ShardedMap, StripedCounter};
use crate::vfs::{VfsFs, PAGE_SIZE};

/// Maximum number of pages handed to a single `write_pages` call
/// (corresponds to a 1 MiB writeback I/O).
pub const MAX_WRITEBACK_BATCH: usize = 256;

#[derive(Debug)]
struct Page {
    data: Box<[u8]>,
    dirty: bool,
}

impl Page {
    fn new_zeroed() -> Page {
        Page { data: vec![0u8; PAGE_SIZE].into_boxed_slice(), dirty: false }
    }
}

#[derive(Debug)]
struct FilePages {
    pages: BTreeMap<u64, Page>,
    /// Cached file size; authoritative once loaded because buffered writes
    /// extend it before the file system learns about the new data.
    size: u64,
    size_loaded: bool,
    dirty_count: usize,
}

impl FilePages {
    fn new() -> FilePages {
        FilePages { pages: BTreeMap::new(), size: 0, size_loaded: false, dirty_count: 0 }
    }
}

/// Behavioural knobs for the page cache.
#[derive(Debug, Clone)]
pub struct PageCacheConfig {
    /// When a single file accumulates this many dirty pages, the writing
    /// thread performs writeback synchronously (dirty throttling).
    pub dirty_threshold_pages: usize,
    /// Soft cap on total cached pages per file; clean pages beyond the cap
    /// are dropped after writeback.
    pub max_cached_pages_per_file: usize,
    /// Shards for the per-file page table and stripes for the statistics
    /// counters (`0` = default).  `read_at`/`write_at` on distinct inodes
    /// only contend when the inodes hash to the same shard.
    pub shards: usize,
}

impl Default for PageCacheConfig {
    fn default() -> Self {
        PageCacheConfig { dirty_threshold_pages: 512, max_cached_pages_per_file: 65_536, shards: 0 }
    }
}

/// Per-mount page cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCacheStats {
    /// Read bytes served from cached pages.
    pub read_hits: u64,
    /// Pages filled by calling the file system.
    pub read_fills: u64,
    /// Pages written back via single-page `write_page` calls.
    pub writeback_single: u64,
    /// Pages written back as part of batched `write_pages` calls.
    pub writeback_batched: u64,
    /// Number of `write_pages` batch calls issued.
    pub writeback_batches: u64,
}

/// Hot-path counters, striped so concurrent readers/writers on different
/// files do not bounce one statistics cache line (see
/// [`StripedCounter`]).
#[derive(Debug)]
struct StripedStats {
    read_hits: StripedCounter,
    read_fills: StripedCounter,
    writeback_single: StripedCounter,
    writeback_batched: StripedCounter,
    writeback_batches: StripedCounter,
}

impl StripedStats {
    fn new(stripes: usize) -> Self {
        StripedStats {
            read_hits: StripedCounter::new(stripes),
            read_fills: StripedCounter::new(stripes),
            writeback_single: StripedCounter::new(stripes),
            writeback_batched: StripedCounter::new(stripes),
            writeback_batches: StripedCounter::new(stripes),
        }
    }
}

/// A write-back page cache covering every file of one mounted file system.
///
/// The inode → pages table is sharded ([`ShardedMap`]), so reads and writes
/// of *different* files take different locks; per-file state stays under
/// one `Mutex` per file, which is what serializes same-file access (as the
/// kernel's per-address-space locks do).
pub struct PageCache {
    config: PageCacheConfig,
    files: ShardedMap<u64, Arc<Mutex<FilePages>>>,
    stats: StripedStats,
    /// Whether writeback should use the batched `write_pages` path.
    batch_writeback: bool,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("config", &self.config)
            .field("files", &self.files.len())
            .field("batch_writeback", &self.batch_writeback)
            .finish_non_exhaustive()
    }
}

impl PageCache {
    /// Creates a page cache.  `batch_writeback` selects the `write_pages`
    /// (batched) writeback path; the VFS baseline passes `false`.
    pub fn new(config: PageCacheConfig, batch_writeback: bool) -> Self {
        let shards = config.shards;
        PageCache {
            config,
            files: ShardedMap::new(shards),
            stats: StripedStats::new(shards),
            batch_writeback,
        }
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> PageCacheStats {
        PageCacheStats {
            read_hits: self.stats.read_hits.get(),
            read_fills: self.stats.read_fills.get(),
            writeback_single: self.stats.writeback_single.get(),
            writeback_batched: self.stats.writeback_batched.get(),
            writeback_batches: self.stats.writeback_batches.get(),
        }
    }

    /// Whether batched writeback is enabled.
    pub fn batch_writeback(&self) -> bool {
        self.batch_writeback
    }

    fn file(&self, ino: u64) -> Arc<Mutex<FilePages>> {
        self.files.get_or_insert_with(ino, || Arc::new(Mutex::new(FilePages::new())))
    }

    fn load_size(&self, fs: &Arc<dyn VfsFs>, ino: u64, fp: &mut FilePages) -> KernelResult<()> {
        if !fp.size_loaded {
            fp.size = fs.getattr(ino)?.size;
            fp.size_loaded = true;
        }
        Ok(())
    }

    /// The cached size of `ino`, loading it from the file system if needed.
    ///
    /// # Errors
    ///
    /// Propagates `getattr` errors.
    pub fn file_size(&self, fs: &Arc<dyn VfsFs>, ino: u64) -> KernelResult<u64> {
        let file = self.file(ino);
        let mut fp = file.lock();
        self.load_size(fs, ino, &mut fp)?;
        Ok(fp.size)
    }

    /// Overrides the cached size (used by truncate and by the VFS after
    /// `setattr`).
    pub fn set_file_size(&self, ino: u64, size: u64) {
        let file = self.file(ino);
        let mut fp = file.lock();
        fp.size = size;
        fp.size_loaded = true;
        // Drop whole pages beyond the new EOF and zero the tail of the page
        // straddling it, so stale data cannot reappear if the file grows.
        let first_invalid = size.div_ceil(PAGE_SIZE as u64);
        let removed: Vec<u64> = fp.pages.range(first_invalid..).map(|(k, _)| *k).collect();
        for k in removed {
            if let Some(p) = fp.pages.remove(&k) {
                if p.dirty {
                    fp.dirty_count = fp.dirty_count.saturating_sub(1);
                }
            }
        }
        if !size.is_multiple_of(PAGE_SIZE as u64) {
            let last_page = size / PAGE_SIZE as u64;
            let keep = (size % PAGE_SIZE as u64) as usize;
            if let Some(p) = fp.pages.get_mut(&last_page) {
                p.data[keep..].fill(0);
            }
        }
    }

    /// Reads up to `buf.len()` bytes at `offset` from file `ino`, going
    /// through the cache.  Returns the number of bytes read (0 at or past
    /// EOF).
    ///
    /// # Errors
    ///
    /// Propagates file system read errors.
    pub fn read(
        &self,
        fs: &Arc<dyn VfsFs>,
        ino: u64,
        offset: u64,
        buf: &mut [u8],
    ) -> KernelResult<usize> {
        let file = self.file(ino);
        let mut fp = file.lock();
        self.load_size(fs, ino, &mut fp)?;
        if offset >= fp.size || buf.is_empty() {
            return Ok(0);
        }
        let to_read = buf.len().min((fp.size - offset) as usize);
        let mut done = 0usize;
        while done < to_read {
            let pos = offset + done as u64;
            let page_idx = pos / PAGE_SIZE as u64;
            let page_off = (pos % PAGE_SIZE as u64) as usize;
            let chunk = (PAGE_SIZE - page_off).min(to_read - done);
            if let std::collections::btree_map::Entry::Vacant(e) = fp.pages.entry(page_idx) {
                let mut page = Page::new_zeroed();
                let filled = fs.read_page(ino, page_idx, &mut page.data)?;
                debug_assert!(filled <= PAGE_SIZE);
                e.insert(page);
                self.stats.read_fills.inc();
            } else {
                self.stats.read_hits.add(chunk as u64);
            }
            let page = fp.pages.get(&page_idx).expect("page just ensured");
            buf[done..done + chunk].copy_from_slice(&page.data[page_off..page_off + chunk]);
            done += chunk;
        }
        Ok(done)
    }

    /// Writes `data` at `offset` into file `ino` through the cache, marking
    /// pages dirty and extending the cached size.  If the file's dirty page
    /// count crosses the configured threshold, the calling thread performs
    /// writeback before returning (dirty throttling).
    ///
    /// # Errors
    ///
    /// Propagates file system errors encountered during read-modify-write
    /// fills or throttled writeback.
    pub fn write(
        &self,
        fs: &Arc<dyn VfsFs>,
        ino: u64,
        offset: u64,
        data: &[u8],
    ) -> KernelResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let file = self.file(ino);
        let mut fp = file.lock();
        self.load_size(fs, ino, &mut fp)?;
        self.write_locked(fs, ino, offset, data, &mut fp)
    }

    /// Appends `data` at EOF, returning `(offset_written_at, bytes)`.
    ///
    /// The EOF lookup and the write happen under one hold of the per-file
    /// lock — `O_APPEND` semantics.  Reading the size and writing in two
    /// separate critical sections (as a `file_size()` + `write()` caller
    /// would) lets two appenders observe the same EOF and overwrite each
    /// other; this is where the atomicity lives.
    ///
    /// # Errors
    ///
    /// As for [`PageCache::write`].
    pub fn append(&self, fs: &Arc<dyn VfsFs>, ino: u64, data: &[u8]) -> KernelResult<(u64, usize)> {
        let file = self.file(ino);
        let mut fp = file.lock();
        self.load_size(fs, ino, &mut fp)?;
        let offset = fp.size;
        if data.is_empty() {
            return Ok((offset, 0));
        }
        let n = self.write_locked(fs, ino, offset, data, &mut fp)?;
        Ok((offset, n))
    }

    /// The write body, with the file's lock (and loaded size) already held.
    fn write_locked(
        &self,
        fs: &Arc<dyn VfsFs>,
        ino: u64,
        offset: u64,
        data: &[u8],
        fp: &mut FilePages,
    ) -> KernelResult<usize> {
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let page_idx = pos / PAGE_SIZE as u64;
            let page_off = (pos % PAGE_SIZE as u64) as usize;
            let chunk = (PAGE_SIZE - page_off).min(data.len() - done);
            let need_fill = !fp.pages.contains_key(&page_idx)
                && (page_off != 0 || chunk != PAGE_SIZE)
                && page_idx * (PAGE_SIZE as u64) < fp.size;
            if need_fill {
                let mut page = Page::new_zeroed();
                fs.read_page(ino, page_idx, &mut page.data)?;
                fp.pages.insert(page_idx, page);
                self.stats.read_fills.inc();
            }
            let page = fp.pages.entry(page_idx).or_insert_with(Page::new_zeroed);
            page.data[page_off..page_off + chunk].copy_from_slice(&data[done..done + chunk]);
            if !page.dirty {
                page.dirty = true;
                fp.dirty_count += 1;
            }
            done += chunk;
        }
        fp.size = fp.size.max(offset + data.len() as u64);
        let over_threshold = fp.dirty_count >= self.config.dirty_threshold_pages;
        if over_threshold {
            self.writeback_locked(fs, ino, fp)?;
        }
        Ok(done)
    }

    /// Writes back every dirty page of `ino` to the file system.
    ///
    /// # Errors
    ///
    /// Propagates file system write errors.
    pub fn writeback(&self, fs: &Arc<dyn VfsFs>, ino: u64) -> KernelResult<()> {
        let file = self.file(ino);
        let mut fp = file.lock();
        self.writeback_locked(fs, ino, &mut fp)
    }

    fn writeback_locked(
        &self,
        fs: &Arc<dyn VfsFs>,
        ino: u64,
        fp: &mut FilePages,
    ) -> KernelResult<()> {
        if fp.dirty_count == 0 {
            return Ok(());
        }
        let size = fp.size;
        let dirty_indexes: Vec<u64> =
            fp.pages.iter().filter(|(_, p)| p.dirty).map(|(idx, _)| *idx).collect();
        if self.batch_writeback {
            // Group contiguous dirty page runs into write_pages batches.
            let mut run_start = 0usize;
            while run_start < dirty_indexes.len() {
                let mut run_end = run_start + 1;
                while run_end < dirty_indexes.len()
                    && dirty_indexes[run_end] == dirty_indexes[run_end - 1] + 1
                    && run_end - run_start < MAX_WRITEBACK_BATCH
                {
                    run_end += 1;
                }
                let batch: Vec<&[u8]> = dirty_indexes[run_start..run_end]
                    .iter()
                    .map(|idx| &*fp.pages.get(idx).expect("dirty page present").data)
                    .collect();
                fs.write_pages(ino, dirty_indexes[run_start], &batch, size)?;
                self.stats.writeback_batched.add(batch.len() as u64);
                self.stats.writeback_batches.inc();
                run_start = run_end;
            }
        } else {
            for idx in &dirty_indexes {
                let page = fp.pages.get(idx).expect("dirty page present");
                fs.write_page(ino, *idx, &page.data, size)?;
                self.stats.writeback_single.inc();
            }
        }
        for idx in dirty_indexes {
            if let Some(p) = fp.pages.get_mut(&idx) {
                p.dirty = false;
            }
        }
        fp.dirty_count = 0;
        // Trim the cache if it has grown very large (clean pages only).
        if fp.pages.len() > self.config.max_cached_pages_per_file {
            let excess = fp.pages.len() - self.config.max_cached_pages_per_file;
            let victims: Vec<u64> =
                fp.pages.iter().filter(|(_, p)| !p.dirty).map(|(k, _)| *k).take(excess).collect();
            for v in victims {
                fp.pages.remove(&v);
            }
        }
        Ok(())
    }

    /// Writes back every file with dirty pages (used by `sync`, `fsync` on a
    /// directory, and unmount).
    ///
    /// # Errors
    ///
    /// Propagates file system write errors.
    pub fn writeback_all(&self, fs: &Arc<dyn VfsFs>) -> KernelResult<()> {
        let inos: Vec<u64> = self.files.keys();
        for ino in inos {
            self.writeback(fs, ino)?;
        }
        Ok(())
    }

    /// Drops all cached pages of `ino` (used after unlink of the last link).
    pub fn invalidate(&self, ino: u64) {
        self.files.remove(&ino);
    }

    /// Drops the whole cache (used at unmount, after writeback).
    pub fn invalidate_all(&self) {
        self.files.clear();
    }

    /// Total dirty pages across all files (diagnostics).
    pub fn dirty_pages(&self) -> usize {
        let mut dirty = 0usize;
        self.files.for_each(|_, f| dirty += f.lock().dirty_count);
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{Errno, KernelError};
    use crate::vfs::{DirEntry, FileMode, InodeAttr, OpenFlags, SetAttr, StatFs};
    use parking_lot::Mutex as PlMutex;
    use std::collections::HashMap as Map;

    /// A trivial in-memory VfsFs used to test the page cache in isolation.
    struct MemFs {
        files: PlMutex<Map<u64, Vec<u8>>>,
        write_page_calls: PlMutex<u64>,
        write_pages_calls: PlMutex<u64>,
    }

    impl MemFs {
        #[allow(clippy::new_ret_no_self)]
        fn new() -> Arc<dyn VfsFs> {
            Arc::new(MemFs {
                files: PlMutex::new(Map::from([(2u64, Vec::new())])),
                write_page_calls: PlMutex::new(0),
                write_pages_calls: PlMutex::new(0),
            })
        }
    }

    impl VfsFs for MemFs {
        fn fs_name(&self) -> &str {
            "memfs"
        }
        fn root_ino(&self) -> u64 {
            1
        }
        fn lookup(&self, _d: u64, _n: &str) -> KernelResult<InodeAttr> {
            Err(KernelError::new(Errno::NoEnt))
        }
        fn getattr(&self, ino: u64) -> KernelResult<InodeAttr> {
            let files = self.files.lock();
            let data = files.get(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
            Ok(InodeAttr::regular(ino, data.len() as u64))
        }
        fn setattr(&self, ino: u64, set: &SetAttr) -> KernelResult<InodeAttr> {
            if let Some(size) = set.size {
                let mut files = self.files.lock();
                let data = files.get_mut(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
                data.resize(size as usize, 0);
            }
            self.getattr(ino)
        }
        fn create(&self, _d: u64, _n: &str, _m: FileMode) -> KernelResult<InodeAttr> {
            Err(KernelError::new(Errno::NoSys))
        }
        fn mkdir(&self, _d: u64, _n: &str, _m: FileMode) -> KernelResult<InodeAttr> {
            Err(KernelError::new(Errno::NoSys))
        }
        fn unlink(&self, _d: u64, _n: &str) -> KernelResult<()> {
            Err(KernelError::new(Errno::NoSys))
        }
        fn rmdir(&self, _d: u64, _n: &str) -> KernelResult<()> {
            Err(KernelError::new(Errno::NoSys))
        }
        fn rename(&self, _od: u64, _on: &str, _nd: u64, _nn: &str) -> KernelResult<()> {
            Err(KernelError::new(Errno::NoSys))
        }
        fn open(&self, _ino: u64, _f: OpenFlags) -> KernelResult<u64> {
            Ok(0)
        }
        fn release(&self, _ino: u64, _fh: u64) -> KernelResult<()> {
            Ok(())
        }
        fn readdir(&self, _ino: u64) -> KernelResult<Vec<DirEntry>> {
            Ok(Vec::new())
        }
        fn read_page(&self, ino: u64, page_index: u64, buf: &mut [u8]) -> KernelResult<usize> {
            let files = self.files.lock();
            let data = files.get(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
            let start = (page_index as usize) * PAGE_SIZE;
            if start >= data.len() {
                return Ok(0);
            }
            let n = (data.len() - start).min(PAGE_SIZE);
            buf[..n].copy_from_slice(&data[start..start + n]);
            Ok(n)
        }
        fn write_page(
            &self,
            ino: u64,
            page_index: u64,
            data: &[u8],
            file_size: u64,
        ) -> KernelResult<()> {
            *self.write_page_calls.lock() += 1;
            let mut files = self.files.lock();
            let file = files.get_mut(&ino).ok_or(KernelError::new(Errno::NoEnt))?;
            if (file.len() as u64) < file_size {
                file.resize(file_size as usize, 0);
            }
            let start = (page_index as usize) * PAGE_SIZE;
            let n = data.len().min(file.len().saturating_sub(start));
            file[start..start + n].copy_from_slice(&data[..n]);
            Ok(())
        }
        fn write_pages(
            &self,
            ino: u64,
            start_page: u64,
            pages: &[&[u8]],
            file_size: u64,
        ) -> KernelResult<()> {
            *self.write_pages_calls.lock() += 1;
            for (i, p) in pages.iter().enumerate() {
                self.write_page(ino, start_page + i as u64, p, file_size)?;
            }
            Ok(())
        }
        fn fsync(&self, _ino: u64, _datasync: bool) -> KernelResult<()> {
            Ok(())
        }
        fn statfs(&self) -> KernelResult<StatFs> {
            Ok(StatFs::default())
        }
        fn sync_fs(&self) -> KernelResult<()> {
            Ok(())
        }
    }

    fn cache(batch: bool) -> PageCache {
        PageCache::new(PageCacheConfig::default(), batch)
    }

    #[test]
    fn write_then_read_roundtrip_through_cache() {
        let fs = MemFs::new();
        let pc = cache(true);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(pc.write(&fs, 2, 100, &data).unwrap(), data.len());
        let mut out = vec![0u8; data.len()];
        assert_eq!(pc.read(&fs, 2, 100, &mut out).unwrap(), data.len());
        assert_eq!(out, data);
        // Before writeback the backing fs has not seen the data.
        assert_eq!(fs.getattr(2).unwrap().size, 0);
        pc.writeback(&fs, 2).unwrap();
        assert_eq!(fs.getattr(2).unwrap().size, 10_100);
    }

    #[test]
    fn append_is_atomic_across_racing_writers() {
        // Regression: append's EOF lookup and write must share one critical
        // section.  A file_size()+write() sequence lets two appenders read
        // the same EOF and overwrite each other — under full-suite CPU load
        // the shard_stress shared-log test lost appends exactly that way.
        let fs = MemFs::new();
        let pc = Arc::new(cache(true));
        let threads = 8;
        let per_thread = 64;
        let record = 64usize;
        let mut handles = Vec::new();
        for t in 0..threads {
            let fs = Arc::clone(&fs);
            let pc = Arc::clone(&pc);
            handles.push(std::thread::spawn(move || {
                for _ in 0..per_thread {
                    let data = vec![t as u8 + 1; record];
                    let (_, n) = pc.append(&fs, 2, &data).unwrap();
                    assert_eq!(n, record);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = (threads * per_thread * record) as u64;
        assert_eq!(pc.file_size(&fs, 2).unwrap(), total, "no append may be lost");
        // Every record is intact: scan the file in record-sized chunks and
        // check each is a uniform fill byte (no interleaving within one).
        let mut buf = vec![0u8; record];
        for i in 0..(threads * per_thread) {
            let n = pc.read(&fs, 2, (i * record) as u64, &mut buf).unwrap();
            assert_eq!(n, record);
            assert!(buf.iter().all(|&b| b == buf[0]), "record {i} interleaved");
        }
    }

    #[test]
    fn append_returns_offset_and_handles_empty() {
        let fs = MemFs::new();
        let pc = cache(true);
        assert_eq!(pc.append(&fs, 2, b"abc").unwrap(), (0, 3));
        assert_eq!(pc.append(&fs, 2, b"").unwrap(), (3, 0));
        assert_eq!(pc.append(&fs, 2, b"de").unwrap(), (3, 2));
        assert_eq!(pc.file_size(&fs, 2).unwrap(), 5);
    }

    #[test]
    fn read_beyond_eof_returns_zero() {
        let fs = MemFs::new();
        let pc = cache(true);
        let mut out = vec![0u8; 16];
        assert_eq!(pc.read(&fs, 2, 0, &mut out).unwrap(), 0);
        pc.write(&fs, 2, 0, b"hello").unwrap();
        assert_eq!(pc.read(&fs, 2, 5, &mut out).unwrap(), 0);
        assert_eq!(pc.read(&fs, 2, 1000, &mut out).unwrap(), 0);
    }

    #[test]
    fn short_read_at_eof() {
        let fs = MemFs::new();
        let pc = cache(true);
        pc.write(&fs, 2, 0, b"hello world").unwrap();
        let mut out = vec![0u8; 64];
        let n = pc.read(&fs, 2, 6, &mut out).unwrap();
        assert_eq!(&out[..n], b"world");
    }

    #[test]
    fn batched_writeback_uses_write_pages() {
        let fs = MemFs::new();
        let pc = cache(true);
        let data = vec![7u8; PAGE_SIZE * 8];
        pc.write(&fs, 2, 0, &data).unwrap();
        pc.writeback(&fs, 2).unwrap();
        let stats = pc.stats();
        assert_eq!(stats.writeback_batched, 8);
        assert_eq!(stats.writeback_batches, 1);
        assert_eq!(stats.writeback_single, 0);
    }

    #[test]
    fn unbatched_writeback_uses_write_page() {
        let fs = MemFs::new();
        let pc = cache(false);
        let data = vec![7u8; PAGE_SIZE * 8];
        pc.write(&fs, 2, 0, &data).unwrap();
        pc.writeback(&fs, 2).unwrap();
        let stats = pc.stats();
        assert_eq!(stats.writeback_single, 8);
        assert_eq!(stats.writeback_batched, 0);
    }

    #[test]
    fn sparse_dirty_pages_form_multiple_batches() {
        let fs = MemFs::new();
        let pc = cache(true);
        // Dirty pages 0,1,2 and 10,11 — two contiguous runs.
        pc.write(&fs, 2, 0, &vec![1u8; PAGE_SIZE * 3]).unwrap();
        pc.write(&fs, 2, 10 * PAGE_SIZE as u64, &vec![2u8; PAGE_SIZE * 2]).unwrap();
        pc.writeback(&fs, 2).unwrap();
        assert_eq!(pc.stats().writeback_batches, 2);
    }

    #[test]
    fn dirty_threshold_triggers_writeback() {
        let fs = MemFs::new();
        let pc = PageCache::new(
            PageCacheConfig { dirty_threshold_pages: 4, ..PageCacheConfig::default() },
            true,
        );
        pc.write(&fs, 2, 0, &vec![3u8; PAGE_SIZE * 4]).unwrap();
        // Threshold reached: data already written back, nothing dirty.
        assert_eq!(pc.dirty_pages(), 0);
        assert_eq!(fs.getattr(2).unwrap().size, (PAGE_SIZE * 4) as u64);
    }

    #[test]
    fn partial_page_overwrite_preserves_existing_bytes() {
        let fs = MemFs::new();
        let pc = cache(true);
        pc.write(&fs, 2, 0, &vec![0xAA; PAGE_SIZE]).unwrap();
        pc.writeback(&fs, 2).unwrap();
        pc.invalidate(2);
        // Overwrite bytes 10..20 only; the rest of the page must survive the
        // read-modify-write fill.
        pc.write(&fs, 2, 10, &[0xBB; 10]).unwrap();
        pc.writeback(&fs, 2).unwrap();
        pc.invalidate(2);
        let mut out = vec![0u8; PAGE_SIZE];
        pc.read(&fs, 2, 0, &mut out).unwrap();
        assert_eq!(out[0], 0xAA);
        assert_eq!(out[10], 0xBB);
        assert_eq!(out[19], 0xBB);
        assert_eq!(out[20], 0xAA);
    }

    #[test]
    fn truncate_drops_pages_beyond_eof() {
        let fs = MemFs::new();
        let pc = cache(true);
        pc.write(&fs, 2, 0, &vec![9u8; PAGE_SIZE * 3 + 100]).unwrap();
        pc.set_file_size(2, 100);
        assert_eq!(pc.file_size(&fs, 2).unwrap(), 100);
        let mut out = vec![0u8; 200];
        let n = pc.read(&fs, 2, 0, &mut out).unwrap();
        assert_eq!(n, 100);
        // Growing again must not resurrect stale bytes.
        pc.set_file_size(2, PAGE_SIZE as u64);
        let mut out = vec![1u8; PAGE_SIZE];
        pc.read(&fs, 2, 0, &mut out).unwrap();
        assert!(out[100..].iter().all(|&b| b == 0));
    }
}
