//! End-to-end operation tracing with per-phase latency attribution.
//!
//! The paper's pitch is that a safe-language framework buys kernel file
//! systems userspace-grade debuggability without giving up performance
//! (§1, §4.9).  This module is that debuggability layer for the simulated
//! kernel: every logical operation (a load-generator op or a bare VFS
//! syscall) can carry a **span**, and the instrumented wait points across
//! the stack — namespace-lock waits ([`crate::nslock`]), journal
//! reservation/staging/commit waits (`crates/journal`), and block-device
//! service/backpressure time ([`crate::dev`], [`crate::queue`]) — attribute
//! their elapsed time to the span as **phases** ([`Phase`]).  A finished
//! span becomes a [`SpanRecord`]: total latency plus an exclusive-time
//! breakdown, so a p99 stops being a number and becomes "61% commit-wait,
//! 24% device".
//!
//! # Design
//!
//! * **Always compiled in, nearly free when off.**  Tracing is gated by one
//!   process-global counter; the disabled path of every hook is a single
//!   `Relaxed` atomic load and an early return ([`enabled`]).  The bound is
//!   CI-gated (see [`disabled_hook_cost_ns`] and the `obs` experiment).
//! * **Thread-local spans, exclusive-time phases.**  A span lives in
//!   thread-local state; phase guards are strictly LIFO (RAII), and time is
//!   attributed to the *innermost* active phase.  Device I/O performed
//!   inside a group commit therefore counts as [`Phase::DevIo`], and the
//!   commit wait only keeps its non-device remainder — the per-phase sums
//!   never double-count, so `sum(phases) <= total` holds by construction
//!   and the un-instrumented remainder (`total - sum`) is reportable as
//!   "other".
//! * **Per-thread rings, global epoch.**  Finished records are pushed into
//!   a per-thread ring buffer (bounded, drop-oldest) registered in a global
//!   list, drainable with [`drain`].  [`reset`] bumps a global epoch:
//!   records from spans opened before the reset are discarded at finish, so
//!   consecutive measurement windows never bleed into each other.  (This
//!   crate forbids `unsafe`, so the rings are short-critical-section
//!   mutexed deques — uncontended except at drain time — rather than
//!   literal lock-free buffers; the *hot* disabled path is still just the
//!   one atomic load.)
//!
//! # Example
//!
//! ```
//! use simkernel::trace::{self, Phase};
//!
//! let _trace = trace::enable();
//! let span = trace::op_span("create");
//! {
//!     let _p = trace::phase(Phase::NsLock);
//!     // ... wait for the directory lock ...
//! }
//! let record = span.finish().expect("tracing is enabled");
//! assert_eq!(record.class, "create");
//! assert_eq!(record.phase_counts[Phase::NsLock.index()], 1);
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

/// The instrumented wait/work phases an operation can pass through, in
/// stack order from the top (VFS) to the bottom (device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Waiting on a per-directory namespace lock ([`crate::nslock`]).
    NsLock,
    /// Waiting in the journal's `begin_op` for log-space reservation.
    LogReserve,
    /// Staging blocks into the journal's in-memory transaction
    /// (`log_write`).
    LogStage,
    /// Waiting for — or performing the non-I/O part of — a group commit,
    /// flush, or recovery replay.
    CommitWait,
    /// Block-device time: service cost and submission-queue backpressure
    /// waits ([`crate::dev`], [`crate::queue`]).
    DevIo,
}

impl Phase {
    /// Number of distinct phases.
    pub const COUNT: usize = 5;

    /// All phases, in reporting order.
    pub const ALL: [Phase; Phase::COUNT] =
        [Phase::NsLock, Phase::LogReserve, Phase::LogStage, Phase::CommitWait, Phase::DevIo];

    /// Stable label used in BENCH rows and drained traces.
    pub fn label(self) -> &'static str {
        match self {
            Phase::NsLock => "nslock",
            Phase::LogReserve => "log-reserve",
            Phase::LogStage => "log-stage",
            Phase::CommitWait => "commit-wait",
            Phase::DevIo => "dev-io",
        }
    }

    /// Index into the per-phase arrays of a [`SpanRecord`].
    pub fn index(self) -> usize {
        match self {
            Phase::NsLock => 0,
            Phase::LogReserve => 1,
            Phase::LogStage => 2,
            Phase::CommitWait => 3,
            Phase::DevIo => 4,
        }
    }
}

/// One finished span: a logical operation's end-to-end latency plus the
/// exclusive-time phase breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique operation id (monotone, assigned at span open).
    pub op_id: u64,
    /// Operation class label (an [`crate::vfs`] syscall name or a workload
    /// op-class label such as `"fsync"`).
    pub class: &'static str,
    /// The trace epoch this span was recorded under (see [`reset`]).
    pub epoch: u64,
    /// End-to-end wall time of the operation in nanoseconds.
    pub total_ns: u64,
    /// Exclusive nanoseconds attributed to each phase, indexed by
    /// [`Phase::index`].
    pub phase_ns: [u64; Phase::COUNT],
    /// How many times each phase was entered, indexed by [`Phase::index`].
    pub phase_counts: [u32; Phase::COUNT],
}

impl SpanRecord {
    /// Sum of the per-phase exclusive times (never exceeds
    /// [`SpanRecord::total_ns`] by construction, modulo clock granularity).
    pub fn attributed_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Nanoseconds not attributed to any instrumented phase (path
    /// resolution, page-cache copies, driver bookkeeping).
    pub fn other_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.attributed_ns())
    }
}

/// Capacity of each per-thread ring; oldest records are dropped (and
/// counted, see [`dropped`]) once a thread outruns the drainer.
const RING_CAPACITY: usize = 4096;

/// Count of [`enable`] guards currently alive; tracing is on while nonzero.
static ENABLED: AtomicU64 = AtomicU64::new(0);
/// Global epoch; bumped by [`reset`] to invalidate in-flight spans.
static EPOCH: AtomicU64 = AtomicU64::new(0);
/// Monotone operation-id source.
static NEXT_OP_ID: AtomicU64 = AtomicU64::new(1);

/// A per-thread ring of finished records, registered in [`rings`].
///
/// Each ring keeps its own overflow counter, so a drop storm can be
/// attributed to the thread that outran the drainer instead of vanishing
/// into a process-wide total.
struct SpanRing {
    records: Mutex<VecDeque<SpanRecord>>,
    /// Records this ring dropped to overflow since the last [`reset`].
    dropped: AtomicU64,
}

fn rings() -> &'static Mutex<Vec<Arc<SpanRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<SpanRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The span under construction on this thread.
struct ActiveSpan {
    op_id: u64,
    class: &'static str,
    epoch: u64,
    start: Instant,
    /// Instant attribution last switched phases.
    last_mark: Instant,
    /// Innermost-last stack of open phases.
    stack: Vec<Phase>,
    phase_ns: [u64; Phase::COUNT],
    phase_counts: [u32; Phase::COUNT],
}

struct Tls {
    active: Option<ActiveSpan>,
    ring: Option<Arc<SpanRing>>,
}

thread_local! {
    static TLS: RefCell<Tls> = const { RefCell::new(Tls { active: None, ring: None }) };
}

/// Whether tracing is currently enabled.  This is the entire disabled-path
/// cost of every hook: one `Relaxed` atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) != 0
}

/// RAII guard returned by [`enable`]; tracing stays on while any guard is
/// alive (guards nest — the flag is a counter, so concurrent measurement
/// windows cannot switch each other off).
#[derive(Debug)]
pub struct TraceGuard(());

impl Drop for TraceGuard {
    fn drop(&mut self) {
        ENABLED.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Turns tracing on until the returned guard is dropped.
#[must_use = "tracing turns back off when the guard drops"]
pub fn enable() -> TraceGuard {
    ENABLED.fetch_add(1, Ordering::Relaxed);
    TraceGuard(())
}

/// The current trace epoch (see [`reset`]).
pub fn epoch() -> u64 {
    EPOCH.load(Ordering::Relaxed)
}

/// Starts a new measurement window: bumps the global epoch (spans already
/// in flight are discarded when they finish), clears every ring, and zeroes
/// the overflow counter.
pub fn reset() {
    EPOCH.fetch_add(1, Ordering::Relaxed);
    for ring in rings().lock().iter() {
        ring.records.lock().clear();
        ring.dropped.store(0, Ordering::Relaxed);
    }
}

/// Records dropped to per-thread ring overflow since the last [`reset`]
/// (the sum of [`dropped_per_thread`]).
pub fn dropped() -> u64 {
    rings().lock().iter().map(|r| r.dropped.load(Ordering::Relaxed)).sum()
}

/// Per-thread drop counts since the last [`reset`], one entry per
/// registered ring (threads that never finished a span have no ring).
/// Ring order is registration order and stable for the process lifetime.
pub fn dropped_per_thread() -> Vec<u64> {
    rings().lock().iter().map(|r| r.dropped.load(Ordering::Relaxed)).collect()
}

/// Publishes the drop counters into `registry`: the total under
/// `trace.dropped_spans` and each ring's count under
/// `trace.dropped_spans.ring<N>` (only rings that dropped, to keep clean
/// snapshots small).  `set_counter` semantics — republishing refreshes.
pub fn publish_dropped(registry: &crate::registry::MetricsRegistry) {
    let per_thread = dropped_per_thread();
    registry.set_counter("trace.dropped_spans", per_thread.iter().sum());
    for (i, &n) in per_thread.iter().enumerate() {
        if n > 0 {
            registry.set_counter(&format!("trace.dropped_spans.ring{i}"), n);
        }
    }
}

/// Drains every thread's ring, returning all records finished under the
/// current epoch (oldest first per thread).
pub fn drain() -> Vec<SpanRecord> {
    let now = epoch();
    let mut out = Vec::new();
    for ring in rings().lock().iter() {
        out.extend(ring.records.lock().drain(..).filter(|r| r.epoch == now));
    }
    out
}

/// Drains every ring and returns only the `k` slowest records by total
/// latency, slowest first — the flight-recorder shape: on an alert, grab
/// the tail evidence without hauling the whole ring into the incident.
pub fn drain_slowest(k: usize) -> Vec<SpanRecord> {
    let mut all = drain();
    all.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    all.truncate(k);
    all
}

/// RAII root span for one logical operation.  Inert (all methods no-ops)
/// when tracing is disabled or another span is already active on this
/// thread — nested spans attribute to the outermost one, so a load
/// generator's per-op span subsumes the VFS syscall spans underneath it.
#[derive(Debug)]
pub struct OpSpan {
    armed: bool,
}

/// Opens a span for one logical operation of the given class.
pub fn op_span(class: &'static str) -> OpSpan {
    if !enabled() {
        return OpSpan { armed: false };
    }
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        if tls.active.is_some() {
            return OpSpan { armed: false };
        }
        let now = Instant::now();
        tls.active = Some(ActiveSpan {
            op_id: NEXT_OP_ID.fetch_add(1, Ordering::Relaxed),
            class,
            epoch: epoch(),
            start: now,
            last_mark: now,
            stack: Vec::new(),
            phase_ns: [0; Phase::COUNT],
            phase_counts: [0; Phase::COUNT],
        });
        OpSpan { armed: true }
    })
}

impl OpSpan {
    /// Whether this guard actually opened a span (tracing was enabled and
    /// no span was already active on this thread).
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Finishes the span, pushing the record into this thread's ring and
    /// returning it.  Returns `None` if the span was inert or the epoch
    /// changed mid-span ([`reset`] ran).
    pub fn finish(mut self) -> Option<SpanRecord> {
        self.finish_impl(None)
    }

    /// Like [`OpSpan::finish`] but relabels the record — for callers (the
    /// load generator) that only learn the op class after the op ran.
    pub fn finish_as(mut self, class: &'static str) -> Option<SpanRecord> {
        self.finish_impl(Some(class))
    }

    /// Discards the span without recording it (failed/aborted operations).
    pub fn cancel(mut self) {
        if self.armed {
            self.armed = false;
            TLS.with(|tls| tls.borrow_mut().active = None);
        }
    }

    fn finish_impl(&mut self, class: Option<&'static str>) -> Option<SpanRecord> {
        if !self.armed {
            return None;
        }
        self.armed = false;
        TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            let mut span = tls.active.take()?;
            // Close any phase a panicking callee failed to unwind cleanly;
            // exclusive attribution still holds.
            let now = Instant::now();
            if let Some(&inner) = span.stack.last() {
                span.phase_ns[inner.index()] +=
                    now.duration_since(span.last_mark).as_nanos() as u64;
                span.stack.clear();
            }
            if span.epoch != epoch() {
                return None;
            }
            let record = SpanRecord {
                op_id: span.op_id,
                class: class.unwrap_or(span.class),
                epoch: span.epoch,
                total_ns: now.duration_since(span.start).as_nanos() as u64,
                phase_ns: span.phase_ns,
                phase_counts: span.phase_counts,
            };
            let ring = tls.ring.get_or_insert_with(|| {
                let ring = Arc::new(SpanRing {
                    records: Mutex::new(VecDeque::with_capacity(RING_CAPACITY)),
                    dropped: AtomicU64::new(0),
                });
                rings().lock().push(Arc::clone(&ring));
                ring
            });
            let mut records = ring.records.lock();
            if records.len() == RING_CAPACITY {
                records.pop_front();
                ring.dropped.fetch_add(1, Ordering::Relaxed);
            }
            records.push_back(record);
            Some(record)
        })
    }
}

impl Drop for OpSpan {
    fn drop(&mut self) {
        self.finish_impl(None);
    }
}

/// RAII guard for one phase interval; inert when tracing is disabled or no
/// span is active on this thread.
#[derive(Debug)]
pub struct PhaseGuard {
    phase: Phase,
    armed: bool,
}

/// Enters `phase` on the current thread's active span.  Phases nest with
/// exclusive-time attribution: entering a phase pauses the enclosing one,
/// so device I/O inside a commit counts as [`Phase::DevIo`], not twice.
#[inline]
pub fn phase(phase: Phase) -> PhaseGuard {
    if !enabled() {
        return PhaseGuard { phase, armed: false };
    }
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        let Some(span) = tls.active.as_mut() else {
            return PhaseGuard { phase, armed: false };
        };
        let now = Instant::now();
        if let Some(&outer) = span.stack.last() {
            span.phase_ns[outer.index()] += now.duration_since(span.last_mark).as_nanos() as u64;
        }
        span.stack.push(phase);
        span.phase_counts[phase.index()] = span.phase_counts[phase.index()].saturating_add(1);
        span.last_mark = now;
        PhaseGuard { phase, armed: true }
    })
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            let Some(span) = tls.active.as_mut() else {
                return;
            };
            // Guards are strictly LIFO; tolerate a mismatch (span replaced
            // under us after a reset) by doing nothing.
            if span.stack.last() != Some(&self.phase) {
                return;
            }
            let now = Instant::now();
            span.phase_ns[self.phase.index()] +=
                now.duration_since(span.last_mark).as_nanos() as u64;
            span.stack.pop();
            span.last_mark = now;
        });
    }
}

/// Measures the disabled-path hook cost: the mean nanoseconds per
/// [`phase`] call while tracing is off, best (median) of five batches so a
/// scheduler preemption mid-batch on a small container does not pollute
/// the figure.  This is the number the CI `obs-smoke` gate bounds.
pub fn disabled_hook_cost_ns(calls_per_batch: u32) -> f64 {
    let mut batches: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..calls_per_batch.max(1) {
                let _g = phase(Phase::DevIo);
            }
            start.elapsed().as_nanos() as f64 / f64::from(calls_per_batch.max(1))
        })
        .collect();
    batches.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    batches[batches.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    /// The global enable flag / epoch are process-wide; tests that assert
    /// on them serialize here so `cargo test`'s parallelism cannot
    /// interleave two measurement windows.
    fn serial() -> parking_lot::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(())).lock()
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _gate = serial();
        reset();
        let span = op_span("noop");
        assert!(!span.is_armed());
        {
            let _p = phase(Phase::DevIo);
        }
        assert!(span.finish().is_none());
        assert!(drain().is_empty());
    }

    #[test]
    fn span_attributes_phases_exclusively() {
        let _gate = serial();
        let _trace = enable();
        reset();
        let span = op_span("fsync");
        {
            let _commit = phase(Phase::CommitWait);
            thread::sleep(Duration::from_millis(2));
            {
                let _dev = phase(Phase::DevIo);
                thread::sleep(Duration::from_millis(2));
            }
        }
        let rec = span.finish().expect("enabled span must record");
        assert_eq!(rec.class, "fsync");
        assert_eq!(rec.phase_counts[Phase::CommitWait.index()], 1);
        assert_eq!(rec.phase_counts[Phase::DevIo.index()], 1);
        // Exclusive attribution: the nested device interval is not also
        // counted as commit-wait, and the sum never exceeds the total.
        assert!(rec.phase_ns[Phase::DevIo.index()] >= 1_000_000);
        assert!(rec.attributed_ns() <= rec.total_ns);
        assert!(rec.other_ns() <= rec.total_ns);
        // The record is also in the ring.
        let drained = drain();
        assert!(drained.iter().any(|r| r.op_id == rec.op_id));
    }

    #[test]
    fn nested_spans_attribute_to_the_outermost() {
        let _gate = serial();
        let _trace = enable();
        reset();
        let outer = op_span("op");
        let inner = op_span("write");
        assert!(outer.is_armed());
        assert!(!inner.is_armed());
        assert!(inner.finish().is_none());
        let rec = outer.finish_as("create").expect("outer span records");
        assert_eq!(rec.class, "create", "finish_as must relabel");
        assert_eq!(drain().len(), 1, "exactly one record for nested spans");
    }

    #[test]
    fn reset_discards_in_flight_spans() {
        let _gate = serial();
        let _trace = enable();
        reset();
        let span = op_span("stale");
        reset();
        assert!(span.finish().is_none(), "span opened before reset is stale");
        assert!(drain().is_empty());
    }

    #[test]
    fn cancel_discards_and_phases_need_a_span() {
        let _gate = serial();
        let _trace = enable();
        reset();
        op_span("failed").cancel();
        {
            // No active span: phase guards are inert, not panicking.
            let _p = phase(Phase::NsLock);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts_per_thread() {
        let _gate = serial();
        let _trace = enable();
        reset();
        for _ in 0..(RING_CAPACITY + 10) {
            let span = op_span("tiny");
            span.finish();
        }
        assert_eq!(dropped(), 10);
        // The overflow is attributed to exactly one ring (this thread's),
        // and the total is the per-thread sum.
        let per_thread = dropped_per_thread();
        assert_eq!(per_thread.iter().sum::<u64>(), 10);
        assert_eq!(per_thread.iter().filter(|&&n| n > 0).count(), 1);
        // Published through the registry: total plus only the hot ring.
        let registry = crate::registry::MetricsRegistry::new();
        publish_dropped(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("trace.dropped_spans"), Some(10));
        let per_ring: Vec<u64> = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("trace.dropped_spans.ring"))
            .map(|(_, &v)| v)
            .collect();
        assert_eq!(per_ring, vec![10]);
        assert_eq!(drain().len(), RING_CAPACITY);
        reset();
        assert_eq!(dropped(), 0, "reset clears the per-ring drop counters");
    }

    #[test]
    fn drain_slowest_returns_the_tail_in_order() {
        let _gate = serial();
        let _trace = enable();
        reset();
        for i in 0..8u64 {
            let span = op_span("mixed");
            if i % 2 == 0 {
                thread::sleep(Duration::from_millis(1));
            }
            span.finish();
        }
        let slowest = drain_slowest(3);
        assert_eq!(slowest.len(), 3);
        assert!(slowest.windows(2).all(|w| w[0].total_ns >= w[1].total_ns), "slowest first");
        assert!(slowest[0].total_ns >= 1_000_000, "the slept spans dominate");
        assert!(drain().is_empty(), "drain_slowest consumes the rings");
    }

    #[test]
    fn records_merge_across_threads() {
        let _gate = serial();
        let _trace = enable();
        reset();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                thread::spawn(|| {
                    for _ in 0..8 {
                        let span = op_span("read");
                        let _p = phase(Phase::DevIo);
                        drop(_p);
                        span.finish();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let drained = drain();
        assert_eq!(drained.len(), 32);
        assert!(drained.iter().all(|r| r.phase_counts[Phase::DevIo.index()] == 1));
    }

    #[test]
    fn disabled_hook_cost_is_nanoseconds_not_microseconds() {
        let _gate = serial();
        // The CI-gated overhead bound: the disabled hook is one relaxed
        // atomic load, typically single-digit nanoseconds.  500 ns leaves
        // two orders of magnitude of headroom for a busy 1-CPU container.
        let ns = disabled_hook_cost_ns(200_000);
        assert!(ns < 500.0, "disabled trace hook costs {ns:.1} ns/call");
    }
}
