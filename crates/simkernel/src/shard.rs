//! N-way sharded concurrent maps and striped counters — the concurrency
//! substrate under the simulated kernel's hot paths.
//!
//! The Bento paper's evaluation drives every file system with up to 32
//! threads (§6.4).  A single `Mutex<HashMap>` in front of the buffer cache,
//! the page cache, or the fd table serializes *all* of those threads on one
//! cache line even when they touch disjoint keys.  This module provides the
//! standard kernel answer: hash the key into one of N independent shards,
//! each guarded by its own reader/writer lock, so operations on different
//! keys almost never contend (the same split the xv6 lineage applies to its
//! buffer cache, and what Linux does with its per-bucket locks).
//!
//! Two primitives live here:
//!
//! * [`ShardedMap`] — an N-way sharded `HashMap` with per-key operations,
//!   whole-map sweeps ([`ShardedMap::retain`], [`ShardedMap::for_each`])
//!   that lock one shard at a time, and a per-shard escape hatch
//!   ([`ShardedMap::with_shard_mut`]) for compound read-modify-write
//!   operations that must be atomic per key.
//! * [`StripedCounter`] — a statistics counter split across
//!   cache-line-padded cells so hot-path increments from different threads
//!   do not bounce one cache line between cores.
//!
//! Shard selection uses an unkeyed [`DefaultHasher`], so a key maps to the
//! same shard for the lifetime of the process — eviction and invalidation
//! sweeps can rely on that stability.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

/// Default shard count used when a knob is left at `0` ("pick for me").
///
/// Sixteen shards keep the sweep cost trivial while making contention
/// between the paper's 32 threads on *random* keys unlikely.
pub const DEFAULT_SHARDS: usize = 16;

/// Resolves a shard-count knob: `0` means [`DEFAULT_SHARDS`], anything else
/// is rounded up to the next power of two (so shard picking is a mask).
pub fn resolve_shards(requested: usize) -> usize {
    let n = if requested == 0 { DEFAULT_SHARDS } else { requested };
    n.next_power_of_two()
}

/// Aggregate statistics over a [`ShardedMap`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Total entries across all shards.
    pub entries: usize,
    /// Entries in the most loaded shard (skew diagnostic).
    pub max_shard_entries: usize,
}

/// An N-way sharded hash map: per-shard `RwLock<HashMap>`, shard chosen by
/// key hash.
///
/// All operations lock exactly one shard, except the sweeps
/// ([`ShardedMap::len`], [`ShardedMap::retain`], [`ShardedMap::for_each`],
/// [`ShardedMap::clear`], [`ShardedMap::keys`], [`ShardedMap::any`]) which
/// visit shards one at a time — they never hold more than one shard lock at
/// once, so they cannot deadlock against per-key operations.
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    mask: usize,
}

impl<K, V> std::fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap").field("shards", &self.shards.len()).finish_non_exhaustive()
    }
}

impl<K: Hash + Eq, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap::new(DEFAULT_SHARDS)
    }
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// Creates a map with `shards` shards (`0` = default; rounded up to a
    /// power of two).
    pub fn new(shards: usize) -> Self {
        let count = resolve_shards(shards);
        ShardedMap {
            shards: (0..count).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: count - 1,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a key maps to (stable for the process lifetime).
    pub fn shard_index(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) & self.mask
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        &self.shards[self.shard_index(key)]
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard(key).read().contains_key(key)
    }

    /// Clones out the value for `key`.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shard(key).read().get(key).cloned()
    }

    /// Inserts, returning the previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).write().insert(key, value)
    }

    /// Removes, returning the previous value.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).write().remove(key)
    }

    /// Returns the value for `key`, inserting `make()` under the shard's
    /// write lock if absent.  The insert is atomic per key: two racing
    /// callers observe the same value.
    pub fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> V
    where
        V: Clone,
    {
        let shard = self.shard(&key);
        if let Some(v) = shard.read().get(&key) {
            return v.clone();
        }
        shard.write().entry(key).or_insert_with(make).clone()
    }

    /// Runs `f` on the value for `key`, inserting `V::default()` first if
    /// absent.  The whole read-modify-write holds the shard's write lock.
    pub fn update_or_default<R>(&self, key: K, f: impl FnOnce(&mut V) -> R) -> R
    where
        V: Default,
    {
        f(self.shard(&key).write().entry(key).or_default())
    }

    /// Runs `f` on the shard map owning `key` under its write lock — the
    /// escape hatch for compound operations (conditional removal,
    /// decrement-and-prune) that must be atomic for that key.
    pub fn with_shard_mut<R>(&self, key: &K, f: impl FnOnce(&mut HashMap<K, V>) -> R) -> R {
        f(&mut self.shard(key).write())
    }

    /// Decrements the counter for `key` (saturating), removing the entry
    /// when it reaches zero.  Returns the remaining count (`0` when the key
    /// was absent).  The whole read-modify-remove is atomic under the
    /// owning shard's write lock — the open-handle tables of both xv6
    /// variants share this for their release paths.
    pub fn decrement_and_prune(&self, key: &K) -> V
    where
        V: Counter,
    {
        self.with_shard_mut(key, |shard| match shard.get_mut(key) {
            Some(count) => {
                *count = count.decrement();
                let remaining = *count;
                if remaining.is_zero() {
                    shard.remove(key);
                }
                remaining
            }
            None => V::ZERO,
        })
    }

    /// Total entries (locks shards one at a time; a racing insert may or
    /// may not be counted, as with any concurrent map).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Removes every entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// Keeps only entries for which `f` returns `true`, one shard at a time.
    pub fn retain(&self, mut f: impl FnMut(&K, &mut V) -> bool) {
        for shard in &self.shards {
            shard.write().retain(|k, v| f(k, v));
        }
    }

    /// Visits every entry under shared locks, one shard at a time.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                f(k, v);
            }
        }
    }

    /// Whether any entry satisfies `f` (shard-at-a-time shared locks).
    pub fn any(&self, mut f: impl FnMut(&K, &V) -> bool) -> bool {
        for shard in &self.shards {
            if shard.read().iter().any(|(k, v)| f(k, v)) {
                return true;
            }
        }
        false
    }

    /// Snapshot of all keys.
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().keys().cloned());
        }
        out
    }

    /// Aggregate statistics (entry counts per shard).
    pub fn stats(&self) -> ShardStats {
        let mut stats = ShardStats { shards: self.shards.len(), ..ShardStats::default() };
        for shard in &self.shards {
            let len = shard.read().len();
            stats.entries += len;
            stats.max_shard_entries = stats.max_shard_entries.max(len);
        }
        stats
    }
}

/// Unsigned counter values usable with
/// [`ShardedMap::decrement_and_prune`].
pub trait Counter: Copy {
    /// The zero value.
    const ZERO: Self;
    /// Saturating decrement by one.
    fn decrement(self) -> Self;
    /// Whether the value is zero.
    fn is_zero(self) -> bool;
}

macro_rules! impl_counter {
    ($($t:ty),*) => {$(
        impl Counter for $t {
            const ZERO: Self = 0;
            fn decrement(self) -> Self {
                self.saturating_sub(1)
            }
            fn is_zero(self) -> bool {
                self == 0
            }
        }
    )*};
}

impl_counter!(u32, u64, usize);

// ---------------------------------------------------------------------------
// Striped counters
// ---------------------------------------------------------------------------

/// An `AtomicU64` alone on its cache line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter striped across cache-line-padded
/// cells: increments from different threads usually hit different lines, so
/// a hot statistic does not serialize the hot path.
///
/// Reads ([`StripedCounter::get`]) sum the cells; they are exact with
/// respect to all increments that happened-before the read.
#[derive(Debug)]
pub struct StripedCounter {
    cells: Vec<PaddedU64>,
    mask: usize,
}

impl Default for StripedCounter {
    fn default() -> Self {
        StripedCounter::new(0)
    }
}

impl StripedCounter {
    /// Creates a counter with `stripes` cells (`0` = default; rounded up to
    /// a power of two).
    pub fn new(stripes: usize) -> Self {
        let count = resolve_shards(stripes);
        StripedCounter {
            cells: (0..count).map(|_| PaddedU64::default()).collect(),
            mask: count - 1,
        }
    }

    fn cell(&self) -> &AtomicU64 {
        // Derive a stable per-thread stripe from the thread id.
        thread_local! {
            static STRIPE: usize = {
                let mut hasher = DefaultHasher::new();
                std::thread::current().id().hash(&mut hasher);
                hasher.finish() as usize
            };
        }
        let stripe = STRIPE.with(|s| *s);
        &self.cells[stripe & self.mask].0
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.cell().fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sums all stripes.
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Resets the counter so that [`StripedCounter::get`] returns `value`.
    ///
    /// Not atomic with respect to concurrent increments — callers quiesce
    /// the counter first (the online-upgrade state transfer runs with the
    /// mount drained).
    pub fn reset(&self, value: u64) {
        for (i, cell) in self.cells.iter().enumerate() {
            cell.0.store(if i == 0 { value } else { 0 }, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn shard_count_is_resolved_to_powers_of_two() {
        assert_eq!(ShardedMap::<u64, u64>::new(0).shard_count(), DEFAULT_SHARDS);
        assert_eq!(ShardedMap::<u64, u64>::new(1).shard_count(), 1);
        assert_eq!(ShardedMap::<u64, u64>::new(5).shard_count(), 8);
        assert_eq!(ShardedMap::<u64, u64>::new(32).shard_count(), 32);
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let map: ShardedMap<u64, ()> = ShardedMap::new(8);
        for key in 0..1000u64 {
            let first = map.shard_index(&key);
            assert!(first < map.shard_count());
            for _ in 0..10 {
                assert_eq!(map.shard_index(&key), first, "shard index must be stable");
            }
        }
        // Keys must actually spread: with 1000 keys over 8 shards, every
        // shard should own some.
        let mut seen = vec![false; map.shard_count()];
        for key in 0..1000u64 {
            seen[map.shard_index(&key)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards should receive keys");
    }

    #[test]
    fn basic_map_operations() {
        let map: ShardedMap<u64, String> = ShardedMap::new(4);
        assert!(map.is_empty());
        assert_eq!(map.insert(1, "a".into()), None);
        assert_eq!(map.insert(1, "b".into()), Some("a".into()));
        map.insert(2, "c".into());
        assert_eq!(map.get(&1), Some("b".into()));
        assert!(map.contains_key(&2));
        assert_eq!(map.len(), 2);
        assert_eq!(map.remove(&1), Some("b".into()));
        assert_eq!(map.get(&1), None);
        map.clear();
        assert!(map.is_empty());
    }

    #[test]
    fn get_or_insert_with_is_atomic_per_key() {
        let map: Arc<ShardedMap<u64, Arc<u64>>> = Arc::new(ShardedMap::new(4));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let map = Arc::clone(&map);
            handles.push(thread::spawn(move || {
                let mut ptrs = Vec::new();
                for key in 0..64 {
                    ptrs.push(map.get_or_insert_with(key, || Arc::new(t)));
                }
                ptrs
            }));
        }
        let results: Vec<Vec<Arc<u64>>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread must have observed the same Arc per key.
        for key in 0..64usize {
            let first = &results[0][key];
            for other in &results[1..] {
                assert!(Arc::ptr_eq(first, &other[key]), "racing inserts must converge");
            }
        }
    }

    #[test]
    fn update_or_default_counts_atomically() {
        let map: Arc<ShardedMap<u32, u64>> = Arc::new(ShardedMap::new(4));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let map = Arc::clone(&map);
            handles.push(thread::spawn(move || {
                for key in 0..16u32 {
                    for _ in 0..100 {
                        map.update_or_default(key, |c| *c += 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for key in 0..16u32 {
            assert_eq!(map.get(&key), Some(800));
        }
    }

    #[test]
    fn retain_under_concurrent_insert() {
        // retain sweeps shard-by-shard while other threads keep inserting;
        // the sweep must terminate, never deadlock, and every key that was
        // present for the whole sweep and matches the predicate must
        // survive.
        let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new(8));
        for key in 0..512u64 {
            map.insert(key, key);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut writers = Vec::new();
        for t in 0..4u64 {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            writers.push(thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Insert churn keys well away from the stable range.
                    map.insert(10_000 + t * 1_000_000 + i, i);
                    i += 1;
                }
            }));
        }
        for _ in 0..50 {
            // Drop odd stable keys and all churn keys; keep even stable keys.
            map.retain(|k, _| *k < 512 && *k % 2 == 0);
            assert!(map.len() >= 256, "even stable keys must survive");
            for key in (0..512u64).step_by(2) {
                assert_eq!(map.get(&key), Some(key), "even key {key} must survive retain");
            }
            // Re-add the odd keys for the next round.
            for key in (1..512u64).step_by(2) {
                map.insert(key, key);
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn sweeps_and_stats() {
        let map: ShardedMap<u64, u64> = ShardedMap::new(4);
        for key in 0..100 {
            map.insert(key, key * 2);
        }
        let mut sum = 0u64;
        map.for_each(|_, v| sum += *v);
        assert_eq!(sum, (0..100u64).map(|k| k * 2).sum());
        assert!(map.any(|k, _| *k == 99));
        assert!(!map.any(|k, _| *k == 100));
        let stats = map.stats();
        assert_eq!(stats.entries, 100);
        assert_eq!(stats.shards, 4);
        assert!(stats.max_shard_entries >= 25);
        let mut keys = map.keys();
        keys.sort_unstable();
        assert_eq!(keys, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn decrement_and_prune_counts_down_and_removes() {
        let map: ShardedMap<u32, u32> = ShardedMap::new(4);
        map.insert(7, 2);
        assert_eq!(map.decrement_and_prune(&7), 1);
        assert_eq!(map.get(&7), Some(1));
        assert_eq!(map.decrement_and_prune(&7), 0);
        assert!(!map.contains_key(&7), "entry is pruned at zero");
        assert_eq!(map.decrement_and_prune(&7), 0, "absent key decrements to zero");
        assert_eq!(map.decrement_and_prune(&99), 0);
    }

    #[test]
    fn striped_counter_sums_across_threads() {
        let counter = Arc::new(StripedCounter::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    counter.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.get(), 80_000);
    }
}
