//! Kernel-flavoured synchronization primitives.
//!
//! The Bento paper's kernel-services API exposes kernel locks (semaphores,
//! read/write semaphores) to Rust file systems behind safe wrappers.  In the
//! simulated kernel these are thin newtypes over `parking_lot` primitives;
//! the point of keeping distinct types is that `bento::kernel` re-exports
//! *these* (the "kernel" versions) while `bento::userspace` provides
//! standard-library equivalents with the identical method surface,
//! mirroring the paper's §4.9 "same API in kernel and userspace" design.
//!
//! That mirroring is enforced, not just promised: `bento::sync_parity`
//! instantiates one generic exercise of the full method surface against
//! both faces, so renaming or removing a method here (or on the userspace
//! side) fails the `bento` build instead of silently diverging.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex, RwLock};

/// A counting semaphore in the style of the kernel's `struct semaphore`.
#[derive(Debug)]
pub struct Semaphore {
    count: Mutex<u64>,
    cond: Condvar,
}

impl Semaphore {
    /// Creates a semaphore with `count` initial permits.
    pub fn new(count: u64) -> Self {
        Semaphore { count: Mutex::new(count), cond: Condvar::new() }
    }

    /// Acquires one permit, blocking until one is available (`down`).
    pub fn down(&self) {
        let mut count = self.count.lock();
        while *count == 0 {
            self.cond.wait(&mut count);
        }
        *count -= 1;
    }

    /// Tries to acquire one permit without blocking (`down_trylock`).
    /// Returns `true` on success.
    pub fn try_down(&self) -> bool {
        let mut count = self.count.lock();
        if *count == 0 {
            false
        } else {
            *count -= 1;
            true
        }
    }

    /// Releases one permit (`up`).
    pub fn up(&self) {
        let mut count = self.count.lock();
        *count += 1;
        drop(count);
        self.cond.notify_one();
    }
}

/// A mutual exclusion lock in the style of the kernel's sleeping mutex.
///
/// This is a newtype over [`parking_lot::Mutex`]; see the module docs for why
/// it exists as a distinct type.
#[derive(Debug, Default)]
pub struct KMutex<T>(Mutex<T>);

impl<T> KMutex<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        KMutex(Mutex::new(value))
    }

    /// Locks, blocking until the lock is available.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, T> {
        self.0.lock()
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<parking_lot::MutexGuard<'_, T>> {
        self.0.try_lock()
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

/// A read/write lock in the style of the kernel's `rw_semaphore`.
#[derive(Debug, Default)]
pub struct KRwLock<T>(RwLock<T>);

impl<T> KRwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        KRwLock(RwLock::new(value))
    }

    /// Acquires a shared (read) lock (`down_read`).
    pub fn read(&self) -> parking_lot::RwLockReadGuard<'_, T> {
        self.0.read()
    }

    /// Acquires an exclusive (write) lock (`down_write`).
    pub fn write(&self) -> parking_lot::RwLockWriteGuard<'_, T> {
        self.0.write()
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

/// A monotonically increasing id generator (used for file handles, mount
/// ids, upgrade generations).
#[derive(Debug)]
pub struct IdGenerator {
    next: AtomicU64,
}

impl IdGenerator {
    /// Creates a generator whose first id is `first`.
    pub fn new(first: u64) -> Self {
        IdGenerator { next: AtomicU64::new(first) }
    }

    /// Returns the next id.
    pub fn next_id(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

impl Default for IdGenerator {
    fn default() -> Self {
        IdGenerator::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn semaphore_counts_permits() {
        let s = Semaphore::new(2);
        assert!(s.try_down());
        assert!(s.try_down());
        assert!(!s.try_down());
        s.up();
        assert!(s.try_down());
    }

    #[test]
    fn semaphore_blocks_and_wakes() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let waiter = thread::spawn(move || {
            s2.down();
            42u32
        });
        thread::sleep(std::time::Duration::from_millis(10));
        s.up();
        assert_eq!(waiter.join().unwrap(), 42);
    }

    #[test]
    fn kmutex_provides_exclusion() {
        let m = Arc::new(KMutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn krwlock_allows_concurrent_readers() {
        let l = KRwLock::new(5u32);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn id_generator_is_unique_across_threads() {
        use std::collections::HashSet;
        let g = Arc::new(IdGenerator::new(1));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = Arc::clone(&g);
            handles.push(thread::spawn(move || (0..256).map(|_| g.next_id()).collect::<Vec<_>>()));
        }
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(all.len(), 4 * 256);
    }
}
