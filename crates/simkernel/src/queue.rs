//! Completion-based multi-queue block device (the NVMe model).
//!
//! [`crate::dev::SsdDevice`] charges every write synchronously: the calling
//! thread pays the full service latency before the call returns, so a log
//! commit that copies N payload blocks pays N × `block_write_ns` even though
//! a real NVMe drive would service those writes from its submission queues
//! concurrently.  [`MultiQueueDevice`] models that concurrency:
//!
//! * **Submission/completion queue pairs.**  The device exposes
//!   [`QueueConfig::num_queues`] independent queue pairs (real drivers
//!   allocate one pair per CPU; callers pick one with
//!   [`QueuedBlockDevice::preferred_queue`], which hashes the thread id).
//! * **Queue depth.**  Each pair admits up to [`QueueConfig::queue_depth`]
//!   outstanding requests; submission applies backpressure once the queue
//!   is full, exactly like ringing a full NVMe submission doorbell.
//! * **Overlapped cost charging.**  Each request's service time is charged
//!   against a per-queue set of parallel service channels (one per queue
//!   slot): a request completes at `max(now, earliest-free-channel) +
//!   block_write_ns` of *wall-clock* time, so a batch of B writes at depth D
//!   takes ≈ ⌈B/D⌉ service times instead of B — in-flight requests overlap
//!   instead of summing serially.  Accounting still records the full
//!   per-request service time in [`CostCounters`] (device busy time), and
//!   the in-flight depth gauge ([`CostCounters::io_submitted`]) makes the
//!   overlap observable even on the 1-CPU container.
//! * **Interrupt vs. poll completion.**  Waiting for completions either
//!   sleeps until the completion deadline ([`CompletionMode::Interrupt`],
//!   yielding the CPU like an IRQ-driven driver) or spins on the clock
//!   ([`CompletionMode::Poll`], lower wakeup jitter at the cost of burning
//!   the core, like `io_uring` IOPOLL / NVMe polled queues).
//!
//! **Write visibility and ordering.**  Submitted writes are stored through
//! to the inner device *at submission time*, in submission order — the
//! device's volatile write cache accepts the data immediately; only the
//! *latency* of the service is deferred to completion.  Reads therefore
//! always see submitted writes (read-your-writes, as with
//! [`crate::dev::SsdDevice`]), and a fault-injection recorder layered
//! *below* this device observes queued writes in submission order,
//! partitioned into the same barrier epochs a synchronous device would
//! produce: [`BlockDevice::flush`] drains every queue before flushing the
//! inner device, so no submitted write can cross a barrier.
//!
//! Durability is unchanged: nothing is durable until a flush, and a flush is
//! a full barrier (drain + inner FLUSH + flush cost proportional to dirty
//! blocks).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::cost::{CostCounters, CostKind, CostModel};
use crate::dev::{BlockDevice, DeviceStats, RamDisk};
use crate::error::{Errno, KernelError, KernelResult};

/// How a waiter learns about completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionMode {
    /// Sleep until the completion deadline (IRQ-driven driver: the CPU is
    /// released while the device works).
    Interrupt,
    /// Spin on the clock until the deadline (polled queues: lower latency
    /// jitter, burns the core).
    Poll,
}

/// Geometry and behaviour of a [`MultiQueueDevice`].
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Number of submission/completion queue pairs.
    pub num_queues: usize,
    /// Outstanding requests admitted per queue pair before submission
    /// blocks (and the service parallelism each pair enjoys).
    pub queue_depth: usize,
    /// How waiters learn about completions.
    pub completion: CompletionMode,
}

impl QueueConfig {
    /// A config with `num_queues` pairs of depth `queue_depth`,
    /// interrupt-driven completion.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(num_queues: usize, queue_depth: usize) -> Self {
        assert!(num_queues > 0, "QueueConfig: num_queues must be nonzero");
        assert!(queue_depth > 0, "QueueConfig: queue_depth must be nonzero");
        QueueConfig { num_queues, queue_depth, completion: CompletionMode::Interrupt }
    }

    /// Switches to polled completion (builder style).
    #[must_use]
    pub fn polled(mut self) -> Self {
        self.completion = CompletionMode::Poll;
        self
    }
}

impl Default for QueueConfig {
    /// Four queue pairs of depth 32, interrupt completion.
    fn default() -> Self {
        QueueConfig::new(4, 32)
    }
}

/// Ticket identifying one submitted request.
pub type RequestId = u64;

/// The asynchronous face of a queued block device, alongside the
/// synchronous [`BlockDevice`] it also implements.  Obtained via
/// [`BlockDevice::as_queued`].
pub trait QueuedBlockDevice: BlockDevice {
    /// Number of submission/completion queue pairs.
    fn queue_count(&self) -> usize;

    /// Outstanding requests admitted per queue pair.
    fn queue_depth(&self) -> usize;

    /// How completion waits behave.
    fn completion_mode(&self) -> CompletionMode;

    /// Submits a write of `data` to `blockno` on queue `queue` and returns
    /// its ticket without waiting for the service latency.  The data is
    /// accepted by the device write cache immediately (reads see it);
    /// durability still requires a [`BlockDevice::flush`].  Blocks only
    /// when the queue is at [`QueuedBlockDevice::queue_depth`] outstanding
    /// requests.
    ///
    /// # Errors
    ///
    /// [`Errno::Inval`] for an out-of-range queue, block number, or buffer
    /// length; propagates inner device errors.
    fn submit_write(&self, queue: usize, blockno: u64, data: &[u8]) -> KernelResult<RequestId>;

    /// Submits a batch of writes to one queue (one doorbell ring for the
    /// lot) and returns their tickets.
    ///
    /// # Errors
    ///
    /// As [`QueuedBlockDevice::submit_write`]; on error, writes before the
    /// failing one were submitted.
    fn submit_write_batch(
        &self,
        queue: usize,
        writes: &[(u64, &[u8])],
    ) -> KernelResult<Vec<RequestId>> {
        let mut ids = Vec::with_capacity(writes.len());
        for &(blockno, data) in writes {
            ids.push(self.submit_write(queue, blockno, data)?);
        }
        Ok(ids)
    }

    /// Reaps every request on `queue` whose service has finished,
    /// returning their tickets.  Never blocks (the poll path).
    fn poll_completions(&self, queue: usize) -> Vec<RequestId>;

    /// Waits until every outstanding request on `queue` has completed
    /// (interrupt mode sleeps, poll mode spins).
    ///
    /// # Errors
    ///
    /// [`Errno::Inval`] for an out-of-range queue.
    fn drain_queue(&self, queue: usize) -> KernelResult<()>;

    /// The cost counters this device charges into (service time plus the
    /// in-flight depth statistics).
    fn cost_counters(&self) -> Arc<CostCounters>;

    /// The queue the calling thread should submit to: a stable hash of the
    /// thread id, modelling per-CPU queue assignment.
    fn preferred_queue(&self) -> usize {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        (hasher.finish() as usize) % self.queue_count().max(1)
    }
}

/// One in-flight request: ticket and virtual completion deadline.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: RequestId,
    completes_at: Instant,
}

/// Mutable state of one queue pair.
#[derive(Debug)]
struct QueueState {
    /// Busy-until instant of each parallel service channel (one per queue
    /// slot); a new request starts on the earliest-free channel.
    channels: Vec<Instant>,
    inflight: Vec<InFlight>,
}

#[derive(Debug)]
struct QueuePair {
    state: Mutex<QueueState>,
}

#[derive(Debug, Default)]
struct QueueDevStats {
    reads: AtomicU64,
    writes: AtomicU64,
    flushes: AtomicU64,
}

/// A latency-modelled NVMe-style device with submission/completion queue
/// pairs (see the module docs for the model).
pub struct MultiQueueDevice {
    inner: Arc<dyn BlockDevice>,
    model: CostModel,
    config: QueueConfig,
    counters: Arc<CostCounters>,
    queues: Vec<QueuePair>,
    next_id: AtomicU64,
    dirty_since_flush: AtomicU64,
    stats: QueueDevStats,
}

impl std::fmt::Debug for MultiQueueDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiQueueDevice")
            .field("num_blocks", &self.inner.num_blocks())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl MultiQueueDevice {
    /// Wraps `inner` with latency model `model` and queue geometry `config`.
    pub fn new(inner: Arc<dyn BlockDevice>, model: CostModel, config: QueueConfig) -> Self {
        let now = Instant::now();
        let queues = (0..config.num_queues)
            .map(|_| QueuePair {
                state: Mutex::new(QueueState {
                    channels: vec![now; config.queue_depth],
                    inflight: Vec::with_capacity(config.queue_depth),
                }),
            })
            .collect();
        MultiQueueDevice {
            inner,
            model,
            config,
            counters: Arc::new(CostCounters::new()),
            queues,
            next_id: AtomicU64::new(1),
            dirty_since_flush: AtomicU64::new(0),
            stats: QueueDevStats::default(),
        }
    }

    /// Convenience constructor: a RAM-backed queued device of `num_blocks`
    /// 4 KiB blocks.
    pub fn ram_backed(num_blocks: u64, model: CostModel, config: QueueConfig) -> Self {
        MultiQueueDevice::new(Arc::new(RamDisk::new(4096, num_blocks)), model, config)
    }

    /// The cost counters shared with the model.
    pub fn counters(&self) -> Arc<CostCounters> {
        Arc::clone(&self.counters)
    }

    /// The latency model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The per-request service time used for virtual completion deadlines.
    /// With delay injection off (unit tests) every request completes
    /// immediately; accounting still records the modelled service time.
    fn service_ns(&self) -> u64 {
        if self.model.inject_delays {
            self.model.block_write_ns
        } else {
            0
        }
    }

    fn pair(&self, queue: usize) -> KernelResult<&QueuePair> {
        self.queues
            .get(queue)
            .ok_or_else(|| KernelError::with_context(Errno::Inval, "queue index out of range"))
    }

    /// Reaps finished requests under the queue lock, updating the depth
    /// gauge; returns their tickets.
    fn reap_locked(&self, state: &mut QueueState) -> Vec<RequestId> {
        let now = Instant::now();
        let mut done = Vec::new();
        state.inflight.retain(|req| {
            if req.completes_at <= now {
                done.push(req.id);
                false
            } else {
                true
            }
        });
        for _ in &done {
            self.counters.io_completed();
        }
        done
    }

    /// Waits until `deadline` per the configured completion mode.
    fn wait_until(&self, deadline: Instant) {
        match self.config.completion {
            CompletionMode::Interrupt => {
                let now = Instant::now();
                if deadline > now {
                    std::thread::sleep(deadline - now);
                }
            }
            CompletionMode::Poll => {
                while Instant::now() < deadline {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

impl BlockDevice for MultiQueueDevice {
    fn block_size(&self) -> u32 {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&self, blockno: u64, buf: &mut [u8]) -> KernelResult<()> {
        // Reads are synchronous (a buffer-cache miss blocks the caller on a
        // real drive too).
        let _io = crate::trace::phase(crate::trace::Phase::DevIo);
        self.inner.read_block(blockno, buf)?;
        self.model.charge(&self.counters, CostKind::DeviceRead, self.model.block_read_ns);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_block(&self, blockno: u64, buf: &[u8]) -> KernelResult<()> {
        // The synchronous path behaves exactly like SsdDevice (depth-1
        // service), so non-batched writers see identical costs on both
        // device models; only explicit queued submission overlaps.
        let _io = crate::trace::phase(crate::trace::Phase::DevIo);
        self.inner.write_block(blockno, buf)?;
        self.dirty_since_flush.fetch_add(1, Ordering::Relaxed);
        self.counters.io_submitted();
        self.model.charge(&self.counters, CostKind::DeviceWrite, self.model.block_write_ns);
        self.counters.io_completed();
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn flush(&self) -> KernelResult<()> {
        // A barrier drains every queue pair first: no submitted write may
        // cross a FLUSH, which is what keeps crashsim's barrier-epoch
        // partitioning sound on queued devices.
        let _io = crate::trace::phase(crate::trace::Phase::DevIo);
        for queue in 0..self.queues.len() {
            self.drain_queue(queue)?;
        }
        self.inner.flush()?;
        let dirty = self.dirty_since_flush.swap(0, Ordering::Relaxed);
        let cost = self.model.flush_base_ns + dirty * self.model.flush_per_dirty_block_ns;
        self.model.charge(&self.counters, CostKind::DeviceFlush, cost);
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        DeviceStats {
            reads: self.stats.reads.load(Ordering::Relaxed),
            writes: self.stats.writes.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
        }
    }

    fn as_queued(&self) -> Option<&dyn QueuedBlockDevice> {
        Some(self)
    }
}

impl QueuedBlockDevice for MultiQueueDevice {
    fn queue_count(&self) -> usize {
        self.config.num_queues
    }

    fn queue_depth(&self) -> usize {
        self.config.queue_depth
    }

    fn completion_mode(&self) -> CompletionMode {
        self.config.completion
    }

    fn submit_write(&self, queue: usize, blockno: u64, data: &[u8]) -> KernelResult<RequestId> {
        // Submission covers the store-through plus any full-queue
        // backpressure wait — both are device time to the submitting op.
        let _io = crate::trace::phase(crate::trace::Phase::DevIo);
        let pair = self.pair(queue)?;
        // Store through at submission time: the write cache accepts the
        // data now (and a recorder below sees submission order); only the
        // service latency is deferred to completion.
        self.inner.write_block(blockno, data)?;
        self.dirty_since_flush.fetch_add(1, Ordering::Relaxed);
        self.counters.record(CostKind::DeviceWrite, self.model.block_write_ns);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let service = std::time::Duration::from_nanos(self.service_ns());
        loop {
            let mut state = pair.state.lock();
            self.reap_locked(&mut state);
            if state.inflight.len() < self.config.queue_depth {
                let now = Instant::now();
                // Earliest-free service channel.
                let (slot, busy_until) = state
                    .channels
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by_key(|&(_, t)| t)
                    .expect("queue_depth is nonzero");
                let completes_at = busy_until.max(now) + service;
                state.channels[slot] = completes_at;
                state.inflight.push(InFlight { id, completes_at });
                self.counters.io_submitted();
                return Ok(id);
            }
            // Queue full: completions are purely time-driven, so waiting
            // until the earliest deadline is guaranteed to free a slot.
            let earliest = state
                .inflight
                .iter()
                .map(|req| req.completes_at)
                .min()
                .expect("full queue is nonempty");
            drop(state);
            self.wait_until(earliest);
        }
    }

    fn poll_completions(&self, queue: usize) -> Vec<RequestId> {
        match self.pair(queue) {
            Ok(pair) => {
                let mut state = pair.state.lock();
                self.reap_locked(&mut state)
            }
            Err(_) => Vec::new(),
        }
    }

    fn drain_queue(&self, queue: usize) -> KernelResult<()> {
        let _io = crate::trace::phase(crate::trace::Phase::DevIo);
        let pair = self.pair(queue)?;
        loop {
            let deadline = {
                let mut state = pair.state.lock();
                self.reap_locked(&mut state);
                match state.inflight.iter().map(|req| req.completes_at).max() {
                    None => return Ok(()),
                    Some(deadline) => deadline,
                }
            };
            self.wait_until(deadline);
        }
    }

    fn cost_counters(&self) -> Arc<CostCounters> {
        Arc::clone(&self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pattern(b: u8) -> Vec<u8> {
        vec![b; 4096]
    }

    fn zero_dev(depth: usize) -> MultiQueueDevice {
        MultiQueueDevice::ram_backed(128, CostModel::zero(), QueueConfig::new(2, depth))
    }

    #[test]
    fn submitted_writes_are_immediately_readable() {
        let dev = zero_dev(8);
        dev.submit_write(0, 5, &pattern(0xAA)).unwrap();
        let mut buf = vec![0u8; 4096];
        dev.read_block(5, &mut buf).unwrap();
        assert_eq!(buf, pattern(0xAA), "read-your-writes across submission");
        dev.drain_queue(0).unwrap();
    }

    #[test]
    fn batch_submission_returns_a_ticket_per_write() {
        let dev = zero_dev(8);
        let a = pattern(1);
        let b = pattern(2);
        let writes: Vec<(u64, &[u8])> = vec![(10, a.as_slice()), (11, b.as_slice())];
        let ids = dev.submit_write_batch(0, &writes).unwrap();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
        dev.drain_queue(0).unwrap();
        let snap = dev.counters().snapshot();
        assert_eq!(snap.writes, 2);
        assert!(snap.max_inflight >= 1);
    }

    #[test]
    fn flush_drains_all_queues_and_charges_dirty_cost() {
        let model = CostModel {
            flush_base_ns: 100,
            flush_per_dirty_block_ns: 10,
            inject_delays: false,
            ..CostModel::zero()
        };
        let dev = MultiQueueDevice::ram_backed(64, model, QueueConfig::new(2, 4));
        dev.submit_write(0, 1, &pattern(1)).unwrap();
        dev.submit_write(1, 2, &pattern(2)).unwrap();
        dev.write_block(3, &pattern(3)).unwrap();
        dev.flush().unwrap();
        let snap = dev.counters().snapshot();
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.total_ns, 100 + 3 * 10);
        assert_eq!(dev.counters().inflight_now(), 0, "flush drained every queue");
    }

    #[test]
    fn depth_overlaps_service_time() {
        // 8 writes of 2 ms each: serial cost 16 ms, depth-8 cost ≈ 2 ms.
        // Assert the overlapped wall clock stays well under half serial.
        let model =
            CostModel { block_write_ns: 2_000_000, inject_delays: true, ..CostModel::zero() };
        let dev = MultiQueueDevice::ram_backed(64, model, QueueConfig::new(1, 8));
        let data = pattern(7);
        let writes: Vec<(u64, &[u8])> = (0..8u64).map(|i| (i, data.as_slice())).collect();
        let start = Instant::now();
        dev.submit_write_batch(0, &writes).unwrap();
        dev.drain_queue(0).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(2), "service time still paid: {elapsed:?}");
        assert!(elapsed < Duration::from_millis(8), "depth-8 batch must overlap: {elapsed:?}");
        let snap = dev.counters().snapshot();
        assert_eq!(snap.max_inflight, 8, "all eight in flight at once");
        assert_eq!(snap.total_ns, 8 * 2_000_000, "busy time accounts every request");
    }

    #[test]
    fn queue_depth_one_serializes() {
        let model =
            CostModel { block_write_ns: 1_000_000, inject_delays: true, ..CostModel::zero() };
        let dev = MultiQueueDevice::ram_backed(64, model, QueueConfig::new(1, 1));
        let data = pattern(9);
        let writes: Vec<(u64, &[u8])> = (0..4u64).map(|i| (i, data.as_slice())).collect();
        let start = Instant::now();
        dev.submit_write_batch(0, &writes).unwrap();
        dev.drain_queue(0).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(4), "depth 1 sums serially: {elapsed:?}");
        assert_eq!(dev.counters().snapshot().max_inflight, 1);
    }

    #[test]
    fn polled_completion_drains_too() {
        let model = CostModel { block_write_ns: 200_000, inject_delays: true, ..CostModel::zero() };
        let dev = MultiQueueDevice::ram_backed(64, model, QueueConfig::new(1, 4).polled());
        assert_eq!(dev.completion_mode(), CompletionMode::Poll);
        dev.submit_write(0, 1, &pattern(1)).unwrap();
        dev.submit_write(0, 2, &pattern(2)).unwrap();
        dev.drain_queue(0).unwrap();
        assert_eq!(dev.counters().inflight_now(), 0);
    }

    #[test]
    fn poll_completions_reaps_finished_requests() {
        let dev = zero_dev(4);
        // Zero model: the request completes immediately, so the first poll
        // reaps it and the second finds the queue empty.  (A second submit
        // would already reap the first internally while looking for a slot,
        // which is also legal driver behaviour.)
        let a = dev.submit_write(0, 1, &pattern(1)).unwrap();
        assert_eq!(dev.poll_completions(0), vec![a]);
        assert!(dev.poll_completions(0).is_empty());
    }

    #[test]
    fn invalid_queue_and_block_are_rejected() {
        let dev = zero_dev(4);
        assert_eq!(dev.submit_write(9, 0, &pattern(0)).unwrap_err().errno(), Errno::Inval);
        assert_eq!(dev.submit_write(0, 10_000, &pattern(0)).unwrap_err().errno(), Errno::Inval);
        assert_eq!(dev.drain_queue(9).unwrap_err().errno(), Errno::Inval);
        assert!(dev.poll_completions(9).is_empty());
    }

    #[test]
    fn as_queued_exposes_the_trait() {
        let dev: Arc<dyn BlockDevice> = Arc::new(zero_dev(4));
        let q = dev.as_queued().expect("MultiQueueDevice is queued");
        assert_eq!(q.queue_count(), 2);
        assert_eq!(q.queue_depth(), 4);
        assert!(q.preferred_queue() < 2);
        // And the synchronous face still rejects a queued view on RamDisk.
        let ram: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096, 8));
        assert!(ram.as_queued().is_none());
    }

    #[test]
    fn backpressure_blocks_at_queue_depth() {
        let model =
            CostModel { block_write_ns: 1_000_000, inject_delays: true, ..CostModel::zero() };
        let dev = MultiQueueDevice::ram_backed(64, model, QueueConfig::new(1, 2));
        let data = pattern(3);
        let start = Instant::now();
        // Third submit must wait for a slot (~1 ms).
        dev.submit_write(0, 0, &data).unwrap();
        dev.submit_write(0, 1, &data).unwrap();
        dev.submit_write(0, 2, &data).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(1), "backpressure applied");
        assert!(dev.counters().snapshot().max_inflight <= 2);
        dev.drain_queue(0).unwrap();
    }
}
