//! Block devices.
//!
//! The simulated kernel exposes storage through the [`BlockDevice`] trait,
//! mirroring the role of the Linux block layer underneath a file system's
//! buffer cache.  Two implementations are provided:
//!
//! * [`RamDisk`] — a plain in-memory device with no latency, used by unit
//!   tests and as the backing store for [`SsdDevice`];
//! * [`SsdDevice`] — wraps an inner device and applies a [`CostModel`]
//!   (per-block read/write latency, a volatile write cache, and FLUSH cost
//!   proportional to the number of dirty cached blocks).  This is the stand-in
//!   for the paper's Samsung PM981 NVMe SSD.
//!
//! A third adapter, [`FaultInjectingDevice`], can be layered on top of either
//! to fail or crash-stop the device at a chosen point; the crash-recovery
//! tests for the xv6 log use it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::cost::{CostCounters, CostKind, CostModel};
use crate::error::{Errno, KernelError, KernelResult};

/// Interface to a block device.
///
/// All offsets are in units of whole blocks of [`BlockDevice::block_size`]
/// bytes.  Implementations must be safe to call concurrently from many
/// threads.
pub trait BlockDevice: Send + Sync {
    /// Size of one block in bytes (the simulated stack uses 4096 throughout).
    fn block_size(&self) -> u32;

    /// Number of addressable blocks.
    fn num_blocks(&self) -> u64;

    /// Reads block `blockno` into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Inval`] if `buf` is not exactly one block long or
    /// `blockno` is out of range, and [`Errno::Io`] on injected device
    /// failure.
    fn read_block(&self, blockno: u64, buf: &mut [u8]) -> KernelResult<()>;

    /// Writes `buf` to block `blockno`.
    ///
    /// Data written is only durable after a subsequent [`BlockDevice::flush`]
    /// (devices are modelled with a volatile write cache, like a real NVMe
    /// drive).
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Inval`] if `buf` is not exactly one block long or
    /// `blockno` is out of range, and [`Errno::Io`] on injected device
    /// failure.
    fn write_block(&self, blockno: u64, buf: &[u8]) -> KernelResult<()>;

    /// Flushes the device's volatile write cache (a FLUSH barrier).
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Io`] on injected device failure.
    fn flush(&self) -> KernelResult<()>;

    /// Returns cumulative I/O statistics for this device.
    fn stats(&self) -> DeviceStats;

    /// Returns the asynchronous multi-queue face of this device, if it has
    /// one (see [`crate::queue::QueuedBlockDevice`]).  Synchronous devices
    /// return `None`; callers such as the write-ahead logs use this to
    /// opt into batch submission and overlapped completion when — and only
    /// when — the mounted device supports it.
    fn as_queued(&self) -> Option<&dyn crate::queue::QueuedBlockDevice> {
        None
    }
}

/// Cumulative I/O statistics reported by a device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Blocks read.
    pub reads: u64,
    /// Blocks written.
    pub writes: u64,
    /// Flush commands processed.
    pub flushes: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    reads: AtomicU64,
    writes: AtomicU64,
    flushes: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> DeviceStats {
        DeviceStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }
}

fn check_args(dev: &dyn BlockDevice, blockno: u64, len: usize) -> KernelResult<()> {
    if len != dev.block_size() as usize {
        return Err(KernelError::with_context(Errno::Inval, "block buffer has wrong length"));
    }
    if blockno >= dev.num_blocks() {
        return Err(KernelError::with_context(Errno::Inval, "block number out of range"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// RamDisk
// ---------------------------------------------------------------------------

/// An in-memory block device with no modelled latency.
///
/// Storage is sharded to keep lock contention low under the 32-thread
/// benchmark configurations.
pub struct RamDisk {
    block_size: u32,
    num_blocks: u64,
    shards: Vec<RwLock<Vec<u8>>>,
    blocks_per_shard: u64,
    stats: StatCells,
}

impl std::fmt::Debug for RamDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RamDisk")
            .field("block_size", &self.block_size)
            .field("num_blocks", &self.num_blocks)
            .finish_non_exhaustive()
    }
}

impl RamDisk {
    /// Number of shards the backing storage is split into.
    const SHARDS: u64 = 64;

    /// Creates a RAM disk of `num_blocks` blocks of `block_size` bytes,
    /// zero-filled.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero or `num_blocks` is zero.
    pub fn new(block_size: u32, num_blocks: u64) -> Self {
        assert!(block_size > 0, "block_size must be nonzero");
        assert!(num_blocks > 0, "num_blocks must be nonzero");
        let blocks_per_shard = num_blocks.div_ceil(Self::SHARDS);
        let mut shards = Vec::new();
        let mut remaining = num_blocks;
        while remaining > 0 {
            let in_this = remaining.min(blocks_per_shard);
            shards.push(RwLock::new(vec![0u8; (in_this * block_size as u64) as usize]));
            remaining -= in_this;
        }
        RamDisk { block_size, num_blocks, shards, blocks_per_shard, stats: StatCells::default() }
    }

    fn locate(&self, blockno: u64) -> (usize, usize) {
        let shard = (blockno / self.blocks_per_shard) as usize;
        let offset = ((blockno % self.blocks_per_shard) * self.block_size as u64) as usize;
        (shard, offset)
    }
}

impl BlockDevice for RamDisk {
    fn block_size(&self) -> u32 {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn read_block(&self, blockno: u64, buf: &mut [u8]) -> KernelResult<()> {
        check_args(self, blockno, buf.len())?;
        let (shard, offset) = self.locate(blockno);
        let guard = self.shards[shard].read();
        buf.copy_from_slice(&guard[offset..offset + self.block_size as usize]);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_block(&self, blockno: u64, buf: &[u8]) -> KernelResult<()> {
        check_args(self, blockno, buf.len())?;
        let (shard, offset) = self.locate(blockno);
        let mut guard = self.shards[shard].write();
        guard[offset..offset + self.block_size as usize].copy_from_slice(buf);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn flush(&self) -> KernelResult<()> {
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.stats.snapshot()
    }
}

// ---------------------------------------------------------------------------
// SsdDevice
// ---------------------------------------------------------------------------

/// A latency-modelled SSD wrapping an inner block device.
///
/// Writes land in a modelled volatile write cache (the data itself is stored
/// through to the inner device immediately so reads see it, but durability is
/// only guaranteed after [`BlockDevice::flush`]).  The number of blocks dirty
/// in the write cache determines the cost of the next flush, mirroring how a
/// real NVMe FLUSH scales with outstanding data.
pub struct SsdDevice {
    inner: Arc<dyn BlockDevice>,
    model: CostModel,
    counters: Arc<CostCounters>,
    dirty_since_flush: AtomicU64,
    stats: StatCells,
}

impl std::fmt::Debug for SsdDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsdDevice")
            .field("num_blocks", &self.inner.num_blocks())
            .field("model", &self.model)
            .finish_non_exhaustive()
    }
}

impl SsdDevice {
    /// Wraps `inner` with latency model `model`.
    pub fn new(inner: Arc<dyn BlockDevice>, model: CostModel) -> Self {
        SsdDevice {
            inner,
            model,
            counters: Arc::new(CostCounters::new()),
            dirty_since_flush: AtomicU64::new(0),
            stats: StatCells::default(),
        }
    }

    /// Convenience constructor: a RAM-backed SSD of `num_blocks` 4 KiB blocks.
    pub fn ram_backed(num_blocks: u64, model: CostModel) -> Self {
        SsdDevice::new(Arc::new(RamDisk::new(4096, num_blocks)), model)
    }

    /// The cost counters shared with the model (useful for experiment
    /// reporting).
    pub fn counters(&self) -> Arc<CostCounters> {
        Arc::clone(&self.counters)
    }

    /// The latency model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Number of blocks written since the last flush.
    pub fn dirty_blocks(&self) -> u64 {
        self.dirty_since_flush.load(Ordering::Relaxed)
    }
}

impl BlockDevice for SsdDevice {
    fn block_size(&self) -> u32 {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&self, blockno: u64, buf: &mut [u8]) -> KernelResult<()> {
        let _io = crate::trace::phase(crate::trace::Phase::DevIo);
        self.inner.read_block(blockno, buf)?;
        self.model.charge(&self.counters, CostKind::DeviceRead, self.model.block_read_ns);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_block(&self, blockno: u64, buf: &[u8]) -> KernelResult<()> {
        let _io = crate::trace::phase(crate::trace::Phase::DevIo);
        self.inner.write_block(blockno, buf)?;
        self.dirty_since_flush.fetch_add(1, Ordering::Relaxed);
        // Sample the in-flight depth gauge around the synchronous charge so
        // the depth statistics are comparable across device models (a
        // synchronous SSD is a depth-1 device by construction).
        self.counters.io_submitted();
        self.model.charge(&self.counters, CostKind::DeviceWrite, self.model.block_write_ns);
        self.counters.io_completed();
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn flush(&self) -> KernelResult<()> {
        let _io = crate::trace::phase(crate::trace::Phase::DevIo);
        self.inner.flush()?;
        let dirty = self.dirty_since_flush.swap(0, Ordering::Relaxed);
        let cost = self.model.flush_base_ns + dirty * self.model.flush_per_dirty_block_ns;
        self.model.charge(&self.counters, CostKind::DeviceFlush, cost);
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.stats.snapshot()
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// What the fault injector should do once triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fail every I/O with `EIO` after the trigger point.
    FailIo,
    /// Silently drop writes after the trigger point (a crash-stop: reads of
    /// previously written data still succeed, new writes are lost).
    DropWrites,
}

/// A block device adapter that injects failures after a configured number of
/// writes, used by crash-recovery and error-path tests.
pub struct FaultInjectingDevice {
    inner: Arc<dyn BlockDevice>,
    mode: FaultMode,
    writes_until_fault: AtomicU64,
    tripped: AtomicBool,
    /// Writes dropped while tripped in `DropWrites` mode.
    dropped: AtomicU64,
    lock: Mutex<()>,
}

impl std::fmt::Debug for FaultInjectingDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjectingDevice")
            .field("mode", &self.mode)
            .field("tripped", &self.tripped.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FaultInjectingDevice {
    /// Wraps `inner`; the fault trips after `writes_until_fault` successful
    /// writes.
    pub fn new(inner: Arc<dyn BlockDevice>, mode: FaultMode, writes_until_fault: u64) -> Self {
        FaultInjectingDevice {
            inner,
            mode,
            writes_until_fault: AtomicU64::new(writes_until_fault),
            tripped: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            lock: Mutex::new(()),
        }
    }

    /// Returns whether the fault has tripped.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    /// Manually trips the fault now.
    pub fn trip_now(&self) {
        self.tripped.store(true, Ordering::Relaxed);
    }

    /// Clears the fault (e.g. to simulate the device coming back after a
    /// crash, for recovery testing).
    pub fn clear(&self) {
        self.tripped.store(false, Ordering::Relaxed);
        self.writes_until_fault.store(u64::MAX, Ordering::Relaxed);
    }

    /// Number of writes dropped while tripped in [`FaultMode::DropWrites`].
    pub fn dropped_writes(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl BlockDevice for FaultInjectingDevice {
    fn block_size(&self) -> u32 {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&self, blockno: u64, buf: &mut [u8]) -> KernelResult<()> {
        if self.tripped() && self.mode == FaultMode::FailIo {
            return Err(KernelError::with_context(Errno::Io, "injected device read failure"));
        }
        self.inner.read_block(blockno, buf)
    }

    fn write_block(&self, blockno: u64, buf: &[u8]) -> KernelResult<()> {
        let _serial = self.lock.lock();
        if self.tripped() {
            return match self.mode {
                FaultMode::FailIo => {
                    Err(KernelError::with_context(Errno::Io, "injected device write failure"))
                }
                FaultMode::DropWrites => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
            };
        }
        let remaining = self.writes_until_fault.load(Ordering::Relaxed);
        if remaining == 0 {
            self.tripped.store(true, Ordering::Relaxed);
            return self.write_block_tripped(blockno, buf);
        }
        self.writes_until_fault.store(remaining - 1, Ordering::Relaxed);
        self.inner.write_block(blockno, buf)
    }

    fn flush(&self) -> KernelResult<()> {
        if self.tripped() && self.mode == FaultMode::FailIo {
            return Err(KernelError::with_context(Errno::Io, "injected device flush failure"));
        }
        self.inner.flush()
    }

    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }
}

impl FaultInjectingDevice {
    fn write_block_tripped(&self, blockno: u64, buf: &[u8]) -> KernelResult<()> {
        match self.mode {
            FaultMode::FailIo => {
                Err(KernelError::with_context(Errno::Io, "injected device write failure"))
            }
            FaultMode::DropWrites => {
                let _ = (blockno, buf);
                self.dropped.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(b: u8) -> Vec<u8> {
        vec![b; 4096]
    }

    #[test]
    fn ramdisk_roundtrip() {
        let d = RamDisk::new(4096, 100);
        d.write_block(0, &pattern(1)).unwrap();
        d.write_block(99, &pattern(2)).unwrap();
        let mut buf = vec![0u8; 4096];
        d.read_block(0, &mut buf).unwrap();
        assert_eq!(buf, pattern(1));
        d.read_block(99, &mut buf).unwrap();
        assert_eq!(buf, pattern(2));
        d.read_block(50, &mut buf).unwrap();
        assert_eq!(buf, pattern(0));
    }

    #[test]
    fn ramdisk_rejects_bad_args() {
        let d = RamDisk::new(4096, 10);
        let mut small = vec![0u8; 512];
        assert_eq!(d.read_block(0, &mut small).unwrap_err().errno(), Errno::Inval);
        assert_eq!(d.write_block(10, &pattern(0)).unwrap_err().errno(), Errno::Inval);
        assert_eq!(d.write_block(u64::MAX, &pattern(0)).unwrap_err().errno(), Errno::Inval);
    }

    #[test]
    fn ramdisk_sharding_covers_all_blocks() {
        // A size that does not divide evenly by the shard count.
        let d = RamDisk::new(4096, 130);
        for i in 0..130 {
            d.write_block(i, &pattern((i % 251) as u8)).unwrap();
        }
        let mut buf = vec![0u8; 4096];
        for i in 0..130 {
            d.read_block(i, &mut buf).unwrap();
            assert_eq!(buf[0], (i % 251) as u8, "block {i}");
        }
    }

    #[test]
    fn ramdisk_stats_count_operations() {
        let d = RamDisk::new(4096, 8);
        let mut buf = vec![0u8; 4096];
        d.write_block(1, &pattern(9)).unwrap();
        d.read_block(1, &mut buf).unwrap();
        d.read_block(2, &mut buf).unwrap();
        d.flush().unwrap();
        let s = d.stats();
        assert_eq!(s, DeviceStats { reads: 2, writes: 1, flushes: 1 });
    }

    #[test]
    fn ssd_charges_and_tracks_dirty_blocks() {
        let ssd = SsdDevice::ram_backed(64, CostModel::zero());
        ssd.write_block(0, &pattern(7)).unwrap();
        ssd.write_block(1, &pattern(8)).unwrap();
        assert_eq!(ssd.dirty_blocks(), 2);
        ssd.flush().unwrap();
        assert_eq!(ssd.dirty_blocks(), 0);
        let snap = ssd.counters().snapshot();
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.flushes, 1);
        let mut buf = vec![0u8; 4096];
        ssd.read_block(0, &mut buf).unwrap();
        assert_eq!(buf, pattern(7));
    }

    #[test]
    fn ssd_flush_cost_scales_with_dirty_data() {
        let model = CostModel {
            flush_base_ns: 100,
            flush_per_dirty_block_ns: 10,
            inject_delays: false,
            ..CostModel::zero()
        };
        let ssd = SsdDevice::ram_backed(64, model);
        for i in 0..5 {
            ssd.write_block(i, &pattern(1)).unwrap();
        }
        ssd.flush().unwrap();
        let after_first = ssd.counters().snapshot().total_ns;
        assert_eq!(after_first, 100 + 5 * 10);
        ssd.flush().unwrap();
        let after_second = ssd.counters().snapshot().total_ns;
        assert_eq!(after_second - after_first, 100);
    }

    #[test]
    fn fault_injector_fails_after_budget() {
        let inner = Arc::new(RamDisk::new(4096, 16));
        let dev = FaultInjectingDevice::new(inner, FaultMode::FailIo, 2);
        dev.write_block(0, &pattern(1)).unwrap();
        dev.write_block(1, &pattern(2)).unwrap();
        let err = dev.write_block(2, &pattern(3)).unwrap_err();
        assert_eq!(err.errno(), Errno::Io);
        assert!(dev.tripped());
        assert_eq!(dev.flush().unwrap_err().errno(), Errno::Io);
    }

    #[test]
    fn fault_injector_drop_writes_keeps_old_data() {
        let inner = Arc::new(RamDisk::new(4096, 16));
        let dev = FaultInjectingDevice::new(
            Arc::clone(&inner) as Arc<dyn BlockDevice>,
            FaultMode::DropWrites,
            1,
        );
        dev.write_block(0, &pattern(1)).unwrap();
        dev.write_block(0, &pattern(2)).unwrap(); // dropped (budget exhausted)
        assert!(dev.tripped());
        assert_eq!(dev.dropped_writes(), 1);
        let mut buf = vec![0u8; 4096];
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(buf, pattern(1), "dropped write must not be visible");
        // Recovery: clear the fault and write again.
        dev.clear();
        dev.write_block(0, &pattern(3)).unwrap();
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(buf, pattern(3));
    }

    #[test]
    fn concurrent_ramdisk_access_is_consistent() {
        use std::thread;
        let d = Arc::new(RamDisk::new(4096, 256));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let d = Arc::clone(&d);
            handles.push(thread::spawn(move || {
                for i in 0..32u64 {
                    let blockno = t * 32 + i;
                    d.write_block(blockno, &vec![t as u8 + 1; 4096]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut buf = vec![0u8; 4096];
        for t in 0..8u64 {
            for i in 0..32u64 {
                d.read_block(t * 32 + i, &mut buf).unwrap();
                assert!(buf.iter().all(|&b| b == t as u8 + 1));
            }
        }
    }
}
