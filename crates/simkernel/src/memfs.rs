//! A complete in-memory file system.
//!
//! `MemFs` is a reference implementation of [`VfsFs`] used to test the VFS
//! layer, the page cache and the workload generators independently of the
//! xv6 implementations.  It is also handy as a "known good" oracle in
//! differential tests: the same operation sequence applied to `MemFs` and to
//! an xv6 stack must produce the same observable directory tree and file
//! contents.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::dev::BlockDevice;
use crate::error::{Errno, KernelError, KernelResult};
use crate::sync::IdGenerator;
use crate::vfs::{
    DirEntry, FileMode, FileType, FilesystemType, InodeAttr, MountOptions, OpenFlags, SetAttr,
    StatFs, VfsFs, PAGE_SIZE,
};

#[derive(Debug)]
struct MemInode {
    kind: FileType,
    perm: u16,
    nlink: u32,
    data: Vec<u8>,
    entries: BTreeMap<String, u64>,
}

impl MemInode {
    fn new_file(perm: u16) -> Self {
        MemInode {
            kind: FileType::Regular,
            perm,
            nlink: 1,
            data: Vec::new(),
            entries: BTreeMap::new(),
        }
    }

    fn new_dir(perm: u16) -> Self {
        MemInode {
            kind: FileType::Directory,
            perm,
            nlink: 2,
            data: Vec::new(),
            entries: BTreeMap::new(),
        }
    }

    fn attr(&self, ino: u64) -> InodeAttr {
        InodeAttr {
            ino,
            kind: self.kind,
            size: self.data.len() as u64,
            nlink: self.nlink,
            blocks: (self.data.len() as u64).div_ceil(512),
            perm: self.perm,
        }
    }
}

/// A purely in-memory file system (no backing device, no durability).
#[derive(Debug)]
pub struct MemFs {
    inodes: RwLock<HashMap<u64, Arc<Mutex<MemInode>>>>,
    ino_gen: IdGenerator,
}

/// The inode number of the root directory of a [`MemFs`].
pub const MEMFS_ROOT_INO: u64 = 1;

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl MemFs {
    /// Creates an empty file system containing only the root directory.
    pub fn new() -> Self {
        let mut inodes = HashMap::new();
        inodes.insert(MEMFS_ROOT_INO, Arc::new(Mutex::new(MemInode::new_dir(0o755))));
        MemFs { inodes: RwLock::new(inodes), ino_gen: IdGenerator::new(MEMFS_ROOT_INO + 1) }
    }

    fn inode(&self, ino: u64) -> KernelResult<Arc<Mutex<MemInode>>> {
        self.inodes
            .read()
            .get(&ino)
            .cloned()
            .ok_or_else(|| KernelError::with_context(Errno::NoEnt, "memfs: no such inode"))
    }

    fn insert_entry(
        &self,
        dir: u64,
        name: &str,
        make: impl FnOnce() -> MemInode,
    ) -> KernelResult<InodeAttr> {
        if name.is_empty() || name.contains('/') {
            return Err(KernelError::with_context(Errno::Inval, "memfs: invalid name"));
        }
        let dir_arc = self.inode(dir)?;
        let mut dir_inode = dir_arc.lock();
        if dir_inode.kind != FileType::Directory {
            return Err(KernelError::with_context(Errno::NotDir, "memfs: parent not a directory"));
        }
        if dir_inode.entries.contains_key(name) {
            return Err(KernelError::with_context(Errno::Exist, "memfs: name exists"));
        }
        let ino = self.ino_gen.next_id();
        let inode = make();
        let is_dir = inode.kind == FileType::Directory;
        let attr = inode.attr(ino);
        self.inodes.write().insert(ino, Arc::new(Mutex::new(inode)));
        dir_inode.entries.insert(name.to_string(), ino);
        if is_dir {
            dir_inode.nlink += 1;
        }
        Ok(attr)
    }
}

impl VfsFs for MemFs {
    fn fs_name(&self) -> &str {
        "memfs"
    }

    fn root_ino(&self) -> u64 {
        MEMFS_ROOT_INO
    }

    fn lookup(&self, dir: u64, name: &str) -> KernelResult<InodeAttr> {
        let dir_arc = self.inode(dir)?;
        let dir_inode = dir_arc.lock();
        if dir_inode.kind != FileType::Directory {
            return Err(KernelError::with_context(Errno::NotDir, "memfs: lookup in non-directory"));
        }
        if name == "." {
            return Ok(dir_inode.attr(dir));
        }
        let ino = *dir_inode
            .entries
            .get(name)
            .ok_or_else(|| KernelError::with_context(Errno::NoEnt, "memfs: name not found"))?;
        drop(dir_inode);
        self.getattr(ino)
    }

    fn getattr(&self, ino: u64) -> KernelResult<InodeAttr> {
        Ok(self.inode(ino)?.lock().attr(ino))
    }

    fn setattr(&self, ino: u64, set: &SetAttr) -> KernelResult<InodeAttr> {
        let arc = self.inode(ino)?;
        let mut inode = arc.lock();
        if let Some(size) = set.size {
            if inode.kind == FileType::Directory {
                return Err(KernelError::with_context(Errno::IsDir, "memfs: truncate directory"));
            }
            inode.data.resize(size as usize, 0);
        }
        if let Some(perm) = set.perm {
            inode.perm = perm;
        }
        Ok(inode.attr(ino))
    }

    fn create(&self, dir: u64, name: &str, mode: FileMode) -> KernelResult<InodeAttr> {
        self.insert_entry(dir, name, || MemInode::new_file(mode.perm))
    }

    fn mkdir(&self, dir: u64, name: &str, mode: FileMode) -> KernelResult<InodeAttr> {
        self.insert_entry(dir, name, || MemInode::new_dir(mode.perm))
    }

    fn unlink(&self, dir: u64, name: &str) -> KernelResult<()> {
        let dir_arc = self.inode(dir)?;
        let mut dir_inode = dir_arc.lock();
        let ino = *dir_inode
            .entries
            .get(name)
            .ok_or_else(|| KernelError::with_context(Errno::NoEnt, "memfs: name not found"))?;
        let target_arc = self.inode(ino)?;
        let mut target = target_arc.lock();
        if target.kind == FileType::Directory {
            return Err(KernelError::with_context(Errno::IsDir, "memfs: unlink directory"));
        }
        dir_inode.entries.remove(name);
        target.nlink = target.nlink.saturating_sub(1);
        if target.nlink == 0 {
            drop(target);
            self.inodes.write().remove(&ino);
        }
        Ok(())
    }

    fn rmdir(&self, dir: u64, name: &str) -> KernelResult<()> {
        let dir_arc = self.inode(dir)?;
        let mut dir_inode = dir_arc.lock();
        let ino = *dir_inode
            .entries
            .get(name)
            .ok_or_else(|| KernelError::with_context(Errno::NoEnt, "memfs: name not found"))?;
        let target_arc = self.inode(ino)?;
        let target = target_arc.lock();
        if target.kind != FileType::Directory {
            return Err(KernelError::with_context(Errno::NotDir, "memfs: rmdir non-directory"));
        }
        if !target.entries.is_empty() {
            return Err(KernelError::with_context(Errno::NotEmpty, "memfs: directory not empty"));
        }
        dir_inode.entries.remove(name);
        dir_inode.nlink = dir_inode.nlink.saturating_sub(1);
        drop(target);
        self.inodes.write().remove(&ino);
        Ok(())
    }

    fn rename(&self, olddir: u64, oldname: &str, newdir: u64, newname: &str) -> KernelResult<()> {
        // Look up the source.
        let src_ino = {
            let dir_arc = self.inode(olddir)?;
            let dir_inode = dir_arc.lock();
            *dir_inode.entries.get(oldname).ok_or_else(|| {
                KernelError::with_context(Errno::NoEnt, "memfs: rename source missing")
            })?
        };
        // If a target exists, it must be removable (file or empty dir).
        let existing_target = {
            let dir_arc = self.inode(newdir)?;
            let dir_inode = dir_arc.lock();
            dir_inode.entries.get(newname).copied()
        };
        if let Some(target_ino) = existing_target {
            if target_ino != src_ino {
                let target_arc = self.inode(target_ino)?;
                let target = target_arc.lock();
                match target.kind {
                    FileType::Directory if !target.entries.is_empty() => {
                        return Err(KernelError::with_context(
                            Errno::NotEmpty,
                            "memfs: rename target directory not empty",
                        ));
                    }
                    FileType::Directory => {
                        drop(target);
                        self.rmdir(newdir, newname)?;
                    }
                    _ => {
                        drop(target);
                        self.unlink(newdir, newname)?;
                    }
                }
            }
        }
        // Remove from source directory and add to destination directory.
        {
            let dir_arc = self.inode(olddir)?;
            let mut dir_inode = dir_arc.lock();
            dir_inode.entries.remove(oldname);
        }
        {
            let dir_arc = self.inode(newdir)?;
            let mut dir_inode = dir_arc.lock();
            dir_inode.entries.insert(newname.to_string(), src_ino);
        }
        Ok(())
    }

    fn link(&self, ino: u64, newdir: u64, newname: &str) -> KernelResult<InodeAttr> {
        let target_arc = self.inode(ino)?;
        {
            let target = target_arc.lock();
            if target.kind == FileType::Directory {
                return Err(KernelError::with_context(Errno::Perm, "memfs: link to directory"));
            }
        }
        let dir_arc = self.inode(newdir)?;
        let mut dir_inode = dir_arc.lock();
        if dir_inode.entries.contains_key(newname) {
            return Err(KernelError::with_context(Errno::Exist, "memfs: link target exists"));
        }
        dir_inode.entries.insert(newname.to_string(), ino);
        let mut target = target_arc.lock();
        target.nlink += 1;
        Ok(target.attr(ino))
    }

    fn open(&self, ino: u64, _flags: OpenFlags) -> KernelResult<u64> {
        self.inode(ino)?;
        Ok(0)
    }

    fn release(&self, _ino: u64, _fh: u64) -> KernelResult<()> {
        Ok(())
    }

    fn readdir(&self, ino: u64) -> KernelResult<Vec<DirEntry>> {
        let arc = self.inode(ino)?;
        let inode = arc.lock();
        if inode.kind != FileType::Directory {
            return Err(KernelError::with_context(Errno::NotDir, "memfs: readdir non-directory"));
        }
        let mut entries = Vec::with_capacity(inode.entries.len());
        for (name, child_ino) in &inode.entries {
            let kind = self.inode(*child_ino)?.lock().kind;
            entries.push(DirEntry { ino: *child_ino, name: name.clone(), kind });
        }
        Ok(entries)
    }

    fn read_page(&self, ino: u64, page_index: u64, buf: &mut [u8]) -> KernelResult<usize> {
        let arc = self.inode(ino)?;
        let inode = arc.lock();
        let start = (page_index as usize).saturating_mul(PAGE_SIZE);
        if start >= inode.data.len() {
            return Ok(0);
        }
        let n = (inode.data.len() - start).min(buf.len()).min(PAGE_SIZE);
        buf[..n].copy_from_slice(&inode.data[start..start + n]);
        Ok(n)
    }

    fn write_page(
        &self,
        ino: u64,
        page_index: u64,
        data: &[u8],
        file_size: u64,
    ) -> KernelResult<()> {
        let arc = self.inode(ino)?;
        let mut inode = arc.lock();
        if inode.kind != FileType::Regular {
            return Err(KernelError::with_context(Errno::Inval, "memfs: write_page non-file"));
        }
        if (inode.data.len() as u64) < file_size {
            inode.data.resize(file_size as usize, 0);
        }
        let start = (page_index as usize) * PAGE_SIZE;
        let len = inode.data.len();
        if start >= len {
            return Ok(());
        }
        let n = data.len().min(len - start);
        inode.data[start..start + n].copy_from_slice(&data[..n]);
        Ok(())
    }

    fn fsync(&self, ino: u64, _datasync: bool) -> KernelResult<()> {
        self.inode(ino)?;
        Ok(())
    }

    fn statfs(&self) -> KernelResult<StatFs> {
        let inodes = self.inodes.read();
        Ok(StatFs {
            total_blocks: u64::MAX / 512,
            free_blocks: u64::MAX / 1024,
            block_size: PAGE_SIZE as u32,
            total_inodes: u64::MAX / 512,
            free_inodes: u64::MAX / 512 - inodes.len() as u64,
            name_max: 255,
        })
    }

    fn sync_fs(&self) -> KernelResult<()> {
        Ok(())
    }
}

/// The mountable type for [`MemFs`] (the backing device is ignored).
#[derive(Debug, Default, Clone, Copy)]
pub struct MemFilesystemType;

impl FilesystemType for MemFilesystemType {
    fn fs_name(&self) -> &str {
        "memfs"
    }

    fn mount(
        &self,
        _device: Arc<dyn BlockDevice>,
        _options: &MountOptions,
    ) -> KernelResult<Arc<dyn VfsFs>> {
        Ok(Arc::new(MemFs::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_getattr() {
        let fs = MemFs::new();
        let attr = fs.create(MEMFS_ROOT_INO, "a.txt", FileMode::regular()).unwrap();
        assert_eq!(fs.lookup(MEMFS_ROOT_INO, "a.txt").unwrap().ino, attr.ino);
        assert_eq!(fs.getattr(attr.ino).unwrap().size, 0);
        assert_eq!(fs.lookup(MEMFS_ROOT_INO, "missing").unwrap_err().errno(), Errno::NoEnt);
    }

    #[test]
    fn duplicate_create_rejected() {
        let fs = MemFs::new();
        fs.create(MEMFS_ROOT_INO, "x", FileMode::regular()).unwrap();
        assert_eq!(
            fs.create(MEMFS_ROOT_INO, "x", FileMode::regular()).unwrap_err().errno(),
            Errno::Exist
        );
    }

    #[test]
    fn write_and_read_pages() {
        let fs = MemFs::new();
        let attr = fs.create(MEMFS_ROOT_INO, "f", FileMode::regular()).unwrap();
        let page = vec![0x5Au8; PAGE_SIZE];
        fs.write_page(attr.ino, 0, &page, PAGE_SIZE as u64).unwrap();
        fs.write_page(attr.ino, 2, &page, 3 * PAGE_SIZE as u64).unwrap();
        assert_eq!(fs.getattr(attr.ino).unwrap().size, 3 * PAGE_SIZE as u64);
        let mut buf = vec![0u8; PAGE_SIZE];
        assert_eq!(fs.read_page(attr.ino, 1, &mut buf).unwrap(), PAGE_SIZE);
        assert!(buf.iter().all(|&b| b == 0), "hole must read as zeros");
        fs.read_page(attr.ino, 2, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn unlink_frees_inode_link_keeps_it() {
        let fs = MemFs::new();
        let attr = fs.create(MEMFS_ROOT_INO, "orig", FileMode::regular()).unwrap();
        fs.link(attr.ino, MEMFS_ROOT_INO, "alias").unwrap();
        assert_eq!(fs.getattr(attr.ino).unwrap().nlink, 2);
        fs.unlink(MEMFS_ROOT_INO, "orig").unwrap();
        assert_eq!(fs.getattr(attr.ino).unwrap().nlink, 1);
        fs.unlink(MEMFS_ROOT_INO, "alias").unwrap();
        assert_eq!(fs.getattr(attr.ino).unwrap_err().errno(), Errno::NoEnt);
    }

    #[test]
    fn rename_replaces_existing_file() {
        let fs = MemFs::new();
        let a = fs.create(MEMFS_ROOT_INO, "a", FileMode::regular()).unwrap();
        fs.create(MEMFS_ROOT_INO, "b", FileMode::regular()).unwrap();
        fs.rename(MEMFS_ROOT_INO, "a", MEMFS_ROOT_INO, "b").unwrap();
        assert_eq!(fs.lookup(MEMFS_ROOT_INO, "b").unwrap().ino, a.ino);
        assert_eq!(fs.lookup(MEMFS_ROOT_INO, "a").unwrap_err().errno(), Errno::NoEnt);
        assert_eq!(fs.readdir(MEMFS_ROOT_INO).unwrap().len(), 1);
    }

    #[test]
    fn rmdir_rules() {
        let fs = MemFs::new();
        let d = fs.mkdir(MEMFS_ROOT_INO, "d", FileMode::directory()).unwrap();
        fs.create(d.ino, "f", FileMode::regular()).unwrap();
        assert_eq!(fs.rmdir(MEMFS_ROOT_INO, "d").unwrap_err().errno(), Errno::NotEmpty);
        fs.unlink(d.ino, "f").unwrap();
        fs.rmdir(MEMFS_ROOT_INO, "d").unwrap();
        assert_eq!(fs.lookup(MEMFS_ROOT_INO, "d").unwrap_err().errno(), Errno::NoEnt);
    }

    #[test]
    fn truncate_shrinks_and_grows() {
        let fs = MemFs::new();
        let attr = fs.create(MEMFS_ROOT_INO, "t", FileMode::regular()).unwrap();
        fs.write_page(attr.ino, 0, &vec![1u8; PAGE_SIZE], PAGE_SIZE as u64).unwrap();
        fs.setattr(attr.ino, &SetAttr::truncate(10)).unwrap();
        assert_eq!(fs.getattr(attr.ino).unwrap().size, 10);
        fs.setattr(attr.ino, &SetAttr::truncate(100)).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        let n = fs.read_page(attr.ino, 0, &mut buf).unwrap();
        assert_eq!(n, 100);
        assert_eq!(buf[5], 1);
        assert_eq!(buf[50], 0, "extended region must be zero-filled");
    }
}
