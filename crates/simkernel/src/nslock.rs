//! Per-directory namespace locks: a sharded lock table keyed by inode
//! number, with a global ordering discipline.
//!
//! The Bento paper's 32-thread experiments (§6.4) hammer concurrent
//! namespace modification.  A single per-mount `Mutex<()>` around every
//! create / unlink / rename serializes all of those threads even when they
//! touch *different* directories.  [`DirLockTable`] replaces that mutex
//! with one lock per directory inode, handed out on demand from a
//! [`ShardedMap`], so threads mutating disjoint directories never contend.
//!
//! ## Lock-ordering invariant
//!
//! Operations that must hold two directory locks at once (cross-directory
//! rename) acquire them in **ascending inode number** ([`DirLockTable::lock_pair`]).
//! Because every multi-lock acquisition follows the same total order, two
//! renames between the same pair of directories can never deadlock.  In
//! debug builds a thread-local checker enforces the discipline: acquiring a
//! directory lock while already holding one with an equal or higher inode
//! number panics immediately instead of deadlocking some run later.
//!
//! Lock entries are created on first use and kept for the life of the
//! table (they die with the mount).  Growth is bounded by the number of
//! distinct directories mutated through the mount — the same envelope as
//! the inode cache itself — and one table entry is an `Arc<Mutex<()>>`,
//! so no pruning pass is needed.

use std::sync::Arc;

use parking_lot::{ArcMutexGuard, Mutex, RawMutex};

use crate::shard::ShardedMap;

/// The debug-only lock-order checker: a thread-local stack of held
/// directory-lock inode numbers, kept ascending by construction.
#[cfg(debug_assertions)]
mod order {
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }

    /// Records an acquisition; panics if it violates ascending-inum order.
    pub fn acquire(ino: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&highest) = held.last() {
                assert!(
                    ino > highest,
                    "directory lock order violation: acquiring inum {ino} while holding \
                     inum {highest} (directory locks must be taken in ascending inode order)"
                );
            }
            held.push(ino);
        });
    }

    /// Records a release (guards may drop in any order).
    pub fn release(ino: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&h| h == ino) {
                held.remove(pos);
            }
        });
    }
}

/// RAII guard for one directory's namespace lock.
pub struct DirLockGuard {
    // `guard` must drop before the order checker forgets the hold, so the
    // release below runs strictly after the mutex is available again only
    // from this thread's perspective (field cleared explicitly in Drop).
    guard: Option<ArcMutexGuard<RawMutex, ()>>,
    ino: u64,
}

impl DirLockGuard {
    /// The inode number this guard locks.
    pub fn ino(&self) -> u64 {
        self.ino
    }
}

impl Drop for DirLockGuard {
    fn drop(&mut self) {
        self.guard = None;
        #[cfg(debug_assertions)]
        order::release(self.ino);
    }
}

impl std::fmt::Debug for DirLockGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirLockGuard").field("ino", &self.ino).finish()
    }
}

/// RAII guard for a pair of directory locks taken in ascending-inum order
/// (one lock when both inodes are the same directory).
#[derive(Debug)]
pub struct DirPairGuard {
    _lo: DirLockGuard,
    _hi: Option<DirLockGuard>,
}

/// A table of per-directory namespace locks keyed by inode number.
///
/// See the module docs for the ordering discipline.  The table itself is
/// an N-way [`ShardedMap`], so handing out locks for different directories
/// rarely touches the same shard, and the lock state is an
/// `Arc<Mutex<()>>` per directory: guards are owned (`lock_arc`), so they
/// stay valid however long the operation runs.
pub struct DirLockTable {
    locks: ShardedMap<u64, Arc<Mutex<()>>>,
}

impl Default for DirLockTable {
    fn default() -> Self {
        DirLockTable::new()
    }
}

impl std::fmt::Debug for DirLockTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirLockTable").field("entries", &self.locks.len()).finish()
    }
}

impl DirLockTable {
    /// Creates an empty table (default shard count).
    pub fn new() -> Self {
        DirLockTable { locks: ShardedMap::new(0) }
    }

    /// Number of directories that have ever been locked through this table.
    pub fn entries(&self) -> usize {
        self.locks.len()
    }

    fn entry(&self, ino: u64) -> Arc<Mutex<()>> {
        self.locks.get_or_insert_with(ino, || Arc::new(Mutex::new(())))
    }

    /// Locks directory `ino`.  Debug builds panic if the calling thread
    /// already holds a directory lock with an equal or higher inode number.
    pub fn lock(&self, ino: u64) -> DirLockGuard {
        let entry = self.entry(ino);
        #[cfg(debug_assertions)]
        order::acquire(ino);
        // Attribute the acquisition wait (not the hold) to the active
        // span's namespace-lock phase.
        let guard = {
            let _wait = crate::trace::phase(crate::trace::Phase::NsLock);
            Mutex::lock_arc(&entry)
        };
        DirLockGuard { guard: Some(guard), ino }
    }

    /// Locks directories `a` and `b` in ascending-inum order; a same-
    /// directory pair (`a == b`) takes a single lock.  This is the only
    /// safe way to hold two directory locks at once.
    pub fn lock_pair(&self, a: u64, b: u64) -> DirPairGuard {
        if a == b {
            return DirPairGuard { _lo: self.lock(a), _hi: None };
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let first = self.lock(lo);
        let second = self.lock(hi);
        DirPairGuard { _lo: first, _hi: Some(second) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn disjoint_directories_do_not_block_each_other() {
        let table = Arc::new(DirLockTable::new());
        let g5 = table.lock(5);
        // Another thread locking a different directory must get through
        // while inum 5 is held here.
        let t2 = Arc::clone(&table);
        let other = thread::spawn(move || {
            let _g = t2.lock(9);
            true
        });
        assert!(other.join().unwrap());
        drop(g5);
        assert_eq!(table.entries(), 2);
    }

    #[test]
    fn same_directory_serializes() {
        let table = Arc::new(DirLockTable::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let table = Arc::clone(&table);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    let _g = table.lock(7);
                    // Non-atomic read-modify-write made safe only by the
                    // directory lock.
                    let v = counter.load(Ordering::Relaxed);
                    thread::yield_now();
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn lock_pair_orders_by_inum_and_prevents_deadlock() {
        // Two threads renaming in opposite directions between the same two
        // directories: with ordered pair acquisition this cannot deadlock,
        // whatever order the arguments arrive in.
        let table = Arc::new(DirLockTable::new());
        let mut handles = Vec::new();
        for t in 0..2u64 {
            let table = Arc::clone(&table);
            handles.push(thread::spawn(move || {
                for _ in 0..200 {
                    let (a, b) = if t == 0 { (3, 11) } else { (11, 3) };
                    let _pair = table.lock_pair(a, b);
                    thread::yield_now();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn lock_pair_same_directory_takes_one_lock() {
        let table = DirLockTable::new();
        let _pair = table.lock_pair(4, 4);
        assert_eq!(table.entries(), 1);
        // The single underlying mutex is held.
        let entry = table.entry(4);
        assert!(entry.try_lock().is_none());
    }

    #[test]
    fn guard_reports_its_inode() {
        let table = DirLockTable::new();
        let g = table.lock(42);
        assert_eq!(g.ino(), 42);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "directory lock order violation")]
    fn descending_acquisition_panics_in_debug_builds() {
        let table = DirLockTable::new();
        let _high = table.lock(10);
        let _low = table.lock(2); // must panic: 2 < 10
    }

    #[cfg(debug_assertions)]
    #[test]
    fn order_checker_resets_after_release() {
        let table = DirLockTable::new();
        {
            let _g = table.lock(10);
        }
        // The earlier (released) hold of 10 must not poison this thread:
        // locking a lower inum afterwards is legal.
        let _g = table.lock(2);
    }

    #[test]
    fn pair_then_single_reacquire_does_not_self_deadlock() {
        // Drop the pair before relocking one of its members — the pattern
        // the rename target-removal path uses.
        let table = DirLockTable::new();
        let pair = table.lock_pair(6, 13);
        drop(pair);
        let _g = table.lock(6);
    }

    #[test]
    fn many_threads_random_pairs_terminate() {
        let table = Arc::new(DirLockTable::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let table = Arc::clone(&table);
            handles.push(thread::spawn(move || {
                let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                for _ in 0..300 {
                    // xorshift over a small dir pool, both argument orders.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let a = x % 16;
                    let b = (x >> 8) % 16;
                    let _pair = table.lock_pair(a, b);
                }
            }));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        for h in handles {
            assert!(std::time::Instant::now() < deadline, "pair storm took too long");
            h.join().unwrap();
        }
    }
}
