//! Kernel-style error handling.
//!
//! The Linux kernel reports errors as negative `errno` values.  The simulated
//! kernel (and everything layered on top of it: Bento, the file systems, the
//! FUSE simulation) uses [`Errno`], a strongly typed subset of the errno
//! space, wrapped in [`KernelError`] so that it satisfies the
//! [`std::error::Error`] contract expected of Rust error types.

use std::fmt;

/// A strongly typed subset of the Linux `errno` values used by the storage
/// stack.
///
/// The discriminants match the conventional Linux numbers so that code (and
/// readers) familiar with the kernel can map them directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(i32)]
#[non_exhaustive]
pub enum Errno {
    /// Operation not permitted.
    Perm = 1,
    /// No such file or directory.
    NoEnt = 2,
    /// I/O error.
    Io = 5,
    /// Bad file descriptor.
    BadF = 9,
    /// Out of memory / allocation failure.
    NoMem = 12,
    /// Permission denied.
    Access = 13,
    /// Device or resource busy.
    Busy = 16,
    /// File exists.
    Exist = 17,
    /// Not a directory.
    NotDir = 20,
    /// Is a directory.
    IsDir = 21,
    /// Invalid argument.
    Inval = 22,
    /// Too many open files.
    NFile = 23,
    /// File too large.
    FBig = 27,
    /// No space left on device.
    NoSpc = 28,
    /// Illegal seek.
    SPipe = 29,
    /// Read-only file system.
    RoFs = 30,
    /// Too many links.
    MLink = 31,
    /// File name too long.
    NameTooLong = 36,
    /// Function not implemented.
    NoSys = 38,
    /// Directory not empty.
    NotEmpty = 39,
    /// Operation would deadlock.
    Deadlock = 35,
    /// Stale file handle (used when an inode disappears under an open fd).
    Stale = 116,
}

impl Errno {
    /// Returns the conventional Linux errno number.
    pub fn code(self) -> i32 {
        self as i32
    }

    /// Returns the short symbolic name (`"ENOENT"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Errno::Perm => "EPERM",
            Errno::NoEnt => "ENOENT",
            Errno::Io => "EIO",
            Errno::BadF => "EBADF",
            Errno::NoMem => "ENOMEM",
            Errno::Access => "EACCES",
            Errno::Busy => "EBUSY",
            Errno::Exist => "EEXIST",
            Errno::NotDir => "ENOTDIR",
            Errno::IsDir => "EISDIR",
            Errno::Inval => "EINVAL",
            Errno::NFile => "ENFILE",
            Errno::FBig => "EFBIG",
            Errno::NoSpc => "ENOSPC",
            Errno::SPipe => "ESPIPE",
            Errno::RoFs => "EROFS",
            Errno::MLink => "EMLINK",
            Errno::NameTooLong => "ENAMETOOLONG",
            Errno::NoSys => "ENOSYS",
            Errno::NotEmpty => "ENOTEMPTY",
            Errno::Deadlock => "EDEADLK",
            Errno::Stale => "ESTALE",
        }
    }

    /// Human readable description, in the style of `strerror(3)`.
    pub fn description(self) -> &'static str {
        match self {
            Errno::Perm => "operation not permitted",
            Errno::NoEnt => "no such file or directory",
            Errno::Io => "input/output error",
            Errno::BadF => "bad file descriptor",
            Errno::NoMem => "cannot allocate memory",
            Errno::Access => "permission denied",
            Errno::Busy => "device or resource busy",
            Errno::Exist => "file exists",
            Errno::NotDir => "not a directory",
            Errno::IsDir => "is a directory",
            Errno::Inval => "invalid argument",
            Errno::NFile => "too many open files in system",
            Errno::FBig => "file too large",
            Errno::NoSpc => "no space left on device",
            Errno::SPipe => "illegal seek",
            Errno::RoFs => "read-only file system",
            Errno::MLink => "too many links",
            Errno::NameTooLong => "file name too long",
            Errno::NoSys => "function not implemented",
            Errno::NotEmpty => "directory not empty",
            Errno::Deadlock => "resource deadlock avoided",
            Errno::Stale => "stale file handle",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.description())
    }
}

/// The error type returned by every fallible operation in the simulated
/// kernel and by the file systems built on top of it.
///
/// A `KernelError` carries an [`Errno`] plus an optional static context
/// string describing which subsystem produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelError {
    errno: Errno,
    context: Option<&'static str>,
}

impl KernelError {
    /// Creates an error from an errno with no additional context.
    pub fn new(errno: Errno) -> Self {
        KernelError { errno, context: None }
    }

    /// Creates an error from an errno with a static context string.
    pub fn with_context(errno: Errno, context: &'static str) -> Self {
        KernelError { errno, context: Some(context) }
    }

    /// The errno carried by this error.
    pub fn errno(&self) -> Errno {
        self.errno
    }

    /// The context string, if any.
    pub fn context(&self) -> Option<&'static str> {
        self.context
    }
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.context {
            Some(ctx) => write!(f, "{}: {}", ctx, self.errno),
            None => write!(f, "{}", self.errno),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<Errno> for KernelError {
    fn from(errno: Errno) -> Self {
        KernelError::new(errno)
    }
}

/// Result alias used throughout the simulated kernel.
pub type KernelResult<T> = Result<T, KernelError>;

/// Convenience constructor: `err(Errno::NoEnt)` as a `Result`.
///
/// # Errors
///
/// Always returns `Err` — this is a helper for early returns.
pub fn err<T>(errno: Errno) -> KernelResult<T> {
    Err(KernelError::new(errno))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_codes_match_linux_numbers() {
        assert_eq!(Errno::NoEnt.code(), 2);
        assert_eq!(Errno::Io.code(), 5);
        assert_eq!(Errno::Exist.code(), 17);
        assert_eq!(Errno::Inval.code(), 22);
        assert_eq!(Errno::NoSpc.code(), 28);
        assert_eq!(Errno::NotEmpty.code(), 39);
    }

    #[test]
    fn display_includes_name_and_description() {
        let e = KernelError::with_context(Errno::NoEnt, "lookup");
        let s = e.to_string();
        assert!(s.contains("lookup"));
        assert!(s.contains("ENOENT"));
        assert!(s.contains("no such file or directory"));
    }

    #[test]
    fn error_trait_object_works() {
        fn takes_err(_: &(dyn std::error::Error + Send + Sync)) {}
        let e = KernelError::new(Errno::Io);
        takes_err(&e);
    }

    #[test]
    fn from_errno_conversion() {
        let e: KernelError = Errno::Busy.into();
        assert_eq!(e.errno(), Errno::Busy);
        assert_eq!(e.context(), None);
    }

    #[test]
    fn err_helper_returns_error() {
        let r: KernelResult<u32> = err(Errno::NoSpc);
        assert_eq!(r.unwrap_err().errno(), Errno::NoSpc);
    }

    #[test]
    fn errno_ordering_and_hash_derives_usable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Errno::NoEnt);
        set.insert(Errno::NoEnt);
        assert_eq!(set.len(), 1);
        assert!(Errno::Perm < Errno::NoEnt);
    }
}
