//! The buffer cache.
//!
//! Linux file systems read and write metadata through the buffer cache:
//! `sb_bread` returns a locked, reference-counted `buffer_head` for a block,
//! the file system reads or modifies the attached data, optionally writes it
//! back, and finally calls `brelse`.  Forgetting `brelse` leaks the buffer —
//! one of the most common bug classes in the paper's study (Table 1).
//!
//! [`BufferCache`] reproduces that interface with Rust ownership:
//! [`BufferCache::bread`] returns a [`BufferGuard`] that holds the buffer's
//! lock and releases it (the `brelse`) automatically on drop.  Bento's
//! `BufferHead` capability type (in the `bento` crate) is a thin wrapper
//! around this guard, which is exactly the paper's §4.7 "wrapping
//! abstractions" story.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{ArcMutexGuard, Mutex, RawMutex};

use crate::dev::BlockDevice;
use crate::error::{Errno, KernelError, KernelResult};
use crate::shard::{ShardedMap, StripedCounter};

/// Data and state attached to one cached block.
#[derive(Debug)]
struct BufferData {
    bytes: Vec<u8>,
    /// Whether `bytes` holds the current on-device content (or newer).
    valid: bool,
    /// Whether `bytes` has been modified since it was last written to the
    /// device.
    dirty: bool,
}

#[derive(Debug)]
struct Buffer {
    data: Arc<Mutex<BufferData>>,
    last_used: AtomicU64,
}

/// A block cache with `bread`/`write`/implicit-`brelse` semantics.
///
/// The cache holds at most `capacity` buffers; buffers that are neither
/// locked nor dirty are evicted least-recently-used first when the cache is
/// full.
///
/// The block → buffer map is sharded ([`ShardedMap`]): concurrent `bread`
/// of *different* blocks contend only when the blocks hash to the same
/// shard, so the paper's multi-threaded workloads are not serialized on one
/// map lock.  Capacity is enforced per shard (`capacity / shards`, like the
/// per-bucket capacity of a hardware set-associative cache), which keeps
/// eviction a shard-local operation.
pub struct BufferCache {
    dev: Arc<dyn BlockDevice>,
    capacity: usize,
    shard_capacity: usize,
    block_size: usize,
    map: ShardedMap<u64, Arc<Buffer>>,
    /// Logical clock for LRU ordering.  Deliberately a single atomic (not
    /// striped): eviction compares ticks, so they must be totally ordered,
    /// and one relaxed `fetch_add` is far cheaper than the map lock was.
    tick: AtomicU64,
    hits: StripedCounter,
    misses: StripedCounter,
}

impl std::fmt::Debug for BufferCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferCache")
            .field("capacity", &self.capacity)
            .field("block_size", &self.block_size)
            .field("cached", &self.map.len())
            .finish_non_exhaustive()
    }
}

/// Cache effectiveness statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferCacheStats {
    /// `bread` calls satisfied from the cache.
    pub hits: u64,
    /// `bread` calls that had to read the device.
    pub misses: u64,
    /// Buffers currently cached.
    pub cached: usize,
}

impl BufferCache {
    /// Creates a buffer cache over `dev` holding at most `capacity` blocks,
    /// with the default shard count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(dev: Arc<dyn BlockDevice>, capacity: usize) -> Self {
        BufferCache::with_shards(dev, capacity, 0)
    }

    /// Creates a buffer cache with an explicit shard count (`0` = default).
    ///
    /// The shard count is rounded to a power of two and clamped so that
    /// every shard owns at least one capacity slot; a single-sharded cache
    /// (`shards = 1`) behaves exactly like the old globally locked cache,
    /// including strict global LRU.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_shards(dev: Arc<dyn BlockDevice>, capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "buffer cache capacity must be nonzero");
        let block_size = dev.block_size() as usize;
        // Largest power of two ≤ capacity, so shards * shard_capacity never
        // exceeds the requested capacity.
        let max_shards = 1usize << (usize::BITS - 1 - capacity.leading_zeros());
        let shard_count = crate::shard::resolve_shards(shards).min(max_shards);
        let map = ShardedMap::new(shard_count);
        let shard_capacity = (capacity / map.shard_count()).max(1);
        BufferCache {
            dev,
            capacity,
            shard_capacity,
            block_size,
            map,
            tick: AtomicU64::new(0),
            hits: StripedCounter::new(shard_count),
            misses: StripedCounter::new(shard_count),
        }
    }

    /// Number of shards in the block map.
    pub fn shard_count(&self) -> usize {
        self.map.shard_count()
    }

    /// The underlying block device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.dev
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Reads block `blockno` through the cache and returns a locked guard.
    ///
    /// The guard's lock is exclusive (like the kernel's buffer lock); a
    /// second `bread` of the same block from another thread blocks until the
    /// first guard is dropped.
    ///
    /// # Errors
    ///
    /// Propagates device errors ([`Errno::Io`], [`Errno::Inval`]).
    pub fn bread(&self, blockno: u64) -> KernelResult<BufferGuard> {
        if blockno >= self.dev.num_blocks() {
            return Err(KernelError::with_context(Errno::Inval, "bread: block out of range"));
        }
        let buf = self.get_or_insert(blockno);
        let mut guard = Mutex::lock_arc(&buf.data);
        if !guard.valid {
            self.dev.read_block(blockno, &mut guard.bytes)?;
            guard.valid = true;
            self.misses.inc();
        } else {
            self.hits.inc();
        }
        Ok(BufferGuard { blockno, guard, dev: Arc::clone(&self.dev) })
    }

    /// Like [`BufferCache::bread`] but does not read the device: the returned
    /// buffer is zero-filled and marked valid.  Used for blocks that are
    /// about to be completely overwritten (log blocks, freshly allocated
    /// blocks).
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Inval`] if `blockno` is out of range.
    pub fn getblk_zeroed(&self, blockno: u64) -> KernelResult<BufferGuard> {
        if blockno >= self.dev.num_blocks() {
            return Err(KernelError::with_context(Errno::Inval, "getblk: block out of range"));
        }
        let buf = self.get_or_insert(blockno);
        let mut guard = Mutex::lock_arc(&buf.data);
        guard.bytes.fill(0);
        guard.valid = true;
        guard.dirty = true;
        Ok(BufferGuard { blockno, guard, dev: Arc::clone(&self.dev) })
    }

    /// Drops every cached buffer that is clean and unlocked.  Used by tests
    /// and by unmount to simulate a cold cache.  Sweeps one shard at a time.
    pub fn invalidate_clean(&self) {
        self.map.retain(|_, buf| {
            if Arc::strong_count(buf) > 1 {
                return true;
            }
            match buf.data.try_lock() {
                Some(data) => data.dirty,
                None => true,
            }
        });
    }

    /// Returns hit/miss statistics.
    pub fn stats(&self) -> BufferCacheStats {
        BufferCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            cached: self.map.len(),
        }
    }

    /// Issues a FLUSH to the underlying device.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn flush_device(&self) -> KernelResult<()> {
        self.dev.flush()
    }

    fn get_or_insert(&self, blockno: u64) -> Arc<Buffer> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        // The whole lookup / evict / insert runs under the write lock of the
        // one shard owning `blockno`; breads of blocks in other shards
        // proceed concurrently.
        self.map.with_shard_mut(&blockno, |shard| {
            if let Some(buf) = shard.get(&blockno) {
                buf.last_used.store(tick, Ordering::Relaxed);
                return Arc::clone(buf);
            }
            if shard.len() >= self.shard_capacity {
                Self::evict_one(shard);
            }
            let buf = Arc::new(Buffer {
                data: Arc::new(Mutex::new(BufferData {
                    bytes: vec![0u8; self.block_size],
                    valid: false,
                    dirty: false,
                })),
                last_used: AtomicU64::new(tick),
            });
            shard.insert(blockno, Arc::clone(&buf));
            buf
        })
    }

    /// Evicts the least recently used buffer of one shard that is unlocked
    /// and clean.  If every buffer is busy the shard is allowed to grow past
    /// its capacity share (the kernel would sleep; growing keeps the
    /// simulation deadlock-free).
    fn evict_one(map: &mut HashMap<u64, Arc<Buffer>>) {
        let mut victim: Option<(u64, u64)> = None;
        for (blockno, buf) in map.iter() {
            if Arc::strong_count(buf) > 1 {
                continue;
            }
            let clean = match buf.data.try_lock() {
                Some(data) => !data.dirty,
                None => false,
            };
            if !clean {
                continue;
            }
            let used = buf.last_used.load(Ordering::Relaxed);
            if victim.is_none_or(|(_, best)| used < best) {
                victim = Some((*blockno, used));
            }
        }
        if let Some((blockno, _)) = victim {
            map.remove(&blockno);
        }
    }
}

/// An exclusive, RAII handle to a cached block (the analogue of a locked
/// `buffer_head`).
///
/// Dropping the guard releases the buffer (`brelse`).  Modifications made
/// through [`BufferGuard::data_mut`] stay in the cache; call
/// [`BufferGuard::write`] to write the block to the device (`bwrite`).
pub struct BufferGuard {
    blockno: u64,
    guard: ArcMutexGuard<RawMutex, BufferData>,
    dev: Arc<dyn BlockDevice>,
}

impl std::fmt::Debug for BufferGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferGuard")
            .field("blockno", &self.blockno)
            .field("dirty", &self.guard.dirty)
            .finish_non_exhaustive()
    }
}

impl BufferGuard {
    /// The block number this guard refers to.
    pub fn blockno(&self) -> u64 {
        self.blockno
    }

    /// Read-only view of the block contents.
    pub fn data(&self) -> &[u8] {
        &self.guard.bytes
    }

    /// Mutable view of the block contents; marks the buffer dirty.
    pub fn data_mut(&mut self) -> &mut [u8] {
        self.guard.dirty = true;
        &mut self.guard.bytes
    }

    /// Whether the cached contents differ from what was last written to the
    /// device.
    pub fn is_dirty(&self) -> bool {
        self.guard.dirty
    }

    /// Writes the buffer to the device (`bwrite`) and clears the dirty flag.
    ///
    /// Durability still requires a device flush; see
    /// [`BufferCache::flush_device`].
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn write(&mut self) -> KernelResult<()> {
        self.dev.write_block(self.blockno, &self.guard.bytes)?;
        self.guard.dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::RamDisk;

    fn cache(blocks: u64, capacity: usize) -> BufferCache {
        BufferCache::new(Arc::new(RamDisk::new(4096, blocks)), capacity)
    }

    /// A single-sharded cache: behaves like the old globally locked cache,
    /// including strict global LRU — used by the tests that assert exact
    /// eviction order.
    fn cache1(blocks: u64, capacity: usize) -> BufferCache {
        BufferCache::with_shards(Arc::new(RamDisk::new(4096, blocks)), capacity, 1)
    }

    #[test]
    fn bread_reads_device_once_then_hits_cache() {
        let c = cache(32, 8);
        {
            let mut b = c.bread(5).unwrap();
            b.data_mut()[0] = 42;
            b.write().unwrap();
        }
        {
            let b = c.bread(5).unwrap();
            assert_eq!(b.data()[0], 42);
        }
        let stats = c.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn modifications_persist_in_cache_without_write() {
        let c = cache(32, 8);
        {
            let mut b = c.bread(3).unwrap();
            b.data_mut()[7] = 99;
            assert!(b.is_dirty());
            // no write(): data stays only in the cache
        }
        let b = c.bread(3).unwrap();
        assert_eq!(b.data()[7], 99);
        // The device itself still has zeros.
        let mut raw = vec![0u8; 4096];
        c.device().read_block(3, &mut raw).unwrap();
        assert_eq!(raw[7], 0);
    }

    #[test]
    fn write_makes_data_reach_device() {
        let c = cache(32, 8);
        let mut b = c.bread(9).unwrap();
        b.data_mut()[0] = 0xEE;
        b.write().unwrap();
        assert!(!b.is_dirty());
        drop(b);
        let mut raw = vec![0u8; 4096];
        c.device().read_block(9, &mut raw).unwrap();
        assert_eq!(raw[0], 0xEE);
    }

    #[test]
    fn getblk_zeroed_skips_device_read() {
        let c = cache(32, 8);
        c.device().write_block(4, &vec![0xFFu8; 4096]).unwrap();
        let reads_before = c.device().stats().reads;
        let b = c.getblk_zeroed(4).unwrap();
        assert!(b.data().iter().all(|&x| x == 0));
        assert_eq!(c.device().stats().reads, reads_before);
    }

    #[test]
    fn eviction_prefers_clean_unlocked_lru() {
        let c = cache1(64, 2);
        {
            let mut b0 = c.bread(0).unwrap();
            b0.data_mut()[0] = 1;
            b0.write().unwrap();
        }
        {
            let mut b1 = c.bread(1).unwrap();
            b1.data_mut()[0] = 2;
            b1.write().unwrap();
        }
        // Touch block 1 so block 0 is LRU, then bring in block 2.
        drop(c.bread(1).unwrap());
        drop(c.bread(2).unwrap());
        let stats = c.stats();
        assert!(stats.cached <= 2, "cache grew past capacity: {}", stats.cached);
        // Re-reading block 0 must still return correct (device) data.
        let b0 = c.bread(0).unwrap();
        assert_eq!(b0.data()[0], 1);
    }

    #[test]
    fn dirty_buffers_are_not_evicted() {
        let c = cache1(64, 2);
        {
            let mut b0 = c.bread(0).unwrap();
            b0.data_mut()[0] = 0xAA; // dirty, never written
        }
        drop(c.bread(1).unwrap());
        drop(c.bread(2).unwrap());
        drop(c.bread(3).unwrap());
        // Block 0's modification must survive because dirty buffers are pinned.
        let b0 = c.bread(0).unwrap();
        assert_eq!(b0.data()[0], 0xAA);
    }

    #[test]
    fn out_of_range_is_rejected() {
        let c = cache(8, 4);
        assert_eq!(c.bread(8).unwrap_err().errno(), Errno::Inval);
        assert_eq!(c.getblk_zeroed(100).unwrap_err().errno(), Errno::Inval);
    }

    #[test]
    fn concurrent_breads_serialize_per_block() {
        use std::thread;
        let c = Arc::new(cache(16, 16));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    let mut b = c.bread(0).unwrap();
                    let v = u64::from_le_bytes(b.data()[..8].try_into().unwrap());
                    let bytes = (v + 1).to_le_bytes();
                    b.data_mut()[..8].copy_from_slice(&bytes);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let b = c.bread(0).unwrap();
        let v = u64::from_le_bytes(b.data()[..8].try_into().unwrap());
        assert_eq!(v, 800, "exclusive buffer lock must make increments atomic");
    }

    #[test]
    fn sharded_cache_respects_total_capacity() {
        // Fill a sharded cache far past its capacity with clean blocks: the
        // per-shard eviction must keep the total at (or below) capacity.
        let c = cache(4096, 64);
        assert!(c.shard_count() > 1, "default cache should be sharded");
        for blockno in 0..1024u64 {
            let mut b = c.bread(blockno).unwrap();
            b.data_mut()[0] = blockno as u8;
            b.write().unwrap();
        }
        assert!(
            c.stats().cached <= 64,
            "sharded eviction must bound the cache: {} > 64",
            c.stats().cached
        );
    }

    #[test]
    fn concurrent_breads_of_disjoint_blocks_make_progress() {
        use std::thread;
        let c = Arc::new(cache(4096, 1024));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                // Each thread owns a disjoint range of blocks.
                for round in 0..50u64 {
                    for i in 0..16u64 {
                        let blockno = t * 256 + i;
                        let mut b = c.bread(blockno).unwrap();
                        let v = u64::from_le_bytes(b.data()[..8].try_into().unwrap());
                        assert_eq!(v, round, "block {blockno} must see its own writes");
                        b.data_mut()[..8].copy_from_slice(&(round + 1).to_le_bytes());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = c.stats();
        assert!(stats.hits > 0 && stats.misses >= 8 * 16);
    }

    #[test]
    fn invalidate_clean_forces_reread() {
        let c = cache(16, 8);
        {
            let mut b = c.bread(2).unwrap();
            b.data_mut()[0] = 5;
            b.write().unwrap();
        }
        c.invalidate_clean();
        assert_eq!(c.stats().cached, 0);
        let b = c.bread(2).unwrap();
        assert_eq!(b.data()[0], 5);
        assert_eq!(c.stats().misses, 2);
    }
}
