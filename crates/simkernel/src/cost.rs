//! Latency / cost model for the simulated storage stack.
//!
//! The Bento paper's evaluation runs on an NVMe SSD (Samsung PM981) behind
//! the Linux block layer.  The performance differences it reports between
//! Bento, the in-kernel C baseline, and FUSE are driven by a small number of
//! mechanisms:
//!
//! 1. per-block device read/write latency and device bandwidth,
//! 2. the cost of a device cache FLUSH (issued on every xv6 log commit),
//! 3. the cost of a user/kernel boundary crossing (every FUSE request and
//!    every userspace `O_DIRECT` block I/O pays one), and
//! 4. the cost of syncing the *whole* backing disk file from userspace,
//!    because the file interface has no way to sync a sub-range (§6.4 of the
//!    paper).
//!
//! [`CostModel`] captures those parameters.  Devices and the FUSE simulation
//! charge costs by calling [`CostModel::charge`], which injects a real delay
//! (sleep for long waits, spin for short ones) so that wall-clock throughput
//! measured by the benchmark harness reflects the modelled hardware.  The
//! [`CostModel::zero`] preset disables all delays, which is what unit and
//! integration tests use.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Categories of charged costs, used for accounting/statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CostKind {
    /// A block read from the device medium.
    DeviceRead,
    /// A block write into the device write cache.
    DeviceWrite,
    /// A device cache flush (FLUSH / FUA barrier).
    DeviceFlush,
    /// A user/kernel boundary crossing (syscall entry+exit).
    BoundaryCrossing,
    /// Copying payload bytes across the user/kernel boundary.
    BoundaryCopy,
    /// A FUSE request round trip (daemon wakeup + scheduling).
    FuseRoundTrip,
    /// fsync of the whole backing disk file from userspace.
    UserspaceWholeFileSync,
}

/// Running totals of charged costs, in nanoseconds and counts.
#[derive(Debug, Default)]
pub struct CostCounters {
    reads: AtomicU64,
    writes: AtomicU64,
    flushes: AtomicU64,
    crossings: AtomicU64,
    fuse_round_trips: AtomicU64,
    whole_file_syncs: AtomicU64,
    total_ns: AtomicU64,
    /// Requests currently outstanding on the device (submitted, not yet
    /// completed).  The gauge behind the max/mean depth statistics.
    inflight: AtomicU64,
    inflight_max: AtomicU64,
    inflight_sum: AtomicU64,
    inflight_samples: AtomicU64,
}

/// A snapshot of [`CostCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    /// Number of device block reads charged.
    pub reads: u64,
    /// Number of device block writes charged.
    pub writes: u64,
    /// Number of device flushes charged.
    pub flushes: u64,
    /// Number of user/kernel boundary crossings charged.
    pub crossings: u64,
    /// Number of FUSE round trips charged.
    pub fuse_round_trips: u64,
    /// Number of whole-file syncs charged.
    pub whole_file_syncs: u64,
    /// Total simulated nanoseconds charged.
    pub total_ns: u64,
    /// Peak number of requests outstanding on the device at once.  Stays at
    /// 1 for synchronous devices; rises with the queue depth when the
    /// multi-queue device overlaps in-flight requests.
    pub max_inflight: u64,
    /// Sum of the outstanding-request depth sampled at every submission
    /// (`inflight_sum / inflight_samples` is the mean depth).
    pub inflight_sum: u64,
    /// Number of depth samples taken (one per submission).
    pub inflight_samples: u64,
}

impl CostSnapshot {
    /// Mean outstanding-request depth over all submissions (0.0 when no
    /// request was ever submitted).
    pub fn mean_inflight(&self) -> f64 {
        if self.inflight_samples == 0 {
            0.0
        } else {
            self.inflight_sum as f64 / self.inflight_samples as f64
        }
    }
}

/// The latency model applied by simulated devices and boundaries.
///
/// All values are in nanoseconds.  Construct via [`CostModel::zero`] (tests)
/// or [`CostModel::nvme_ssd`] (benchmarks), or build a custom model with
/// struct-update syntax starting from one of the presets.
///
/// # Example
///
/// ```
/// use simkernel::cost::CostModel;
///
/// let fast = CostModel::zero();
/// assert_eq!(fast.block_read_ns, 0);
///
/// let custom = CostModel { block_read_ns: 10_000, ..CostModel::zero() };
/// assert_eq!(custom.block_read_ns, 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Latency of reading one block (4 KiB) from the device medium.
    pub block_read_ns: u64,
    /// Latency of writing one block (4 KiB) into the device write cache.
    pub block_write_ns: u64,
    /// Base latency of a device cache FLUSH command.
    pub flush_base_ns: u64,
    /// Additional FLUSH latency per block that was dirty in the device write
    /// cache when the flush was issued.
    pub flush_per_dirty_block_ns: u64,
    /// Latency of one user/kernel boundary crossing (the paper measures
    /// 200–400 ns added to each userspace block operation).
    pub crossing_ns: u64,
    /// Per-byte cost of copying payload across the user/kernel boundary.
    pub copy_per_byte_ns: u64,
    /// Fixed latency of a FUSE request round trip (daemon wakeup, context
    /// switches, request dispatch).
    pub fuse_round_trip_ns: u64,
    /// Base latency of fsync()ing the whole backing disk file from
    /// userspace (the FUSE baseline has no way to sync a sub-range).
    pub whole_file_sync_base_ns: u64,
    /// Additional whole-file-sync latency per block written since the last
    /// sync.
    pub whole_file_sync_per_block_ns: u64,
    /// Whether to actually inject wall-clock delays.  When `false` the model
    /// only does accounting (used by deterministic tests that still want to
    /// inspect counters).
    pub inject_delays: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::zero()
    }
}

impl CostModel {
    /// A model with every latency set to zero and delay injection disabled.
    ///
    /// This is the model used by unit and integration tests.
    pub fn zero() -> Self {
        CostModel {
            block_read_ns: 0,
            block_write_ns: 0,
            flush_base_ns: 0,
            flush_per_dirty_block_ns: 0,
            crossing_ns: 0,
            copy_per_byte_ns: 0,
            fuse_round_trip_ns: 0,
            whole_file_sync_base_ns: 0,
            whole_file_sync_per_block_ns: 0,
            inject_delays: false,
        }
    }

    /// A model calibrated to reproduce the *shape* of the paper's NVMe SSD
    /// results (see DESIGN.md §7 and EXPERIMENTS.md).
    ///
    /// * 4 KiB read ≈ 60 µs from the medium (reads are normally absorbed by
    ///   the page cache, as in the paper).
    /// * 4 KiB synchronous write ≈ 10 µs into the device write cache
    ///   (≈ 400 MB/s raw).
    /// * FLUSH ≈ 40 µs + 0.5 µs per dirty block — what every xv6 log commit
    ///   pays in the kernel.
    /// * boundary crossing ≈ 350 ns (paper: 200–400 ns per userspace block
    ///   operation).
    /// * FUSE round trip ≈ 15 µs (daemon wakeup and scheduling).
    /// * whole-disk-file fsync ≈ 12 ms + 15 µs per block written since the
    ///   last sync — what every xv6 log commit pays under FUSE (§6.4); the
    ///   disk file is the whole SSD partition, so its fsync is far more
    ///   expensive than the scoped FLUSH the kernel path issues.
    pub fn nvme_ssd() -> Self {
        CostModel {
            block_read_ns: 60_000,
            block_write_ns: 10_000,
            flush_base_ns: 40_000,
            flush_per_dirty_block_ns: 500,
            crossing_ns: 350,
            copy_per_byte_ns: 0,
            fuse_round_trip_ns: 15_000,
            whole_file_sync_base_ns: 12_000_000,
            whole_file_sync_per_block_ns: 15_000,
            inject_delays: true,
        }
    }

    /// A scaled-down version of [`CostModel::nvme_ssd`] for quick Criterion
    /// runs: identical ratios, every latency divided by `divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.  A zero divisor is always a caller bug
    /// (it would previously be silently clamped to 1, hiding the mistake
    /// behind unscaled latencies).
    pub fn nvme_ssd_scaled(divisor: u64) -> Self {
        assert!(divisor != 0, "nvme_ssd_scaled: divisor must be nonzero");
        let d = divisor;
        let m = CostModel::nvme_ssd();
        CostModel {
            block_read_ns: m.block_read_ns / d,
            block_write_ns: m.block_write_ns / d,
            flush_base_ns: m.flush_base_ns / d,
            flush_per_dirty_block_ns: m.flush_per_dirty_block_ns / d,
            crossing_ns: m.crossing_ns / d,
            copy_per_byte_ns: m.copy_per_byte_ns / d,
            fuse_round_trip_ns: m.fuse_round_trip_ns / d,
            whole_file_sync_base_ns: m.whole_file_sync_base_ns / d,
            whole_file_sync_per_block_ns: m.whole_file_sync_per_block_ns / d,
            inject_delays: true,
        }
    }

    /// Charges `ns` nanoseconds of kind `kind`: records it in `counters` and
    /// (if `inject_delays` is set) injects a matching wall-clock delay.
    pub fn charge(&self, counters: &CostCounters, kind: CostKind, ns: u64) {
        counters.record(kind, ns);
        if self.inject_delays && ns > 0 {
            delay_ns(ns);
        }
    }
}

impl CostCounters {
    /// Creates a fresh set of counters.
    pub fn new() -> Self {
        CostCounters::default()
    }

    /// Records `ns` nanoseconds of kind `kind` without injecting any
    /// wall-clock delay.  The queued device uses this at submission time:
    /// the charged time is the request's *service* time, but the wall-clock
    /// wait only materializes later, when a completion is reaped — that gap
    /// is exactly the in-flight overlap the multi-queue model exists to
    /// express.
    pub fn record(&self, kind: CostKind, ns: u64) {
        match kind {
            CostKind::DeviceRead => self.reads.fetch_add(1, Ordering::Relaxed),
            CostKind::DeviceWrite => self.writes.fetch_add(1, Ordering::Relaxed),
            CostKind::DeviceFlush => self.flushes.fetch_add(1, Ordering::Relaxed),
            CostKind::BoundaryCrossing => self.crossings.fetch_add(1, Ordering::Relaxed),
            CostKind::BoundaryCopy => 0,
            CostKind::FuseRoundTrip => self.fuse_round_trips.fetch_add(1, Ordering::Relaxed),
            CostKind::UserspaceWholeFileSync => {
                self.whole_file_syncs.fetch_add(1, Ordering::Relaxed)
            }
        };
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one request entering the device: bumps the in-flight gauge
    /// and folds the new depth into the max/mean statistics.  Returns the
    /// depth observed (this request included).
    pub fn io_submitted(&self) -> u64 {
        let depth = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.inflight_max.fetch_max(depth, Ordering::Relaxed);
        self.inflight_sum.fetch_add(depth, Ordering::Relaxed);
        self.inflight_samples.fetch_add(1, Ordering::Relaxed);
        depth
    }

    /// Records one request completing (the in-flight gauge drops by one).
    pub fn io_completed(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently outstanding.
    pub fn inflight_now(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            crossings: self.crossings.load(Ordering::Relaxed),
            fuse_round_trips: self.fuse_round_trips.load(Ordering::Relaxed),
            whole_file_syncs: self.whole_file_syncs.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_inflight: self.inflight_max.load(Ordering::Relaxed),
            inflight_sum: self.inflight_sum.load(Ordering::Relaxed),
            inflight_samples: self.inflight_samples.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (the in-flight gauge included; callers
    /// reset only at quiescent instants).
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.crossings.store(0, Ordering::Relaxed);
        self.fuse_round_trips.store(0, Ordering::Relaxed);
        self.whole_file_syncs.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.inflight.store(0, Ordering::Relaxed);
        self.inflight_max.store(0, Ordering::Relaxed);
        self.inflight_sum.store(0, Ordering::Relaxed);
        self.inflight_samples.store(0, Ordering::Relaxed);
    }
}

/// Injects a wall-clock delay of approximately `ns` nanoseconds.
///
/// Delays of 100 µs or more use `thread::sleep` (so other simulated threads
/// can run); shorter delays spin on `Instant::now()` for precision.
pub fn delay_ns(ns: u64) {
    const SLEEP_THRESHOLD_NS: u64 = 100_000;
    let start = Instant::now();
    let target = Duration::from_nanos(ns);
    if ns >= SLEEP_THRESHOLD_NS {
        // Sleep slightly short of the target and spin the remainder.
        std::thread::sleep(Duration::from_nanos(ns - ns / 20));
    }
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_charges_only_accounting() {
        let model = CostModel::zero();
        let counters = CostCounters::new();
        model.charge(&counters, CostKind::DeviceWrite, 0);
        model.charge(&counters, CostKind::DeviceWrite, 0);
        model.charge(&counters, CostKind::DeviceFlush, 0);
        let snap = counters.snapshot();
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.total_ns, 0);
    }

    #[test]
    fn nvme_model_has_sane_relationships() {
        let m = CostModel::nvme_ssd();
        // A whole-file sync must dwarf a normal flush: that is the FUSE story.
        assert!(m.whole_file_sync_base_ns > 10 * m.flush_base_ns);
        // Crossing cost matches the paper's 200-400ns measurement.
        assert!(m.crossing_ns >= 200 && m.crossing_ns <= 400);
        // Reads from the medium are slower than cached writes.
        assert!(m.block_read_ns > m.block_write_ns);
    }

    #[test]
    fn scaled_model_divides_latencies() {
        let m = CostModel::nvme_ssd();
        let s = CostModel::nvme_ssd_scaled(10);
        assert_eq!(s.block_read_ns, m.block_read_ns / 10);
        assert_eq!(s.whole_file_sync_base_ns, m.whole_file_sync_base_ns / 10);
    }

    #[test]
    fn delay_injection_waits_roughly_right() {
        let model = CostModel { inject_delays: true, ..CostModel::zero() };
        let counters = CostCounters::new();
        let start = Instant::now();
        model.charge(&counters, CostKind::DeviceRead, 200_000);
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_micros(200), "elapsed {elapsed:?}");
        // Generous upper bound: scheduling noise on a loaded single core.
        assert!(elapsed < Duration::from_millis(100), "elapsed {elapsed:?}");
    }

    #[test]
    #[should_panic(expected = "divisor must be nonzero")]
    fn scaled_model_rejects_zero_divisor() {
        let _ = CostModel::nvme_ssd_scaled(0);
    }

    #[test]
    fn inflight_depth_tracks_max_and_mean() {
        let counters = CostCounters::new();
        // Depths observed: 1, 2, 3, then drain, then 1.
        counters.io_submitted();
        counters.io_submitted();
        counters.io_submitted();
        counters.io_completed();
        counters.io_completed();
        counters.io_completed();
        counters.io_submitted();
        counters.io_completed();
        let snap = counters.snapshot();
        assert_eq!(snap.max_inflight, 3);
        assert_eq!(snap.inflight_samples, 4);
        assert_eq!(snap.inflight_sum, 1 + 2 + 3 + 1);
        assert!((snap.mean_inflight() - 7.0 / 4.0).abs() < 1e-9);
        assert_eq!(counters.inflight_now(), 0);
    }

    #[test]
    fn record_accounts_without_delay() {
        let counters = CostCounters::new();
        let start = Instant::now();
        counters.record(CostKind::DeviceWrite, 50_000_000);
        assert!(start.elapsed() < Duration::from_millis(40), "record must not sleep");
        let snap = counters.snapshot();
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.total_ns, 50_000_000);
    }

    #[test]
    fn counters_reset() {
        let counters = CostCounters::new();
        let model = CostModel::zero();
        model.charge(&counters, CostKind::BoundaryCrossing, 5);
        assert_eq!(counters.snapshot().crossings, 1);
        counters.reset();
        assert_eq!(counters.snapshot(), CostSnapshot::default());
    }
}
