//! Latency instrumentation shared by every workload driver.
//!
//! [`LatencyHistogram`] is an HDR-style log-bucketed histogram: values are
//! binned into power-of-two octaves, each split into
//! [`SUB_BUCKETS`](LatencyHistogram::SUB_BUCKETS) linear sub-buckets, so
//! recording is O(1), memory is a fixed ~15 KiB regardless of range, and any
//! reported quantile has a bounded relative error of `1 / SUB_BUCKETS`
//! (≈3.1%).  This is the one stopwatch implementation in the workspace: the
//! `workloads` micro-loops, the `loadgen` drivers, and the bench experiments
//! all record through it, so p50/p99/p99.9 are computed the same way
//! everywhere.
//!
//! The intended pattern under concurrency is per-thread histograms merged at
//! the end of a run ([`LatencyHistogram::merge`]) — recording takes `&mut
//! self` and stays lock-free.

use std::time::{Duration, Instant};

/// Number of linear sub-buckets per power-of-two octave (as a `u64`).
const SUB: u64 = 1 << LatencyHistogram::SUB_BUCKET_BITS;

/// Total bucket count: values below [`SUB`] get exact unit buckets; above,
/// each of the remaining octaves (up to 2^63) contributes [`SUB`] buckets.
const BUCKETS: usize = ((64 - LatencyHistogram::SUB_BUCKET_BITS as usize)
    << LatencyHistogram::SUB_BUCKET_BITS as usize)
    + SUB as usize;

/// A log-bucketed latency histogram over `u64` nanosecond values.
///
/// # Example
///
/// ```
/// use simkernel::metrics::LatencyHistogram;
///
/// let mut hist = LatencyHistogram::new();
/// for v in 1..=100u64 {
///     hist.record(v * 1_000); // 1µs .. 100µs
/// }
/// assert_eq!(hist.count(), 100);
/// let p50 = hist.percentile(50.0);
/// assert!((45_000..=55_000).contains(&p50));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    total: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// log2 of the number of linear sub-buckets per octave.  32 sub-buckets
    /// bound the relative quantile error at 1/32 ≈ 3.1%.
    pub const SUB_BUCKET_BITS: u32 = 5;

    /// Number of linear sub-buckets per octave.
    pub const SUB_BUCKETS: u64 = SUB;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { buckets: vec![0; BUCKETS], count: 0, total: 0, min: u64::MAX, max: 0 }
    }

    /// The bucket index for `value`: exact unit buckets below
    /// [`Self::SUB_BUCKETS`], then `SUB_BUCKETS` linear sub-buckets per
    /// power-of-two octave.
    fn index(value: u64) -> usize {
        if value < SUB {
            value as usize
        } else {
            let top = 63 - value.leading_zeros(); // >= SUB_BUCKET_BITS
            let shift = top - Self::SUB_BUCKET_BITS;
            (((shift as usize) + 1) << Self::SUB_BUCKET_BITS as usize)
                + ((value >> shift) & (SUB - 1)) as usize
        }
    }

    /// The largest value mapping to bucket `idx` (what quantiles report, so
    /// reported percentiles never understate the observed latency).
    fn bucket_upper_bound(idx: usize) -> u64 {
        if idx < SUB as usize {
            idx as u64
        } else {
            let block = (idx >> Self::SUB_BUCKET_BITS as usize) as u32;
            let offset = idx as u64 & (SUB - 1);
            let shift = block - 1;
            // `- 1` before adding the bucket width: the top octave's last
            // bucket ends exactly at `u64::MAX` and would overflow otherwise.
            ((SUB + offset) << shift) - 1 + (1u64 << shift)
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.total += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`Duration`] as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Times `f` and records the elapsed nanoseconds, returning `f`'s
    /// result — the shared stopwatch used by every workload loop.
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record_duration(start.elapsed());
        out
    }

    /// Folds `other` into `self` (used to merge per-thread histograms).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (exact, not bucketed; 0 when
    /// empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// The value at percentile `p` (e.g. `50.0`, `99.0`, `99.9`): the upper
    /// bound of the bucket holding the rank-`ceil(p/100·count)` value, so
    /// the result is within one sub-bucket (≤3.2% relative error) above the
    /// true quantile.  Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Never report past the observed extremes.
                return Self::bucket_upper_bound(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Convenience: (p50, p90, p99, p99.9) in one call.
    pub fn quartet(&self) -> (u64, u64, u64, u64) {
        (self.percentile(50.0), self.percentile(90.0), self.percentile(99.0), self.percentile(99.9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        // Every value maps to a bucket no earlier than its predecessor's,
        // and the first value of each octave lands on the next index after
        // the previous octave's last.
        let mut last = 0usize;
        for v in 0u64..4096 {
            let idx = LatencyHistogram::index(v);
            assert!(idx >= last, "index must be monotone at {v}");
            assert!(idx - last <= 1, "no gaps at {v}");
            last = idx;
        }
        // Boundary spot checks: 31 is the last exact bucket, 32 starts the
        // first scaled octave, 64 the next.
        assert_eq!(LatencyHistogram::index(31), 31);
        assert_eq!(LatencyHistogram::index(32), 32);
        assert_eq!(LatencyHistogram::index(63), 63);
        assert_eq!(LatencyHistogram::index(64), 64);
        assert_eq!(LatencyHistogram::index(127), 95);
        assert_eq!(LatencyHistogram::index(128), 96);
    }

    #[test]
    fn bucket_upper_bound_inverts_index() {
        for v in [0u64, 1, 31, 32, 63, 64, 100, 1000, 4095, 4096, 1 << 20, u64::MAX / 2] {
            let idx = LatencyHistogram::index(v);
            let hi = LatencyHistogram::bucket_upper_bound(idx);
            assert!(hi >= v, "upper bound {hi} must cover {v}");
            // The upper bound itself maps back into the same bucket.
            assert_eq!(LatencyHistogram::index(hi), idx, "bound of {v} maps elsewhere");
            // The next value starts a new bucket.
            assert_eq!(LatencyHistogram::index(hi + 1), idx + 1, "bucket after {v} not adjacent");
        }
    }

    #[test]
    fn exact_quantiles_on_small_values() {
        // Values below SUB_BUCKETS have exact unit buckets, so quantiles on
        // them are exact (golden values).
        let mut h = LatencyHistogram::new();
        for v in 1..=20u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(5.0), 1);
        assert_eq!(h.percentile(50.0), 10);
        assert_eq!(h.percentile(95.0), 19);
        assert_eq!(h.percentile(100.0), 20);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 20);
        assert!((h.mean() - 10.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_on_large_values_have_bounded_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1_000); // 1µs .. 10ms
        }
        for (p, exact) in [(50.0, 5_000_000u64), (90.0, 9_000_000), (99.0, 9_900_000)] {
            let got = h.percentile(p);
            assert!(got >= exact, "p{p} must not understate: {got} < {exact}");
            let rel = (got - exact) as f64 / exact as f64;
            assert!(rel <= 1.0 / 32.0 + 1e-9, "p{p} error {rel} exceeds sub-bucket bound");
        }
        assert_eq!(h.percentile(100.0), 10_000_000);
    }

    #[test]
    fn percentile_never_escapes_observed_range() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_003);
        // A single sample: every percentile is that sample, not the bucket
        // boundary above it.
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 1_000_003);
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 1..=500u64 {
            let scaled = v * 977; // spread across octaves
            if v % 2 == 0 {
                a.record(scaled);
            } else {
                b.record(scaled);
            }
            whole.record(scaled);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p{p} differs after merge");
        }
    }

    #[test]
    fn merging_an_empty_histogram_changes_nothing() {
        let mut a = LatencyHistogram::new();
        for v in [3u64, 700, 41_000] {
            a.record(v);
        }
        let before = (a.count(), a.min(), a.max(), a.mean(), a.percentile(99.0));
        a.merge(&LatencyHistogram::new());
        assert_eq!((a.count(), a.min(), a.max(), a.mean(), a.percentile(99.0)), before);
        // And the mirror case: empty absorbing non-empty equals the source.
        let mut empty = LatencyHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), a.count());
        assert_eq!(empty.min(), a.min());
        assert_eq!(empty.max(), a.max());
        // Merging two empties stays empty with the zero-valued accessors.
        let mut both = LatencyHistogram::new();
        both.merge(&LatencyHistogram::new());
        assert!(both.is_empty());
        assert_eq!(both.min(), 0);
        assert_eq!(both.max(), 0);
    }

    #[test]
    fn percentile_on_empty_histogram_is_zero_for_any_p() {
        let h = LatencyHistogram::new();
        for p in [0.0, 50.0, 99.0, 99.9, 100.0, -5.0, 250.0] {
            assert_eq!(h.percentile(p), 0, "empty percentile({p}) must be 0");
        }
        assert_eq!(h.quartet(), (0, 0, 0, 0));
    }

    #[test]
    fn merge_preserves_exact_min_max_across_disjoint_ranges() {
        // Low histogram: 10..=50; high histogram: 1M..=2M — disjoint, with
        // the true min in one side and the true max in the other.
        let mut low = LatencyHistogram::new();
        for v in (10u64..=50).step_by(10) {
            low.record(v);
        }
        let mut high = LatencyHistogram::new();
        for v in [1_000_003u64, 1_500_000, 2_000_017] {
            high.record(v);
        }
        let mut merged = low.clone();
        merged.merge(&high);
        assert_eq!(merged.min(), 10, "min must come from the low range, exactly");
        assert_eq!(merged.max(), 2_000_017, "max must come from the high range, exactly");
        // Merge order must not matter.
        let mut reversed = high.clone();
        reversed.merge(&low);
        assert_eq!(reversed.min(), 10);
        assert_eq!(reversed.max(), 2_000_017);
        // Percentiles stay clamped inside the observed extremes.
        assert!(merged.percentile(0.0) >= 10);
        assert_eq!(merged.percentile(100.0), 2_000_017);
    }

    #[test]
    fn time_records_one_sample() {
        let mut h = LatencyHistogram::new();
        let out = h.time(|| 7u32);
        assert_eq!(out, 7);
        assert_eq!(h.count(), 1);
        assert!(h.max() > 0, "elapsed time must be recorded");
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record_duration(Duration::from_secs(u64::MAX / 1_000_000_000));
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(1.0), 0);
        assert_eq!(h.percentile(100.0), u64::MAX);
    }
}
