//! # simkernel — a simulated Linux kernel substrate
//!
//! The Bento paper ([FAST '21]) builds a framework that lets kernel file
//! systems be written in safe Rust.  Bento sits between two kernel-provided
//! surfaces:
//!
//! * **above** the file system: the VFS layer, which resolves paths, manages
//!   the dentry/inode/file-descriptor tables and the page cache, and calls
//!   into the registered file system through an operations table;
//! * **below** the file system: kernel services, primarily block I/O through
//!   the buffer cache (`sb_bread` / `brelse`) on top of a block device.
//!
//! Running a real kernel module is not possible in this environment, so this
//! crate reproduces those surfaces faithfully in userspace:
//!
//! * [`dev`] — block devices: a [`dev::RamDisk`] and an [`dev::SsdDevice`]
//!   wrapper that injects a calibrated NVMe-SSD latency model (per-block
//!   read/write cost, volatile write cache, FLUSH cost) and records
//!   statistics.
//! * [`queue`] — the completion-based multi-queue device model
//!   ([`queue::MultiQueueDevice`]): NVMe-style submission/completion queue
//!   pairs with configurable depth, batch submission, interrupt-vs-poll
//!   completion, and cost charging that overlaps in-flight requests instead
//!   of summing them serially.  The write-ahead logs use it for two-stage
//!   overlapped commit.
//! * [`buffer`] — a buffer cache with xv6/Linux `bread`/`bwrite`/`brelse`
//!   semantics; buffers are handed out as RAII guards.
//! * [`pagecache`] — a per-file page cache with dirty tracking and both
//!   `writepage` (single page) and `writepages` (batched) writeback paths,
//!   which is the mechanism behind the paper's Bento-vs-VFS write difference.
//! * [`vfs`] — the virtual file system layer: file system registration,
//!   mounting, path resolution, a file-descriptor table, and POSIX-like
//!   syscalls (`open`, `read`, `write`, `fsync`, `mkdir`, `rename`, ...).
//!   File systems plug in by implementing [`vfs::VfsFs`].
//! * [`cost`] — the latency/cost model shared by the devices and the FUSE
//!   simulation, with a zero-cost preset for tests and an NVMe preset for the
//!   paper's experiments.
//! * [`shard`] — the sharded concurrency substrate ([`shard::ShardedMap`],
//!   [`shard::StripedCounter`]) under the buffer cache, page cache, and fd
//!   table, so the paper's 32-thread workloads do not serialize on global
//!   map locks.
//! * [`nslock`] — per-directory namespace locks ([`nslock::DirLockTable`]):
//!   one lock per directory inode with an ascending-inum ordering
//!   discipline (checked at runtime in debug builds), so concurrent
//!   creates/unlinks/renames in different directories never share a lock.
//! * [`sync`] — kernel-flavoured synchronization wrappers.
//! * [`hash`] — dependency-free FNV-1a checksums used by on-disk records
//!   that must survive torn writes (log commit records, checkpoints).
//! * [`metrics`] — the shared log-bucketed latency histogram
//!   ([`metrics::LatencyHistogram`]) every workload driver records
//!   per-operation latency through, so p50/p99/p99.9 mean the same thing in
//!   every BENCH row.
//! * [`trace`] — always-compiled-in op tracing: per-op spans with
//!   exclusive-time phase attribution (namespace-lock wait, journal
//!   reserve/stage/commit wait, device I/O) recorded into per-thread rings;
//!   the disabled path is a single relaxed atomic load.
//! * [`registry`] — the unified metrics registry: named counters and
//!   latency histograms from every stats surface behind one snapshot API.
//!
//! The crate is intentionally free of `unsafe` code.
//!
//! [FAST '21]: https://www.usenix.org/conference/fast21/presentation/miller
//!
//! ## Example
//!
//! ```
//! use simkernel::dev::{BlockDevice, RamDisk};
//!
//! let disk = RamDisk::new(4096, 128);
//! let mut buf = vec![0u8; 4096];
//! disk.write_block(3, &vec![0xabu8; 4096]).unwrap();
//! disk.read_block(3, &mut buf).unwrap();
//! assert!(buf.iter().all(|&b| b == 0xab));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod cost;
pub mod dev;
pub mod error;
pub mod hash;
pub mod memfs;
pub mod metrics;
pub mod nslock;
pub mod pagecache;
pub mod queue;
pub mod registry;
pub mod shard;
pub mod sync;
pub mod trace;
pub mod vfs;

pub use cost::CostModel;
pub use error::{Errno, KernelError, KernelResult};
