//! Unified metrics registry: one snapshot for every stats surface.
//!
//! The workspace grew four ad-hoc stats structs — the xv6 cores' `FsStats`,
//! the journals' `JournalStats`, the VFS-visible
//! [`WritePathStats`](crate::vfs::WritePathStats), and the cost model's
//! queue-depth gauges ([`crate::cost::CostCounters`]) — each with its own
//! accessor and its own consumer.  The [`MetricsRegistry`] absorbs them
//! all: producers publish **named counters** and **named latency
//! histograms** ([`crate::metrics::LatencyHistogram`]) under stable
//! dotted keys (`"Bento.journal.commits"`), and one
//! [`MetricsRegistry::snapshot`] call
//! returns everything, ready to be serialized into BENCH JSON rows by the
//! `bench` crate.
//!
//! Publishing is pull-shaped: the stats structs keep their lock-free
//! striped counters on the hot path, and a harness (the mounted-stack
//! helper in `workloads`, or an experiment) copies them into the registry
//! at snapshot points.  The registry itself is therefore never on an I/O
//! fast path and a pair of mutexed maps is plenty.
//!
//! # Example
//!
//! ```
//! use simkernel::registry::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! registry.set_counter("Bento.journal.commits", 17);
//! registry.add_counter("Bento.fs.creates", 3);
//! registry.observe_ns("Bento.fsync", 42_000);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("Bento.journal.commits"), Some(17));
//! assert_eq!(snap.histograms["Bento.fsync"].count, 1);
//! ```

use std::collections::BTreeMap;
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::metrics::LatencyHistogram;

/// The unified registry: named counters + named latency histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, LatencyHistogram>>,
}

/// Summary of one named histogram inside a [`MetricsSnapshot`] (values in
/// the unit the producer recorded, nanoseconds by convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// 50th percentile.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// A point-in-time copy of everything in a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All named counters, sorted by key.
    pub counters: BTreeMap<String, u64>,
    /// All named histograms, summarized, sorted by key.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Looks up a counter by exact key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.get(key).copied()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry (tests; most callers use
    /// [`MetricsRegistry::global`]).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide registry every stack publishes into.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Sets counter `key` to `value` (last write wins — the shape for
    /// publishing a snapshot of an external counter).
    pub fn set_counter(&self, key: &str, value: u64) {
        self.counters.lock().insert(key.to_string(), value);
    }

    /// Adds `delta` to counter `key` (creating it at zero).
    pub fn add_counter(&self, key: &str, delta: u64) {
        *self.counters.lock().entry(key.to_string()).or_insert(0) += delta;
    }

    /// Records one value into histogram `key` (creating it empty).
    pub fn observe_ns(&self, key: &str, value_ns: u64) {
        self.histograms.lock().entry(key.to_string()).or_default().record(value_ns);
    }

    /// Folds a whole histogram into histogram `key` — how per-run,
    /// per-thread histograms are absorbed without re-recording samples.
    pub fn merge_histogram(&self, key: &str, other: &LatencyHistogram) {
        self.histograms.lock().entry(key.to_string()).or_default().merge(other);
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self.counters.lock().clone();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|(key, h)| {
                let (p50, _, p99, p999) = h.quartet();
                (
                    key.clone(),
                    HistogramSummary {
                        count: h.count(),
                        mean: h.mean(),
                        min: h.min(),
                        max: h.max(),
                        p50,
                        p99,
                        p999,
                    },
                )
            })
            .collect();
        MetricsSnapshot { counters, histograms }
    }

    /// Clears every counter and histogram (a new measurement window).
    pub fn reset(&self) {
        self.counters.lock().clear();
        self.histograms.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_set_add_and_snapshot() {
        let r = MetricsRegistry::new();
        r.set_counter("a.commits", 5);
        r.set_counter("a.commits", 7);
        r.add_counter("a.creates", 2);
        r.add_counter("a.creates", 3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.commits"), Some(7), "set is last-write-wins");
        assert_eq!(snap.counter("a.creates"), Some(5), "add accumulates");
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histograms_merge_and_summarize() {
        let r = MetricsRegistry::new();
        for v in 1..=100u64 {
            r.observe_ns("lat", v * 1_000);
        }
        let mut extra = LatencyHistogram::new();
        extra.record(500_000);
        r.merge_histogram("lat", &extra);
        let snap = r.snapshot();
        let s = &snap.histograms["lat"];
        assert_eq!(s.count, 101);
        assert_eq!(s.min, 1_000);
        assert_eq!(s.max, 500_000);
        assert!(s.p99 >= s.p50);
        assert!(s.p999 >= s.p99);
    }

    #[test]
    fn reset_clears_everything_and_keys_are_sorted() {
        let r = MetricsRegistry::new();
        r.set_counter("z.last", 1);
        r.set_counter("a.first", 1);
        let keys: Vec<String> = r.snapshot().counters.keys().cloned().collect();
        assert_eq!(keys, vec!["a.first", "z.last"], "snapshot keys are sorted");
        r.reset();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
