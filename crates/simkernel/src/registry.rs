//! Unified metrics registry: one snapshot for every stats surface.
//!
//! The workspace grew four ad-hoc stats structs — the xv6 cores' `FsStats`,
//! the journals' `JournalStats`, the VFS-visible
//! [`WritePathStats`](crate::vfs::WritePathStats), and the cost model's
//! queue-depth gauges ([`crate::cost::CostCounters`]) — each with its own
//! accessor and its own consumer.  The [`MetricsRegistry`] absorbs them
//! all: producers publish **named counters** and **named latency
//! histograms** ([`crate::metrics::LatencyHistogram`]) under stable
//! dotted keys (`"Bento.journal.commits"`), and one
//! [`MetricsRegistry::snapshot`] call
//! returns everything, ready to be serialized into BENCH JSON rows by the
//! `bench` crate.
//!
//! Publishing is pull-shaped: the stats structs keep their lock-free
//! striped counters on the hot path, and a harness (the mounted-stack
//! helper in `workloads`, or an experiment) copies them into the registry
//! at snapshot points.  The registry itself is therefore never on an I/O
//! fast path and a pair of mutexed maps is plenty.
//!
//! # Duplicate names
//!
//! Keys are not pre-registered, so "duplicate registration" cannot fail —
//! it merges.  Two producers publishing the same counter key observe
//! last-write-wins under [`MetricsRegistry::set_counter`] and additive
//! merge under [`MetricsRegistry::add_counter`]; histogram keys merge
//! samples ([`MetricsRegistry::observe_ns`] /
//! [`MetricsRegistry::merge_histogram`]).  Producers that need isolation
//! must namespace their keys (the convention is a dotted
//! `"<stack>.<subsystem>.<metric>"` prefix).  This behavior is pinned by
//! the `duplicate_names_merge_not_error` test below.
//!
//! # Windowed consumption
//!
//! Time-series consumers (the `monitor` crate's health sampler) take a
//! snapshot per window and difference consecutive snapshots with
//! [`MetricsSnapshot::counter_deltas`] — the registry stays cumulative,
//! and windowing is entirely the consumer's business.
//!
//! # Example
//!
//! ```
//! use simkernel::registry::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! registry.set_counter("Bento.journal.commits", 17);
//! registry.add_counter("Bento.fs.creates", 3);
//! registry.observe_ns("Bento.fsync", 42_000);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("Bento.journal.commits"), Some(17));
//! assert_eq!(snap.histograms["Bento.fsync"].count, 1);
//! ```

use std::collections::BTreeMap;
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::metrics::LatencyHistogram;

/// The unified registry: named counters + named latency histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, LatencyHistogram>>,
}

/// Summary of one named histogram inside a [`MetricsSnapshot`] (values in
/// the unit the producer recorded, nanoseconds by convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// 50th percentile.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// A point-in-time copy of everything in a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All named counters, sorted by key.
    pub counters: BTreeMap<String, u64>,
    /// All named histograms, summarized, sorted by key.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Looks up a counter by exact key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.get(key).copied()
    }

    /// Per-key counter increase since `earlier` (`self` is the later
    /// snapshot).  Keys absent from `earlier` count from zero; keys whose
    /// value went *down* (a producer republished after its own reset)
    /// saturate to zero rather than wrapping, and keys only present in
    /// `earlier` are omitted — a window delta is about what grew.
    pub fn counter_deltas(&self, earlier: &MetricsSnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(key, &now)| {
                let before = earlier.counter(key).unwrap_or(0);
                (key.clone(), now.saturating_sub(before))
            })
            .collect()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry (tests; most callers use
    /// [`MetricsRegistry::global`]).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide registry every stack publishes into.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Sets counter `key` to `value` (last write wins — the shape for
    /// publishing a snapshot of an external counter).
    pub fn set_counter(&self, key: &str, value: u64) {
        self.counters.lock().insert(key.to_string(), value);
    }

    /// Adds `delta` to counter `key` (creating it at zero).
    pub fn add_counter(&self, key: &str, delta: u64) {
        *self.counters.lock().entry(key.to_string()).or_insert(0) += delta;
    }

    /// Records one value into histogram `key` (creating it empty).
    pub fn observe_ns(&self, key: &str, value_ns: u64) {
        self.histograms.lock().entry(key.to_string()).or_default().record(value_ns);
    }

    /// Folds a whole histogram into histogram `key` — how per-run,
    /// per-thread histograms are absorbed without re-recording samples.
    pub fn merge_histogram(&self, key: &str, other: &LatencyHistogram) {
        self.histograms.lock().entry(key.to_string()).or_default().merge(other);
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self.counters.lock().clone();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|(key, h)| {
                let (p50, _, p99, p999) = h.quartet();
                (
                    key.clone(),
                    HistogramSummary {
                        count: h.count(),
                        mean: h.mean(),
                        min: h.min(),
                        max: h.max(),
                        p50,
                        p99,
                        p999,
                    },
                )
            })
            .collect();
        MetricsSnapshot { counters, histograms }
    }

    /// Clears every counter and histogram (a new measurement window).
    pub fn reset(&self) {
        self.counters.lock().clear();
        self.histograms.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_set_add_and_snapshot() {
        let r = MetricsRegistry::new();
        r.set_counter("a.commits", 5);
        r.set_counter("a.commits", 7);
        r.add_counter("a.creates", 2);
        r.add_counter("a.creates", 3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.commits"), Some(7), "set is last-write-wins");
        assert_eq!(snap.counter("a.creates"), Some(5), "add accumulates");
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histograms_merge_and_summarize() {
        let r = MetricsRegistry::new();
        for v in 1..=100u64 {
            r.observe_ns("lat", v * 1_000);
        }
        let mut extra = LatencyHistogram::new();
        extra.record(500_000);
        r.merge_histogram("lat", &extra);
        let snap = r.snapshot();
        let s = &snap.histograms["lat"];
        assert_eq!(s.count, 101);
        assert_eq!(s.min, 1_000);
        assert_eq!(s.max, 500_000);
        assert!(s.p99 >= s.p50);
        assert!(s.p999 >= s.p99);
    }

    #[test]
    fn counter_deltas_between_snapshots() {
        let r = MetricsRegistry::new();
        r.set_counter("a.ops", 100);
        r.set_counter("b.resets", 50);
        r.set_counter("c.gone", 7);
        let earlier = r.snapshot();
        r.set_counter("a.ops", 160);
        r.set_counter("b.resets", 10); // producer reset underneath us
        r.set_counter("d.new", 5);
        let later = r.snapshot();
        // `c.gone` unchanged -> delta 0 (still present; only keys missing
        // from the later snapshot are omitted).
        let deltas = later.counter_deltas(&earlier);
        assert_eq!(deltas.get("a.ops"), Some(&60));
        assert_eq!(deltas.get("b.resets"), Some(&0), "decreases saturate to zero");
        assert_eq!(deltas.get("c.gone"), Some(&0));
        assert_eq!(deltas.get("d.new"), Some(&5), "new keys count from zero");
    }

    #[test]
    fn duplicate_names_merge_not_error() {
        // Pin the documented duplicate-registration behavior: the registry
        // has no registration step, so the "same" key from two producers
        // merges — last-write-wins for set, additive for add, sample-merge
        // for histograms.  Nothing panics and nothing is rejected.
        let r = MetricsRegistry::new();
        r.set_counter("shared.counter", 3);
        r.set_counter("shared.counter", 9);
        assert_eq!(r.snapshot().counter("shared.counter"), Some(9));
        r.add_counter("shared.counter", 1);
        assert_eq!(r.snapshot().counter("shared.counter"), Some(10));
        r.observe_ns("shared.lat", 1_000);
        let mut other = LatencyHistogram::new();
        other.record(2_000);
        r.merge_histogram("shared.lat", &other);
        assert_eq!(r.snapshot().histograms["shared.lat"].count, 2);
    }

    #[test]
    fn concurrent_publish_from_eight_threads() {
        use std::sync::Arc;
        let r = Arc::new(MetricsRegistry::new());
        let threads = 8;
        let per_thread = 250u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        // One shared additive counter (contended), one
                        // thread-owned set counter, one shared histogram.
                        r.add_counter("shared.adds", 1);
                        r.set_counter(&format!("thread.{t}.last"), i + 1);
                        r.observe_ns("shared.lat", (t as u64 + 1) * 1_000);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("shared.adds"), Some(threads as u64 * per_thread));
        for t in 0..threads {
            assert_eq!(snap.counter(&format!("thread.{t}.last")), Some(per_thread));
        }
        let lat = &snap.histograms["shared.lat"];
        assert_eq!(lat.count, threads as u64 * per_thread);
        assert_eq!(lat.min, 1_000);
        assert!(lat.max >= 8_000);
    }

    #[test]
    fn reset_clears_everything_and_keys_are_sorted() {
        let r = MetricsRegistry::new();
        r.set_counter("z.last", 1);
        r.set_counter("a.first", 1);
        let keys: Vec<String> = r.snapshot().counters.keys().cloned().collect();
        assert_eq!(keys, vec!["a.first", "z.last"], "snapshot keys are sorted");
        r.reset();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
