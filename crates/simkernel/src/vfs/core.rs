//! The kernel side of the VFS: registration, mounting, path resolution, file
//! descriptors, the page cache, and POSIX-flavoured syscalls.
//!
//! Workloads and examples talk to a [`Vfs`] instance exactly the way an
//! application talks to the kernel: `open`, `read`, `write`, `fsync`,
//! `mkdir`, `rename`, ... .  The `Vfs` routes each call to the mounted file
//! system that owns the path and runs the shared page cache above it.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::dev::BlockDevice;
use crate::error::{err, Errno, KernelError, KernelResult};
use crate::pagecache::{PageCache, PageCacheConfig, PageCacheStats};
use crate::shard::ShardedMap;
use crate::sync::IdGenerator;
use crate::vfs::{
    DirEntry, FileMode, FileType, FilesystemType, InodeAttr, MountOptions, OpenFlags, SetAttr,
    StatFs, VfsFs,
};

/// Configuration for a [`Vfs`] instance.
#[derive(Debug, Clone, Default)]
pub struct VfsConfig {
    /// Page cache configuration applied to every mount.
    pub page_cache: PageCacheConfig,
    /// Maximum number of simultaneously open file descriptors (0 = unlimited).
    pub max_open_files: usize,
    /// Shard count for the fd table and (unless overridden by
    /// `page_cache.shards`) each mount's page cache (`0` = default).
    /// Rounded up to a power of two.
    pub shard_count: usize,
}

/// Whence values for [`Vfs::lseek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekFrom {
    /// Absolute offset.
    Start(u64),
    /// Relative to the current position.
    Current(i64),
    /// Relative to the end of the file.
    End(i64),
}

struct Mount {
    id: u64,
    path: String,
    fs: Arc<dyn VfsFs>,
    page_cache: PageCache,
}

impl std::fmt::Debug for Mount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mount")
            .field("id", &self.id)
            .field("path", &self.path)
            .field("fs", &self.fs.fs_name())
            .finish_non_exhaustive()
    }
}

struct OpenFile {
    mount: Arc<Mount>,
    ino: u64,
    fh: u64,
    flags: OpenFlags,
    kind: FileType,
    pos: Mutex<u64>,
}

/// The simulated kernel's VFS.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use simkernel::dev::RamDisk;
/// use simkernel::memfs::MemFilesystemType;
/// use simkernel::vfs::{MountOptions, OpenFlags, Vfs, VfsConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let vfs = Vfs::new(VfsConfig::default());
/// vfs.register_filesystem(Arc::new(MemFilesystemType))?;
/// vfs.mount("memfs", Arc::new(RamDisk::new(4096, 16)), "/", &MountOptions::default())?;
///
/// let fd = vfs.open("/hello.txt", OpenFlags::RDWR.with(OpenFlags::CREAT))?;
/// vfs.write(fd, b"hi")?;
/// vfs.close(fd)?;
/// assert_eq!(vfs.stat("/hello.txt")?.size, 2);
/// # Ok(())
/// # }
/// ```
pub struct Vfs {
    config: VfsConfig,
    /// Registered mountable types.  Read-mostly: written at registration,
    /// read at mount time only.
    fstypes: RwLock<HashMap<String, Arc<dyn FilesystemType>>>,
    /// Mount table, kept as an immutable snapshot behind the lock so the
    /// per-syscall `find_mount` clones one `Arc` instead of holding the
    /// lock while walking mounts (read-mostly: only (un)mount writes).
    mounts: RwLock<Arc<Vec<Arc<Mount>>>>,
    /// The fd table, sharded: syscalls on different descriptors only
    /// contend when the fds hash to the same shard.  Allocation is an
    /// atomic counter ([`IdGenerator`]), not a table scan.
    fds: ShardedMap<u64, Arc<OpenFile>>,
    fd_gen: IdGenerator,
    mount_gen: IdGenerator,
}

impl std::fmt::Debug for Vfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vfs")
            .field("mounts", &self.mounts.read().len())
            .field("open_fds", &self.fds.len())
            .finish_non_exhaustive()
    }
}

impl Default for Vfs {
    fn default() -> Self {
        Vfs::new(VfsConfig::default())
    }
}

impl Vfs {
    /// Creates an empty VFS (no registered file systems, no mounts).
    pub fn new(config: VfsConfig) -> Self {
        let fds = ShardedMap::new(config.shard_count);
        Vfs {
            config,
            fstypes: RwLock::new(HashMap::new()),
            mounts: RwLock::new(Arc::new(Vec::new())),
            fds,
            fd_gen: IdGenerator::new(3),
            mount_gen: IdGenerator::new(1),
        }
    }

    // -- registration and mounting -----------------------------------------

    /// Registers a file system type so it can be mounted by name.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Exist`] if a type with the same name is registered.
    pub fn register_filesystem(&self, fstype: Arc<dyn FilesystemType>) -> KernelResult<()> {
        let mut types = self.fstypes.write();
        let name = fstype.fs_name().to_string();
        if types.contains_key(&name) {
            return Err(KernelError::with_context(
                Errno::Exist,
                "filesystem type already registered",
            ));
        }
        types.insert(name, fstype);
        Ok(())
    }

    /// Unregisters a file system type.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::NoEnt`] if the type is not registered and
    /// [`Errno::Busy`] if an active mount still uses it.
    pub fn unregister_filesystem(&self, name: &str) -> KernelResult<()> {
        if self.mounts.read().iter().any(|m| m.fs.fs_name() == name) {
            return Err(KernelError::with_context(Errno::Busy, "filesystem type in use"));
        }
        match self.fstypes.write().remove(name) {
            Some(_) => Ok(()),
            None => Err(KernelError::with_context(Errno::NoEnt, "filesystem type not registered")),
        }
    }

    /// Mounts a registered file system type from `device` at `mountpoint`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::NoEnt`] if the type is unknown, [`Errno::Busy`] if
    /// the mountpoint is already a mountpoint, and propagates mount errors
    /// from the file system.
    pub fn mount(
        &self,
        fstype: &str,
        device: Arc<dyn BlockDevice>,
        mountpoint: &str,
        options: &MountOptions,
    ) -> KernelResult<u64> {
        let fstype =
            self.fstypes.read().get(fstype).cloned().ok_or_else(|| {
                KernelError::with_context(Errno::NoEnt, "unknown filesystem type")
            })?;
        let fs = fstype.mount(device, options)?;
        self.mount_fs(fs, mountpoint)
    }

    /// Mounts an already-constructed file system instance at `mountpoint`.
    ///
    /// This path is used by tests and by code (like the online-upgrade
    /// example) that needs to keep a concretely typed handle to the file
    /// system it mounted.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Busy`] if the mountpoint is already in use.
    pub fn mount_fs(&self, fs: Arc<dyn VfsFs>, mountpoint: &str) -> KernelResult<u64> {
        let path = normalize_path(mountpoint)?;
        let mut mounts = self.mounts.write();
        if mounts.iter().any(|m| m.path == path) {
            return Err(KernelError::with_context(Errno::Busy, "mountpoint already mounted"));
        }
        let id = self.mount_gen.next_id();
        let batch = fs.supports_writepages();
        let mut page_cache = self.config.page_cache.clone();
        if page_cache.shards == 0 {
            page_cache.shards = self.config.shard_count;
        }
        let mount = Arc::new(Mount { id, path, fs, page_cache: PageCache::new(page_cache, batch) });
        // The mount table is an immutable snapshot: build the successor
        // vector and swap it in, so readers never hold the lock while
        // resolving paths.  Longest path first so that prefix matching picks
        // the innermost mount.
        let mut next: Vec<Arc<Mount>> = mounts.iter().cloned().collect();
        next.push(mount);
        next.sort_by_key(|m| std::cmp::Reverse(m.path.len()));
        *mounts = Arc::new(next);
        Ok(id)
    }

    /// Unmounts the file system at `mountpoint`, writing back all dirty
    /// state first.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::NoEnt`] if nothing is mounted there and
    /// [`Errno::Busy`] if file descriptors are still open on the mount.
    pub fn unmount(&self, mountpoint: &str) -> KernelResult<()> {
        let path = normalize_path(mountpoint)?;
        let mount = {
            let mounts = self.mounts.read();
            mounts
                .iter()
                .find(|m| m.path == path)
                .cloned()
                .ok_or_else(|| KernelError::with_context(Errno::NoEnt, "not a mountpoint"))?
        };
        if self.fds.any(|_, f| f.mount.id == mount.id) {
            return Err(KernelError::with_context(Errno::Busy, "open files on mount"));
        }
        mount.page_cache.writeback_all(&mount.fs)?;
        mount.page_cache.invalidate_all();
        mount.fs.sync_fs()?;
        mount.fs.destroy()?;
        let mut mounts = self.mounts.write();
        let next: Vec<Arc<Mount>> = mounts.iter().filter(|m| m.id != mount.id).cloned().collect();
        *mounts = Arc::new(next);
        Ok(())
    }

    /// Returns the mounted file system instance owning `path` (diagnostics,
    /// upgrade orchestration, experiment reporting).
    ///
    /// # Errors
    ///
    /// Returns [`Errno::NoEnt`] if no mount owns the path.
    pub fn mounted_fs(&self, path: &str) -> KernelResult<Arc<dyn VfsFs>> {
        let path = normalize_path(path)?;
        let (mount, _) = self.find_mount(&path)?;
        Ok(Arc::clone(&mount.fs))
    }

    /// Page-cache statistics for the mount owning `path`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::NoEnt`] if no mount owns the path.
    pub fn page_cache_stats(&self, path: &str) -> KernelResult<PageCacheStats> {
        let path = normalize_path(path)?;
        let (mount, _) = self.find_mount(&path)?;
        Ok(mount.page_cache.stats())
    }

    // -- path resolution ----------------------------------------------------

    fn find_mount(&self, normalized: &str) -> KernelResult<(Arc<Mount>, String)> {
        // Clone the snapshot and drop the lock before walking the table.
        let mounts = Arc::clone(&self.mounts.read());
        for mount in mounts.iter() {
            if let Some(rest) = strip_mount_prefix(normalized, &mount.path) {
                return Ok((Arc::clone(mount), rest));
            }
        }
        err(Errno::NoEnt)
    }

    /// Resolves `path` to the owning mount and the inode attributes.
    fn resolve(&self, path: &str) -> KernelResult<(Arc<Mount>, InodeAttr)> {
        let normalized = normalize_path(path)?;
        let (mount, rest) = self.find_mount(&normalized)?;
        let mut attr = mount.fs.getattr(mount.fs.root_ino())?;
        for comp in components(&rest) {
            if attr.kind != FileType::Directory {
                return Err(KernelError::with_context(
                    Errno::NotDir,
                    "path component not a directory",
                ));
            }
            attr = mount.fs.lookup(attr.ino, comp)?;
        }
        Ok((mount, attr))
    }

    /// Resolves the *parent directory* of `path`, returning the mount, the
    /// parent's attributes and the final component name.
    fn resolve_parent(&self, path: &str) -> KernelResult<(Arc<Mount>, InodeAttr, String)> {
        let normalized = normalize_path(path)?;
        let (mount, rest) = self.find_mount(&normalized)?;
        let comps: Vec<&str> = components(&rest).collect();
        let Some((last, parents)) = comps.split_last() else {
            return Err(KernelError::with_context(Errno::Inval, "path has no final component"));
        };
        let mut attr = mount.fs.getattr(mount.fs.root_ino())?;
        for comp in parents {
            if attr.kind != FileType::Directory {
                return Err(KernelError::with_context(
                    Errno::NotDir,
                    "path component not a directory",
                ));
            }
            attr = mount.fs.lookup(attr.ino, comp)?;
        }
        if attr.kind != FileType::Directory {
            return Err(KernelError::with_context(Errno::NotDir, "parent is not a directory"));
        }
        Ok((mount, attr, (*last).to_string()))
    }

    // -- file descriptor syscalls -------------------------------------------
    //
    // Every syscall opens a trace span named after itself.  The spans are
    // inert unless `trace::enable` is in force, and inert when a caller
    // (e.g. the load generator) already holds a span for the enclosing
    // logical op — so bare VFS use traces per-syscall while driven load
    // traces per-op, never both.

    /// Opens `path`, honouring `CREAT`, `EXCL`, `TRUNC` and `APPEND`.
    ///
    /// # Errors
    ///
    /// Standard open errors: [`Errno::NoEnt`], [`Errno::Exist`] (with
    /// `CREAT|EXCL`), [`Errno::IsDir`] when writing a directory,
    /// [`Errno::NFile`] if the fd table is full.
    pub fn open(&self, path: &str, flags: OpenFlags) -> KernelResult<u64> {
        let _span = crate::trace::op_span("open");
        if self.config.max_open_files > 0 && self.fds.len() >= self.config.max_open_files {
            return Err(KernelError::with_context(Errno::NFile, "fd table full"));
        }
        let (mount, attr) = if flags.contains(OpenFlags::CREAT) {
            let (mount, parent, name) = self.resolve_parent(path)?;
            match mount.fs.lookup(parent.ino, &name) {
                Ok(existing) => {
                    if flags.contains(OpenFlags::EXCL) {
                        return Err(KernelError::with_context(
                            Errno::Exist,
                            "O_EXCL and file exists",
                        ));
                    }
                    (mount, existing)
                }
                Err(e) if e.errno() == Errno::NoEnt => {
                    let attr = mount.fs.create(parent.ino, &name, FileMode::regular())?;
                    (mount, attr)
                }
                Err(e) => return Err(e),
            }
        } else {
            self.resolve(path)?
        };
        if attr.kind == FileType::Directory && flags.writable() {
            return Err(KernelError::with_context(
                Errno::IsDir,
                "cannot open directory for writing",
            ));
        }
        let fh = mount.fs.open(attr.ino, flags)?;
        if flags.contains(OpenFlags::TRUNC) && attr.kind == FileType::Regular {
            mount.fs.setattr(attr.ino, &SetAttr::truncate(0))?;
            mount.page_cache.set_file_size(attr.ino, 0);
        }
        let fd = self.fd_gen.next_id();
        let file = Arc::new(OpenFile {
            mount,
            ino: attr.ino,
            fh,
            flags,
            kind: attr.kind,
            pos: Mutex::new(0),
        });
        self.fds.insert(fd, file);
        Ok(fd)
    }

    fn file(&self, fd: u64) -> KernelResult<Arc<OpenFile>> {
        self.fds
            .get(&fd)
            .ok_or_else(|| KernelError::with_context(Errno::BadF, "bad file descriptor"))
    }

    /// Closes a file descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::BadF`] for an unknown descriptor; propagates
    /// `release` errors.
    pub fn close(&self, fd: u64) -> KernelResult<()> {
        let _span = crate::trace::op_span("close");
        let file = self
            .fds
            .remove(&fd)
            .ok_or_else(|| KernelError::with_context(Errno::BadF, "bad file descriptor"))?;
        file.mount.fs.release(file.ino, file.fh)?;
        Ok(())
    }

    /// Reads from the current position, advancing it.
    ///
    /// # Errors
    ///
    /// [`Errno::BadF`] for unknown or write-only descriptors; I/O errors
    /// propagate.
    pub fn read(&self, fd: u64, buf: &mut [u8]) -> KernelResult<usize> {
        let _span = crate::trace::op_span("read");
        let file = self.file(fd)?;
        let mut pos = file.pos.lock();
        let n = self.read_at_file(&file, *pos, buf)?;
        *pos += n as u64;
        Ok(n)
    }

    /// Reads at an explicit offset without moving the file position.
    ///
    /// # Errors
    ///
    /// As for [`Vfs::read`].
    pub fn pread(&self, fd: u64, buf: &mut [u8], offset: u64) -> KernelResult<usize> {
        let _span = crate::trace::op_span("pread");
        let file = self.file(fd)?;
        self.read_at_file(&file, offset, buf)
    }

    fn read_at_file(&self, file: &OpenFile, offset: u64, buf: &mut [u8]) -> KernelResult<usize> {
        if !file.flags.readable() {
            return Err(KernelError::with_context(Errno::BadF, "descriptor not open for reading"));
        }
        if file.kind == FileType::Directory {
            return Err(KernelError::with_context(Errno::IsDir, "cannot read a directory"));
        }
        file.mount.page_cache.read(&file.mount.fs, file.ino, offset, buf)
    }

    /// Writes at the current position (or at EOF with `APPEND`), advancing
    /// the position.
    ///
    /// # Errors
    ///
    /// [`Errno::BadF`] for unknown or read-only descriptors; [`Errno::NoSpc`]
    /// and other file system errors propagate (possibly from throttled
    /// writeback).
    pub fn write(&self, fd: u64, data: &[u8]) -> KernelResult<usize> {
        let _span = crate::trace::op_span("write");
        let file = self.file(fd)?;
        let mut pos = file.pos.lock();
        if file.flags.contains(OpenFlags::APPEND) {
            if !file.flags.writable() {
                return Err(KernelError::with_context(
                    Errno::BadF,
                    "descriptor not open for writing",
                ));
            }
            // EOF lookup + write in one page-cache critical section:
            // `pos.lock()` only serializes this descriptor, so reading the
            // size here and writing in a second call would let appenders on
            // *other* descriptors of the same file observe the same EOF and
            // overwrite each other.
            let (offset, n) = file.mount.page_cache.append(&file.mount.fs, file.ino, data)?;
            *pos = offset + n as u64;
            return Ok(n);
        }
        let offset = *pos;
        let n = self.write_at_file(&file, offset, data)?;
        *pos = offset + n as u64;
        Ok(n)
    }

    /// Writes at an explicit offset without moving the file position.
    ///
    /// # Errors
    ///
    /// As for [`Vfs::write`].
    pub fn pwrite(&self, fd: u64, data: &[u8], offset: u64) -> KernelResult<usize> {
        let _span = crate::trace::op_span("pwrite");
        let file = self.file(fd)?;
        self.write_at_file(&file, offset, data)
    }

    fn write_at_file(&self, file: &OpenFile, offset: u64, data: &[u8]) -> KernelResult<usize> {
        if !file.flags.writable() {
            return Err(KernelError::with_context(Errno::BadF, "descriptor not open for writing"));
        }
        file.mount.page_cache.write(&file.mount.fs, file.ino, offset, data)
    }

    /// Repositions the file offset.
    ///
    /// # Errors
    ///
    /// [`Errno::Inval`] if the resulting offset would be negative.
    pub fn lseek(&self, fd: u64, seek: SeekFrom) -> KernelResult<u64> {
        let _span = crate::trace::op_span("lseek");
        let file = self.file(fd)?;
        let mut pos = file.pos.lock();
        let new = match seek {
            SeekFrom::Start(o) => Some(o),
            SeekFrom::Current(d) => pos.checked_add_signed(d),
            SeekFrom::End(d) => {
                let size = file.mount.page_cache.file_size(&file.mount.fs, file.ino)?;
                size.checked_add_signed(d)
            }
        };
        match new {
            Some(n) => {
                *pos = n;
                Ok(n)
            }
            None => Err(KernelError::with_context(Errno::Inval, "seek before start of file")),
        }
    }

    /// Flushes a file's data and metadata to stable storage.
    ///
    /// # Errors
    ///
    /// I/O errors propagate.
    pub fn fsync(&self, fd: u64) -> KernelResult<()> {
        let _span = crate::trace::op_span("fsync");
        self.fsync_inner(fd, false)
    }

    /// Flushes a file's data (metadata only if needed to retrieve it).
    ///
    /// # Errors
    ///
    /// I/O errors propagate.
    pub fn fdatasync(&self, fd: u64) -> KernelResult<()> {
        let _span = crate::trace::op_span("fdatasync");
        self.fsync_inner(fd, true)
    }

    fn fsync_inner(&self, fd: u64, datasync: bool) -> KernelResult<()> {
        let file = self.file(fd)?;
        file.mount.page_cache.writeback(&file.mount.fs, file.ino)?;
        file.mount.fs.fsync(file.ino, datasync)
    }

    /// Returns the attributes of an open file (size reflects buffered
    /// writes).
    ///
    /// # Errors
    ///
    /// [`Errno::BadF`] for an unknown descriptor.
    pub fn fstat(&self, fd: u64) -> KernelResult<InodeAttr> {
        let _span = crate::trace::op_span("fstat");
        let file = self.file(fd)?;
        let mut attr = file.mount.fs.getattr(file.ino)?;
        attr.size = attr.size.max(file.mount.page_cache.file_size(&file.mount.fs, file.ino)?);
        Ok(attr)
    }

    /// Truncates (or extends) an open file to `size`.
    ///
    /// # Errors
    ///
    /// [`Errno::BadF`] if not open for writing.
    pub fn ftruncate(&self, fd: u64, size: u64) -> KernelResult<()> {
        let _span = crate::trace::op_span("ftruncate");
        let file = self.file(fd)?;
        if !file.flags.writable() {
            return Err(KernelError::with_context(Errno::BadF, "descriptor not open for writing"));
        }
        file.mount.fs.setattr(file.ino, &SetAttr::truncate(size))?;
        file.mount.page_cache.set_file_size(file.ino, size);
        Ok(())
    }

    // -- path syscalls -------------------------------------------------------

    /// Returns the attributes of `path`.
    ///
    /// # Errors
    ///
    /// [`Errno::NoEnt`] if the path does not exist.
    pub fn stat(&self, path: &str) -> KernelResult<InodeAttr> {
        let _span = crate::trace::op_span("stat");
        let (mount, mut attr) = self.resolve(path)?;
        if attr.kind == FileType::Regular {
            attr.size = attr.size.max(mount.page_cache.file_size(&mount.fs, attr.ino)?);
        }
        Ok(attr)
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        let _span = crate::trace::op_span("exists");
        self.resolve(path).is_ok()
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// [`Errno::Exist`] if the name exists; [`Errno::NoEnt`] if the parent
    /// does not.
    pub fn mkdir(&self, path: &str) -> KernelResult<()> {
        let _span = crate::trace::op_span("mkdir");
        let (mount, parent, name) = self.resolve_parent(path)?;
        mount.fs.mkdir(parent.ino, &name, FileMode::directory())?;
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`Errno::NotEmpty`] if not empty; [`Errno::NoEnt`] if absent.
    pub fn rmdir(&self, path: &str) -> KernelResult<()> {
        let _span = crate::trace::op_span("rmdir");
        let (mount, parent, name) = self.resolve_parent(path)?;
        mount.fs.rmdir(parent.ino, &name)
    }

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// [`Errno::NoEnt`] if absent; [`Errno::IsDir`] if it is a directory.
    pub fn unlink(&self, path: &str) -> KernelResult<()> {
        let _span = crate::trace::op_span("unlink");
        let (mount, parent, name) = self.resolve_parent(path)?;
        let target = mount.fs.lookup(parent.ino, &name)?;
        mount.fs.unlink(parent.ino, &name)?;
        if target.kind == FileType::Regular && target.nlink <= 1 {
            mount.page_cache.invalidate(target.ino);
        }
        Ok(())
    }

    /// Renames `old` to `new` (both must be on the same mount).
    ///
    /// # Errors
    ///
    /// [`Errno::Inval`] for cross-mount renames; file system errors
    /// propagate.
    pub fn rename(&self, old: &str, new: &str) -> KernelResult<()> {
        let _span = crate::trace::op_span("rename");
        let (old_mount, old_parent, old_name) = self.resolve_parent(old)?;
        let (new_mount, new_parent, new_name) = self.resolve_parent(new)?;
        if old_mount.id != new_mount.id {
            return Err(KernelError::with_context(Errno::Inval, "cross-mount rename"));
        }
        old_mount.fs.rename(old_parent.ino, &old_name, new_parent.ino, &new_name)
    }

    /// Creates a hard link at `new` pointing to the inode of `existing`.
    ///
    /// # Errors
    ///
    /// [`Errno::NoSys`] if the file system does not support links;
    /// [`Errno::Inval`] for cross-mount links.
    pub fn link(&self, existing: &str, new: &str) -> KernelResult<()> {
        let _span = crate::trace::op_span("link");
        let (mount, attr) = self.resolve(existing)?;
        let (new_mount, new_parent, new_name) = self.resolve_parent(new)?;
        if mount.id != new_mount.id {
            return Err(KernelError::with_context(Errno::Inval, "cross-mount link"));
        }
        mount.fs.link(attr.ino, new_parent.ino, &new_name)?;
        Ok(())
    }

    /// Truncates (or extends) `path` to `size`.
    ///
    /// # Errors
    ///
    /// [`Errno::NoEnt`] if absent; [`Errno::IsDir`] for directories.
    pub fn truncate(&self, path: &str, size: u64) -> KernelResult<()> {
        let _span = crate::trace::op_span("truncate");
        let (mount, attr) = self.resolve(path)?;
        if attr.kind == FileType::Directory {
            return Err(KernelError::with_context(Errno::IsDir, "cannot truncate a directory"));
        }
        mount.fs.setattr(attr.ino, &SetAttr::truncate(size))?;
        mount.page_cache.set_file_size(attr.ino, size);
        Ok(())
    }

    /// Lists a directory.
    ///
    /// # Errors
    ///
    /// [`Errno::NotDir`] if `path` is not a directory.
    pub fn readdir(&self, path: &str) -> KernelResult<Vec<DirEntry>> {
        let _span = crate::trace::op_span("readdir");
        let (mount, attr) = self.resolve(path)?;
        if attr.kind != FileType::Directory {
            return Err(KernelError::with_context(Errno::NotDir, "not a directory"));
        }
        mount.fs.readdir(attr.ino)
    }

    /// Returns statistics for the file system owning `path`.
    ///
    /// # Errors
    ///
    /// [`Errno::NoEnt`] if no mount owns the path.
    pub fn statfs(&self, path: &str) -> KernelResult<StatFs> {
        let _span = crate::trace::op_span("statfs");
        let (mount, _) = self.resolve(path)?;
        mount.fs.statfs()
    }

    /// Writes back all dirty pages of all mounts and asks every file system
    /// to flush (the `sync(2)` syscall).
    ///
    /// # Errors
    ///
    /// I/O errors propagate.
    pub fn sync(&self) -> KernelResult<()> {
        let _span = crate::trace::op_span("sync");
        let mounts: Vec<Arc<Mount>> = self.mounts.read().iter().cloned().collect();
        for mount in mounts {
            mount.page_cache.writeback_all(&mount.fs)?;
            mount.fs.sync_fs()?;
        }
        Ok(())
    }

    /// Number of currently open file descriptors (diagnostics).
    pub fn open_fd_count(&self) -> usize {
        self.fds.len()
    }
}

// ---------------------------------------------------------------------------
// Path handling helpers
// ---------------------------------------------------------------------------

/// Normalizes an absolute path: collapses repeated separators and removes
/// `.` components.  `..` components are preserved (resolved by the file
/// system's own directory entries, as in xv6).
fn normalize_path(path: &str) -> KernelResult<String> {
    if !path.starts_with('/') {
        return Err(KernelError::with_context(Errno::Inval, "path must be absolute"));
    }
    let mut out = String::from("/");
    for comp in path.split('/') {
        if comp.is_empty() || comp == "." {
            continue;
        }
        if !out.ends_with('/') {
            out.push('/');
        }
        out.push_str(comp);
    }
    Ok(out)
}

/// If `path` lives under mount root `mount_path`, returns the remainder
/// (possibly empty).
fn strip_mount_prefix(path: &str, mount_path: &str) -> Option<String> {
    if mount_path == "/" {
        return Some(path.trim_start_matches('/').to_string());
    }
    let rest = path.strip_prefix(mount_path)?;
    if rest.is_empty() {
        Some(String::new())
    } else {
        rest.strip_prefix('/').map(|stripped| stripped.to_string())
    }
}

fn components(rest: &str) -> impl Iterator<Item = &str> {
    rest.split('/').filter(|c| !c.is_empty() && *c != ".")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::RamDisk;
    use crate::memfs::MemFilesystemType;

    fn vfs_with_root() -> Vfs {
        let vfs = Vfs::new(VfsConfig::default());
        vfs.register_filesystem(Arc::new(MemFilesystemType)).unwrap();
        vfs.mount("memfs", Arc::new(RamDisk::new(4096, 8)), "/", &MountOptions::default()).unwrap();
        vfs
    }

    #[test]
    fn normalize_path_rules() {
        assert_eq!(normalize_path("/").unwrap(), "/");
        assert_eq!(normalize_path("//a///b/./c").unwrap(), "/a/b/c");
        assert!(normalize_path("relative").is_err());
    }

    #[test]
    fn strip_mount_prefix_rules() {
        assert_eq!(strip_mount_prefix("/a/b", "/").unwrap(), "a/b");
        assert_eq!(strip_mount_prefix("/mnt/x/y", "/mnt/x").unwrap(), "y");
        assert_eq!(strip_mount_prefix("/mnt/x", "/mnt/x").unwrap(), "");
        assert!(strip_mount_prefix("/mnt/xy", "/mnt/x").is_none());
    }

    #[test]
    fn open_create_write_read() {
        let vfs = vfs_with_root();
        let fd = vfs.open("/f.txt", OpenFlags::RDWR.with(OpenFlags::CREAT)).unwrap();
        assert_eq!(vfs.write(fd, b"hello world").unwrap(), 11);
        vfs.lseek(fd, SeekFrom::Start(0)).unwrap();
        let mut buf = vec![0u8; 64];
        let n = vfs.read(fd, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello world");
        vfs.close(fd).unwrap();
        assert_eq!(vfs.open_fd_count(), 0);
    }

    #[test]
    fn create_excl_fails_on_existing() {
        let vfs = vfs_with_root();
        let fd = vfs.open("/f", OpenFlags::WRONLY.with(OpenFlags::CREAT)).unwrap();
        vfs.close(fd).unwrap();
        let err = vfs
            .open("/f", OpenFlags::WRONLY.with(OpenFlags::CREAT).with(OpenFlags::EXCL))
            .unwrap_err();
        assert_eq!(err.errno(), Errno::Exist);
    }

    #[test]
    fn mkdir_nested_and_readdir() {
        let vfs = vfs_with_root();
        vfs.mkdir("/a").unwrap();
        vfs.mkdir("/a/b").unwrap();
        let fd = vfs.open("/a/b/file", OpenFlags::WRONLY.with(OpenFlags::CREAT)).unwrap();
        vfs.write(fd, b"x").unwrap();
        vfs.close(fd).unwrap();
        let entries = vfs.readdir("/a/b").unwrap();
        assert!(entries.iter().any(|e| e.name == "file"));
        assert_eq!(vfs.stat("/a").unwrap().kind, FileType::Directory);
    }

    #[test]
    fn unlink_and_rmdir_errors() {
        let vfs = vfs_with_root();
        vfs.mkdir("/d").unwrap();
        let fd = vfs.open("/d/f", OpenFlags::WRONLY.with(OpenFlags::CREAT)).unwrap();
        vfs.close(fd).unwrap();
        assert_eq!(vfs.rmdir("/d").unwrap_err().errno(), Errno::NotEmpty);
        assert_eq!(vfs.unlink("/d").unwrap_err().errno(), Errno::IsDir);
        vfs.unlink("/d/f").unwrap();
        vfs.rmdir("/d").unwrap();
        assert!(!vfs.exists("/d"));
    }

    #[test]
    fn rename_moves_files() {
        let vfs = vfs_with_root();
        vfs.mkdir("/src").unwrap();
        vfs.mkdir("/dst").unwrap();
        let fd = vfs.open("/src/f", OpenFlags::WRONLY.with(OpenFlags::CREAT)).unwrap();
        vfs.write(fd, b"content").unwrap();
        vfs.close(fd).unwrap();
        vfs.rename("/src/f", "/dst/g").unwrap();
        assert!(!vfs.exists("/src/f"));
        assert_eq!(vfs.stat("/dst/g").unwrap().size, 7);
    }

    #[test]
    fn append_mode_appends() {
        let vfs = vfs_with_root();
        let fd = vfs.open("/log", OpenFlags::WRONLY.with(OpenFlags::CREAT)).unwrap();
        vfs.write(fd, b"aaa").unwrap();
        vfs.close(fd).unwrap();
        let fd = vfs.open("/log", OpenFlags::WRONLY.with(OpenFlags::APPEND)).unwrap();
        vfs.write(fd, b"bbb").unwrap();
        vfs.close(fd).unwrap();
        assert_eq!(vfs.stat("/log").unwrap().size, 6);
    }

    #[test]
    fn trunc_flag_resets_file() {
        let vfs = vfs_with_root();
        let fd = vfs.open("/t", OpenFlags::WRONLY.with(OpenFlags::CREAT)).unwrap();
        vfs.write(fd, b"0123456789").unwrap();
        vfs.close(fd).unwrap();
        let fd = vfs.open("/t", OpenFlags::WRONLY.with(OpenFlags::TRUNC)).unwrap();
        vfs.close(fd).unwrap();
        assert_eq!(vfs.stat("/t").unwrap().size, 0);
    }

    #[test]
    fn read_write_permission_checks() {
        let vfs = vfs_with_root();
        let fd = vfs.open("/p", OpenFlags::WRONLY.with(OpenFlags::CREAT)).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(vfs.read(fd, &mut buf).unwrap_err().errno(), Errno::BadF);
        vfs.close(fd).unwrap();
        let fd = vfs.open("/p", OpenFlags::RDONLY).unwrap();
        assert_eq!(vfs.write(fd, b"x").unwrap_err().errno(), Errno::BadF);
        vfs.close(fd).unwrap();
    }

    #[test]
    fn bad_fd_is_rejected() {
        let vfs = vfs_with_root();
        let mut buf = [0u8; 1];
        assert_eq!(vfs.read(999, &mut buf).unwrap_err().errno(), Errno::BadF);
        assert_eq!(vfs.close(999).unwrap_err().errno(), Errno::BadF);
    }

    #[test]
    fn unmount_refuses_with_open_files_then_succeeds() {
        let vfs = vfs_with_root();
        let fd = vfs.open("/x", OpenFlags::WRONLY.with(OpenFlags::CREAT)).unwrap();
        assert_eq!(vfs.unmount("/").unwrap_err().errno(), Errno::Busy);
        vfs.close(fd).unwrap();
        vfs.unmount("/").unwrap();
        assert!(vfs.stat("/x").is_err());
    }

    #[test]
    fn nested_mounts_route_by_longest_prefix() {
        let vfs = vfs_with_root();
        vfs.mkdir("/mnt").unwrap();
        vfs.mount("memfs", Arc::new(RamDisk::new(4096, 8)), "/mnt", &MountOptions::default())
            .unwrap();
        let fd = vfs.open("/mnt/inner", OpenFlags::WRONLY.with(OpenFlags::CREAT)).unwrap();
        vfs.write(fd, b"inner").unwrap();
        vfs.close(fd).unwrap();
        // The file exists on the inner mount, not the outer one.
        assert!(vfs.exists("/mnt/inner"));
        let outer_entries = vfs.readdir("/").unwrap();
        assert!(outer_entries.iter().all(|e| e.name != "inner"));
    }

    #[test]
    fn double_registration_rejected() {
        let vfs = Vfs::default();
        vfs.register_filesystem(Arc::new(MemFilesystemType)).unwrap();
        assert_eq!(
            vfs.register_filesystem(Arc::new(MemFilesystemType)).unwrap_err().errno(),
            Errno::Exist
        );
    }

    #[test]
    fn lseek_variants() {
        let vfs = vfs_with_root();
        let fd = vfs.open("/s", OpenFlags::RDWR.with(OpenFlags::CREAT)).unwrap();
        vfs.write(fd, b"0123456789").unwrap();
        assert_eq!(vfs.lseek(fd, SeekFrom::End(-4)).unwrap(), 6);
        let mut buf = [0u8; 4];
        assert_eq!(vfs.read(fd, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"6789");
        assert_eq!(vfs.lseek(fd, SeekFrom::Current(-2)).unwrap(), 8);
        assert!(vfs.lseek(fd, SeekFrom::Current(-100)).is_err());
        vfs.close(fd).unwrap();
    }

    #[test]
    fn stat_reflects_buffered_writes() {
        let vfs = vfs_with_root();
        let fd = vfs.open("/big", OpenFlags::WRONLY.with(OpenFlags::CREAT)).unwrap();
        vfs.write(fd, &vec![0u8; 10_000]).unwrap();
        // No fsync yet: stat must still see the buffered size.
        assert_eq!(vfs.stat("/big").unwrap().size, 10_000);
        assert_eq!(vfs.fstat(fd).unwrap().size, 10_000);
        vfs.fsync(fd).unwrap();
        vfs.close(fd).unwrap();
        assert_eq!(vfs.stat("/big").unwrap().size, 10_000);
    }
}
