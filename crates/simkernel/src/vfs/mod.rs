//! The virtual file system layer.
//!
//! Linux's VFS layer is the pluggable interface every kernel file system
//! implements: it owns path resolution, the dentry and inode caches, the
//! page cache, and the file-descriptor table, and calls into the concrete
//! file system through operation tables.  The Bento paper's whole design is
//! about what that interface looks like when the file system must be written
//! in safe Rust.
//!
//! This module provides:
//!
//! * the common on-wire types ([`InodeAttr`], [`DirEntry`], [`OpenFlags`],
//!   [`FileMode`], [`SetAttr`], [`StatFs`]),
//! * the file-system-facing traits ([`VfsFs`] — the operations a mounted
//!   file system provides, and [`FilesystemType`] — the mountable type
//!   registered with the kernel), and
//! * [`Vfs`] in [`core`] — the kernel-side implementation of
//!   registration, mounting, path resolution, file descriptors, the page
//!   cache, and the POSIX-flavoured syscalls the workloads use.
//!
//! Three stacks implement [`VfsFs`] in this repository: `bento`'s BentoFS
//! (translating to the Bento file-operations API), the `xv6fs-vfs` baseline
//! (the paper's "C-kernel" VFS implementation), and `fusesim`'s FUSE kernel
//! driver (round-tripping every call to a userspace daemon).  `ext4sim`
//! implements it directly as well.

pub mod core;

use std::fmt;
use std::sync::Arc;

use crate::dev::BlockDevice;
use crate::error::{Errno, KernelError, KernelResult};

pub use self::core::{SeekFrom, Vfs, VfsConfig};

/// Size of one page in the simulated page cache (matches the block size used
/// throughout the storage stack).
pub const PAGE_SIZE: usize = 4096;

/// The type of an inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Block or character device node (xv6 supports these; rarely used).
    Device,
}

impl fmt::Display for FileType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FileType::Regular => "regular file",
            FileType::Directory => "directory",
            FileType::Device => "device",
        };
        f.write_str(s)
    }
}

/// Creation mode: the kind of object to create plus permission bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileMode {
    /// The kind of inode to create.
    pub kind: FileType,
    /// Permission bits (0o777-style); advisory in the simulation.
    pub perm: u16,
}

impl FileMode {
    /// A regular file with conventional 0644 permissions.
    pub fn regular() -> Self {
        FileMode { kind: FileType::Regular, perm: 0o644 }
    }

    /// A directory with conventional 0755 permissions.
    pub fn directory() -> Self {
        FileMode { kind: FileType::Directory, perm: 0o755 }
    }
}

/// Attributes of an inode, as returned by `getattr`/`lookup`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InodeAttr {
    /// Inode number.
    pub ino: u64,
    /// Kind of inode.
    pub kind: FileType,
    /// File size in bytes.
    pub size: u64,
    /// Number of hard links.
    pub nlink: u32,
    /// Number of 512-byte sectors allocated (st_blocks-style).
    pub blocks: u64,
    /// Permission bits.
    pub perm: u16,
}

impl InodeAttr {
    /// Convenience constructor for a regular file attribute.
    pub fn regular(ino: u64, size: u64) -> Self {
        InodeAttr {
            ino,
            kind: FileType::Regular,
            size,
            nlink: 1,
            blocks: size.div_ceil(512),
            perm: 0o644,
        }
    }

    /// Convenience constructor for a directory attribute.
    pub fn directory(ino: u64) -> Self {
        InodeAttr { ino, kind: FileType::Directory, size: 0, nlink: 2, blocks: 0, perm: 0o755 }
    }
}

/// Attribute changes requested by `setattr`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetAttr {
    /// New file size (truncate/extend), if requested.
    pub size: Option<u64>,
    /// New permission bits, if requested.
    pub perm: Option<u16>,
}

impl SetAttr {
    /// A `SetAttr` that only changes the size.
    pub fn truncate(size: u64) -> Self {
        SetAttr { size: Some(size), ..SetAttr::default() }
    }
}

/// One directory entry as returned by `readdir`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Inode number the entry refers to.
    pub ino: u64,
    /// Entry name (no path separators).
    pub name: String,
    /// Kind of the referenced inode.
    pub kind: FileType,
}

/// File system statistics, as returned by `statfs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatFs {
    /// Total data blocks in the file system.
    pub total_blocks: u64,
    /// Free data blocks.
    pub free_blocks: u64,
    /// Block size in bytes.
    pub block_size: u32,
    /// Total inodes.
    pub total_inodes: u64,
    /// Free inodes.
    pub free_inodes: u64,
    /// Maximum file name length.
    pub name_max: u32,
}

/// Open flags, modelled on the `O_*` constants.
///
/// This is a tiny hand-rolled flag set (the repository avoids extra
/// dependencies); combine flags with [`OpenFlags::with`].
///
/// # Example
///
/// ```
/// use simkernel::vfs::OpenFlags;
///
/// let flags = OpenFlags::WRONLY.with(OpenFlags::CREAT).with(OpenFlags::TRUNC);
/// assert!(flags.contains(OpenFlags::CREAT));
/// assert!(flags.writable());
/// assert!(!flags.readable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OpenFlags(u32);

impl OpenFlags {
    /// Open read-only (the default).
    pub const RDONLY: OpenFlags = OpenFlags(0);
    /// Open write-only.
    pub const WRONLY: OpenFlags = OpenFlags(1);
    /// Open read-write.
    pub const RDWR: OpenFlags = OpenFlags(2);
    /// Create the file if it does not exist.
    pub const CREAT: OpenFlags = OpenFlags(1 << 6);
    /// Fail if `CREAT` and the file already exists.
    pub const EXCL: OpenFlags = OpenFlags(1 << 7);
    /// Truncate the file to length zero on open.
    pub const TRUNC: OpenFlags = OpenFlags(1 << 9);
    /// All writes append to the end of the file.
    pub const APPEND: OpenFlags = OpenFlags(1 << 10);
    /// Bypass the page cache (the FUSE baseline opens its backing disk file
    /// this way, per §6.2 of the paper).
    pub const DIRECT: OpenFlags = OpenFlags(1 << 14);

    const ACCESS_MASK: u32 = 0b11;

    /// Returns the union of `self` and `other`.
    #[must_use]
    pub fn with(self, other: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | other.0)
    }

    /// Whether every bit of `other` is set in `self`.
    pub fn contains(self, other: OpenFlags) -> bool {
        if other.0 & Self::ACCESS_MASK != 0 || other.0 == 0 {
            (self.0 & Self::ACCESS_MASK) == other.0 && (self.0 & other.0) == other.0
        } else {
            (self.0 & other.0) == other.0
        }
    }

    /// Whether the access mode permits reading.
    pub fn readable(self) -> bool {
        matches!(self.0 & Self::ACCESS_MASK, 0 | 2)
    }

    /// Whether the access mode permits writing.
    pub fn writable(self) -> bool {
        matches!(self.0 & Self::ACCESS_MASK, 1 | 2)
    }

    /// The raw bit representation.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Reconstructs flags from raw bits (used by the FUSE wire format).
    pub fn from_bits(bits: u32) -> OpenFlags {
        OpenFlags(bits)
    }
}

/// Write-path batching statistics a file system may expose (see
/// [`VfsFs::write_path_stats`]): how many operations each log commit
/// absorbed, how many device barriers the log issued, and how allocations
/// spread over allocation groups.  The experiment harness uses these to
/// report group-commit batching and allocator skew per run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WritePathStats {
    /// Committed log transaction groups.
    pub log_commits: u64,
    /// Operations absorbed into committed groups.
    pub log_ops: u64,
    /// Blocks written through the log.
    pub log_blocks: u64,
    /// Device barriers issued by log commits and recovery.
    pub log_barriers: u64,
    /// Allocations served per allocation group.
    pub alloc_per_group: Vec<u64>,
    /// Peak requests in flight on the mounted device at once (1 on a
    /// synchronous device; rises toward the queue depth when the log
    /// overlaps submissions on a multi-queue device).  Zero when the device
    /// exposes no depth statistics.
    pub queue_depth_max: u64,
    /// Sum of the in-flight depth sampled at every submission; divide by
    /// [`WritePathStats::queue_depth_samples`] for the mean
    /// (see [`WritePathStats::mean_queue_depth`]).
    pub queue_depth_sum: u64,
    /// Number of depth samples (one per submitted request).
    pub queue_depth_samples: u64,
}

impl WritePathStats {
    /// Operations per commit (the group-commit batching factor).
    pub fn ops_per_commit(&self) -> f64 {
        self.log_ops as f64 / (self.log_commits as f64).max(1.0)
    }

    /// Device barriers per absorbed operation.
    pub fn barriers_per_op(&self) -> f64 {
        self.log_barriers as f64 / (self.log_ops as f64).max(1.0)
    }

    /// Number of allocation groups that served at least one allocation.
    pub fn groups_used(&self) -> usize {
        self.alloc_per_group.iter().filter(|&&n| n > 0).count()
    }

    /// Mean in-flight request depth over all submissions (0.0 when the
    /// device exposed no depth statistics).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.queue_depth_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_depth_samples as f64
        }
    }
}

/// Operation-level counters a file system may expose (see
/// [`VfsFs::op_stats`]): the neutral projection of the concrete cores'
/// stats structs (the xv6 cores' `FsStats`, ext4sim's journal counters),
/// so the unified metrics registry ([`crate::registry`]) can absorb every
/// stack through one trait call instead of per-crate downcasts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsOpStats {
    /// Files created.
    pub creates: u64,
    /// Files/directories removed.
    pub removes: u64,
    /// Payload bytes read through the file system.
    pub bytes_read: u64,
    /// Payload bytes written through the file system.
    pub bytes_written: u64,
    /// Explicit durability operations (fsync/fdatasync) served.
    pub fsyncs: u64,
}

/// Mount options passed at mount time (the equivalent of `-o` options).
#[derive(Debug, Clone, Default)]
pub struct MountOptions {
    /// Key/value options, e.g. `("data", "journal")`.
    pub options: Vec<(String, String)>,
    /// Mount read-only.
    pub read_only: bool,
}

impl MountOptions {
    /// Looks up an option value by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Adds an option (builder style).
    #[must_use]
    pub fn with_option(mut self, key: &str, value: &str) -> Self {
        self.options.push((key.to_string(), value.to_string()));
        self
    }
}

/// A mountable file system type, registered with the VFS by name.
///
/// This is the analogue of the kernel's `struct file_system_type`: the VFS
/// keeps a table of registered types and calls [`FilesystemType::mount`]
/// when a mount syscall names this type.
pub trait FilesystemType: Send + Sync {
    /// The name used in mount calls (e.g. `"xv6fs_bento"`).
    fn fs_name(&self) -> &str;

    /// Mounts an instance of this file system from `device`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Inval`] if the device does not contain a valid file
    /// system of this type, and propagates device errors.
    fn mount(
        &self,
        device: Arc<dyn BlockDevice>,
        options: &MountOptions,
    ) -> KernelResult<Arc<dyn VfsFs>>;
}

/// Operations a mounted file system provides to the VFS.
///
/// This mirrors (in simplified, inode-number-keyed form) the union of the
/// kernel's `super_operations`, `inode_operations`, `file_operations` and
/// `address_space_operations` tables.  Data I/O is page-granular because the
/// VFS page cache sits above the file system, exactly as in Linux: `read`
/// and `write` syscalls are satisfied from the page cache, and the file
/// system only sees `read_page` fills and `write_page`/`write_pages`
/// writeback.
///
/// The distinction between [`VfsFs::write_page`] and [`VfsFs::write_pages`]
/// is load-bearing for the paper's evaluation: BentoFS (which inherits the
/// FUSE kernel module's writeback path) implements the batched
/// `write_pages`, while the paper's hand-written VFS baseline only
/// implements per-page `writepage` — the source of Bento's advantage on
/// large writes and untar (§6.5.2, §6.6.3).
pub trait VfsFs: Send + Sync {
    /// Short name for diagnostics.
    fn fs_name(&self) -> &str;

    /// The inode number of the root directory.
    fn root_ino(&self) -> u64;

    /// Write-path batching statistics, if this file system tracks them
    /// (journalling file systems do; the in-memory ones return `None`).
    fn write_path_stats(&self) -> Option<WritePathStats> {
        None
    }

    /// Operation-level counters, if this file system tracks them (see
    /// [`FsOpStats`]); the unified metrics registry publishes these per
    /// mounted stack.
    fn op_stats(&self) -> Option<FsOpStats> {
        None
    }

    /// Downcast hook: implementations that expose extra, concretely typed
    /// management surfaces (e.g. BentoFS's online upgrade) return
    /// `Some(self)` so tooling holding only the `Arc<dyn VfsFs>` from
    /// [`Vfs::mounted_fs`](crate::vfs::Vfs::mounted_fs) can reach them.
    /// The default hides the concrete type.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Looks up `name` in directory `dir`.
    ///
    /// # Errors
    ///
    /// [`Errno::NoEnt`] if the name does not exist, [`Errno::NotDir`] if
    /// `dir` is not a directory.
    fn lookup(&self, dir: u64, name: &str) -> KernelResult<InodeAttr>;

    /// Returns the attributes of `ino`.
    ///
    /// # Errors
    ///
    /// [`Errno::NoEnt`] / [`Errno::Stale`] if the inode does not exist.
    fn getattr(&self, ino: u64) -> KernelResult<InodeAttr>;

    /// Applies attribute changes to `ino` and returns the new attributes.
    ///
    /// # Errors
    ///
    /// [`Errno::NoEnt`] if the inode does not exist; [`Errno::IsDir`] when
    /// truncating a directory.
    fn setattr(&self, ino: u64, set: &SetAttr) -> KernelResult<InodeAttr>;

    /// Creates a regular file `name` in directory `dir`.
    ///
    /// # Errors
    ///
    /// [`Errno::Exist`] if the name exists, [`Errno::NoSpc`] if the file
    /// system is full.
    fn create(&self, dir: u64, name: &str, mode: FileMode) -> KernelResult<InodeAttr>;

    /// Creates a directory `name` in directory `dir`.
    ///
    /// # Errors
    ///
    /// As for [`VfsFs::create`].
    fn mkdir(&self, dir: u64, name: &str, mode: FileMode) -> KernelResult<InodeAttr>;

    /// Removes the regular file `name` from directory `dir`.
    ///
    /// # Errors
    ///
    /// [`Errno::NoEnt`] if absent, [`Errno::IsDir`] if `name` is a directory.
    fn unlink(&self, dir: u64, name: &str) -> KernelResult<()>;

    /// Removes the empty directory `name` from directory `dir`.
    ///
    /// # Errors
    ///
    /// [`Errno::NotEmpty`] if the directory is not empty, [`Errno::NotDir`]
    /// if `name` is not a directory.
    fn rmdir(&self, dir: u64, name: &str) -> KernelResult<()>;

    /// Renames `oldname` in `olddir` to `newname` in `newdir`, replacing any
    /// existing target file.
    ///
    /// # Errors
    ///
    /// [`Errno::NoEnt`] if the source is absent; [`Errno::NotEmpty`] if the
    /// target is a non-empty directory.
    fn rename(&self, olddir: u64, oldname: &str, newdir: u64, newname: &str) -> KernelResult<()>;

    /// Creates a hard link to `ino` named `newname` in `newdir`.
    ///
    /// # Errors
    ///
    /// The default implementation returns [`Errno::NoSys`].
    fn link(&self, ino: u64, newdir: u64, newname: &str) -> KernelResult<InodeAttr> {
        let _ = (ino, newdir, newname);
        Err(KernelError::with_context(Errno::NoSys, "link not supported"))
    }

    /// Opens `ino` and returns a file handle token.
    ///
    /// # Errors
    ///
    /// [`Errno::NoEnt`] if the inode does not exist.
    fn open(&self, ino: u64, flags: OpenFlags) -> KernelResult<u64>;

    /// Releases a file handle returned by [`VfsFs::open`].
    ///
    /// # Errors
    ///
    /// Implementations may report I/O errors from deferred work.
    fn release(&self, ino: u64, fh: u64) -> KernelResult<()>;

    /// Lists the entries of directory `ino` (including `.` and `..` when the
    /// file system stores them).
    ///
    /// # Errors
    ///
    /// [`Errno::NotDir`] if `ino` is not a directory.
    fn readdir(&self, ino: u64) -> KernelResult<Vec<DirEntry>>;

    /// Fills `buf` (one page) with the contents of page `page_index` of file
    /// `ino`; returns the number of valid bytes.
    ///
    /// # Errors
    ///
    /// [`Errno::NoEnt`] if the inode does not exist; I/O errors propagate.
    fn read_page(&self, ino: u64, page_index: u64, buf: &mut [u8]) -> KernelResult<usize>;

    /// Writes one page of data at `page_index`; `file_size` is the
    /// up-to-date size of the file as known by the page cache, which the
    /// file system must persist if it exceeds its recorded size.
    ///
    /// # Errors
    ///
    /// [`Errno::NoSpc`] if allocation fails; I/O errors propagate.
    fn write_page(
        &self,
        ino: u64,
        page_index: u64,
        data: &[u8],
        file_size: u64,
    ) -> KernelResult<()>;

    /// Writes a run of consecutive pages starting at `start_page`.
    ///
    /// The default implementation loops over [`VfsFs::write_page`] — that is
    /// the paper's VFS-baseline behaviour.  BentoFS overrides this with a
    /// genuinely batched implementation.
    ///
    /// # Errors
    ///
    /// As for [`VfsFs::write_page`].
    fn write_pages(
        &self,
        ino: u64,
        start_page: u64,
        pages: &[&[u8]],
        file_size: u64,
    ) -> KernelResult<()> {
        for (i, page) in pages.iter().enumerate() {
            self.write_page(ino, start_page + i as u64, page, file_size)?;
        }
        Ok(())
    }

    /// Whether this file system provides a batched [`VfsFs::write_pages`].
    /// Purely informational (used in experiment output).
    fn supports_writepages(&self) -> bool {
        false
    }

    /// Flushes file `ino` to stable storage.  `datasync` requests that only
    /// data (not metadata) must be durable.
    ///
    /// # Errors
    ///
    /// I/O errors propagate.
    fn fsync(&self, ino: u64, datasync: bool) -> KernelResult<()>;

    /// Returns file system statistics.
    ///
    /// # Errors
    ///
    /// I/O errors propagate.
    fn statfs(&self) -> KernelResult<StatFs>;

    /// Flushes all dirty state of the file system (the `sync_fs`
    /// super-operation).
    ///
    /// # Errors
    ///
    /// I/O errors propagate.
    fn sync_fs(&self) -> KernelResult<()>;

    /// Called at unmount after all writeback has completed.
    ///
    /// # Errors
    ///
    /// I/O errors propagate.
    fn destroy(&self) -> KernelResult<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_flags_access_modes() {
        assert!(OpenFlags::RDONLY.readable());
        assert!(!OpenFlags::RDONLY.writable());
        assert!(OpenFlags::WRONLY.writable());
        assert!(!OpenFlags::WRONLY.readable());
        assert!(OpenFlags::RDWR.readable() && OpenFlags::RDWR.writable());
    }

    #[test]
    fn open_flags_contains() {
        let f = OpenFlags::RDWR.with(OpenFlags::CREAT).with(OpenFlags::APPEND);
        assert!(f.contains(OpenFlags::CREAT));
        assert!(f.contains(OpenFlags::APPEND));
        assert!(f.contains(OpenFlags::RDWR));
        assert!(!f.contains(OpenFlags::TRUNC));
        assert!(!OpenFlags::WRONLY.contains(OpenFlags::RDWR));
    }

    #[test]
    fn open_flags_roundtrip_bits() {
        let f = OpenFlags::WRONLY.with(OpenFlags::CREAT).with(OpenFlags::EXCL);
        assert_eq!(OpenFlags::from_bits(f.bits()), f);
    }

    #[test]
    fn file_mode_constructors() {
        assert_eq!(FileMode::regular().kind, FileType::Regular);
        assert_eq!(FileMode::directory().kind, FileType::Directory);
    }

    #[test]
    fn mount_options_lookup() {
        let opts = MountOptions::default().with_option("data", "journal");
        assert_eq!(opts.get("data"), Some("journal"));
        assert_eq!(opts.get("nope"), None);
    }

    #[test]
    fn inode_attr_helpers() {
        let a = InodeAttr::regular(7, 1000);
        assert_eq!(a.kind, FileType::Regular);
        assert_eq!(a.blocks, 2);
        let d = InodeAttr::directory(1);
        assert_eq!(d.nlink, 2);
    }
}
