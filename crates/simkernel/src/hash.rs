//! Small, dependency-free content checksums.
//!
//! On-disk structures that must survive torn or reordered sector writes
//! (log commit records, metadata checkpoints) carry an FNV-1a digest so
//! recovery can tell a fully persisted record from a partial one.  FNV is
//! not cryptographic — it only needs to make an accidental match between a
//! stale/torn block and a freshly computed digest vanishingly unlikely.

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a64 {
    state: u64,
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64::new()
    }
}

impl Fnv1a64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher in its initial state.
    pub fn new() -> Self {
        Fnv1a64 { state: Self::OFFSET_BASIS }
    }

    /// Feeds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Returns the digest of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a digest of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv1a64::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finish(), fnv1a64(b"hello world"));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let a = fnv1a64(&[0u8; 4096]);
        let mut block = [0u8; 4096];
        block[2049] = 1;
        assert_ne!(a, fnv1a64(&block));
    }
}
