//! Per-window accumulation and the frozen window summaries.

use std::collections::BTreeMap;

use serde::Serialize;
use simkernel::metrics::LatencyHistogram;
use simkernel::trace::{Phase, SpanRecord};

use crate::slo::MonitorConfig;

/// A finished span, flattened for summaries and incident JSON.
#[derive(Debug, Clone, Serialize)]
pub struct SpanSummary {
    /// Process-unique operation id.
    pub op_id: u64,
    /// Op-class label.
    pub class: String,
    /// End-to-end latency, ns.
    pub total_ns: u64,
    /// Exclusive ns per phase, in [`Phase::ALL`] reporting order.
    pub phase_ns: Vec<u64>,
    /// Ns not attributed to any instrumented phase.
    pub other_ns: u64,
    /// Label of the phase holding the largest share of this span
    /// (`"other"` when un-instrumented time dominates).
    pub dominant_phase: String,
}

impl SpanSummary {
    /// Flattens a trace record.
    pub fn from_record(rec: &SpanRecord) -> Self {
        SpanSummary {
            op_id: rec.op_id,
            class: rec.class.to_string(),
            total_ns: rec.total_ns,
            phase_ns: rec.phase_ns.to_vec(),
            other_ns: rec.other_ns(),
            dominant_phase: dominant_phase(rec).to_string(),
        }
    }
}

/// The phase label (or `"other"`) holding the largest exclusive share of
/// `rec`.
pub fn dominant_phase(rec: &SpanRecord) -> &'static str {
    let mut best_label = "other";
    let mut best_ns = rec.other_ns();
    for p in Phase::ALL {
        if rec.phase_ns[p.index()] > best_ns {
            best_ns = rec.phase_ns[p.index()];
            best_label = p.label();
        }
    }
    best_label
}

/// Per-op-class slice of one closed window.
#[derive(Debug, Clone, Serialize)]
pub struct ClassWindowSummary {
    /// Completed ops of this class in the window.
    pub ops: u64,
    /// Failed ops of this class in the window.
    pub errors: u64,
    /// p99 latency of the class within the window, ns.
    pub p99_ns: u64,
}

/// One closed window, summarized for the ring and for incident bundles.
#[derive(Debug, Clone, Serialize)]
pub struct WindowSummary {
    /// Monotone window index (0 = first window of the run).
    pub index: u64,
    /// Completed ops in the window.
    pub ops: u64,
    /// Failed ops in the window.
    pub errors: u64,
    /// Window p50 latency, ns (completed ops).
    pub p50_ns: u64,
    /// Window p99 latency, ns.
    pub p99_ns: u64,
    /// Slowest completed op in the window, ns.
    pub max_ns: u64,
    /// Bad-op count per configured SLO, [`MonitorConfig::slos`] order.
    pub slo_bad: Vec<u64>,
    /// Matching-op count per configured SLO (the burn denominator).
    pub slo_ops: Vec<u64>,
    /// Exclusive ns summed over the window's observed spans, per phase in
    /// [`Phase::ALL`] order.
    pub phase_ns: Vec<u64>,
    /// Registry counter increases across this window (empty without a
    /// snapshot source).
    pub counter_deltas: BTreeMap<String, u64>,
    /// Per-class slice of the window.
    pub classes: BTreeMap<String, ClassWindowSummary>,
    /// The window's slowest spans, slowest first (needs tracing enabled).
    pub slowest: Vec<SpanSummary>,
}

/// The open window being accumulated (monitor-internal).
#[derive(Debug)]
pub(crate) struct WindowAccum {
    pub ops: u64,
    pub errors: u64,
    latency: LatencyHistogram,
    per_class: BTreeMap<&'static str, ClassAccum>,
    slo_bad: Vec<u64>,
    slo_ops: Vec<u64>,
    phase_ns: [u64; Phase::COUNT],
    slowest: Vec<SpanRecord>,
    /// Worst over-threshold span per configured phase-stall detector,
    /// [`MonitorConfig::phase_stalls`] order.
    phase_stall_worst: Vec<Option<SpanRecord>>,
}

#[derive(Debug, Default)]
struct ClassAccum {
    ops: u64,
    errors: u64,
    latency: LatencyHistogram,
}

impl WindowAccum {
    pub fn new(cfg: &MonitorConfig) -> Self {
        WindowAccum {
            ops: 0,
            errors: 0,
            latency: LatencyHistogram::new(),
            per_class: BTreeMap::new(),
            slo_bad: vec![0; cfg.slos.len()],
            slo_ops: vec![0; cfg.slos.len()],
            phase_ns: [0; Phase::COUNT],
            slowest: Vec::new(),
            phase_stall_worst: vec![None; cfg.phase_stalls.len()],
        }
    }

    /// Total observations (completed + failed) — the window-close trigger.
    pub fn observed(&self) -> u64 {
        self.ops + self.errors
    }

    pub fn record(
        &mut self,
        cfg: &MonitorConfig,
        class: &'static str,
        latency_ns: u64,
        error: bool,
        span: Option<&SpanRecord>,
    ) {
        let per_class = self.per_class.entry(class).or_default();
        if error {
            self.errors += 1;
            per_class.errors += 1;
        } else {
            self.ops += 1;
            self.latency.record(latency_ns);
            per_class.ops += 1;
            per_class.latency.record(latency_ns);
        }
        for (i, slo) in cfg.slos.iter().enumerate() {
            if slo.matches(class) {
                self.slo_ops[i] += 1;
                if slo.is_bad(latency_ns, error) {
                    self.slo_bad[i] += 1;
                }
            }
        }
        if let Some(rec) = span {
            for p in Phase::ALL {
                self.phase_ns[p.index()] += rec.phase_ns[p.index()];
            }
            for (i, spec) in cfg.phase_stalls.iter().enumerate() {
                if !spec.matches(class) {
                    continue;
                }
                let stalled_ns = rec.phase_ns[spec.phase.index()];
                let current_worst =
                    self.phase_stall_worst[i].map_or(0, |w| w.phase_ns[spec.phase.index()]);
                if stalled_ns >= spec.threshold_ns && stalled_ns > current_worst {
                    self.phase_stall_worst[i] = Some(*rec);
                }
            }
            self.keep_if_slow(*rec, cfg.slowest_per_window);
        }
    }

    /// Worst over-threshold span per phase-stall detector this window
    /// (`None` where the detector did not trip).
    pub fn phase_stall_offenders(&self) -> &[Option<SpanRecord>] {
        &self.phase_stall_worst
    }

    fn keep_if_slow(&mut self, rec: SpanRecord, k: usize) {
        if self.slowest.len() < k.max(1) {
            self.slowest.push(rec);
        } else if self.slowest.last().is_some_and(|tail| rec.total_ns > tail.total_ns) {
            self.slowest.pop();
            self.slowest.push(rec);
        } else {
            return;
        }
        self.slowest.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    }

    /// Closes the window into a summary.
    pub fn summarize(self, index: u64, counter_deltas: BTreeMap<String, u64>) -> WindowSummary {
        WindowSummary {
            index,
            ops: self.ops,
            errors: self.errors,
            p50_ns: self.latency.percentile(50.0),
            p99_ns: self.latency.percentile(99.0),
            max_ns: self.latency.max(),
            slo_bad: self.slo_bad,
            slo_ops: self.slo_ops,
            phase_ns: self.phase_ns.to_vec(),
            counter_deltas,
            classes: self
                .per_class
                .into_iter()
                .map(|(class, acc)| {
                    (
                        class.to_string(),
                        ClassWindowSummary {
                            ops: acc.ops,
                            errors: acc.errors,
                            p99_ns: acc.latency.percentile(99.0),
                        },
                    )
                })
                .collect(),
            slowest: self.slowest.iter().map(SpanSummary::from_record).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloSpec;

    fn record(total_ns: u64, commit_wait_ns: u64) -> SpanRecord {
        let mut phase_ns = [0; Phase::COUNT];
        phase_ns[Phase::CommitWait.index()] = commit_wait_ns;
        SpanRecord {
            op_id: 1,
            class: "fsync",
            epoch: 0,
            total_ns,
            phase_ns,
            phase_counts: [0; Phase::COUNT],
        }
    }

    #[test]
    fn dominant_phase_picks_largest_share_or_other() {
        assert_eq!(dominant_phase(&record(1_000, 800)), "commit-wait");
        assert_eq!(dominant_phase(&record(1_000, 200)), "other");
    }

    #[test]
    fn accum_summarizes_classes_slos_and_slowest() {
        let cfg = MonitorConfig::new(8)
            .with_slo(SloSpec::error_budget("errs", "*", 0.1))
            .with_slo(SloSpec::latency_and_errors("read-tail", "read", 1_000, 0.1));
        let mut accum = WindowAccum::new(&cfg);
        accum.record(&cfg, "read", 500, false, None);
        accum.record(&cfg, "read", 5_000, false, Some(&record(5_000, 4_000)));
        accum.record(&cfg, "write", 2_000, true, None);
        assert_eq!(accum.observed(), 3);
        let summary = accum.summarize(7, BTreeMap::new());
        assert_eq!(summary.index, 7);
        assert_eq!((summary.ops, summary.errors), (2, 1));
        assert_eq!(summary.slo_ops, vec![3, 2], "per-SLO class filtering");
        assert_eq!(summary.slo_bad, vec![1, 1], "error for *, slow read for read-tail");
        assert_eq!(summary.classes["read"].ops, 2);
        assert_eq!(summary.classes["write"].errors, 1);
        assert_eq!(summary.max_ns, 5_000);
        assert_eq!(summary.phase_ns[Phase::CommitWait.index()], 4_000);
        assert_eq!(summary.slowest.len(), 1);
        assert_eq!(summary.slowest[0].dominant_phase, "commit-wait");
    }

    #[test]
    fn phase_stall_tracking_filters_class_and_keeps_worst() {
        use crate::slo::PhaseStallSpec;
        let cfg = MonitorConfig::new(8).with_phase_stall(PhaseStallSpec::new(
            "rp",
            "fsync",
            Phase::CommitWait,
            1_000,
        ));
        let mut accum = WindowAccum::new(&cfg);
        // Below threshold: not an offender.
        accum.record(&cfg, "fsync", 500, false, Some(&record(500, 500)));
        assert!(accum.phase_stall_offenders()[0].is_none());
        // Matching class, over threshold.
        accum.record(&cfg, "fsync", 2_000, false, Some(&record(2_000, 1_500)));
        // Worse, but wrong class: ignored.  (The helper builds "fsync"
        // records; the class filter uses the observe() label.)
        accum.record(&cfg, "read", 9_000, false, Some(&record(9_000, 9_000)));
        // Matching and worse: replaces the earlier offender.
        accum.record(&cfg, "fsync", 5_000, false, Some(&record(5_000, 4_000)));
        let offender = accum.phase_stall_offenders()[0].expect("detector tripped");
        assert_eq!(offender.phase_ns[Phase::CommitWait.index()], 4_000);
    }
}
