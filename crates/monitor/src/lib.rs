//! # monitor — continuous health engine over the telemetry layer
//!
//! The observability PRs gave the workspace point-in-time telemetry:
//! phase-attributed spans ([`simkernel::trace`]) and a pull-shaped
//! [`MetricsRegistry`](simkernel::registry::MetricsRegistry).  This crate
//! turns that telemetry into *decisions* — the sensing half of the
//! ROADMAP's fleet rollout orchestrator:
//!
//! * **Sampler** ([`HealthMonitor`]): every observed operation feeds a
//!   current window; windows close every [`MonitorConfig::window_ops`]
//!   operations (**op-indexed**, not wall-clock, so a 1-CPU CI container
//!   and a fast workstation close windows at the same points in the op
//!   stream).  At each close the monitor snapshots a registry through an
//!   optional [snapshot source](HealthMonitor::set_snapshot_source),
//!   differences it against the previous window
//!   ([`MetricsSnapshot::counter_deltas`](simkernel::registry::MetricsSnapshot::counter_deltas)),
//!   and pushes a [`WindowSummary`] (rates, p50/p99/max, error counts,
//!   per-phase attribution, slowest spans) into a bounded ring.
//! * **SLO engine**: declarative per-op-class objectives ([`SloSpec`]:
//!   latency threshold + error budget) evaluated with multi-window
//!   **burn-rate** alerting — a fast window pair (default 5 windows) for
//!   responsiveness and a slow pair (default 60) for noise immunity, the
//!   standard SRE shape.  Crossing both thresholds emits a typed
//!   [`HealthEvent::SloBurnFired`]; the alert clears when the fast burn
//!   drops under [`MonitorConfig::clear_burn_threshold`].
//! * **Stall detectors**: an absolute whole-window detector
//!   ([`MonitorConfig::stall_threshold_ns`]) for gross pauses, and
//!   per-class **phase-stall** detectors ([`PhaseStallSpec`]) that flag a
//!   window when an op class spent over-threshold exclusive time in a
//!   phase it never enters on clean runs — the detector that separates a
//!   sub-millisecond upgrade quiesce (commit-wait on reads) from
//!   multi-millisecond group-commit and scheduling noise.
//! * **Flight recorder**: every fired alert (and every stall-flagged
//!   window, see [`MonitorConfig::stall_threshold_ns`]) freezes the last
//!   [`MonitorConfig::freeze_windows`] window summaries plus the slowest
//!   spans drained from the trace rings into an [`IncidentBundle`] — a
//!   self-contained JSON postmortem written next to the BENCH report.
//!
//! Like the trace hooks, the monitor is nearly free when off: the
//! disabled path of [`HealthMonitor::observe`] is a single `Relaxed`
//! atomic load ([`disabled_observe_cost_ns`] measures it; the bound is
//! CI-gated by the `health` experiment).
//!
//! ## Example
//!
//! ```
//! use monitor::{HealthMonitor, MonitorConfig, SloSpec};
//!
//! let cfg = MonitorConfig::new(8) // close a window every 8 ops
//!     .with_slo(SloSpec::error_budget("errors", "*", 0.01));
//! let monitor = HealthMonitor::new(cfg);
//! for _ in 0..64 {
//!     monitor.observe("read", 5_000, false, None);
//! }
//! assert_eq!(monitor.windows().len(), 8);
//! assert!(monitor.events().is_empty(), "clean traffic must not alert");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod incident;
pub mod slo;
pub mod window;

pub use engine::{HealthEvent, HealthMonitor};
pub use incident::IncidentBundle;
pub use slo::{MonitorConfig, PhaseStallSpec, SloSpec};
pub use window::{ClassWindowSummary, SpanSummary, WindowSummary};

use std::time::Instant;

/// Measures the disabled-path cost of [`HealthMonitor::observe`]: mean
/// nanoseconds per call while the monitor is switched off, median of five
/// batches (one preempted batch on a small container must not pollute the
/// figure).  Mirrors [`simkernel::trace::disabled_hook_cost_ns`]; the
/// `health` experiment gates this bound in CI.
pub fn disabled_observe_cost_ns(monitor: &HealthMonitor, calls_per_batch: u32) -> f64 {
    let mut batches: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..calls_per_batch.max(1) {
                monitor.observe("probe", 1, false, None);
            }
            start.elapsed().as_nanos() as f64 / f64::from(calls_per_batch.max(1))
        })
        .collect();
    batches.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    batches[batches.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observe_is_one_atomic_load_cheap() {
        let monitor = HealthMonitor::new(MonitorConfig::new(4));
        monitor.set_enabled(false);
        let ns = disabled_observe_cost_ns(&monitor, 200_000);
        // Same bound and headroom rationale as the disabled trace hook.
        assert!(ns < 500.0, "disabled monitor observe costs {ns:.1} ns/call");
        assert!(monitor.windows().is_empty(), "disabled observes must not accumulate");
    }
}
