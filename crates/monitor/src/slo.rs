//! Declarative objectives and monitor tuning.

use simkernel::trace::Phase;

/// One service-level objective over an op class (or all classes).
///
/// An observed operation is **bad** under this SLO when it failed or took
/// longer than [`SloSpec::latency_threshold_ns`]; the SLO grants a budget
/// of [`SloSpec::error_budget`] bad operations as a fraction of matching
/// traffic.  The engine alerts on the budget's *burn rate* (observed bad
/// fraction ÷ budget), not on single bad ops — see
/// [`MonitorConfig::fast_burn_threshold`].
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Objective name, used in events and incident bundles.
    pub name: String,
    /// Op-class label this objective covers (`"fsync"`), or `"*"` to
    /// aggregate every class.
    pub class: String,
    /// Operations slower than this are bad (`u64::MAX` = latency never
    /// makes an op bad; the objective is errors-only).
    pub latency_threshold_ns: u64,
    /// Allowed bad fraction of matching operations (e.g. `0.002`).
    pub error_budget: f64,
}

impl SloSpec {
    /// An errors-only objective: any failed op burns budget, latency does
    /// not.
    pub fn error_budget(name: &str, class: &str, budget: f64) -> Self {
        SloSpec {
            name: name.to_string(),
            class: class.to_string(),
            latency_threshold_ns: u64::MAX,
            error_budget: budget,
        }
    }

    /// A full objective: failed ops *and* ops slower than `threshold_ns`
    /// burn budget.
    pub fn latency_and_errors(name: &str, class: &str, threshold_ns: u64, budget: f64) -> Self {
        SloSpec { latency_threshold_ns: threshold_ns, ..SloSpec::error_budget(name, class, budget) }
    }

    /// Whether this objective covers ops of `class`.
    pub fn matches(&self, class: &str) -> bool {
        self.class == "*" || self.class == class
    }

    /// Whether one observed op is bad under this objective.
    pub fn is_bad(&self, latency_ns: u64, error: bool) -> bool {
        error || latency_ns > self.latency_threshold_ns
    }
}

/// A per-class, per-phase stall objective: flag any window in which an op
/// of `class` spent at least `threshold_ns` of exclusive time in `phase`.
///
/// This catches what the whole-window detector
/// ([`MonitorConfig::stall_threshold_ns`]) structurally cannot.  On a busy
/// single-CPU run the window latency *maximum* is dominated by scheduling
/// noise and by classes that legitimately wait (group commit holds create
/// and fsync ops for tens of milliseconds), so a sub-millisecond pause
/// hides far below any absolute whole-window threshold.  But a class that
/// never enters a phase on a clean run — reads and stats never wait on the
/// journal, so their commit-wait baseline is exactly zero — turns *any*
/// time in that phase into unambiguous evidence of cross-class blocking,
/// e.g. a live upgrade quiescing the filesystem.  The detector needs spans
/// ([`HealthMonitor::observe`](crate::HealthMonitor::observe) with
/// tracing enabled); span-less observations cannot trip it.
#[derive(Debug, Clone)]
pub struct PhaseStallSpec {
    /// Detector name, for events and incident bundles.
    pub name: String,
    /// Op-class label this detector watches, or `"*"` for every class.
    pub class: String,
    /// The phase whose exclusive time is the signal.
    pub phase: Phase,
    /// Minimum exclusive ns in [`PhaseStallSpec::phase`] that flags the
    /// window.  Calibrate against the clean-run per-class phase maximum
    /// (often zero) with headroom.
    pub threshold_ns: u64,
}

impl PhaseStallSpec {
    /// A new phase-stall detector.
    pub fn new(name: &str, class: &str, phase: Phase, threshold_ns: u64) -> Self {
        PhaseStallSpec {
            name: name.to_string(),
            class: class.to_string(),
            phase,
            threshold_ns: threshold_ns.max(1),
        }
    }

    /// Whether this detector watches ops of `class`.
    pub fn matches(&self, class: &str) -> bool {
        self.class == "*" || self.class == class
    }
}

/// Tuning for a [`HealthMonitor`](crate::HealthMonitor).
///
/// Windows are **op-indexed**: one window closes every
/// [`MonitorConfig::window_ops`] observed operations, so window boundaries
/// are a function of the op stream alone and a slow CI container sees the
/// same windowing as a fast workstation (only the per-window *latencies*
/// differ).  Wall-clock windows would make every burn-rate figure depend
/// on machine speed.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Observed operations (completed + failed) per window.
    pub window_ops: u64,
    /// Bound of the per-window summary ring (oldest evicted).
    pub ring_windows: usize,
    /// Fast burn-rate lookback, in windows (responsiveness).
    pub fast_windows: usize,
    /// Slow burn-rate lookback, in windows (noise immunity).  When fewer
    /// windows exist yet, the available ones are used.
    pub slow_windows: usize,
    /// An alert fires when the fast burn is at least this multiple of
    /// budget-neutral consumption...
    pub fast_burn_threshold: f64,
    /// ...and the slow burn is at least this multiple (both must hold).
    pub slow_burn_threshold: f64,
    /// An active alert clears when the fast burn drops below this.
    pub clear_burn_threshold: f64,
    /// Flag any window whose slowest op is at least this slow (an absolute
    /// stall detector for pause-style anomalies; `None` disables).
    /// Callers calibrate it against a clean run of the same workload.
    pub stall_threshold_ns: Option<u64>,
    /// Slowest spans kept per window summary.
    pub slowest_per_window: usize,
    /// Window summaries frozen into each incident bundle.
    pub freeze_windows: usize,
    /// The objectives to evaluate at every window close.
    pub slos: Vec<SloSpec>,
    /// Per-class phase-stall detectors evaluated at every window close.
    pub phase_stalls: Vec<PhaseStallSpec>,
}

impl MonitorConfig {
    /// A config with the default burn-rate shape (5-window fast / 60-window
    /// slow, fire at 4x/0.5x, clear under 1x) and no objectives.
    pub fn new(window_ops: u64) -> Self {
        MonitorConfig {
            window_ops: window_ops.max(1),
            ring_windows: 128,
            fast_windows: 5,
            slow_windows: 60,
            fast_burn_threshold: 4.0,
            slow_burn_threshold: 0.5,
            clear_burn_threshold: 1.0,
            stall_threshold_ns: None,
            slowest_per_window: 3,
            freeze_windows: 8,
            slos: Vec::new(),
            phase_stalls: Vec::new(),
        }
    }

    /// Adds an objective.
    #[must_use]
    pub fn with_slo(mut self, slo: SloSpec) -> Self {
        self.slos.push(slo);
        self
    }

    /// Sets the absolute stall threshold (see
    /// [`MonitorConfig::stall_threshold_ns`]).
    #[must_use]
    pub fn with_stall_threshold_ns(mut self, threshold_ns: u64) -> Self {
        self.stall_threshold_ns = Some(threshold_ns);
        self
    }

    /// Adds a per-class phase-stall detector.
    #[must_use]
    pub fn with_phase_stall(mut self, spec: PhaseStallSpec) -> Self {
        self.phase_stalls.push(spec);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_matching_and_badness() {
        let slo = SloSpec::latency_and_errors("tail", "fsync", 1_000_000, 0.01);
        assert!(slo.matches("fsync"));
        assert!(!slo.matches("read"));
        assert!(SloSpec::error_budget("e", "*", 0.1).matches("read"));
        assert!(slo.is_bad(0, true), "errors are always bad");
        assert!(slo.is_bad(2_000_000, false), "over-threshold latency is bad");
        assert!(!slo.is_bad(500_000, false));
        let errors_only = SloSpec::error_budget("e", "*", 0.1);
        assert!(!errors_only.is_bad(u64::MAX - 1, false), "latency never burns errors-only");
    }

    #[test]
    fn phase_stall_spec_matches_classes() {
        let spec = PhaseStallSpec::new("upgrade-pause", "read", Phase::CommitWait, 50_000);
        assert!(spec.matches("read"));
        assert!(!spec.matches("create"));
        assert!(PhaseStallSpec::new("any", "*", Phase::DevIo, 1).matches("fsync"));
        assert_eq!(PhaseStallSpec::new("z", "*", Phase::DevIo, 0).threshold_ns, 1);
    }
}
