//! Incident bundles: the flight recorder's frozen evidence.

use std::io;
use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::engine::HealthEvent;
use crate::window::{SpanSummary, WindowSummary};

/// A frozen postmortem for one alert: the triggering event, the trailing
/// window summaries, and the slowest spans drained from the trace rings at
/// freeze time.  Serialized to `INCIDENT_*.json` next to the BENCH report
/// so a tripped CI gate ships its own evidence.
#[derive(Debug, Clone, Serialize)]
pub struct IncidentBundle {
    /// Monotone id within the monitor instance.
    pub id: u64,
    /// The event that froze this bundle.
    pub trigger: HealthEvent,
    /// The last [`MonitorConfig::freeze_windows`](crate::MonitorConfig)
    /// window summaries, oldest first.
    pub windows: Vec<WindowSummary>,
    /// Slowest spans still in the trace rings at freeze time, slowest
    /// first (empty when tracing was off).
    pub slowest_spans: Vec<SpanSummary>,
}

/// The top-level keys every incident bundle must carry —
/// [`IncidentBundle::schema_check`] and the `health` experiment gate on
/// these.
pub const SCHEMA_KEYS: [&str; 4] = ["id", "trigger", "windows", "slowest_spans"];

impl IncidentBundle {
    /// Serializes the bundle to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// File name this bundle is written under (`INCIDENT_<id>_<kind>.json`).
    pub fn file_name(&self) -> String {
        format!("INCIDENT_{}_{}.json", self.id, self.trigger.kind())
    }

    /// Writes the bundle into `dir` and returns the file's path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Validates that `json` parses and carries the incident schema:
    /// every [`SCHEMA_KEYS`] top-level key, a `kind` inside the trigger,
    /// and per-window `index`/`ops`/`errors` fields.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn schema_check(json: &str) -> Result<(), String> {
        let value: serde::Value =
            serde_json::from_str(json).map_err(|e| format!("incident bundle is not JSON: {e}"))?;
        for key in SCHEMA_KEYS {
            if value.get(key).is_none() {
                return Err(format!("incident bundle missing top-level key {key:?}"));
            }
        }
        let trigger = value.get("trigger").expect("checked above");
        if trigger.get("kind").is_none() {
            return Err("incident trigger missing `kind`".to_string());
        }
        let Some(serde::Value::Array(windows)) = value.get("windows") else {
            return Err("incident `windows` is not an array".to_string());
        };
        for (i, window) in windows.iter().enumerate() {
            for key in ["index", "ops", "errors", "p99_ns", "max_ns", "counter_deltas"] {
                if window.get(key).is_none() {
                    return Err(format!("incident window {i} missing {key:?}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn bundle() -> IncidentBundle {
        IncidentBundle {
            id: 3,
            trigger: HealthEvent::SloBurnFired {
                slo: "budget".to_string(),
                window: 12,
                fast_burn: 9.5,
                slow_burn: 2.0,
            },
            windows: vec![WindowSummary {
                index: 12,
                ops: 250,
                errors: 6,
                p50_ns: 10_000,
                p99_ns: 90_000,
                max_ns: 200_000,
                slo_bad: vec![6],
                slo_ops: vec![256],
                phase_ns: vec![0; 5],
                counter_deltas: BTreeMap::from([("dev.writes".to_string(), 40u64)]),
                classes: BTreeMap::new(),
                slowest: Vec::new(),
            }],
            slowest_spans: Vec::new(),
        }
    }

    #[test]
    fn bundle_json_passes_its_own_schema_check() {
        let json = bundle().to_json();
        IncidentBundle::schema_check(&json).expect("self-produced bundle must validate");
        assert!(json.contains("slo-burn-fired"));
        assert!(json.contains("dev.writes"));
    }

    #[test]
    fn schema_check_rejects_garbage_and_missing_keys() {
        assert!(IncidentBundle::schema_check("not json").is_err());
        assert!(IncidentBundle::schema_check("{\"id\": 1}").is_err());
    }

    #[test]
    fn write_to_produces_the_named_file() {
        let dir =
            std::env::temp_dir().join(format!("monitor-incident-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = bundle().write_to(&dir).unwrap();
        assert!(path.ends_with("INCIDENT_3_slo-burn-fired.json"));
        let json = std::fs::read_to_string(&path).unwrap();
        IncidentBundle::schema_check(&json).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
