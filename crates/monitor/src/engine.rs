//! The health monitor: sampler + SLO burn-rate engine + flight recorder.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Serialize, Value};
use simkernel::registry::MetricsSnapshot;
use simkernel::trace::{self, SpanRecord};

use crate::incident::IncidentBundle;
use crate::slo::MonitorConfig;
use crate::window::{SpanSummary, WindowAccum, WindowSummary};

/// A typed health decision emitted at a window close.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthEvent {
    /// An SLO's error budget is burning fast enough to alert: the fast
    /// *and* slow burn rates both crossed their thresholds.
    SloBurnFired {
        /// Objective name ([`crate::SloSpec::name`]).
        slo: String,
        /// Window index at which the alert fired.
        window: u64,
        /// Burn rate over the fast lookback (multiples of budget-neutral).
        fast_burn: f64,
        /// Burn rate over the slow lookback.
        slow_burn: f64,
    },
    /// A previously fired alert recovered (fast burn dropped below the
    /// clear threshold).
    SloBurnCleared {
        /// Objective name.
        slo: String,
        /// Window index at which the alert cleared.
        window: u64,
        /// Fast burn rate at clear time.
        fast_burn: f64,
    },
    /// A window's slowest op crossed the absolute stall threshold — the
    /// pause-style anomaly detector
    /// ([`MonitorConfig::stall_threshold_ns`]).
    LatencyWindowFlagged {
        /// The flagged window's index.
        window: u64,
        /// Slowest op in the window, ns.
        max_ns: u64,
        /// Window p99, ns.
        p99_ns: u64,
        /// Dominant phase of the window's slowest span (`"other"` when
        /// tracing was off or un-instrumented time dominated).
        dominant_phase: String,
    },
}

impl HealthEvent {
    /// Stable kind label (used in incident file names and BENCH rows).
    pub fn kind(&self) -> &'static str {
        match self {
            HealthEvent::SloBurnFired { .. } => "slo-burn-fired",
            HealthEvent::SloBurnCleared { .. } => "slo-burn-cleared",
            HealthEvent::LatencyWindowFlagged { .. } => "latency-window-flagged",
        }
    }

    /// The window index the event was emitted at.
    pub fn window(&self) -> u64 {
        match *self {
            HealthEvent::SloBurnFired { window, .. }
            | HealthEvent::SloBurnCleared { window, .. }
            | HealthEvent::LatencyWindowFlagged { window, .. } => window,
        }
    }

    /// Whether this event represents a new alert (the false-positive gate
    /// counts these; clears are recovery, not alerts).
    pub fn is_alert(&self) -> bool {
        !matches!(self, HealthEvent::SloBurnCleared { .. })
    }
}

impl Serialize for HealthEvent {
    fn to_value(&self) -> Value {
        let mut fields = vec![("kind".to_string(), Value::Str(self.kind().to_string()))];
        match self {
            HealthEvent::SloBurnFired { slo, window, fast_burn, slow_burn } => {
                fields.push(("slo".to_string(), Value::Str(slo.clone())));
                fields.push(("window".to_string(), Value::Int(*window as i128)));
                fields.push(("fast_burn".to_string(), Value::Float(*fast_burn)));
                fields.push(("slow_burn".to_string(), Value::Float(*slow_burn)));
            }
            HealthEvent::SloBurnCleared { slo, window, fast_burn } => {
                fields.push(("slo".to_string(), Value::Str(slo.clone())));
                fields.push(("window".to_string(), Value::Int(*window as i128)));
                fields.push(("fast_burn".to_string(), Value::Float(*fast_burn)));
            }
            HealthEvent::LatencyWindowFlagged { window, max_ns, p99_ns, dominant_phase } => {
                fields.push(("window".to_string(), Value::Int(*window as i128)));
                fields.push(("max_ns".to_string(), Value::Int(*max_ns as i128)));
                fields.push(("p99_ns".to_string(), Value::Int(*p99_ns as i128)));
                fields.push(("dominant_phase".to_string(), Value::Str(dominant_phase.clone())));
            }
        }
        Value::Object(fields)
    }
}

/// Pulls a fresh [`MetricsSnapshot`] at each window close (typically a
/// closure over `MountedStack::publish_metrics` into a private registry).
pub type SnapshotSource = Box<dyn FnMut() -> MetricsSnapshot + Send>;

/// The continuous health engine.  See the crate docs for the three roles
/// (sampler, SLO engine, flight recorder); one instance watches one run.
///
/// Thread-safe: workers call [`HealthMonitor::observe`] concurrently; the
/// window close that lands on the crossing observation runs inline under
/// the monitor's lock (window closes are rare and cheap — summarizing a
/// few histograms).
pub struct HealthMonitor {
    enabled: AtomicBool,
    cfg: MonitorConfig,
    inner: Mutex<Inner>,
}

struct Inner {
    current: WindowAccum,
    next_index: u64,
    windows: VecDeque<WindowSummary>,
    last_snapshot: MetricsSnapshot,
    snapshot_source: Option<SnapshotSource>,
    /// Per-SLO "alert currently firing" latch, [`MonitorConfig::slos`]
    /// order.
    alert_active: Vec<bool>,
    first_error_window: Option<u64>,
    events: Vec<HealthEvent>,
    incidents: Vec<IncidentBundle>,
    next_incident_id: u64,
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthMonitor")
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("window_ops", &self.cfg.window_ops)
            .finish_non_exhaustive()
    }
}

impl HealthMonitor {
    /// Creates an enabled monitor (shared: the driver threads observe into
    /// it, the harness reads events/windows out of it).
    pub fn new(cfg: MonitorConfig) -> Arc<Self> {
        let slos = cfg.slos.len();
        Arc::new(HealthMonitor {
            enabled: AtomicBool::new(true),
            inner: Mutex::new(Inner {
                current: WindowAccum::new(&cfg),
                next_index: 0,
                windows: VecDeque::new(),
                last_snapshot: MetricsSnapshot::default(),
                snapshot_source: None,
                alert_active: vec![false; slos],
                first_error_window: None,
                events: Vec::new(),
                incidents: Vec::new(),
                next_incident_id: 0,
            }),
            cfg,
        })
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Switches observation on/off.  Off, [`HealthMonitor::observe`] is a
    /// single `Relaxed` atomic load.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the monitor is observing.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Installs the registry snapshot source consulted at every window
    /// close; per-window [`WindowSummary::counter_deltas`] are differences
    /// of consecutive snapshots.  Also primes the baseline so the first
    /// window's deltas do not include pre-run history.
    pub fn set_snapshot_source(
        &self,
        mut source: impl FnMut() -> MetricsSnapshot + Send + 'static,
    ) {
        let mut inner = self.inner.lock();
        inner.last_snapshot = source();
        inner.snapshot_source = Some(Box::new(source));
    }

    /// Feeds one observed operation: its class label, measured latency
    /// (ignored for failed ops), whether it failed, and optionally its
    /// finished trace span for phase attribution.  Closes the current
    /// window when it reaches [`MonitorConfig::window_ops`] observations.
    pub fn observe(
        &self,
        class: &'static str,
        latency_ns: u64,
        error: bool,
        span: Option<&SpanRecord>,
    ) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.inner.lock();
        inner.current.record(&self.cfg, class, latency_ns, error, span);
        if inner.current.observed() >= self.cfg.window_ops {
            self.close_window(&mut inner);
        }
    }

    /// Closes the in-progress window even if it is short (end of run); a
    /// no-op when nothing was observed since the last close.
    pub fn finish(&self) {
        let mut inner = self.inner.lock();
        if inner.current.observed() > 0 {
            self.close_window(&mut inner);
        }
    }

    /// Every event emitted so far, in emission order.
    pub fn events(&self) -> Vec<HealthEvent> {
        self.inner.lock().events.clone()
    }

    /// Events that represent alerts (fired SLO burns and flagged windows).
    pub fn alerts(&self) -> Vec<HealthEvent> {
        self.inner.lock().events.iter().filter(|e| e.is_alert()).cloned().collect()
    }

    /// The ring of closed window summaries, oldest first.
    pub fn windows(&self) -> Vec<WindowSummary> {
        self.inner.lock().windows.iter().cloned().collect()
    }

    /// Index of the first closed window containing a failed op, if any —
    /// tracked online, so it survives ring eviction.
    pub fn first_error_window(&self) -> Option<u64> {
        self.inner.lock().first_error_window
    }

    /// Takes the incident bundles frozen so far (the caller writes them to
    /// disk next to its BENCH report).
    pub fn take_incidents(&self) -> Vec<IncidentBundle> {
        std::mem::take(&mut self.inner.lock().incidents)
    }

    fn close_window(&self, inner: &mut Inner) {
        let index = inner.next_index;
        inner.next_index += 1;
        let deltas = match inner.snapshot_source.as_mut() {
            Some(source) => {
                let snap = source();
                let deltas = snap.counter_deltas(&inner.last_snapshot);
                inner.last_snapshot = snap;
                deltas
            }
            None => BTreeMap::new(),
        };
        let accum = std::mem::replace(&mut inner.current, WindowAccum::new(&self.cfg));
        let phase_stall_offenders = accum.phase_stall_offenders().to_vec();
        let summary = accum.summarize(index, deltas);
        if summary.errors > 0 && inner.first_error_window.is_none() {
            inner.first_error_window = Some(index);
        }
        inner.windows.push_back(summary);
        while inner.windows.len() > self.cfg.ring_windows.max(1) {
            inner.windows.pop_front();
        }
        self.evaluate_slos(inner, index);
        self.evaluate_stall(inner, index);
        self.evaluate_phase_stalls(inner, index, &phase_stall_offenders);
    }

    /// Burn rate of SLO `i` over the trailing `lookback` windows:
    /// (bad fraction) / budget, 0.0 with no matching traffic.
    fn burn_rate(&self, inner: &Inner, i: usize, lookback: usize) -> f64 {
        let tail = inner.windows.iter().rev().take(lookback.max(1));
        let (mut bad, mut ops) = (0u64, 0u64);
        for w in tail {
            bad += w.slo_bad[i];
            ops += w.slo_ops[i];
        }
        if ops == 0 {
            return 0.0;
        }
        let budget = self.cfg.slos[i].error_budget.max(f64::MIN_POSITIVE);
        (bad as f64 / ops as f64) / budget
    }

    fn evaluate_slos(&self, inner: &mut Inner, index: u64) {
        for i in 0..self.cfg.slos.len() {
            let fast = self.burn_rate(inner, i, self.cfg.fast_windows);
            let slow = self.burn_rate(inner, i, self.cfg.slow_windows);
            if !inner.alert_active[i]
                && fast >= self.cfg.fast_burn_threshold
                && slow >= self.cfg.slow_burn_threshold
            {
                inner.alert_active[i] = true;
                let event = HealthEvent::SloBurnFired {
                    slo: self.cfg.slos[i].name.clone(),
                    window: index,
                    fast_burn: fast,
                    slow_burn: slow,
                };
                inner.events.push(event.clone());
                self.freeze_incident(inner, event);
            } else if inner.alert_active[i] && fast < self.cfg.clear_burn_threshold {
                inner.alert_active[i] = false;
                inner.events.push(HealthEvent::SloBurnCleared {
                    slo: self.cfg.slos[i].name.clone(),
                    window: index,
                    fast_burn: fast,
                });
            }
        }
    }

    fn evaluate_stall(&self, inner: &mut Inner, index: u64) {
        let Some(threshold) = self.cfg.stall_threshold_ns else {
            return;
        };
        let window = inner.windows.back().expect("close_window just pushed");
        if window.max_ns < threshold {
            return;
        }
        let dominant = window
            .slowest
            .first()
            .map(|s| s.dominant_phase.clone())
            .unwrap_or_else(|| "other".to_string());
        let event = HealthEvent::LatencyWindowFlagged {
            window: index,
            max_ns: window.max_ns,
            p99_ns: window.p99_ns,
            dominant_phase: dominant,
        };
        inner.events.push(event.clone());
        self.freeze_incident(inner, event);
    }

    /// Per-class phase-stall detectors ([`MonitorConfig::phase_stalls`]):
    /// one flagged-window event per tripped detector, carrying the
    /// offending span's exclusive time in the watched phase as `max_ns`
    /// and that phase's label as `dominant_phase`.
    fn evaluate_phase_stalls(
        &self,
        inner: &mut Inner,
        index: u64,
        offenders: &[Option<SpanRecord>],
    ) {
        for (spec, offender) in self.cfg.phase_stalls.iter().zip(offenders) {
            let Some(rec) = offender else { continue };
            let p99_ns = inner.windows.back().map_or(0, |w| w.p99_ns);
            let event = HealthEvent::LatencyWindowFlagged {
                window: index,
                max_ns: rec.phase_ns[spec.phase.index()],
                p99_ns,
                dominant_phase: spec.phase.label().to_string(),
            };
            inner.events.push(event.clone());
            self.freeze_incident(inner, event);
        }
    }

    /// The flight recorder: freeze the trailing windows plus the slowest
    /// spans still in the trace rings into a self-contained bundle.
    fn freeze_incident(&self, inner: &mut Inner, trigger: HealthEvent) {
        let id = inner.next_incident_id;
        inner.next_incident_id += 1;
        let windows: Vec<WindowSummary> = inner
            .windows
            .iter()
            .rev()
            .take(self.cfg.freeze_windows.max(1))
            .rev()
            .cloned()
            .collect();
        let slowest_spans: Vec<SpanSummary> =
            trace::drain_slowest(16).iter().map(SpanSummary::from_record).collect();
        inner.incidents.push(IncidentBundle { id, trigger, windows, slowest_spans });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloSpec;
    use simkernel::registry::MetricsRegistry;

    fn error_budget_monitor(window_ops: u64, budget: f64) -> Arc<HealthMonitor> {
        HealthMonitor::new(
            MonitorConfig::new(window_ops).with_slo(SloSpec::error_budget("budget", "*", budget)),
        )
    }

    fn drive_clean(monitor: &HealthMonitor, ops: u64) {
        for _ in 0..ops {
            monitor.observe("read", 10_000, false, None);
        }
    }

    fn drive_errors(monitor: &HealthMonitor, ops: u64, every: u64) {
        for i in 0..ops {
            monitor.observe("write", 10_000, i % every == 0, None);
        }
    }

    #[test]
    fn clean_traffic_never_alerts() {
        let monitor = error_budget_monitor(16, 0.002);
        drive_clean(&monitor, 16 * 40);
        assert_eq!(monitor.windows().len(), 40);
        assert!(monitor.events().is_empty());
        assert_eq!(monitor.first_error_window(), None);
        assert!(monitor.take_incidents().is_empty());
    }

    #[test]
    fn burn_alert_fires_fast_and_clears_after_recovery() {
        let monitor = error_budget_monitor(16, 0.002);
        // Healthy warm-up, then a 10% error storm, then recovery.
        drive_clean(&monitor, 16 * 10);
        drive_errors(&monitor, 16 * 3, 10);
        drive_clean(&monitor, 16 * 10);
        let events = monitor.events();
        let fired = events
            .iter()
            .find_map(|e| match e {
                HealthEvent::SloBurnFired { window, fast_burn, slow_burn, .. } => {
                    Some((*window, *fast_burn, *slow_burn))
                }
                _ => None,
            })
            .expect("storm must fire the budget alert");
        let first_bad = monitor.first_error_window().expect("errors were observed");
        assert_eq!(first_bad, 10);
        assert!(
            fired.0 <= first_bad + 2,
            "alert fired at window {} but errors started at {first_bad}",
            fired.0
        );
        assert!(fired.1 >= 4.0 && fired.2 >= 0.5);
        let cleared = events
            .iter()
            .find_map(|e| match e {
                HealthEvent::SloBurnCleared { window, .. } => Some(*window),
                _ => None,
            })
            .expect("recovery must clear the alert");
        assert!(cleared > fired.0);
        // Exactly one alert (the latch holds while burning), one incident.
        assert_eq!(monitor.alerts().len(), 1);
        assert_eq!(monitor.take_incidents().len(), 1);
    }

    #[test]
    fn stall_detector_flags_the_window_and_freezes_an_incident() {
        let monitor = HealthMonitor::new(MonitorConfig::new(8).with_stall_threshold_ns(1_000_000));
        drive_clean(&monitor, 8 * 4);
        monitor.observe("fsync", 5_000_000, false, None); // the stall
        drive_clean(&monitor, 7 + 8 * 2);
        let flagged: Vec<_> = monitor
            .events()
            .iter()
            .filter_map(|e| match e {
                HealthEvent::LatencyWindowFlagged { window, max_ns, .. } => {
                    Some((*window, *max_ns))
                }
                _ => None,
            })
            .collect();
        assert_eq!(flagged, vec![(4, 5_000_000)], "exactly the stall window is flagged");
        let incidents = monitor.take_incidents();
        assert_eq!(incidents.len(), 1);
        assert!(incidents[0].windows.iter().any(|w| w.index == 4));
    }

    #[test]
    fn phase_stall_flags_cross_class_blocking_below_the_noise_floor() {
        use crate::slo::PhaseStallSpec;
        use simkernel::trace::Phase;
        let span = |class: &'static str, total_ns: u64, commit_wait_ns: u64| {
            let mut phase_ns = [0; Phase::COUNT];
            phase_ns[Phase::CommitWait.index()] = commit_wait_ns;
            SpanRecord {
                op_id: 0,
                class,
                epoch: 0,
                total_ns,
                phase_ns,
                phase_counts: [0; Phase::COUNT],
            }
        };
        let monitor = HealthMonitor::new(MonitorConfig::new(4).with_phase_stall(
            PhaseStallSpec::new("read-commit-wait", "read", Phase::CommitWait, 100_000),
        ));
        // Window 0: clean reads plus a create that waits 10 ms on group
        // commit — legitimate for its class, must not trip a read detector.
        monitor.observe("read", 10_000, false, Some(&span("read", 10_000, 0)));
        monitor.observe("read", 12_000, false, Some(&span("read", 12_000, 0)));
        monitor.observe("create", 10_000_000, false, Some(&span("create", 10_000_000, 9_900_000)));
        monitor.observe("read", 11_000, false, Some(&span("read", 11_000, 0)));
        // Window 1: one read blocked 400 us on a writer holding the FS lock
        // (an upgrade-style pause) — far below window 0's 10 ms maximum,
        // but commit-wait on a read is categorical evidence.
        monitor.observe("read", 410_000, false, Some(&span("read", 410_000, 400_000)));
        for _ in 0..3 {
            monitor.observe("read", 10_000, false, Some(&span("read", 10_000, 0)));
        }
        let flagged: Vec<_> = monitor
            .events()
            .iter()
            .filter_map(|e| match e {
                HealthEvent::LatencyWindowFlagged { window, max_ns, dominant_phase, .. } => {
                    Some((*window, *max_ns, dominant_phase.clone()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            flagged,
            vec![(1, 400_000, "commit-wait".to_string())],
            "only the pause window, attributed to commit-wait"
        );
        assert_eq!(monitor.take_incidents().len(), 1);
    }

    #[test]
    fn window_close_differences_registry_snapshots() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.set_counter("dev.writes", 100);
        let monitor = HealthMonitor::new(MonitorConfig::new(4));
        let source_registry = Arc::clone(&registry);
        monitor.set_snapshot_source(move || source_registry.snapshot());
        registry.set_counter("dev.writes", 140);
        drive_clean(&monitor, 4);
        registry.set_counter("dev.writes", 150);
        drive_clean(&monitor, 4);
        let windows = monitor.windows();
        assert_eq!(windows[0].counter_deltas["dev.writes"], 40, "baseline primed at install");
        assert_eq!(windows[1].counter_deltas["dev.writes"], 10);
    }

    #[test]
    fn finish_closes_a_partial_window() {
        let monitor = error_budget_monitor(100, 0.5);
        drive_clean(&monitor, 7);
        assert!(monitor.windows().is_empty());
        monitor.finish();
        let windows = monitor.windows();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].ops, 7);
        monitor.finish();
        assert_eq!(monitor.windows().len(), 1, "finish with nothing pending is a no-op");
    }

    #[test]
    fn ring_is_bounded() {
        let mut cfg = MonitorConfig::new(2);
        cfg.ring_windows = 3;
        let monitor = HealthMonitor::new(cfg);
        drive_clean(&monitor, 2 * 10);
        let windows = monitor.windows();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows.first().map(|w| w.index), Some(7), "oldest evicted");
    }
}
