//! Planted-bug test for the journal-level crash oracles, synchronous
//! path: flipping [`journal::TEST_UNSAFE_EARLY_COMMIT_RECORD`] makes
//! commits write the record (and its barrier) *before* the payload, and
//! exhaustive-prefix enumeration must then catch recovery installing
//! stale log bytes — while the identical workload with the hook off must
//! show zero violations.  This proves the oracles in this crate detect
//! real ordering violations rather than vacuously passing.
//!
//! Separate test binary: the hook is process-global, so it must not share
//! a process with tests that assume the safe ordering.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crashsim::{prefix_states, DiskImage, FaultConfig, FaultDevice};
use journal::io::{DeviceIo, JournalIo};
use journal::record::BSIZE;
use journal::{Journal, JournalConfig, MAX_OP_BLOCKS, TEST_UNSAFE_EARLY_COMMIT_RECORD};
use simkernel::dev::{BlockDevice, RamDisk};

const LOG_BLOCKS: usize = 2 * (4 * MAX_OP_BLOCKS + 1);
const DISK_BLOCKS: u64 = 1024;

fn config() -> JournalConfig {
    JournalConfig::from_geometry(2, LOG_BLOCKS, LOG_BLOCKS, (2 + LOG_BLOCKS as u64, DISK_BLOCKS))
}

/// Runs the two-transaction conflict workload over a prefilled disk and
/// returns how many prefix crash states violate the recovery oracle.
///
/// The homes are prefilled with 0x11 **before** the trace starts so a
/// stale install is visible: with the planted bug, a crash between the
/// record and the payload makes recovery install the log region's old
/// bytes (zeros) over the 0x11 prefill — a value no correct history can
/// produce.
fn violations_with_bug(enable_bug: bool) -> usize {
    let base: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(BSIZE as u32, DISK_BLOCKS));
    for blockno in [900u64, 901, 902] {
        base.write_block(blockno, &[0x11; BSIZE]).unwrap();
    }
    base.flush().unwrap();
    let image = Arc::new(DiskImage::capture(&base).unwrap());
    let recorder = Arc::new(FaultDevice::new(base, FaultConfig::recorder(0)));

    TEST_UNSAFE_EARLY_COMMIT_RECORD.store(enable_bug, Ordering::SeqCst);
    {
        let io = DeviceIo::new(Arc::clone(&recorder) as Arc<dyn BlockDevice>);
        let journal = Journal::new(config());
        journal.begin_op();
        journal.log_write(900, &[0xA1; BSIZE]).unwrap();
        journal.log_write(901, &[0xA2; BSIZE]).unwrap();
        journal.end_op(&io).unwrap();
        journal.begin_op();
        journal.log_write(900, &[0xB1; BSIZE]).unwrap();
        journal.log_write(902, &[0xB2; BSIZE]).unwrap();
        journal.end_op(&io).unwrap();
    }
    TEST_UNSAFE_EARLY_COMMIT_RECORD.store(false, Ordering::SeqCst);
    let trace = recorder.trace();

    let mut violations = 0;
    for state in prefix_states(&trace, &image) {
        let disk: Arc<dyn BlockDevice> = Arc::clone(&state.disk) as Arc<dyn BlockDevice>;
        let io = DeviceIo::new(disk);
        let journal = Journal::new(config());
        journal.recover(&io).unwrap();
        let mut fills = [0u8; 3];
        for (slot, blockno) in [900u64, 901, 902].into_iter().enumerate() {
            let mut buf = vec![0u8; BSIZE];
            io.read_block(blockno, &mut buf).unwrap();
            fills[slot] = buf[0];
        }
        // The only states a correct journal can recover to: nothing
        // applied, tx1 applied, or tx1+tx2 applied.
        let legal = matches!(fills, [0x11, 0x11, 0x11] | [0xA1, 0xA2, 0x11] | [0xB1, 0xA2, 0xB2]);
        if !legal {
            violations += 1;
        }
    }
    violations
}

#[test]
fn prefix_oracle_catches_early_commit_record() {
    // Sanity: the identical workload without the planted bug is clean.
    assert_eq!(violations_with_bug(false), 0, "clean journal flagged as buggy");
    let violations = violations_with_bug(true);
    assert!(violations > 0, "planted early-commit-record bug produced no detectable violation");
}
