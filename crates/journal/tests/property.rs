//! Journal property test (randomized crash contract): random operation
//! streams × seeded crash-state sampling against the bare [`Journal`] over
//! crashsim's fault device.
//!
//! Each round derives everything — the transaction stream, interleaved
//! `flush` calls, and the sampled crash states — from one seed, which is
//! printed on entry, so any failure replays bit-for-bit by pasting the
//! seed into `run_round`.  For every sampled crash state the oracle
//! asserts, after recovery:
//!
//! * **committed-group atomicity** — each transaction's blocks are either
//!   all at their written value or all at the initial image value, with
//!   every byte of every block uniform (no torn block survives recovery);
//! * **commit ordering** — the set of applied transactions is a prefix of
//!   the commit order (ops ran sequentially, so seq order = stream order);
//! * **no resurrection** — a second recovery replays nothing.

use std::sync::Arc;

use crashsim::{sampled_states, DiskImage, FaultConfig, FaultDevice};
use journal::io::{DeviceIo, JournalIo};
use journal::record::BSIZE;
use journal::{Journal, JournalConfig, MAX_OP_BLOCKS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simkernel::dev::{BlockDevice, RamDisk};

const LOG_BLOCKS: usize = 2 * (4 * MAX_OP_BLOCKS + 1);
const DISK_BLOCKS: u64 = 1024;
/// First home block each transaction's disjoint range is carved from.
const HOME_BASE: u64 = 600;
/// Transactions per round; each owns `BLOCKS_PER_TX` consecutive blocks.
const TXS_PER_ROUND: u64 = 12;
const BLOCKS_PER_TX: u64 = 4;
const STATES_PER_ROUND: usize = 150;

fn config() -> JournalConfig {
    JournalConfig::from_geometry(2, LOG_BLOCKS, LOG_BLOCKS, (2 + LOG_BLOCKS as u64, DISK_BLOCKS))
}

/// One transaction of the generated stream: which blocks it wrote and with
/// what fill byte (nonzero, unique per tx).
struct TxPlan {
    blocks: Vec<u64>,
    fill: u8,
}

#[test]
fn random_op_streams_recover_atomically_from_sampled_crashes() {
    for round in 0..4u64 {
        run_round(0x0100_5EEDu64 + round);
    }
}

fn run_round(seed: u64) {
    // Replay any failure with `run_round(<seed>)`.
    println!("journal property round: seed {seed:#x}");
    let mut rng = SmallRng::seed_from_u64(seed);

    let base: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(BSIZE as u32, DISK_BLOCKS));
    let image = Arc::new(DiskImage::capture(&base).unwrap());
    let recorder = Arc::new(FaultDevice::new(base, FaultConfig::recorder(seed)));

    // Generate and run the op stream.  Transaction t owns the disjoint
    // block range [HOME_BASE + t*BLOCKS_PER_TX, ..), writes 1..=4 of those
    // blocks with fill t+1, and is occasionally followed by a flush.
    let mut plans = Vec::new();
    {
        let io = DeviceIo::new(Arc::clone(&recorder) as Arc<dyn BlockDevice>);
        let journal = Journal::new(config());
        for t in 0..TXS_PER_ROUND {
            let count = rng.gen_range(1..=BLOCKS_PER_TX);
            let fill = (t + 1) as u8;
            let blocks: Vec<u64> = (0..count).map(|i| HOME_BASE + t * BLOCKS_PER_TX + i).collect();
            journal.begin_op();
            for &blockno in &blocks {
                journal.log_write(blockno, &[fill; BSIZE]).unwrap();
            }
            journal.end_op(&io).unwrap();
            if rng.gen_range(0..4) == 0 {
                journal.flush(&io).unwrap();
            }
            plans.push(TxPlan { blocks, fill });
        }
    }
    let trace = recorder.trace();

    let sample_seed = rng.gen::<u64>();
    for state in sampled_states(&trace, &image, sample_seed, STATES_PER_ROUND) {
        let disk: Arc<dyn BlockDevice> = Arc::clone(&state.disk) as Arc<dyn BlockDevice>;
        let io = DeviceIo::new(disk);
        let journal = Journal::new(config());
        journal.recover(&io).unwrap();
        // No resurrection: a second recovery has nothing to replay.
        assert_eq!(
            journal.recover(&io).unwrap(),
            0,
            "seed {seed:#x}: {}: second recovery replayed blocks",
            state.description
        );

        // Committed-group atomicity per transaction, and every surviving
        // block fully uniform (torn writes must not outlive recovery).
        let mut applied = Vec::with_capacity(plans.len());
        for (t, plan) in plans.iter().enumerate() {
            let mut seen = Vec::with_capacity(plan.blocks.len());
            for &blockno in &plan.blocks {
                let mut buf = vec![0u8; BSIZE];
                io.read_block(blockno, &mut buf).unwrap();
                assert!(
                    buf.iter().all(|&b| b == buf[0]),
                    "seed {seed:#x}: {}: block {blockno} torn after recovery",
                    state.description
                );
                assert!(
                    buf[0] == 0 || buf[0] == plan.fill,
                    "seed {seed:#x}: {}: block {blockno} holds foreign byte {:#x}",
                    state.description,
                    buf[0]
                );
                seen.push(buf[0] == plan.fill);
            }
            let tx_applied = seen[0];
            assert!(
                seen.iter().all(|&s| s == tx_applied),
                "seed {seed:#x}: {}: tx {t} partially applied",
                state.description
            );
            applied.push(tx_applied);
        }

        // Commit ordering: the applied set is a prefix of the stream.
        let first_missing = applied.iter().position(|&a| !a).unwrap_or(plans.len());
        assert!(
            applied[first_missing..].iter().all(|&a| !a),
            "seed {seed:#x}: {}: applied transactions are not a prefix: {applied:?}",
            state.description
        );
    }
}
