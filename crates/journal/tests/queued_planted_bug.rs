//! Planted-bug test for the journal-level crash oracles, queued path:
//! flipping [`journal::TEST_UNSAFE_RECORD_WITHOUT_PAYLOAD_BARRIER`] lets
//! the commit record land in the same barrier epoch as the batched
//! payload submissions, and sampled within-epoch reorder enumeration on
//! the multi-queue device must then catch the record persisting before
//! the payload — while the identical workload with the hook off must show
//! zero violations.
//!
//! Separate test binary: the hook is process-global, so it must not share
//! a process with tests that assume the safe ordering.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crashsim::{sampled_states, DiskImage, FaultConfig, FaultDevice};
use journal::io::{DeviceIo, JournalIo};
use journal::record::BSIZE;
use journal::{Journal, JournalConfig, MAX_OP_BLOCKS, TEST_UNSAFE_RECORD_WITHOUT_PAYLOAD_BARRIER};
use simkernel::cost::CostModel;
use simkernel::dev::{BlockDevice, RamDisk};
use simkernel::queue::{MultiQueueDevice, QueueConfig};

const LOG_BLOCKS: usize = 2 * (4 * MAX_OP_BLOCKS + 1);
const DISK_BLOCKS: u64 = 1024;

fn config() -> JournalConfig {
    JournalConfig::from_geometry(2, LOG_BLOCKS, LOG_BLOCKS, (2 + LOG_BLOCKS as u64, DISK_BLOCKS))
}

/// Runs the two-transaction conflict workload through a multi-queue
/// device (queue depth 8) over the fault recorder and counts sampled
/// crash states that violate the recovery oracle.  Homes are prefilled
/// with 0x11 before the trace starts so a stale install is visible (see
/// the synchronous planted-bug test for the rationale).
fn violations_with_bug(enable_bug: bool) -> usize {
    let base: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(BSIZE as u32, DISK_BLOCKS));
    for blockno in [900u64, 901, 902] {
        base.write_block(blockno, &[0x11; BSIZE]).unwrap();
    }
    base.flush().unwrap();
    let image = Arc::new(DiskImage::capture(&base).unwrap());
    let recorder = Arc::new(FaultDevice::new(base, FaultConfig::recorder(0)));
    let mqd: Arc<dyn BlockDevice> = Arc::new(MultiQueueDevice::new(
        Arc::clone(&recorder) as Arc<dyn BlockDevice>,
        CostModel::zero(),
        QueueConfig::new(4, 8),
    ));

    TEST_UNSAFE_RECORD_WITHOUT_PAYLOAD_BARRIER.store(enable_bug, Ordering::SeqCst);
    {
        let io = DeviceIo::new(mqd);
        let journal = Journal::new(config());
        journal.begin_op();
        journal.log_write(900, &[0xA1; BSIZE]).unwrap();
        journal.log_write(901, &[0xA2; BSIZE]).unwrap();
        journal.end_op(&io).unwrap();
        journal.begin_op();
        journal.log_write(900, &[0xB1; BSIZE]).unwrap();
        journal.log_write(902, &[0xB2; BSIZE]).unwrap();
        journal.end_op(&io).unwrap();
    }
    TEST_UNSAFE_RECORD_WITHOUT_PAYLOAD_BARRIER.store(false, Ordering::SeqCst);
    let trace = recorder.trace();

    let mut violations = 0;
    for state in sampled_states(&trace, &image, 0x0B10_5EED, 300) {
        let disk: Arc<dyn BlockDevice> = Arc::clone(&state.disk) as Arc<dyn BlockDevice>;
        let io = DeviceIo::new(disk);
        let journal = Journal::new(config());
        journal.recover(&io).unwrap();
        let mut fills = [0u8; 3];
        let mut torn = false;
        for (slot, blockno) in [900u64, 901, 902].into_iter().enumerate() {
            let mut buf = vec![0u8; BSIZE];
            io.read_block(blockno, &mut buf).unwrap();
            torn |= buf.iter().any(|&b| b != buf[0]);
            fills[slot] = buf[0];
        }
        let legal =
            !torn && matches!(fills, [0x11, 0x11, 0x11] | [0xA1, 0xA2, 0x11] | [0xB1, 0xA2, 0xB2]);
        if !legal {
            violations += 1;
        }
    }
    violations
}

#[test]
fn sampled_reorder_oracle_catches_record_without_payload_barrier() {
    // Sanity: the identical workload without the planted bug is clean
    // under the same subset/reorder/tear sampling.
    assert_eq!(violations_with_bug(false), 0, "clean journal flagged as buggy");
    let violations = violations_with_bug(true);
    assert!(
        violations > 0,
        "planted record-without-payload-barrier bug produced no detectable violation"
    );
}
