//! The journal-level crash contract, checked against the **bare**
//! [`Journal`] — no file system on top, just the journal over crashsim's
//! fault device.  Anything that fails here is a journal bug by
//! construction, not a stack bug; anything that passes here is inherited
//! by every stack, because the stacks are thin adapters.
//!
//! * exhaustive-prefix crash enumeration of a two-transaction conflict
//!   workload: every write-boundary crash must recover to an
//!   all-or-nothing, commit-ordered state,
//! * sampled subset/reorder/tear enumeration of the same workload on the
//!   multi-queue device (the batched stage-1 payload path),
//! * a multi-thread stress run with the flush/drain invariants: `flush`
//!   leaves nothing in flight, the barrier budget stays exactly 3 per
//!   commit, and every committed byte survives.

use std::sync::Arc;

use crashsim::{prefix_states, sampled_states, DiskImage, FaultConfig, FaultDevice};
use journal::io::{DeviceIo, JournalIo};
use journal::record::BSIZE;
use journal::{Journal, JournalConfig, MAX_OP_BLOCKS};
use simkernel::cost::CostModel;
use simkernel::dev::{BlockDevice, RamDisk};
use simkernel::queue::{MultiQueueDevice, QueueConfig};

const LOG_BLOCKS: usize = 2 * (4 * MAX_OP_BLOCKS + 1);
const DISK_BLOCKS: u64 = 1024;

fn config() -> JournalConfig {
    JournalConfig::from_geometry(2, LOG_BLOCKS, LOG_BLOCKS, (2 + LOG_BLOCKS as u64, DISK_BLOCKS))
}

fn block_fill(io: &DeviceIo, blockno: u64) -> u8 {
    let mut buf = vec![0u8; BSIZE];
    io.read_block(blockno, &mut buf).unwrap();
    buf[0]
}

/// Runs the two-transaction conflict workload (tx1: 900=0xA1, 901=0xA2;
/// tx2: 900=0xB1, 902=0xB2) against `dev` and returns the journal.
fn conflict_workload(dev: Arc<dyn BlockDevice>) {
    let io = DeviceIo::new(dev);
    let journal = Journal::new(config());
    journal.begin_op();
    journal.log_write(900, &[0xA1; BSIZE]).unwrap();
    journal.log_write(901, &[0xA2; BSIZE]).unwrap();
    journal.end_op(&io).unwrap();
    journal.begin_op();
    journal.log_write(900, &[0xB1; BSIZE]).unwrap();
    journal.log_write(902, &[0xB2; BSIZE]).unwrap();
    journal.end_op(&io).unwrap();
}

/// Recovers one crash state with a fresh journal and asserts the contract:
/// committed-group atomicity, commit ordering, no resurrection on a second
/// recovery.
fn assert_contract(state: &crashsim::CrashState, what: &str) {
    let disk: Arc<dyn BlockDevice> = Arc::clone(&state.disk) as Arc<dyn BlockDevice>;
    let io = DeviceIo::new(disk);
    let journal = Journal::new(config());
    journal.recover(&io).unwrap();
    assert_eq!(journal.recover(&io).unwrap(), 0, "{what}: {}", state.description);

    let b900 = block_fill(&io, 900);
    let b901 = block_fill(&io, 901);
    let b902 = block_fill(&io, 902);
    let state = &state.description;
    let tx2_applied = b902 == 0xB2;
    let tx1_applied = b901 == 0xA2;
    if tx2_applied {
        assert!(tx1_applied, "{what}: {state}: tx2 visible without tx1 (commit order broken)");
        assert_eq!(b900, 0xB1, "{what}: {state}: tx2 partially applied");
    } else if tx1_applied {
        assert_eq!(b900, 0xA1, "{what}: {state}: tx1 partially applied");
        assert_eq!(b902, 0x00, "{what}: {state}: tx2 leaked without committing");
    } else {
        assert_eq!((b900, b901, b902), (0, 0, 0), "{what}: {state}: partial transaction visible");
    }
}

/// Exhaustive in-order prefixes on the synchronous device.
#[test]
fn every_write_prefix_crash_recovers_atomically() {
    let base: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(BSIZE as u32, DISK_BLOCKS));
    let image = Arc::new(DiskImage::capture(&base).unwrap());
    let recorder = Arc::new(FaultDevice::new(base, FaultConfig::recorder(0)));
    conflict_workload(Arc::clone(&recorder) as Arc<dyn BlockDevice>);
    let trace = recorder.trace();
    assert_eq!(trace.flush_count(), 6, "two commits, three barriers each");
    for state in prefix_states(&trace, &image) {
        assert_contract(&state, "prefix");
    }
}

/// Sampled subset/reorder/tear states on the multi-queue device: the
/// batched stage-1 payload path must honor the same contract even when the
/// write cache reorders freely within a barrier epoch.
#[test]
fn sampled_queued_crashes_recover_atomically() {
    let base: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(BSIZE as u32, DISK_BLOCKS));
    let image = Arc::new(DiskImage::capture(&base).unwrap());
    let recorder = Arc::new(FaultDevice::new(base, FaultConfig::recorder(0)));
    let mqd: Arc<dyn BlockDevice> = Arc::new(MultiQueueDevice::new(
        Arc::clone(&recorder) as Arc<dyn BlockDevice>,
        CostModel::zero(),
        QueueConfig::new(4, 8),
    ));
    conflict_workload(mqd);
    let trace = recorder.trace();
    assert_eq!(trace.flush_count(), 6, "queue path keeps three barriers per commit");
    for state in sampled_states(&trace, &image, 0x005A_11ED, 400) {
        assert_contract(&state, "sampled");
    }
}

/// Multi-thread stress with the flush/drain invariants on the queued
/// device.
#[test]
fn multithread_stress_flush_drains_and_keeps_barrier_budget() {
    let mut model = CostModel::zero();
    model.block_write_ns = 10_000;
    model.flush_base_ns = 200_000;
    model.inject_delays = true;
    let mqd = Arc::new(MultiQueueDevice::new(
        Arc::new(RamDisk::new(BSIZE as u32, 2048)),
        model,
        QueueConfig::new(4, 32),
    ));
    let io = Arc::new(DeviceIo::new(Arc::clone(&mqd) as Arc<dyn BlockDevice>));
    let journal = Arc::new(Journal::new(JournalConfig::from_geometry(
        2,
        LOG_BLOCKS,
        LOG_BLOCKS,
        (2 + LOG_BLOCKS as u64, 2048),
    )));

    let mut handles = Vec::new();
    for t in 0..8u64 {
        let journal = Arc::clone(&journal);
        let io = Arc::clone(&io);
        handles.push(std::thread::spawn(move || {
            for round in 0..6u64 {
                journal.begin_op();
                for i in 0..4u64 {
                    let blockno = 1200 + t * 30 + round * 4 + i;
                    let fill = (t * 29 + round * 5 + i + 1) as u8;
                    journal.log_write(blockno, &[fill; BSIZE]).unwrap();
                }
                journal.end_op(&*io).unwrap();
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    journal.flush(&*io).unwrap();
    assert_eq!(mqd.counters().inflight_now(), 0, "flush left requests in flight");

    let stats = journal.stats();
    assert!(stats.commits >= 1);
    assert_eq!(stats.barriers, stats.commits * 3, "3-barriers-per-commit discipline broken");
    assert!(stats.overlapped_commits <= stats.commits);
    for t in 0..8u64 {
        for round in 0..6u64 {
            for i in 0..4u64 {
                let blockno = 1200 + t * 30 + round * 4 + i;
                let fill = (t * 29 + round * 5 + i + 1) as u8;
                let mut buf = vec![0u8; BSIZE];
                io.read_block(blockno, &mut buf).unwrap();
                assert!(buf.iter().all(|&b| b == fill), "block {blockno} lost its committed data");
            }
        }
    }
}
