//! The block-IO face the journal is parameterized over.
//!
//! [`crate::Journal`] contains the whole commit protocol but performs no
//! I/O of its own: every read, write, and barrier goes through
//! [`JournalIo`], so the same pipeline runs against the Bento `SuperBlock`
//! capability, the kernel `BufferCache`, or a bare block device (the
//! crash-contract tests mount it straight on crashsim's fault device via
//! [`DeviceIo`]).
//!
//! The trait distinguishes *cached* writes ([`JournalIo::write_block`],
//! used for commit records and recovery installs so a mounted cache stays
//! coherent) from *raw* writes ([`JournalIo::write_raw`], used for log
//! payload blocks — only recovery ever reads them back, so caching them
//! would evict useful blocks once per commit).  The conflict-safe install
//! policy lives in the journal itself and is expressed through
//! [`JournalIo::flush_cached_if_eq`].

use std::sync::Arc;

use simkernel::dev::BlockDevice;
use simkernel::error::KernelResult;
use simkernel::queue::QueuedBlockDevice;

/// Block I/O as seen by the journal.  All methods operate on whole blocks
/// of the mounted device's block size ([`crate::record::BSIZE`] everywhere
/// in this workspace).
pub trait JournalIo {
    /// Reads block `blockno` into `out` (through the cache when there is
    /// one, so the journal sees the same bytes the file system does).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    fn read_block(&self, blockno: u64, out: &mut [u8]) -> KernelResult<()>;

    /// Writes `data` to block `blockno` *through the cache*: after this
    /// call a cached copy (if the backend keeps one) holds `data`.  Used
    /// for commit records and recovery installs.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    fn write_block(&self, blockno: u64, data: &[u8]) -> KernelResult<()>;

    /// Writes `data` to block `blockno` bypassing any cache.  Used for log
    /// payload blocks and conflict installs (frozen snapshots that must
    /// not clobber a newer cached copy).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    fn write_raw(&self, blockno: u64, data: &[u8]) -> KernelResult<()>;

    /// Conflict-safe install probe: if the backend caches `blockno` and
    /// the cached bytes equal `expected`, write the cached copy to the
    /// device (keeping cache and disk coherent) and return `true`.
    /// Returns `false` when the cached copy differs — a later,
    /// not-yet-committed operation already modified it, and the journal
    /// will [`JournalIo::write_raw`] the frozen snapshot instead so
    /// uncommitted bytes never reach the home location.  Cacheless
    /// backends simply return `false`.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    fn flush_cached_if_eq(&self, blockno: u64, expected: &[u8]) -> KernelResult<bool>;

    /// Durability barrier: everything written before this call is on
    /// stable storage when it returns (device FLUSH; an fsync of the whole
    /// backing file on the userspace provider).  On a queued device the
    /// barrier also drains the submission queues.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    fn barrier(&self) -> KernelResult<()>;

    /// The multi-queue face of the underlying device, when it has one —
    /// enables batched stage-1 payload submission and the two-stage
    /// overlapped commit.
    fn queued(&self) -> Option<&dyn QueuedBlockDevice>;
}

/// [`JournalIo`] over a bare block device — no cache, so cached and raw
/// writes coincide and [`JournalIo::flush_cached_if_eq`] always defers to
/// the raw-write path.  This is how the crash-contract tests run the
/// journal with no file system on top.
#[derive(Clone)]
pub struct DeviceIo {
    dev: Arc<dyn BlockDevice>,
}

impl std::fmt::Debug for DeviceIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceIo").finish_non_exhaustive()
    }
}

impl DeviceIo {
    /// Wraps `dev`.
    pub fn new(dev: Arc<dyn BlockDevice>) -> Self {
        DeviceIo { dev }
    }

    /// The wrapped device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.dev
    }
}

impl JournalIo for DeviceIo {
    fn read_block(&self, blockno: u64, out: &mut [u8]) -> KernelResult<()> {
        self.dev.read_block(blockno, out)
    }

    fn write_block(&self, blockno: u64, data: &[u8]) -> KernelResult<()> {
        self.dev.write_block(blockno, data)
    }

    fn write_raw(&self, blockno: u64, data: &[u8]) -> KernelResult<()> {
        self.dev.write_block(blockno, data)
    }

    fn flush_cached_if_eq(&self, _blockno: u64, _expected: &[u8]) -> KernelResult<bool> {
        // No cache: the journal falls through to write_raw, which is the
        // correct install for an uncached backend.
        Ok(false)
    }

    fn barrier(&self) -> KernelResult<()> {
        self.dev.flush()
    }

    fn queued(&self) -> Option<&dyn QueuedBlockDevice> {
        self.dev.as_queued()
    }
}
