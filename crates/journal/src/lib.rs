//! # journal — one pipelined group-commit WAL for every storage stack
//!
//! The workspace used to maintain three near-copies of its write-ahead
//! log: `xv6fs::log`, `xv6fs_vfs::log`, and ext4sim's dual-slot checkpoint
//! scheme.  This crate is the single implementation they all adapt:
//! [`Journal`] owns the entire commit pipeline and is parameterized over
//! the block-IO trait [`io::JournalIo`], so the same code runs against the
//! Bento `SuperBlock` capability, the kernel `BufferCache`, a bare
//! `SsdDevice`/`MultiQueueDevice`, or crashsim's fault device — and the
//! crash-contract tests enumerate crash states against the journal with no
//! file system on top.
//!
//! Every operation that modifies the file system wraps its block writes in
//! a transaction: [`Journal::begin_op`] … stage frozen snapshots via
//! [`Journal::log_write`] … [`Journal::end_op`].  The commit protocol per
//! group is the classic one, hardened for devices with a reordering
//! volatile write cache:
//!
//! 1. copy each modified block into the on-disk log region and issue a
//!    barrier — the payload must be durable *before* the commit record, or
//!    a crash could leave a valid-looking header pointing at stale log
//!    blocks,
//! 2. write the log header naming the blocks (the commit record, carrying
//!    a self-checksum so a torn header write is detected) and barrier,
//! 3. install the blocks to their home locations,
//! 4. clear the header; the clear rides to durability on the next natural
//!    barrier.
//!
//! That is the **barrier budget**: exactly three barriers per commit
//! (payload, record, install), with the header clear deliberately left
//! unflushed.  What differs from the teaching implementation is *where the
//! waiting happens*:
//!
//! * **Reservation, not serialization.**  [`Journal::begin_op`] reserves
//!   [`MAX_OP_BLOCKS`] slots from an atomic reservation counter and only
//!   sleeps when the forming group is genuinely out of space — never
//!   merely because a commit is in flight.
//! * **Per-transaction staging.**  [`Journal::log_write`] records the
//!   block and a *frozen copy* of its bytes (taken while the caller still
//!   holds the buffer lock, so the snapshot is exactly the state this
//!   operation produced) in thread-local state.  The hot path takes no
//!   lock at all.
//! * **Group merge at `end_op`.**  When an operation ends, its staged
//!   blocks merge into the forming group (absorption dedups by block
//!   number, keeping the newest snapshot by modification version).  The
//!   group closes only at *quiescent* instants — no operation outstanding
//!   — so it can never commit snapshots entangled with a still-running
//!   operation's cache modifications (jbd2 drains handles the same way);
//!   while a commit is in flight, closing defers to the committer's
//!   handoff.
//! * **Double-buffered commit.**  Commits alternate between two on-disk
//!   log regions and run entirely outside the group mutex: while group *N*
//!   writes its barriers into one region, group *N + 1* forms, absorbs
//!   operations, and copies nothing until its own turn.  Commits install
//!   in formation order (a sequence number in each region header keeps
//!   [`Journal::recover`] correct for either region).  The **region reuse
//!   rule**: group *N + 1* overwrites the region of group *N − 1*, whose
//!   unflushed header clear became durable at the latest with group *N*'s
//!   payload barrier — so a stale header can never alias a reused region.
//! * **Two-stage overlapped commit (queued devices).**  When the device
//!   exposes a multi-queue face ([`simkernel::queue::QueuedBlockDevice`],
//!   via [`io::JournalIo::queued`]), stage 1 — the log-region payload
//!   copies — is *batch-submitted* instead of written serially, and the
//!   committer prefetches: right after group *N*'s commit record is
//!   durable (the record barrier), it closes group *N + 1* if one is ready
//!   and submits its stage-1 payload, so those copies are serviced by the
//!   device *while group N's installs are still completing*.  The barrier
//!   count per commit is unchanged and the ordering contract
//!   payload→FLUSH→record→FLUSH→install→FLUSH is intact: a prefetched
//!   group's payload lands in the same barrier epoch as the previous
//!   group's installs (disjoint blocks — different log region, and
//!   installs target home locations), while its record still waits for its
//!   own payload barrier.
//!
//! Because commits write the *frozen* bytes — both into the log region
//! and, on conflict, directly to the home location via
//! [`io::JournalIo::write_raw`] — an operation that modifies a block while
//! an earlier group holding that block is mid-commit can never leak its
//! uncommitted bytes into the earlier group's transaction.
//!
//! [`Journal::recover`] replays committed-but-not-installed transactions
//! from both regions (in sequence order) after a crash, rejecting torn
//! commit records (checksum mismatch) and foreign or corrupt headers
//! (home blocks outside the configured valid range).
//!
//! The sibling modules own the two on-disk record formats: [`record`] is
//! the checksummed commit record both xv6 logs write, [`checkpoint`] the
//! dual-slot checkpoint scheme ext4sim's metadata commit path uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod io;
pub mod record;

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};

use simkernel::error::{Errno, KernelError, KernelResult};
use simkernel::shard::StripedCounter;

use crate::io::JournalIo;
use crate::record::{BSIZE, LOG_HEAD_MAX_ENTRIES};

/// Maximum number of blocks one transaction may modify (callers chunk
/// larger writes).  Also the reservation granularity of
/// [`Journal::begin_op`].
pub const MAX_OP_BLOCKS: usize = 64;

/// Test-only crash-safety hook: when set, commits write the commit record
/// and its barrier *before* the log payload — the unsafe ordering the
/// three-barrier protocol exists to prevent.  The `crashsim` harness
/// plants this bug to prove its oracles detect real ordering violations (a
/// crash between the record and the payload makes recovery install stale
/// log bytes).  Because the hook lives here in the shared journal, one
/// planted bug covers every stack at once.  Never enable outside tests.
///
/// Deliberately not behind a cargo feature: `crashsim` is a workspace
/// default member, so feature unification would switch the gate on for
/// every workspace build anyway, and the cost in production is one relaxed
/// atomic load per commit.  The flag defaults to off and nothing outside
/// the dedicated planted-bug test processes touches it.
#[doc(hidden)]
pub static TEST_UNSAFE_EARLY_COMMIT_RECORD: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Test-only crash-safety hook for the *queued* commit path: when set, the
/// commit record is written without waiting for the payload barrier — the
/// payload submissions and the record land in the same barrier epoch, so a
/// device that reorders within an epoch can persist the record before the
/// payload.  The `crashsim` harness plants this bug to prove its
/// within-epoch reorder enumeration catches exactly this class of
/// violation on the multi-queue device.  Same non-feature-gate rationale
/// as [`TEST_UNSAFE_EARLY_COMMIT_RECORD`].  Never enable outside tests.
#[doc(hidden)]
pub static TEST_UNSAFE_RECORD_WITHOUT_PAYLOAD_BARRIER: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// One logged block: home address, modification version (orders snapshots
/// of the same block), and the frozen bytes.
#[derive(Debug)]
struct LoggedBlock {
    home: u64,
    version: u64,
    data: Vec<u8>,
}

/// The forming transaction group: completed operations merge here at
/// `end_op` until the group closes and commits.
#[derive(Debug, Default)]
struct FormingGroup {
    blocks: Vec<LoggedBlock>,
    index: HashMap<u64, usize>,
    ops: u64,
}

/// Per-thread, per-journal transaction staging (no lock on the log_write
/// path).
#[derive(Debug, Default)]
struct TxLocal {
    depth: u32,
    blocks: Vec<LoggedBlock>,
    index: HashMap<u64, usize>,
}

thread_local! {
    /// Keyed by [`Journal::id`] so independent mounts never mix staging
    /// state.
    static TX: RefCell<HashMap<u64, TxLocal>> = RefCell::new(HashMap::new());
}

/// Process-wide source of journal instance ids (thread-local staging
/// keys).
static JOURNAL_IDS: AtomicU64 = AtomicU64::new(1);

/// Process-wide modification version; ticked while the caller holds the
/// buffer across [`Journal::log_write`], so snapshots of the same block
/// are totally ordered by content age.
static SNAPSHOT_VERSION: AtomicU64 = AtomicU64::new(1);

/// Cumulative journal statistics (exposed for experiments and upgrade
/// state-transfer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Number of committed transaction groups.
    pub commits: u64,
    /// Total blocks written through the journal (logged + installed).
    pub blocks_logged: u64,
    /// Transactions recovered at mount time.
    pub recoveries: u64,
    /// Operations absorbed into committed groups (`ops / commits` is the
    /// group-commit batching factor).
    pub ops_committed: u64,
    /// Device barriers issued by commits and recovery.
    pub barriers: u64,
    /// Commits whose stage-1 payload was prefetch-submitted while the
    /// previous group's installs were still completing (two-stage overlap
    /// on a queued device).  Always 0 on a synchronous device.
    pub overlapped_commits: u64,
}

/// Striped hot-path counters behind [`JournalStats`].
#[derive(Debug, Default)]
struct JournalCounters {
    commits: StripedCounter,
    blocks_logged: StripedCounter,
    recoveries: StripedCounter,
    ops_committed: StripedCounter,
    barriers: StripedCounter,
    overlapped_commits: StripedCounter,
}

impl JournalCounters {
    fn snapshot(&self) -> JournalStats {
        JournalStats {
            commits: self.commits.get(),
            blocks_logged: self.blocks_logged.get(),
            recoveries: self.recoveries.get(),
            ops_committed: self.ops_committed.get(),
            barriers: self.barriers.get(),
            overlapped_commits: self.overlapped_commits.get(),
        }
    }

    fn restore(&self, stats: JournalStats) {
        self.commits.reset(stats.commits);
        self.blocks_logged.reset(stats.blocks_logged);
        self.recoveries.reset(stats.recoveries);
        self.ops_committed.reset(stats.ops_committed);
        self.barriers.reset(stats.barriers);
        self.overlapped_commits.reset(stats.overlapped_commits);
    }
}

/// Next group sequence number allowed to run its commit I/O.
#[derive(Debug, Default)]
struct CommitTurn {
    next: u64,
}

/// On-disk geometry of one journal: where the two commit regions live and
/// which home blocks a recovered header may legally name.
///
/// Built through [`JournalConfig::from_geometry`] by every adapter, so two
/// stacks mounting the same superblock get byte-for-byte identical region
/// layout, capacity, and corrupt-header defenses *by construction*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// First block of the log area (region 0's header block).
    pub start: u64,
    /// Blocks per region (header + data); two regions fit in the log area.
    pub region_size: usize,
    /// Data blocks per region — the most one group may hold.
    pub capacity: usize,
    /// Valid home-block range `[lo, hi)`; recovery rejects headers naming
    /// blocks outside it, so a corrupt (or foreign-format) header is
    /// treated as clean rather than installed over arbitrary blocks.
    pub home_range: (u64, u64),
}

impl JournalConfig {
    /// Derives the double-buffered region geometry from a superblock's log
    /// area: `logstart` is the first log block, `nlog` the on-disk log
    /// size (clamped to `max_log_blocks`, the compile-time layout bound),
    /// and `home_range` the `[lo, hi)` range of legal home blocks.
    pub fn from_geometry(
        logstart: u64,
        nlog: usize,
        max_log_blocks: usize,
        home_range: (u64, u64),
    ) -> Self {
        let size = nlog.min(max_log_blocks);
        let region_size = (size / 2).max(2);
        let capacity = (region_size - 1).min(LOG_HEAD_MAX_ENTRIES);
        JournalConfig { start: logstart, region_size, capacity, home_range }
    }
}

/// One mounted write-ahead log (see the crate docs for the protocol).
/// All I/O goes through the [`JournalIo`] passed to each call, so one
/// `Journal` serves every backend.
#[derive(Debug)]
pub struct Journal {
    id: u64,
    start: u64,
    region_size: usize,
    capacity: usize,
    home_range: (u64, u64),
    inner: Mutex<FormingGroup>,
    space_cond: Condvar,
    outstanding: AtomicU32,
    /// Forming-group slots spoken for: merged blocks plus a worst-case
    /// [`MAX_OP_BLOCKS`] per operation still inside `begin_op`/`end_op`.
    reserved: AtomicUsize,
    next_seq: AtomicU64,
    /// Commits whose I/O has finished; `next_seq > commits_done` means a
    /// commit is in flight (or queued), so group closing is deferred to
    /// the committer's handoff — that deferral is what lets a group
    /// *absorb* operations while the barriers are written.
    commits_done: AtomicU64,
    /// Active [`Journal::flush`] calls; while nonzero, `begin_op` admits
    /// no new operations so the drain is bounded.
    flushing: AtomicU32,
    commit_turn: Mutex<CommitTurn>,
    commit_cond: Condvar,
    counters: JournalCounters,
}

impl Journal {
    /// Creates the in-memory journal state for the geometry in `config`.
    pub fn new(config: JournalConfig) -> Self {
        Journal {
            id: JOURNAL_IDS.fetch_add(1, Ordering::Relaxed),
            start: config.start,
            region_size: config.region_size,
            capacity: config.capacity,
            home_range: config.home_range,
            inner: Mutex::new(FormingGroup::default()),
            space_cond: Condvar::new(),
            outstanding: AtomicU32::new(0),
            reserved: AtomicUsize::new(0),
            next_seq: AtomicU64::new(0),
            commits_done: AtomicU64::new(0),
            flushing: AtomicU32::new(0),
            commit_turn: Mutex::new(CommitTurn::default()),
            commit_cond: Condvar::new(),
            counters: JournalCounters::default(),
        }
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> JournalStats {
        self.counters.snapshot()
    }

    /// Overrides statistics (used when restoring state across an online
    /// upgrade; the mount is quiescent during the swap).
    pub fn restore_stats(&self, stats: JournalStats) {
        self.counters.restore(stats);
    }

    /// Data blocks one commit region can hold (one group's maximum size).
    pub fn region_capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum number of data blocks a single operation may safely modify
    /// (callers chunk larger writes).
    pub fn max_op_blocks() -> usize {
        MAX_OP_BLOCKS
    }

    fn try_reserve(&self) -> bool {
        let mut cur = self.reserved.load(Ordering::SeqCst);
        loop {
            if cur + MAX_OP_BLOCKS > self.capacity {
                return false;
            }
            match self.reserved.compare_exchange(
                cur,
                cur + MAX_OP_BLOCKS,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Begins an operation that will modify at most [`MAX_OP_BLOCKS`]
    /// blocks.  Reserves that worst case from the forming group's space
    /// via an atomic counter; it only blocks when the group cannot fit
    /// another operation (never merely because a commit is in flight —
    /// that is the pipelining) or while a [`Journal::flush`] is draining
    /// (so fsync cannot be starved by a steady stream of new operations).
    pub fn begin_op(&self) {
        let _reserve = simkernel::trace::phase(simkernel::trace::Phase::LogReserve);
        let nested = TX.with(|cell| {
            let mut map = cell.borrow_mut();
            let tx = map.entry(self.id).or_default();
            tx.depth += 1;
            tx.depth > 1
        });
        if nested {
            // A nested begin_op joins the outer operation: it already holds
            // a reservation.
            return;
        }
        if self.flushing.load(Ordering::SeqCst) != 0 || !self.try_reserve() {
            // Slow path: waiters pair with the group mutex so a release
            // (end_op absorption, a finished commit, or a flush ending)
            // cannot slip between the failed check and the wait.
            let mut inner = self.inner.lock();
            while self.flushing.load(Ordering::SeqCst) != 0 || !self.try_reserve() {
                self.space_cond.wait(&mut inner);
            }
        }
        self.outstanding.fetch_add(1, Ordering::SeqCst);
    }

    /// Records that home block `home` was modified by the current
    /// operation, freezing a snapshot of `data`.  Call this while still
    /// holding the block's buffer (immediately after modifying it): the
    /// snapshot must be exactly the state this operation produced.  The
    /// staging is thread-local — no journal lock is taken.
    ///
    /// # Errors
    ///
    /// [`Errno::Inval`] outside a transaction; [`Errno::NoSpc`] if the
    /// operation exceeds [`MAX_OP_BLOCKS`] distinct blocks (a chunking bug
    /// in the caller).
    pub fn log_write(&self, home: u64, data: &[u8]) -> KernelResult<()> {
        let _stage = simkernel::trace::phase(simkernel::trace::Phase::LogStage);
        let version = SNAPSHOT_VERSION.fetch_add(1, Ordering::SeqCst);
        TX.with(|cell| {
            let mut map = cell.borrow_mut();
            let tx = match map.get_mut(&self.id) {
                Some(tx) if tx.depth > 0 => tx,
                _ => {
                    return Err(KernelError::with_context(
                        Errno::Inval,
                        "journal: log_write outside transaction",
                    ));
                }
            };
            if let Some(&i) = tx.index.get(&home) {
                // Absorption: a block modified twice in one operation is
                // logged once, with the newest snapshot.
                tx.blocks[i].version = version;
                tx.blocks[i].data.clear();
                tx.blocks[i].data.extend_from_slice(data);
            } else {
                if tx.blocks.len() >= MAX_OP_BLOCKS {
                    return Err(KernelError::with_context(
                        Errno::NoSpc,
                        "journal: transaction too large for log",
                    ));
                }
                tx.index.insert(home, tx.blocks.len());
                tx.blocks.push(LoggedBlock { home, version, data: data.to_vec() });
            }
            Ok(())
        })
    }

    /// Ends the current operation, merging its staged blocks into the
    /// forming group.  If the group is ready (quiescent, no commit in
    /// flight), this thread closes it and runs the commit — outside the
    /// group mutex, so new operations keep forming the next group while
    /// the barriers are written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the commit.
    pub fn end_op(&self, io: &dyn JournalIo) -> KernelResult<()> {
        let staged = TX.with(|cell| {
            let mut map = cell.borrow_mut();
            let tx = map.get_mut(&self.id).expect("end_op without begin_op");
            debug_assert!(tx.depth > 0, "end_op without begin_op");
            tx.depth -= 1;
            if tx.depth == 0 {
                // Keep the (empty) staging entry so the next operation on
                // this thread reuses its index allocation; prune stale
                // entries of long-dead journal instances once in a while.
                tx.index.clear();
                let blocks = std::mem::take(&mut tx.blocks);
                if map.len() > 16 {
                    map.retain(|_, t| t.depth > 0);
                }
                Some(blocks)
            } else {
                None
            }
        });
        let Some(staged) = staged else { return Ok(()) };

        let to_commit = {
            let mut inner = self.inner.lock();
            let did_write = !staged.is_empty();
            let mut added = 0usize;
            for block in staged {
                if let Some(&i) = inner.index.get(&block.home) {
                    if inner.blocks[i].version < block.version {
                        inner.blocks[i] = block;
                    }
                } else {
                    let slot = inner.blocks.len();
                    inner.index.insert(block.home, slot);
                    inner.blocks.push(block);
                    added += 1;
                }
            }
            if did_write {
                // Read-only (or failed-before-writing) operations do not
                // count toward the ops-per-commit batching metric.
                inner.ops += 1;
            }
            // Release the unused part of this operation's worst-case
            // reservation; merged blocks keep their slots until commit.
            let release = MAX_OP_BLOCKS - added;
            if release > 0 {
                self.reserved.fetch_sub(release, Ordering::SeqCst);
                self.space_cond.notify_all();
            }
            let remaining = self.outstanding.fetch_sub(1, Ordering::SeqCst) - 1;
            if remaining == 0 {
                // Wake a flush() waiting for operations to drain.
                self.space_cond.notify_all();
            }
            self.take_group_if_ready(&mut inner)
        };
        if let Some((seq, blocks, ops)) = to_commit {
            // This thread became the committer: the whole group's barriers
            // run on its clock, so attribute them as commit wait.
            let _commit = simkernel::trace::phase(simkernel::trace::Phase::CommitWait);
            self.commit_group(io, seq, blocks, ops)?;
        }
        Ok(())
    }

    /// Forces everything durable-in-progress to commit (the fsync and
    /// unmount paths): waits for outstanding operations to merge, closes
    /// and commits the forming group, then waits out any commit another
    /// thread still has in flight.  Must not be called from inside a
    /// `begin_op`/`end_op` transaction (it would wait on itself).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the commit.
    pub fn flush(&self, io: &dyn JournalIo) -> KernelResult<()> {
        // Everything here — draining operations, committing the sealed
        // group, waiting out an in-flight commit — is time an fsync spends
        // waiting on group commit.
        let _commit = simkernel::trace::phase(simkernel::trace::Phase::CommitWait);
        // Seal admissions so the drain is bounded: begin_op blocks while a
        // flush is in progress (jbd2 seals its transaction the same way).
        self.flushing.fetch_add(1, Ordering::SeqCst);
        let to_commit = {
            let mut inner = self.inner.lock();
            while self.outstanding.load(Ordering::SeqCst) != 0 {
                self.space_cond.wait(&mut inner);
            }
            let group = self.take_group(&mut inner);
            self.flushing.fetch_sub(1, Ordering::SeqCst);
            self.space_cond.notify_all();
            group
        };
        let result = match to_commit {
            Some((seq, blocks, ops)) => self.commit_group(io, seq, blocks, ops),
            None => Ok(()),
        };
        // Data merged into a group another thread adopted is only durable
        // once that commit's I/O has finished — wait it out.
        let target = self.next_seq.load(Ordering::SeqCst);
        let mut turn = self.commit_turn.lock();
        while turn.next < target {
            self.commit_cond.wait(&mut turn);
        }
        result
    }

    /// Closes the forming group when it is ready: quiescent (every
    /// operation has merged — a group never commits snapshots entangled
    /// with a still-running operation's cache modifications; jbd2 drains
    /// handles the same way) and no commit in flight.  While a commit *is*
    /// in flight the group keeps absorbing operations — the committer
    /// adopts it on completion — which is where group-commit batching
    /// comes from.
    fn take_group_if_ready(
        &self,
        inner: &mut FormingGroup,
    ) -> Option<(u64, Vec<LoggedBlock>, u64)> {
        let quiescent = self.outstanding.load(Ordering::SeqCst) == 0;
        let in_flight =
            self.next_seq.load(Ordering::SeqCst) > self.commits_done.load(Ordering::SeqCst);
        if quiescent && !in_flight {
            self.take_group(inner)
        } else {
            None
        }
    }

    /// Closes the forming group for the committer's *prefetch*: called by
    /// the thread that is itself mid-commit, right after its record
    /// barrier, to start the next group's stage-1 payload early.  Requires
    /// quiescence (same entanglement argument as
    /// [`Journal::take_group_if_ready`]) but deliberately ignores the
    /// in-flight check — the caller *is* the in-flight commit, and the
    /// turn ticket it already holds orders the adopted group right behind
    /// it.
    fn take_group_for_overlap(
        &self,
        inner: &mut FormingGroup,
    ) -> Option<(u64, Vec<LoggedBlock>, u64)> {
        if self.outstanding.load(Ordering::SeqCst) == 0 {
            self.take_group(inner)
        } else {
            None
        }
    }

    /// Closes the forming group, assigning its commit sequence (and thus
    /// its region).  The group's slots are released immediately: a closed
    /// group owns its own on-disk region, so only the *forming* group
    /// counts against the reservation budget — operations keep flowing
    /// while the closed group's barriers are written.
    fn take_group(&self, inner: &mut FormingGroup) -> Option<(u64, Vec<LoggedBlock>, u64)> {
        if inner.blocks.is_empty() {
            return None;
        }
        let blocks = std::mem::take(&mut inner.blocks);
        inner.index.clear();
        let ops = std::mem::take(&mut inner.ops);
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        self.reserved.fetch_sub(blocks.len(), Ordering::SeqCst);
        // Callers hold `inner`, which is what space waiters pair with.
        self.space_cond.notify_all();
        Some((seq, blocks, ops))
    }

    /// Commits closed groups in formation order, then adopts the next
    /// group if it became ready while this one was committing (the
    /// pipelined handoff) — or the group [`Journal::commit_io`] already
    /// prefetch-staged on a queued device (the two-stage overlap).
    fn commit_group(
        &self,
        io: &dyn JournalIo,
        mut seq: u64,
        mut blocks: Vec<LoggedBlock>,
        mut ops: u64,
    ) -> KernelResult<()> {
        // Whether `blocks`' stage-1 payload was already submitted to the
        // queued device by the previous iteration's prefetch.
        let mut staged = false;
        // A prefetch-adopted group must still be committed even if an
        // earlier iteration's I/O failed: its sequence is assigned, and
        // abandoning it would strand every flush() waiting on the turn.
        // The first error is remembered and returned at the end.
        let mut first_err: Option<KernelError> = None;
        loop {
            {
                let mut turn = self.commit_turn.lock();
                while turn.next != seq {
                    self.commit_cond.wait(&mut turn);
                }
            }
            let mut prefetched = None;
            let result = self.commit_io(io, seq, &blocks, staged, &mut prefetched);
            // Advance the pipeline even if the commit I/O failed, so
            // waiters are never stranded.  The completion count rises
            // *before* the handoff check below, so an end_op that observed
            // this commit in flight either sees the updated count or
            // merges before the handoff sees the group.
            self.commits_done.fetch_add(1, Ordering::SeqCst);
            {
                let mut turn = self.commit_turn.lock();
                turn.next = seq + 1;
                self.commit_cond.notify_all();
            }
            match result {
                Ok(()) => {
                    self.counters.commits.inc();
                    self.counters.blocks_logged.add(blocks.len() as u64);
                    self.counters.ops_committed.add(ops);
                    if staged {
                        self.counters.overlapped_commits.inc();
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
            let next = match prefetched {
                // The prefetched group is committed regardless of errors
                // (its seq is assigned); `staged` may be false if its
                // payload submission failed — commit_io then rewrites the
                // payload, which is idempotent.
                Some(group) => Some(group),
                None => {
                    let mut inner = self.inner.lock();
                    if first_err.is_some() {
                        None
                    } else {
                        self.take_group_if_ready(&mut inner).map(|(s, b, o)| (s, b, o, false))
                    }
                }
            };
            match next {
                Some((next_seq, next_blocks, next_ops, next_staged)) => {
                    seq = next_seq;
                    blocks = next_blocks;
                    ops = next_ops;
                    staged = next_staged;
                }
                None => {
                    return match first_err {
                        Some(e) => Err(e),
                        None => Ok(()),
                    };
                }
            }
        }
    }

    /// The commit I/O: copy frozen blocks to this group's region, barrier,
    /// commit record, barrier, install, clear, barrier.
    ///
    /// On a queued device the payload copies are batch-submitted (stage
    /// 1), and right after the record barrier the committer tries to
    /// *prefetch* the next group: close it and submit its stage-1 payload,
    /// handing it back via `prefetched` so its copies are serviced while
    /// this group's installs run.  `staged` marks a group whose payload
    /// was already submitted that way.
    fn commit_io(
        &self,
        io: &dyn JournalIo,
        seq: u64,
        blocks: &[LoggedBlock],
        staged: bool,
        prefetched: &mut Option<(u64, Vec<LoggedBlock>, u64, bool)>,
    ) -> KernelResult<()> {
        debug_assert!(blocks.len() <= self.capacity);
        let head_block = self.region_head(seq);
        let queued = io.queued();
        if TEST_UNSAFE_EARLY_COMMIT_RECORD.load(Ordering::Relaxed) {
            // Planted ordering bug (see the hook's docs): record first,
            // then the payload — a crash in between leaves a valid commit
            // record naming blocks whose log copies are stale.
            self.write_head(io, head_block, seq, blocks)?;
            self.barrier(io)?;
            for (i, block) in blocks.iter().enumerate() {
                io.write_raw(head_block + 1 + i as u64, &block.data)?;
            }
            self.barrier(io)?;
        } else if TEST_UNSAFE_RECORD_WITHOUT_PAYLOAD_BARRIER.load(Ordering::Relaxed) {
            // Planted ordering bug for the queued path (see the hook's
            // docs): payload submitted but the record does not wait for
            // the payload barrier, so both land in one barrier epoch and
            // the device may persist the record first.
            if !staged {
                self.submit_payload(io, head_block, blocks)?;
            }
            self.write_head(io, head_block, seq, blocks)?;
            self.barrier(io)?;
        } else {
            // 1. Frozen copies into the region's data blocks.  Written
            // raw: log data blocks are only ever read back by recovery (on
            // a fresh cache), so going through a buffer cache would just
            // evict useful blocks once per commit.  On a queued device the
            // copies are batch-submitted; a prefetch-staged group
            // submitted them during the previous commit already.  The
            // barrier orders the payload before the commit record —
            // without it the device's write cache may persist the record
            // first, and a crash then makes recovery install whatever the
            // region held before.  (On the queued device the barrier also
            // drains the submission queues, so it covers batched payload
            // writes exactly as it covers synchronous ones.)
            if !staged {
                self.submit_payload(io, head_block, blocks)?;
            }
            self.barrier(io)?;
            // 2. Commit record.
            self.write_head(io, head_block, seq, blocks)?;
            self.barrier(io)?;
        }
        // Two-stage overlap: with this group's record durable, the next
        // group (if one is ready) may start its stage-1 payload copies
        // now, overlapping them with this group's installs below.  This is
        // the earliest safe point — the next group reuses the region of
        // group `seq - 1`, whose unflushed header clear became durable at
        // the latest with this group's payload barrier.
        if queued.is_some() {
            let adopted = {
                let mut inner = self.inner.lock();
                self.take_group_for_overlap(&mut inner)
            };
            if let Some((next_seq, next_blocks, next_ops)) = adopted {
                let next_head = self.region_head(next_seq);
                debug_assert_ne!(next_head, head_block, "consecutive groups alternate regions");
                let submitted = self.submit_payload(io, next_head, &next_blocks).is_ok();
                // On a failed submission the group is still adopted (its
                // seq is assigned) but unstaged: the next commit_io
                // rewrites the payload from scratch, which is idempotent.
                *prefetched = Some((next_seq, next_blocks, next_ops, submitted));
            }
        }
        // 3. Install to home locations.  `flush_cached_if_eq` writes the
        // cached copy when it still equals the committed snapshot; when a
        // later operation already modified the cache, the frozen snapshot
        // goes straight to the device so uncommitted bytes never reach the
        // home location (the newer bytes stay dirty for their own group).
        for block in blocks {
            if !io.flush_cached_if_eq(block.home, &block.data)? {
                io.write_raw(block.home, &block.data)?;
            }
        }
        // The installs must be durable before the header clear can be: a
        // write cache that persisted the clear but not the installs would
        // silently lose a committed transaction.  On the queued device
        // this barrier also completes the prefetched payload submitted
        // above — which is fine: that payload only needs to be durable
        // before *its own* commit record, and this barrier is earlier.
        self.barrier(io)?;
        // 4. Clear the header.  Deliberately *not* flushed here: the next
        // barrier anywhere (the following commit's payload barrier, an
        // fsync, unmount) makes it durable, and until then a crash merely
        // re-replays this transaction idempotently.  The region is only
        // reused two commits later, by which point at least one barrier
        // has passed, so a stale header can never alias a reused region.
        self.write_empty_head(io, head_block, seq)
    }

    /// Stage 1: writes the group's frozen blocks into its log region —
    /// batch-submitted without waiting on a queued device (the following
    /// barrier, or any earlier one, completes them), serial raw writes
    /// otherwise.
    fn submit_payload(
        &self,
        io: &dyn JournalIo,
        head_block: u64,
        blocks: &[LoggedBlock],
    ) -> KernelResult<()> {
        match io.queued() {
            Some(q) => {
                let queue = q.preferred_queue();
                let writes: Vec<(u64, &[u8])> = blocks
                    .iter()
                    .enumerate()
                    .map(|(i, block)| (head_block + 1 + i as u64, block.data.as_slice()))
                    .collect();
                q.submit_write_batch(queue, &writes)?;
            }
            None => {
                for (i, block) in blocks.iter().enumerate() {
                    io.write_raw(head_block + 1 + i as u64, &block.data)?;
                }
            }
        }
        Ok(())
    }

    fn barrier(&self, io: &dyn JournalIo) -> KernelResult<()> {
        io.barrier()?;
        self.counters.barriers.inc();
        Ok(())
    }

    /// Header block of the region group `seq` commits into.
    fn region_head(&self, seq: u64) -> u64 {
        self.start + (seq % 2) * self.region_size as u64
    }

    fn write_head(
        &self,
        io: &dyn JournalIo,
        head_block: u64,
        seq: u64,
        blocks: &[LoggedBlock],
    ) -> KernelResult<()> {
        let mut head = vec![0u8; BSIZE];
        io.read_block(head_block, &mut head)?;
        record::encode_head(&mut head, seq, blocks.iter().map(|b| b.home));
        io.write_block(head_block, &head)
    }

    fn write_empty_head(&self, io: &dyn JournalIo, head_block: u64, seq: u64) -> KernelResult<()> {
        let mut head = vec![0u8; BSIZE];
        io.read_block(head_block, &mut head)?;
        record::encode_clear(&mut head, seq);
        io.write_block(head_block, &head)
    }

    /// Recovers from the on-disk log at mount time: committed transactions
    /// found in either region are installed in sequence order and the
    /// headers are cleared.  Returns the number of blocks replayed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn recover(&self, io: &dyn JournalIo) -> KernelResult<usize> {
        // Recovery is its own traced operation (mount path, not a syscall);
        // replay I/O inside it still shows up under dev-io via the device.
        let _span = simkernel::trace::op_span("journal-recovery");
        let _commit = simkernel::trace::phase(simkernel::trace::Phase::CommitWait);
        let mut committed: Vec<(u64, u64, Vec<u64>)> = Vec::new();
        let mut head = vec![0u8; BSIZE];
        for region in 0..2u64 {
            let head_block = self.start + region * self.region_size as u64;
            io.read_block(head_block, &mut head)?;
            // parse_head rejects empty regions, over-capacity counts, and
            // torn commit-record writes (checksum mismatch: only some of
            // the header's sectors reached the device — the transaction
            // never committed, so the region is clean).
            let Some(parsed) = record::parse_head(&head, self.capacity) else {
                continue;
            };
            if parsed.homes.iter().any(|&h| h < self.home_range.0 || h >= self.home_range.1) {
                // Not a header this format wrote (corruption, or an image
                // from before the double-buffered layout): treating it as
                // clean beats installing over arbitrary blocks.
                continue;
            }
            committed.push((parsed.seq, head_block, parsed.homes));
        }
        if committed.is_empty() {
            return Ok(0);
        }
        committed.sort_by_key(|&(seq, _, _)| seq);
        let mut replayed = 0usize;
        let mut copy = vec![0u8; BSIZE];
        for (_, head_block, homes) in &committed {
            for (i, &home) in homes.iter().enumerate() {
                io.read_block(head_block + 1 + i as u64, &mut copy)?;
                io.write_block(home, &copy)?;
            }
            replayed += homes.len();
        }
        // Installs become durable before any header is cleared, so a
        // crash during recovery re-runs it rather than losing a
        // transaction.
        self.barrier(io)?;
        for &(seq, head_block, _) in &committed {
            self.write_empty_head(io, head_block, seq)?;
        }
        self.barrier(io)?;
        self.counters.recoveries.inc();
        self.counters.blocks_logged.add(replayed as u64);
        Ok(replayed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::DeviceIo;
    use crate::record::{
        get_u32, get_u64, log_head_checksum, put_u32, put_u64, LOG_HEAD_BLOCKS_OFF,
        LOG_HEAD_CHECKSUM_OFF, LOG_HEAD_COUNT_OFF, LOG_HEAD_SEQ_OFF,
    };
    use simkernel::dev::RamDisk;
    use std::sync::Arc;

    /// The same log geometry the xv6 stacks use: log at block 2, two
    /// regions, homes legal from the end of the log area to disk size.
    const LOG_BLOCKS: usize = 2 * (4 * MAX_OP_BLOCKS + 1);

    fn test_config(disk_blocks: u64) -> JournalConfig {
        JournalConfig::from_geometry(
            2,
            LOG_BLOCKS,
            LOG_BLOCKS,
            (2 + LOG_BLOCKS as u64, disk_blocks),
        )
    }

    fn setup() -> (DeviceIo, Journal) {
        let io = DeviceIo::new(Arc::new(RamDisk::new(BSIZE as u32, 1024)));
        (io, Journal::new(test_config(1024)))
    }

    fn block_fill(io: &DeviceIo, blockno: u64) -> u8 {
        let mut buf = vec![0u8; BSIZE];
        io.read_block(blockno, &mut buf).unwrap();
        buf[0]
    }

    fn write_block(io: &DeviceIo, journal: &Journal, blockno: u64, fill: u8) {
        journal.begin_op();
        journal.log_write(blockno, &[fill; BSIZE]).unwrap();
        journal.end_op(io).unwrap();
    }

    /// Stamps the self-checksum into a hand-crafted header buffer.
    fn seal_head(head: &mut [u8]) {
        let checksum = log_head_checksum(head);
        put_u64(head, LOG_HEAD_CHECKSUM_OFF, checksum);
    }

    #[test]
    fn commit_installs_blocks_to_home_locations() {
        let (io, journal) = setup();
        write_block(&io, &journal, 600, 0xAB);
        write_block(&io, &journal, 601, 0xCD);
        assert_eq!(block_fill(&io, 600), 0xAB);
        assert_eq!(block_fill(&io, 601), 0xCD);
        let stats = journal.stats();
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.blocks_logged, 2);
        assert_eq!(stats.ops_committed, 2);
        assert_eq!(stats.barriers, 6, "three barriers per commit");
    }

    #[test]
    fn consecutive_commits_alternate_log_regions() {
        let (io, journal) = setup();
        write_block(&io, &journal, 600, 0x11);
        write_block(&io, &journal, 601, 0x22);
        // Region 0 logged block 600, region 1 logged block 601; both
        // headers are cleared and record their commit sequence.
        let half = (LOG_BLOCKS / 2) as u64;
        let mut head = vec![0u8; BSIZE];
        io.read_block(2, &mut head).unwrap();
        assert_eq!(get_u32(&head, LOG_HEAD_COUNT_OFF), 0);
        assert_eq!(get_u64(&head, LOG_HEAD_SEQ_OFF), 0);
        io.read_block(2 + half, &mut head).unwrap();
        assert_eq!(get_u32(&head, LOG_HEAD_COUNT_OFF), 0);
        assert_eq!(get_u64(&head, LOG_HEAD_SEQ_OFF), 1);
        assert_eq!(block_fill(&io, 2 + 1), 0x11);
        assert_eq!(block_fill(&io, 2 + half + 1), 0x22);
    }

    #[test]
    fn absorption_logs_block_once() {
        let (io, journal) = setup();
        journal.begin_op();
        for fill in [1u8, 2, 3] {
            journal.log_write(700, &[fill; BSIZE]).unwrap();
        }
        journal.end_op(&io).unwrap();
        assert_eq!(journal.stats().blocks_logged, 1);
        assert_eq!(block_fill(&io, 700), 3);
    }

    #[test]
    fn log_write_outside_transaction_is_rejected() {
        let (_io, journal) = setup();
        assert_eq!(journal.log_write(5, &[0u8; BSIZE]).unwrap_err().errno(), Errno::Inval);
    }

    #[test]
    fn oversized_transaction_is_rejected() {
        let (io, journal) = setup();
        journal.begin_op();
        for i in 0..MAX_OP_BLOCKS as u64 {
            journal.log_write(600 + i, &[1u8; BSIZE]).unwrap();
        }
        assert_eq!(
            journal.log_write(600 + MAX_OP_BLOCKS as u64, &[1u8; BSIZE]).unwrap_err().errno(),
            Errno::NoSpc
        );
        journal.end_op(&io).unwrap();
    }

    #[test]
    fn group_commit_combines_concurrent_ops() {
        use std::thread;
        let io = DeviceIo::new(Arc::new(RamDisk::new(BSIZE as u32, 2048)));
        let io = Arc::new(io);
        let journal = Arc::new(Journal::new(test_config(2048)));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let journal = Arc::clone(&journal);
            let io = Arc::clone(&io);
            handles.push(thread::spawn(move || {
                for i in 0..20u64 {
                    write_block(&io, &journal, 1200 + t * 20 + i, (t + 1) as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every block made it to its home location.
        for t in 0..8u64 {
            for i in 0..20u64 {
                assert_eq!(block_fill(&io, 1200 + t * 20 + i), (t + 1) as u8);
            }
        }
        // Group commit means commits <= operations.
        let stats = journal.stats();
        assert!(stats.commits <= 160);
        assert_eq!(stats.blocks_logged, 160);
        assert_eq!(stats.ops_committed, 160);
        assert_eq!(stats.barriers, stats.commits * 3);
    }

    #[test]
    fn snapshot_versions_keep_newest_content_on_merge() {
        // Two operations in one group modify the same block, and the
        // *older* snapshot merges last (the out-of-order case): the
        // committed bytes must still be the newest snapshot.
        let (io, journal) = setup();
        let io = Arc::new(io);
        let journal = Arc::new(journal);
        journal.begin_op(); // op A holds the group open
        journal.log_write(800, &[0x01; BSIZE]).unwrap(); // older snapshot
        {
            // Op B on another thread modifies the same block afterwards
            // and merges first (op A is still outstanding, so no commit
            // yet).
            let journal = Arc::clone(&journal);
            let io = Arc::clone(&io);
            std::thread::spawn(move || {
                write_block(&io, &journal, 800, 0x02);
            })
            .join()
            .unwrap();
        }
        // Op A merges its older snapshot last, closes the group, commits.
        journal.end_op(&*io).unwrap();
        assert_eq!(block_fill(&io, 800), 0x02, "newest snapshot must win");
        let stats = journal.stats();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.blocks_logged, 1, "absorbed across ops in one group");
        assert_eq!(stats.ops_committed, 2);
    }

    #[test]
    fn recover_replays_committed_transaction_from_either_region() {
        for region in 0..2u64 {
            let (io, journal) = setup();
            let half = (LOG_BLOCKS / 2) as u64;
            let head_block = 2 + region * half;
            let seq = region; // region = seq % 2
            let target: u64 = 800;
            // Simulate a crash after the commit record was written but
            // before install: write the log area and header by hand.
            io.write_block(head_block + 1, &[0x5E; BSIZE]).unwrap();
            let mut head = vec![0u8; BSIZE];
            put_u32(&mut head, LOG_HEAD_COUNT_OFF, 1);
            put_u64(&mut head, LOG_HEAD_SEQ_OFF, seq);
            put_u32(&mut head, LOG_HEAD_BLOCKS_OFF, target as u32);
            seal_head(&mut head);
            io.write_block(head_block, &head).unwrap();
            drop(journal);
            // Home block still has old (zero) contents; "crash" and
            // recover.
            let journal2 = Journal::new(test_config(1024));
            let replayed = journal2.recover(&io).unwrap();
            assert_eq!(replayed, 1, "region {region}");
            assert_eq!(block_fill(&io, target), 0x5E, "region {region}");
            // Header is cleared: a second recovery is a no-op.
            assert_eq!(journal2.recover(&io).unwrap(), 0, "region {region}");
        }
    }

    #[test]
    fn recover_replays_both_regions_in_sequence_order() {
        let (io, journal) = setup();
        let half = (LOG_BLOCKS / 2) as u64;
        let target: u64 = 810;
        // Both regions hold a committed transaction for the same home
        // block: region 1 carries seq 1 (newer), region 0 carries seq 2
        // (newest).  Recovery must install in sequence order so the seq-2
        // bytes win.
        for (region, seq, fill) in [(1u64, 1u64, 0xAAu8), (0, 2, 0xBB)] {
            let head_block = 2 + region * half;
            io.write_block(head_block + 1, &[fill; BSIZE]).unwrap();
            let mut head = vec![0u8; BSIZE];
            put_u32(&mut head, LOG_HEAD_COUNT_OFF, 1);
            put_u64(&mut head, LOG_HEAD_SEQ_OFF, seq);
            put_u32(&mut head, LOG_HEAD_BLOCKS_OFF, target as u32);
            seal_head(&mut head);
            io.write_block(head_block, &head).unwrap();
        }
        drop(journal);
        let journal2 = Journal::new(test_config(1024));
        assert_eq!(journal2.recover(&io).unwrap(), 2);
        assert_eq!(block_fill(&io, target), 0xBB);
        assert_eq!(journal2.recover(&io).unwrap(), 0);
    }

    #[test]
    fn recover_rejects_torn_commit_record() {
        // A header whose checksum does not cover its contents (a torn
        // commit-record write) must be treated as clean, not installed.
        let (io, journal) = setup();
        io.write_block(3, &[0x99; BSIZE]).unwrap();
        let mut head = vec![0u8; BSIZE];
        put_u32(&mut head, LOG_HEAD_COUNT_OFF, 1);
        put_u64(&mut head, LOG_HEAD_SEQ_OFF, 0);
        put_u32(&mut head, LOG_HEAD_BLOCKS_OFF, 800);
        seal_head(&mut head);
        // Corrupt one home entry after sealing: simulates a tear where
        // the checksum sector and the block-list sector disagree.
        put_u32(&mut head, LOG_HEAD_BLOCKS_OFF, 801);
        io.write_block(2, &head).unwrap();
        drop(journal);
        let journal2 = Journal::new(test_config(1024));
        assert_eq!(journal2.recover(&io).unwrap(), 0);
        assert_eq!(block_fill(&io, 800), 0, "nothing installed");
        assert_eq!(block_fill(&io, 801), 0, "nothing installed");
    }

    #[test]
    fn recover_rejects_out_of_range_home_blocks() {
        // A structurally valid, correctly checksummed header naming a home
        // block outside the configured range (here: block 1, inside the
        // superblock/log area) is foreign or corrupt — recovery must treat
        // the region as clean rather than install over arbitrary blocks.
        let (io, journal) = setup();
        io.write_block(3, &[0x42; BSIZE]).unwrap();
        let mut head = vec![0u8; BSIZE];
        put_u32(&mut head, LOG_HEAD_COUNT_OFF, 1);
        put_u64(&mut head, LOG_HEAD_SEQ_OFF, 0);
        put_u32(&mut head, LOG_HEAD_BLOCKS_OFF, 1);
        seal_head(&mut head);
        io.write_block(2, &head).unwrap();
        drop(journal);
        let journal2 = Journal::new(test_config(1024));
        assert_eq!(journal2.recover(&io).unwrap(), 0);
        assert_eq!(block_fill(&io, 1), 0, "nothing installed over the superblock");
    }
}
