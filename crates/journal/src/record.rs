//! Shared on-disk commit-record (log-region header) layout.
//!
//! Every write-ahead log in the workspace writes this header: the Bento
//! file system's `xv6fs::log::Log` and the VFS baseline's
//! `xv6fs_vfs::log::VfsLog` are both thin adapters over
//! [`crate::Journal`], which owns the encode/decode logic here.  Their
//! on-disk images must stay byte-compatible — the crash harness mounts one
//! stack's image under the other's fsck oracle — so exactly one module
//! owns the field offsets, the self-checksum, and the encode/decode logic.
//!
//! Header layout (one 4 KiB block per log region):
//!
//! | offset | field                                       |
//! |-------:|---------------------------------------------|
//! |      0 | `u32` count of logged blocks (0 = clean)    |
//! |      8 | `u64` commit sequence number                |
//! |     16 | `u64` FNV-1a self-checksum                  |
//! |     24 | `count` consecutive `u32` home block numbers |

/// Block size in bytes.  Every stack in the workspace (and the simkernel
/// page cache) uses 4 KiB blocks; the commit-record capacity derives from
/// it.
pub const BSIZE: usize = 4096;

/// Byte offset of the logged-block count in a log-region header.
pub const LOG_HEAD_COUNT_OFF: usize = 0;

/// Byte offset of the commit sequence number (`u64`) in a log-region
/// header.  Recovery uses it to replay regions in commit order.
pub const LOG_HEAD_SEQ_OFF: usize = 8;

/// Byte offset of the header self-checksum (`u64`, FNV-1a over count, seq,
/// and the home-block list).  A commit-record write is eight sector writes
/// on a real device; the checksum lets recovery reject a header whose
/// sectors only partially reached the platter instead of installing log
/// blocks to a half-stale home list.
pub const LOG_HEAD_CHECKSUM_OFF: usize = 16;

/// Byte offset of the first logged home block number in a log-region
/// header; entries are consecutive `u32`s.
pub const LOG_HEAD_BLOCKS_OFF: usize = 24;

/// Most home-block entries one header block can name.
pub const LOG_HEAD_MAX_ENTRIES: usize = (BSIZE - LOG_HEAD_BLOCKS_OFF) / 4;

/// Writes a little-endian `u32` at `off`.
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Writes a little-endian `u64` at `off`.
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u32` at `off`.
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("u32 slice"))
}

/// Reads a little-endian `u64` at `off`.
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("u64 slice"))
}

/// Computes the self-checksum a log-region header should carry: FNV-1a
/// over the count and sequence fields plus the `count` home-block entries
/// (the checksum field itself is excluded).  A garbage count is clamped to
/// the block so the function never panics on corrupt input.
pub fn log_head_checksum(head: &[u8]) -> u64 {
    let count = (get_u32(head, LOG_HEAD_COUNT_OFF) as usize).min(LOG_HEAD_MAX_ENTRIES);
    let mut h = simkernel::hash::Fnv1a64::new();
    h.update(&head[..LOG_HEAD_CHECKSUM_OFF]);
    h.update(&head[LOG_HEAD_BLOCKS_OFF..LOG_HEAD_BLOCKS_OFF + 4 * count]);
    h.finish()
}

/// Encodes a sealed commit record into `head`: count, sequence, home-block
/// list, and the self-checksum stamped last.
///
/// # Panics
///
/// Panics if `homes` exceeds [`LOG_HEAD_MAX_ENTRIES`] (the log's region
/// capacity is derived from that bound, so this is a caller bug).
pub fn encode_head<I>(head: &mut [u8], seq: u64, homes: I)
where
    I: ExactSizeIterator<Item = u64>,
{
    assert!(homes.len() <= LOG_HEAD_MAX_ENTRIES, "commit record overflows header block");
    put_u32(head, LOG_HEAD_COUNT_OFF, homes.len() as u32);
    put_u64(head, LOG_HEAD_SEQ_OFF, seq);
    for (i, home) in homes.enumerate() {
        put_u32(head, LOG_HEAD_BLOCKS_OFF + i * 4, home as u32);
    }
    let checksum = log_head_checksum(head);
    put_u64(head, LOG_HEAD_CHECKSUM_OFF, checksum);
}

/// Encodes a clean (count 0) header into `head`, keeping the region's last
/// commit sequence visible for diagnostics, sealed with the checksum.
pub fn encode_clear(head: &mut [u8], seq: u64) {
    put_u32(head, LOG_HEAD_COUNT_OFF, 0);
    put_u64(head, LOG_HEAD_SEQ_OFF, seq);
    let checksum = log_head_checksum(head);
    put_u64(head, LOG_HEAD_CHECKSUM_OFF, checksum);
}

/// A commit record recovery accepted: its sequence number and home blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedHead {
    /// Commit sequence number (orders replay across regions).
    pub seq: u64,
    /// Home block of each logged block, in log-region order.
    pub homes: Vec<u64>,
}

/// Decodes a commit record, returning `None` for anything recovery must
/// treat as a clean region: a zero count, a count beyond `capacity`, or a
/// checksum mismatch (a torn commit-record write — the transaction never
/// committed).  Callers still validate the home blocks against their own
/// valid range.
pub fn parse_head(head: &[u8], capacity: usize) -> Option<ParsedHead> {
    let n = get_u32(head, LOG_HEAD_COUNT_OFF) as usize;
    if n == 0 || n > capacity.min(LOG_HEAD_MAX_ENTRIES) {
        return None;
    }
    if get_u64(head, LOG_HEAD_CHECKSUM_OFF) != log_head_checksum(head) {
        return None;
    }
    let seq = get_u64(head, LOG_HEAD_SEQ_OFF);
    let homes = (0..n).map(|i| get_u32(head, LOG_HEAD_BLOCKS_OFF + i * 4) as u64).collect();
    Some(ParsedHead { seq, homes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_parse_roundtrip() {
        let mut head = vec![0u8; BSIZE];
        encode_head(&mut head, 7, [100u64, 200, 300].into_iter());
        let parsed = parse_head(&head, 64).expect("valid header parses");
        assert_eq!(parsed, ParsedHead { seq: 7, homes: vec![100, 200, 300] });
    }

    #[test]
    fn clear_parses_as_clean() {
        let mut head = vec![0u8; BSIZE];
        encode_head(&mut head, 3, [50u64].into_iter());
        encode_clear(&mut head, 3);
        assert!(parse_head(&head, 64).is_none());
        assert_eq!(get_u64(&head, LOG_HEAD_SEQ_OFF), 3, "sequence stays visible");
    }

    #[test]
    fn torn_record_is_rejected() {
        let mut head = vec![0u8; BSIZE];
        encode_head(&mut head, 1, [100u64, 200].into_iter());
        // Simulate a tear: one home entry changes after the checksum sealed.
        put_u32(&mut head, LOG_HEAD_BLOCKS_OFF, 999);
        assert!(parse_head(&head, 64).is_none());
    }

    #[test]
    fn over_capacity_count_is_rejected() {
        let mut head = vec![0u8; BSIZE];
        encode_head(&mut head, 1, (0..10u32).map(|i| 100 + u64::from(i)));
        assert!(parse_head(&head, 4).is_none(), "count beyond region capacity");
        assert!(parse_head(&head, 10).is_some());
    }

    #[test]
    fn offsets_are_the_documented_layout() {
        assert_eq!(LOG_HEAD_COUNT_OFF, 0);
        assert_eq!(LOG_HEAD_SEQ_OFF, 8);
        assert_eq!(LOG_HEAD_CHECKSUM_OFF, 16);
        assert_eq!(LOG_HEAD_BLOCKS_OFF, 24);
    }
}
