//! Dual-slot checkpoint records: the second commit-record format the
//! workspace's stacks write, shared here for the same reason as
//! [`crate::record`].
//!
//! ext4sim keeps its metadata in memory and checkpoints it wholesale.  The
//! crash-safe scheme is two alternating *slots*, each holding a length- and
//! checksum-sealed body with the header block written *after* the body:
//! mount picks the highest-sequence valid slot, so a crash that tears the
//! newest checkpoint falls back to the previous one.  This module owns the
//! slot geometry, the header byte layout, and the torn-slot rejection;
//! callers serialize/deserialize the body and decide when to barrier.
//!
//! Header block layout (little-endian `u64`s):
//!
//! | offset | field                       |
//! |-------:|-----------------------------|
//! |      0 | magic                       |
//! |      8 | sequence number             |
//! |     16 | body length in bytes        |
//! |     24 | FNV-1a checksum of the body |

use simkernel::dev::BlockDevice;
use simkernel::error::{Errno, KernelError, KernelResult};
use simkernel::hash::fnv1a64;

/// Geometry and identity of a two-slot checkpoint area on a device.
#[derive(Debug, Clone, Copy)]
pub struct DualSlotCheckpoint {
    /// First block of the checkpoint area (slot 0's header block).
    pub area_start: u64,
    /// Blocks per slot (header block + body blocks); the area spans
    /// `2 * slot_blocks`.
    pub slot_blocks: u64,
    /// Device block size in bytes.
    pub block_size: usize,
    /// Magic value identifying a slot header of this format.
    pub magic: u64,
}

impl DualSlotCheckpoint {
    /// Largest body (in bytes) one slot can hold.
    pub fn max_body_len(&self) -> usize {
        (self.slot_blocks as usize - 1) * self.block_size
    }

    /// Header block of `slot` (0 or 1).
    pub fn slot_start(&self, slot: u64) -> u64 {
        self.area_start + slot * self.slot_blocks
    }

    /// Writes checkpoint `seq` into the slot `seq % 2` (the slot *not*
    /// holding the previous checkpoint): body blocks first, the sealed
    /// header last, so recovery can always tell a complete checkpoint from
    /// a torn one and fall back.  The caller is responsible for the
    /// surrounding barrier; this function does not flush.
    ///
    /// # Errors
    ///
    /// [`Errno::NoSpc`] if `body` exceeds
    /// [`DualSlotCheckpoint::max_body_len`]; propagates device errors.
    pub fn write(&self, dev: &dyn BlockDevice, seq: u64, body: &[u8]) -> KernelResult<()> {
        if body.len() > self.max_body_len() {
            return Err(KernelError::with_context(Errno::NoSpc, "journal: checkpoint area full"));
        }
        let slot_start = self.slot_start(seq % 2);
        for (i, chunk) in body.chunks(self.block_size).enumerate() {
            let mut buf = vec![0u8; self.block_size];
            buf[..chunk.len()].copy_from_slice(chunk);
            dev.write_block(slot_start + 1 + i as u64, &buf)?;
        }
        let mut header = vec![0u8; self.block_size];
        header[..8].copy_from_slice(&self.magic.to_le_bytes());
        header[8..16].copy_from_slice(&seq.to_le_bytes());
        header[16..24].copy_from_slice(&(body.len() as u64).to_le_bytes());
        header[24..32].copy_from_slice(&fnv1a64(body).to_le_bytes());
        dev.write_block(slot_start, &header)
    }

    /// Reads one slot's checkpoint; `None` if the slot is absent (wrong
    /// magic), carries an impossible length, or is torn (the body checksum
    /// does not match the sealed header — the header persisted but part of
    /// the body did not, or vice versa; the other slot is authoritative).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn load_slot(
        &self,
        dev: &dyn BlockDevice,
        slot: u64,
    ) -> KernelResult<Option<(u64, Vec<u8>)>> {
        let slot_start = self.slot_start(slot);
        let mut header = vec![0u8; self.block_size];
        dev.read_block(slot_start, &mut header)?;
        let field =
            |i: usize| u64::from_le_bytes(header[i * 8..(i + 1) * 8].try_into().expect("u64"));
        if field(0) != self.magic {
            return Ok(None);
        }
        let (seq, len, checksum) = (field(1), field(2) as usize, field(3));
        if len == 0 || len > self.max_body_len() {
            return Ok(None);
        }
        let mut body = Vec::with_capacity(len);
        let mut block = slot_start + 1;
        while body.len() < len {
            let mut buf = vec![0u8; self.block_size];
            dev.read_block(block, &mut buf)?;
            let take = (len - body.len()).min(self.block_size);
            body.extend_from_slice(&buf[..take]);
            block += 1;
        }
        if fnv1a64(&body) != checksum {
            return Ok(None);
        }
        Ok(Some((seq, body)))
    }

    /// Reads the newest valid checkpoint across both slots — the torn-slot
    /// fallback: a torn or absent slot simply loses to the other one.
    /// Returns `None` when neither slot holds a valid checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn load_newest(&self, dev: &dyn BlockDevice) -> KernelResult<Option<(u64, Vec<u8>)>> {
        let mut best: Option<(u64, Vec<u8>)> = None;
        for slot in 0..2 {
            if let Some((seq, body)) = self.load_slot(dev, slot)? {
                if best.as_ref().is_none_or(|(best_seq, _)| seq > *best_seq) {
                    best = Some((seq, body));
                }
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::dev::RamDisk;
    use std::sync::Arc;

    fn layout() -> DualSlotCheckpoint {
        DualSlotCheckpoint { area_start: 8, slot_blocks: 4, block_size: 4096, magic: 0xC0FFEE }
    }

    fn disk() -> Arc<RamDisk> {
        Arc::new(RamDisk::new(4096, 64))
    }

    #[test]
    fn write_load_roundtrip_alternates_slots() {
        let (cp, dev) = (layout(), disk());
        cp.write(&*dev, 1, b"first checkpoint").unwrap();
        cp.write(&*dev, 2, b"second, longer checkpoint body").unwrap();
        // Both slots are valid; the newest wins.
        let (seq, body) = cp.load_newest(&*dev).unwrap().unwrap();
        assert_eq!(seq, 2);
        assert_eq!(body, b"second, longer checkpoint body");
        // Slot 1 still holds seq 1 intact.
        let (seq1, body1) = cp.load_slot(&*dev, 1).unwrap().unwrap();
        assert_eq!((seq1, body1.as_slice()), (1, b"first checkpoint".as_slice()));
    }

    #[test]
    fn torn_body_falls_back_to_previous_slot() {
        let (cp, dev) = (layout(), disk());
        cp.write(&*dev, 1, b"old state").unwrap();
        cp.write(&*dev, 2, &vec![0x5A; 5000]).unwrap();
        // Tear the newest checkpoint's second body block.
        let mut block = vec![0u8; 4096];
        dev.read_block(cp.slot_start(0) + 2, &mut block).unwrap();
        block[0] ^= 0xFF;
        dev.write_block(cp.slot_start(0) + 2, &block).unwrap();
        let (seq, body) = cp.load_newest(&*dev).unwrap().unwrap();
        assert_eq!(seq, 1, "torn slot must lose to the intact one");
        assert_eq!(body, b"old state");
    }

    #[test]
    fn empty_area_and_oversized_body_are_rejected() {
        let (cp, dev) = (layout(), disk());
        assert!(cp.load_newest(&*dev).unwrap().is_none());
        let too_big = vec![0u8; cp.max_body_len() + 1];
        assert_eq!(cp.write(&*dev, 1, &too_big).unwrap_err().errno(), Errno::NoSpc);
    }

    #[test]
    fn bogus_length_is_rejected() {
        let (cp, dev) = (layout(), disk());
        cp.write(&*dev, 1, b"victim").unwrap();
        // Corrupt the sealed length beyond the slot capacity.
        let mut header = vec![0u8; 4096];
        dev.read_block(cp.slot_start(1), &mut header).unwrap();
        header[16..24].copy_from_slice(&(u64::MAX).to_le_bytes());
        dev.write_block(cp.slot_start(1), &header).unwrap();
        assert!(cp.load_slot(&*dev, 1).unwrap().is_none());
    }
}
