//! The baseline's write-ahead log, written directly against the kernel
//! buffer cache (the way the paper's C implementation calls `sb_bread` /
//! `brelse` / `blkdev_issue_flush` itself).
//!
//! The protocol is the same as [`xv6fs::log`]; the difference is purely
//! which interface it is written against.

use parking_lot::{Condvar, Mutex};

use simkernel::buffer::BufferCache;
use simkernel::error::{Errno, KernelError, KernelResult};

use xv6fs::layout::{get_u32, put_u32, DiskSuperblock, LOGSIZE, MAXOPBLOCKS};

#[derive(Debug, Default)]
struct Inner {
    blocks: Vec<u64>,
    outstanding: u32,
    committing: bool,
}

/// Write-ahead log state for the VFS baseline.
#[derive(Debug)]
pub struct VfsLog {
    start: u64,
    size: usize,
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl VfsLog {
    /// Creates log state for the file system described by `sb`.
    pub fn new(sb: &DiskSuperblock) -> Self {
        VfsLog {
            start: sb.logstart as u64,
            size: (sb.nlog as usize).min(LOGSIZE),
            inner: Mutex::new(Inner::default()),
            cond: Condvar::new(),
        }
    }

    /// Begins a transaction-participating operation.
    pub fn begin_op(&self) {
        let mut inner = self.inner.lock();
        loop {
            let would = inner.blocks.len() + (inner.outstanding as usize + 1) * MAXOPBLOCKS;
            if inner.committing || would > self.size - 1 {
                self.cond.wait(&mut inner);
            } else {
                inner.outstanding += 1;
                return;
            }
        }
    }

    /// Records a modified block.
    ///
    /// # Errors
    ///
    /// [`Errno::Inval`] outside a transaction, [`Errno::NoSpc`] if the
    /// transaction outgrows the log.
    pub fn log_write(&self, blockno: u64) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        if inner.outstanding == 0 {
            return Err(KernelError::with_context(Errno::Inval, "xv6fs-vfs: log_write outside op"));
        }
        if inner.blocks.len() >= self.size - 1 {
            return Err(KernelError::with_context(Errno::NoSpc, "xv6fs-vfs: log overflow"));
        }
        if !inner.blocks.contains(&blockno) {
            inner.blocks.push(blockno);
        }
        Ok(())
    }

    /// Ends the operation, committing when it is the last one outstanding.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the commit.
    pub fn end_op(&self, cache: &BufferCache) -> KernelResult<()> {
        let to_commit = {
            let mut inner = self.inner.lock();
            inner.outstanding -= 1;
            if inner.outstanding == 0 && !inner.blocks.is_empty() {
                inner.committing = true;
                Some(std::mem::take(&mut inner.blocks))
            } else {
                if inner.outstanding == 0 {
                    self.cond.notify_all();
                }
                None
            }
        };
        if let Some(blocks) = to_commit {
            let result = self.commit(cache, &blocks);
            let mut inner = self.inner.lock();
            inner.committing = false;
            self.cond.notify_all();
            result?;
        }
        Ok(())
    }

    fn commit(&self, cache: &BufferCache, blocks: &[u64]) -> KernelResult<()> {
        for (i, &home) in blocks.iter().enumerate() {
            let src = cache.bread(home)?;
            let mut dst = cache.getblk_zeroed(self.start + 1 + i as u64)?;
            dst.data_mut().copy_from_slice(src.data());
            dst.write()?;
        }
        self.write_head(cache, blocks)?;
        cache.flush_device()?;
        for &home in blocks {
            let mut buf = cache.bread(home)?;
            buf.write()?;
        }
        self.write_head(cache, &[])?;
        cache.flush_device()
    }

    fn write_head(&self, cache: &BufferCache, blocks: &[u64]) -> KernelResult<()> {
        let mut head = cache.bread(self.start)?;
        put_u32(head.data_mut(), 0, blocks.len() as u32);
        for (i, &b) in blocks.iter().enumerate() {
            put_u32(head.data_mut(), 4 + i * 4, b as u32);
        }
        head.write()
    }

    /// Replays a committed transaction found in the on-disk log at mount.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn recover(&self, cache: &BufferCache) -> KernelResult<usize> {
        let head = cache.bread(self.start)?;
        let n = get_u32(head.data(), 0) as usize;
        if n == 0 || n > self.size - 1 {
            return Ok(0);
        }
        let homes: Vec<u64> = (0..n).map(|i| get_u32(head.data(), 4 + i * 4) as u64).collect();
        drop(head);
        for (i, &home) in homes.iter().enumerate() {
            let log_block = cache.bread(self.start + 1 + i as u64)?;
            let content = log_block.data().to_vec();
            drop(log_block);
            let mut dst = cache.bread(home)?;
            dst.data_mut().copy_from_slice(&content);
            dst.write()?;
        }
        self.write_head(cache, &[])?;
        cache.flush_device()?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::dev::RamDisk;
    use std::sync::Arc;
    use xv6fs::layout::FSMAGIC;

    fn setup() -> (BufferCache, VfsLog) {
        let cache = BufferCache::new(Arc::new(RamDisk::new(4096, 1024)), 256);
        let sb = DiskSuperblock {
            magic: FSMAGIC,
            size: 1024,
            nblocks: 700,
            ninodes: 64,
            nlog: LOGSIZE as u32,
            logstart: 2,
            inodestart: 2 + LOGSIZE as u32,
            bmapstart: 2 + LOGSIZE as u32 + 2,
        };
        (cache, VfsLog::new(&sb))
    }

    #[test]
    fn basic_commit_reaches_home_blocks() {
        let (cache, log) = setup();
        log.begin_op();
        {
            let mut b = cache.bread(900).unwrap();
            b.data_mut().fill(0x3C);
        }
        log.log_write(900).unwrap();
        log.end_op(&cache).unwrap();
        let mut raw = vec![0u8; 4096];
        cache.device().read_block(900, &mut raw).unwrap();
        assert!(raw.iter().all(|&b| b == 0x3C));
    }

    #[test]
    fn recover_is_noop_on_clean_log() {
        let (cache, log) = setup();
        assert_eq!(log.recover(&cache).unwrap(), 0);
    }
}
