//! The VFS baseline's write-ahead log as a thin adapter over the shared
//! [`journal::Journal`].
//!
//! Same protocol, same on-disk format, same recovery defenses as the Bento
//! stack's `xv6fs::log::Log` — *by construction*, because both are
//! adapters over the one journal implementation (the crash harness mounts
//! one stack's image under the other's fsck oracle, so the images must
//! stay byte-compatible).  This module only translates the kernel
//! [`BufferCache`] into the journal's block-IO face
//! ([`journal::io::JournalIo`]): cached I/O via [`BufferCache::bread`]
//! (the way the paper's C implementation calls `sb_bread` / `brelse`
//! itself), raw writes straight to the backing device, barriers via
//! [`BufferCache::flush_device`] (`blkdev_issue_flush`), and the
//! multi-queue face via the device's `as_queued`.

use simkernel::buffer::{BufferCache, BufferGuard};
use simkernel::error::KernelResult;

use journal::io::JournalIo;
use journal::{Journal, JournalConfig};

use xv6fs::layout::{DiskSuperblock, LOGSIZE};

pub use xv6fs::log::LogStats;

/// [`JournalIo`] over the kernel [`BufferCache`]: cached I/O goes through
/// the buffer cache, raw writes and barriers hit the backing device
/// directly.
struct CacheIo<'a>(&'a BufferCache);

impl JournalIo for CacheIo<'_> {
    fn read_block(&self, blockno: u64, out: &mut [u8]) -> KernelResult<()> {
        let buf = self.0.bread(blockno)?;
        out.copy_from_slice(buf.data());
        Ok(())
    }

    fn write_block(&self, blockno: u64, data: &[u8]) -> KernelResult<()> {
        let mut buf = self.0.bread(blockno)?;
        buf.data_mut().copy_from_slice(data);
        buf.write()
    }

    fn write_raw(&self, blockno: u64, data: &[u8]) -> KernelResult<()> {
        self.0.device().write_block(blockno, data)
    }

    fn flush_cached_if_eq(&self, blockno: u64, expected: &[u8]) -> KernelResult<bool> {
        let mut buf = self.0.bread(blockno)?;
        if buf.data() == expected {
            buf.write()?;
            Ok(true)
        } else {
            // A later operation already modified this block in the cache;
            // its own group will log and install the newer bytes.  The
            // journal writes the committed snapshot raw instead.
            Ok(false)
        }
    }

    fn barrier(&self) -> KernelResult<()> {
        self.0.flush_device()
    }

    fn queued(&self) -> Option<&dyn simkernel::queue::QueuedBlockDevice> {
        self.0.device().as_queued()
    }
}

/// The VFS baseline's write-ahead log (see [`journal::Journal`] for the
/// protocol).
#[derive(Debug)]
pub struct VfsLog {
    journal: Journal,
}

impl VfsLog {
    /// Creates log state for the file system described by `sb`.
    pub fn new(sb: &DiskSuperblock) -> Self {
        VfsLog {
            journal: Journal::new(JournalConfig::from_geometry(
                sb.logstart as u64,
                sb.nlog as usize,
                LOGSIZE,
                (sb.inodestart as u64, sb.size as u64),
            )),
        }
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> LogStats {
        self.journal.stats()
    }

    /// Data blocks one commit region can hold (one group's maximum size).
    pub fn region_capacity(&self) -> usize {
        self.journal.region_capacity()
    }

    /// Begins an operation that will modify at most
    /// [`VfsLog::max_op_blocks`] blocks; see [`Journal::begin_op`].
    pub fn begin_op(&self) {
        self.journal.begin_op();
    }

    /// Records that the block held by `buf` was modified by the current
    /// operation, freezing a snapshot of its bytes.  Call while still
    /// holding the [`BufferGuard`] (immediately after modifying it).
    ///
    /// # Errors
    ///
    /// See [`Journal::log_write`].
    pub fn log_write(&self, buf: &BufferGuard) -> KernelResult<()> {
        self.journal.log_write(buf.blockno(), buf.data())
    }

    /// Ends the current operation; see [`Journal::end_op`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the commit.
    pub fn end_op(&self, cache: &BufferCache) -> KernelResult<()> {
        self.journal.end_op(&CacheIo(cache))
    }

    /// Forces everything durable-in-progress to commit; see
    /// [`Journal::flush`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the commit.
    pub fn flush(&self, cache: &BufferCache) -> KernelResult<()> {
        self.journal.flush(&CacheIo(cache))
    }

    /// Replays committed-but-not-installed transactions at mount time;
    /// see [`Journal::recover`].  Returns the number of blocks replayed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn recover(&self, cache: &BufferCache) -> KernelResult<usize> {
        self.journal.recover(&CacheIo(cache))
    }

    /// Maximum number of data blocks a single operation may safely modify
    /// (callers chunk larger writes).
    pub fn max_op_blocks() -> usize {
        Journal::max_op_blocks()
    }
}

#[cfg(test)]
mod tests {
    //! Adapter smoke tests: the protocol is exercised by the `journal`
    //! crate's unit tests and the journal-level crash suite (which runs
    //! this stack through the shared harness); here we only prove the
    //! [`CacheIo`] translation is faithful.

    use super::*;
    use simkernel::dev::RamDisk;
    use std::sync::Arc;
    use xv6fs::layout::{
        log_head_checksum, put_u32, put_u64, BSIZE, LOG_HEAD_BLOCKS_OFF, LOG_HEAD_CHECKSUM_OFF,
        LOG_HEAD_COUNT_OFF, LOG_HEAD_SEQ_OFF,
    };

    fn test_dsb(size: u32) -> DiskSuperblock {
        DiskSuperblock {
            magic: xv6fs::layout::FSMAGIC,
            size,
            nblocks: 700,
            ninodes: 128,
            nlog: LOGSIZE as u32,
            logstart: 2,
            inodestart: 2 + LOGSIZE as u32,
            bmapstart: 2 + LOGSIZE as u32 + 4,
        }
    }

    fn setup() -> (BufferCache, VfsLog) {
        let dev = Arc::new(RamDisk::new(BSIZE as u32, 1024));
        (BufferCache::new(dev, 256), VfsLog::new(&test_dsb(1024)))
    }

    #[test]
    fn commit_through_cache_installs_and_counts_barriers() {
        let (cache, log) = setup();
        log.begin_op();
        let mut buf = cache.bread(900).unwrap();
        buf.data_mut().fill(0xAB);
        log.log_write(&buf).unwrap();
        drop(buf);
        log.end_op(&cache).unwrap();
        // Durable on the raw device, not just in cache.
        let mut raw = vec![0u8; BSIZE];
        cache.device().read_block(900, &mut raw).unwrap();
        assert_eq!(raw[0], 0xAB);
        let stats = log.stats();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.barriers, 3, "three barriers per commit through flush_device");
        log.flush(&cache).unwrap();
    }

    #[test]
    fn recover_reads_headers_through_buffer_cache() {
        let (cache, log) = setup();
        // Hand-craft a committed-but-not-installed transaction in region 0.
        let mut data = cache.getblk_zeroed(3).unwrap();
        data.data_mut().fill(0x5E);
        data.write().unwrap();
        drop(data);
        let mut head = cache.bread(2).unwrap();
        head.data_mut().fill(0);
        put_u32(head.data_mut(), LOG_HEAD_COUNT_OFF, 1);
        put_u64(head.data_mut(), LOG_HEAD_SEQ_OFF, 0);
        put_u32(head.data_mut(), LOG_HEAD_BLOCKS_OFF, 800);
        let checksum = log_head_checksum(head.data());
        put_u64(head.data_mut(), LOG_HEAD_CHECKSUM_OFF, checksum);
        head.write().unwrap();
        drop(head);
        assert_eq!(log.recover(&cache).unwrap(), 1);
        let mut raw = vec![0u8; BSIZE];
        cache.device().read_block(800, &mut raw).unwrap();
        assert_eq!(raw[0], 0x5E);
        assert_eq!(log.recover(&cache).unwrap(), 0, "header cleared after replay");
        assert_eq!(log.stats().recoveries, 1);
    }
}
