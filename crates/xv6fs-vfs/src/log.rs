//! The baseline's write-ahead log, written directly against the kernel
//! buffer cache (the way the paper's C implementation calls `sb_bread` /
//! `brelse` / `blkdev_issue_flush` itself).
//!
//! The protocol is the same pipelined group commit as [`xv6fs::log`],
//! including the two-stage overlapped commit on multi-queue devices:
//! `begin_op` reserves space from an atomic counter, `log_write` stages a
//! frozen snapshot in thread-local state, completed operations merge into
//! the forming group at `end_op`, and commits alternate between two on-disk
//! log regions so the next group forms while the previous one writes its
//! barriers.  When the mounted device exposes a
//! [`simkernel::queue::QueuedBlockDevice`] face, stage-1 payload copies are
//! batch-submitted and the committer prefetches the next group's payload
//! right after its record barrier (see [`xv6fs::log`] for the full safety
//! argument).  The difference is purely which interface the I/O is written
//! against ([`BufferCache`] instead of the Bento `SuperBlock` capability).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};

use simkernel::buffer::{BufferCache, BufferGuard};
use simkernel::error::{Errno, KernelError, KernelResult};
use simkernel::shard::StripedCounter;

use xv6fs::layout::{DiskSuperblock, BSIZE, LOGSIZE, MAXOPBLOCKS};
use xv6fs::loghdr::{self, LOG_HEAD_BLOCKS_OFF};

pub use xv6fs::log::LogStats;

#[derive(Debug)]
struct LoggedBlock {
    home: u64,
    version: u64,
    data: Vec<u8>,
}

#[derive(Debug, Default)]
struct FormingGroup {
    blocks: Vec<LoggedBlock>,
    index: HashMap<u64, usize>,
    ops: u64,
}

#[derive(Debug, Default)]
struct TxLocal {
    depth: u32,
    blocks: Vec<LoggedBlock>,
    index: HashMap<u64, usize>,
}

thread_local! {
    static TX: RefCell<HashMap<u64, TxLocal>> = RefCell::new(HashMap::new());
}

static LOG_IDS: AtomicU64 = AtomicU64::new(1);
static SNAPSHOT_VERSION: AtomicU64 = AtomicU64::new(1);

#[derive(Debug, Default)]
struct LogCounters {
    commits: StripedCounter,
    blocks_logged: StripedCounter,
    recoveries: StripedCounter,
    ops_committed: StripedCounter,
    barriers: StripedCounter,
    overlapped_commits: StripedCounter,
}

#[derive(Debug, Default)]
struct CommitTurn {
    next: u64,
}

/// Write-ahead log state for the VFS baseline.
#[derive(Debug)]
pub struct VfsLog {
    id: u64,
    start: u64,
    region_size: usize,
    capacity: usize,
    /// Valid home-block range; recovery rejects headers naming blocks
    /// outside it (corruption / foreign-format defense).
    home_range: (u64, u64),
    inner: Mutex<FormingGroup>,
    space_cond: Condvar,
    outstanding: AtomicU32,
    reserved: AtomicUsize,
    next_seq: AtomicU64,
    /// Commits whose I/O has finished; `next_seq > commits_done` means a
    /// commit is in flight, so group closing defers to the committer's
    /// handoff (that deferral is the batching).
    commits_done: AtomicU64,
    /// Active [`VfsLog::flush`] calls; while nonzero, `begin_op` admits no
    /// new operations so the drain is bounded.
    flushing: AtomicU32,
    commit_turn: Mutex<CommitTurn>,
    commit_cond: Condvar,
    counters: LogCounters,
}

impl VfsLog {
    /// Creates log state for the file system described by `sb`.
    pub fn new(sb: &DiskSuperblock) -> Self {
        let size = (sb.nlog as usize).min(LOGSIZE);
        let region_size = (size / 2).max(2);
        let capacity = (region_size - 1).min((BSIZE - LOG_HEAD_BLOCKS_OFF) / 4);
        VfsLog {
            id: LOG_IDS.fetch_add(1, Ordering::Relaxed),
            start: sb.logstart as u64,
            region_size,
            capacity,
            home_range: (sb.inodestart as u64, sb.size as u64),
            inner: Mutex::new(FormingGroup::default()),
            space_cond: Condvar::new(),
            outstanding: AtomicU32::new(0),
            reserved: AtomicUsize::new(0),
            next_seq: AtomicU64::new(0),
            commits_done: AtomicU64::new(0),
            flushing: AtomicU32::new(0),
            commit_turn: Mutex::new(CommitTurn::default()),
            commit_cond: Condvar::new(),
            counters: LogCounters::default(),
        }
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> LogStats {
        LogStats {
            commits: self.counters.commits.get(),
            blocks_logged: self.counters.blocks_logged.get(),
            recoveries: self.counters.recoveries.get(),
            ops_committed: self.counters.ops_committed.get(),
            barriers: self.counters.barriers.get(),
            overlapped_commits: self.counters.overlapped_commits.get(),
        }
    }

    fn try_reserve(&self) -> bool {
        let mut cur = self.reserved.load(Ordering::SeqCst);
        loop {
            if cur + MAXOPBLOCKS > self.capacity {
                return false;
            }
            match self.reserved.compare_exchange(
                cur,
                cur + MAXOPBLOCKS,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Begins a transaction-participating operation (see
    /// [`xv6fs::log::Log::begin_op`]).
    pub fn begin_op(&self) {
        let nested = TX.with(|cell| {
            let mut map = cell.borrow_mut();
            let tx = map.entry(self.id).or_default();
            tx.depth += 1;
            tx.depth > 1
        });
        if nested {
            return;
        }
        if self.flushing.load(Ordering::SeqCst) != 0 || !self.try_reserve() {
            let mut inner = self.inner.lock();
            while self.flushing.load(Ordering::SeqCst) != 0 || !self.try_reserve() {
                self.space_cond.wait(&mut inner);
            }
        }
        self.outstanding.fetch_add(1, Ordering::SeqCst);
    }

    /// Records a modified block, freezing a snapshot of its bytes; call
    /// while still holding the buffer.
    ///
    /// # Errors
    ///
    /// [`Errno::Inval`] outside a transaction, [`Errno::NoSpc`] if the
    /// operation exceeds [`MAXOPBLOCKS`] distinct blocks.
    pub fn log_write(&self, buf: &BufferGuard) -> KernelResult<()> {
        let home = buf.blockno();
        let version = SNAPSHOT_VERSION.fetch_add(1, Ordering::SeqCst);
        TX.with(|cell| {
            let mut map = cell.borrow_mut();
            let tx = match map.get_mut(&self.id) {
                Some(tx) if tx.depth > 0 => tx,
                _ => {
                    return Err(KernelError::with_context(
                        Errno::Inval,
                        "xv6fs-vfs: log_write outside op",
                    ));
                }
            };
            if let Some(&i) = tx.index.get(&home) {
                tx.blocks[i].version = version;
                tx.blocks[i].data.clear();
                tx.blocks[i].data.extend_from_slice(buf.data());
            } else {
                if tx.blocks.len() >= MAXOPBLOCKS {
                    return Err(KernelError::with_context(Errno::NoSpc, "xv6fs-vfs: log overflow"));
                }
                tx.index.insert(home, tx.blocks.len());
                tx.blocks.push(LoggedBlock { home, version, data: buf.data().to_vec() });
            }
            Ok(())
        })
    }

    /// Ends the operation, merging it into the forming group and committing
    /// the group if it is ready.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the commit.
    pub fn end_op(&self, cache: &BufferCache) -> KernelResult<()> {
        let staged = TX.with(|cell| {
            let mut map = cell.borrow_mut();
            let tx = map.get_mut(&self.id).expect("end_op without begin_op");
            debug_assert!(tx.depth > 0, "end_op without begin_op");
            tx.depth -= 1;
            if tx.depth == 0 {
                // Keep the (empty) staging entry so the next operation on
                // this thread reuses its index allocation; prune stale
                // entries of long-dead log instances once in a while.
                tx.index.clear();
                let blocks = std::mem::take(&mut tx.blocks);
                if map.len() > 16 {
                    map.retain(|_, t| t.depth > 0);
                }
                Some(blocks)
            } else {
                None
            }
        });
        let Some(staged) = staged else { return Ok(()) };

        let to_commit = {
            let mut inner = self.inner.lock();
            let did_write = !staged.is_empty();
            let mut added = 0usize;
            for block in staged {
                if let Some(&i) = inner.index.get(&block.home) {
                    if inner.blocks[i].version < block.version {
                        inner.blocks[i] = block;
                    }
                } else {
                    let slot = inner.blocks.len();
                    inner.index.insert(block.home, slot);
                    inner.blocks.push(block);
                    added += 1;
                }
            }
            if did_write {
                // Read-only operations do not count toward the batching
                // metric.
                inner.ops += 1;
            }
            let release = MAXOPBLOCKS - added;
            if release > 0 {
                self.reserved.fetch_sub(release, Ordering::SeqCst);
                self.space_cond.notify_all();
            }
            let remaining = self.outstanding.fetch_sub(1, Ordering::SeqCst) - 1;
            if remaining == 0 {
                // Wake a flush() waiting for operations to drain.
                self.space_cond.notify_all();
            }
            self.take_group_if_ready(&mut inner)
        };
        if let Some((seq, blocks, ops)) = to_commit {
            self.commit_group(cache, seq, blocks, ops)?;
        }
        Ok(())
    }

    /// Forces everything durable-in-progress to commit (fsync / unmount
    /// paths): drains outstanding operations, commits the forming group,
    /// and waits out in-flight commits.  Must not be called from inside a
    /// transaction.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the commit.
    pub fn flush(&self, cache: &BufferCache) -> KernelResult<()> {
        // Seal admissions so the drain is bounded (see xv6fs::log).
        self.flushing.fetch_add(1, Ordering::SeqCst);
        let to_commit = {
            let mut inner = self.inner.lock();
            while self.outstanding.load(Ordering::SeqCst) != 0 {
                self.space_cond.wait(&mut inner);
            }
            let group = self.take_group(&mut inner);
            self.flushing.fetch_sub(1, Ordering::SeqCst);
            self.space_cond.notify_all();
            group
        };
        let result = match to_commit {
            Some((seq, blocks, ops)) => self.commit_group(cache, seq, blocks, ops),
            None => Ok(()),
        };
        let target = self.next_seq.load(Ordering::SeqCst);
        let mut turn = self.commit_turn.lock();
        while turn.next < target {
            self.commit_cond.wait(&mut turn);
        }
        result
    }

    /// Closes the forming group only at a quiescent instant with no commit
    /// in flight (see [`xv6fs::log::Log`] for the protocol and why).
    fn take_group_if_ready(
        &self,
        inner: &mut FormingGroup,
    ) -> Option<(u64, Vec<LoggedBlock>, u64)> {
        let quiescent = self.outstanding.load(Ordering::SeqCst) == 0;
        let in_flight =
            self.next_seq.load(Ordering::SeqCst) > self.commits_done.load(Ordering::SeqCst);
        if quiescent && !in_flight {
            self.take_group(inner)
        } else {
            None
        }
    }

    /// Closes the forming group for the committer's prefetch (see
    /// [`xv6fs::log::Log`]): requires quiescence but ignores the in-flight
    /// check — the caller *is* the in-flight commit.
    fn take_group_for_overlap(
        &self,
        inner: &mut FormingGroup,
    ) -> Option<(u64, Vec<LoggedBlock>, u64)> {
        if self.outstanding.load(Ordering::SeqCst) == 0 {
            self.take_group(inner)
        } else {
            None
        }
    }

    /// Closes the forming group and releases its slots immediately: a
    /// closed group owns its own on-disk region, so only the forming group
    /// counts against the reservation budget.
    fn take_group(&self, inner: &mut FormingGroup) -> Option<(u64, Vec<LoggedBlock>, u64)> {
        if inner.blocks.is_empty() {
            return None;
        }
        let blocks = std::mem::take(&mut inner.blocks);
        inner.index.clear();
        let ops = std::mem::take(&mut inner.ops);
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        self.reserved.fetch_sub(blocks.len(), Ordering::SeqCst);
        // Callers hold `inner`, which is what space waiters pair with.
        self.space_cond.notify_all();
        Some((seq, blocks, ops))
    }

    fn commit_group(
        &self,
        cache: &BufferCache,
        mut seq: u64,
        mut blocks: Vec<LoggedBlock>,
        mut ops: u64,
    ) -> KernelResult<()> {
        // See xv6fs::log::Log::commit_group: `staged` marks a group whose
        // stage-1 payload was prefetch-submitted; a prefetch-adopted group
        // commits even after an earlier error (its sequence is assigned),
        // with the first error returned at the end.
        let mut staged = false;
        let mut first_err: Option<simkernel::error::KernelError> = None;
        loop {
            {
                let mut turn = self.commit_turn.lock();
                while turn.next != seq {
                    self.commit_cond.wait(&mut turn);
                }
            }
            let mut prefetched = None;
            let result = self.commit_io(cache, seq, &blocks, staged, &mut prefetched);
            self.commits_done.fetch_add(1, Ordering::SeqCst);
            {
                let mut turn = self.commit_turn.lock();
                turn.next = seq + 1;
                self.commit_cond.notify_all();
            }
            match result {
                Ok(()) => {
                    self.counters.commits.inc();
                    self.counters.blocks_logged.add(blocks.len() as u64);
                    self.counters.ops_committed.add(ops);
                    if staged {
                        self.counters.overlapped_commits.inc();
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
            let next = match prefetched {
                Some(group) => Some(group),
                None => {
                    let mut inner = self.inner.lock();
                    if first_err.is_some() {
                        None
                    } else {
                        self.take_group_if_ready(&mut inner).map(|(s, b, o)| (s, b, o, false))
                    }
                }
            };
            match next {
                Some((next_seq, next_blocks, next_ops, next_staged)) => {
                    seq = next_seq;
                    blocks = next_blocks;
                    ops = next_ops;
                    staged = next_staged;
                }
                None => {
                    return match first_err {
                        Some(e) => Err(e),
                        None => Ok(()),
                    };
                }
            }
        }
    }

    fn commit_io(
        &self,
        cache: &BufferCache,
        seq: u64,
        blocks: &[LoggedBlock],
        staged: bool,
        prefetched: &mut Option<(u64, Vec<LoggedBlock>, u64, bool)>,
    ) -> KernelResult<()> {
        debug_assert!(blocks.len() <= self.capacity);
        let head_block = self.start + (seq % 2) * self.region_size as u64;
        // Log data blocks are only read back by recovery (fresh cache), so
        // they bypass the buffer cache instead of evicting useful blocks;
        // on a queued device they are batch-submitted (a prefetch-staged
        // group submitted them during the previous commit already).
        if !staged {
            self.submit_payload(cache, head_block, blocks)?;
        }
        // The payload must be durable before the commit record: without
        // this barrier the device's write cache may persist the
        // (checksummed, valid-looking) record first, and a crash then makes
        // recovery install whatever the region held before.  On a queued
        // device the barrier drains the submission queues too.
        self.barrier(cache)?;
        self.write_head(cache, head_block, seq, blocks)?;
        self.barrier(cache)?;
        // Two-stage overlap (see xv6fs::log for the safety argument): with
        // the record durable, prefetch the next ready group's payload so it
        // is serviced while this group's installs run.
        if let Some(q) = cache.device().as_queued() {
            let adopted = {
                let mut inner = self.inner.lock();
                self.take_group_for_overlap(&mut inner)
            };
            if let Some((next_seq, next_blocks, next_ops)) = adopted {
                let next_head = self.start + (next_seq % 2) * self.region_size as u64;
                debug_assert_ne!(next_head, head_block, "consecutive groups alternate regions");
                let queue = q.preferred_queue();
                let writes: Vec<(u64, &[u8])> = next_blocks
                    .iter()
                    .enumerate()
                    .map(|(i, block)| (next_head + 1 + i as u64, block.data.as_slice()))
                    .collect();
                let submitted = q.submit_write_batch(queue, &writes).is_ok();
                *prefetched = Some((next_seq, next_blocks, next_ops, submitted));
            }
        }
        for block in blocks {
            let mut buf = cache.bread(block.home)?;
            if buf.data() == block.data.as_slice() {
                buf.write()?;
            } else {
                // A later, not-yet-committed operation already modified the
                // cached copy; write the committed snapshot straight to the
                // device and leave the newer bytes dirty for their own
                // group.
                drop(buf);
                cache.device().write_block(block.home, &block.data)?;
            }
        }
        // Installs durable before the clear can be (see xv6fs::log): the
        // clear itself rides to stability on whatever barrier comes next,
        // and an unflushed clear only costs an idempotent re-replay.
        self.barrier(cache)?;
        self.write_empty_head(cache, head_block, seq)
    }

    /// Stage 1: the group's frozen blocks into its log region —
    /// batch-submitted on a queued device, serial writes otherwise.
    fn submit_payload(
        &self,
        cache: &BufferCache,
        head_block: u64,
        blocks: &[LoggedBlock],
    ) -> KernelResult<()> {
        match cache.device().as_queued() {
            Some(q) => {
                let queue = q.preferred_queue();
                let writes: Vec<(u64, &[u8])> = blocks
                    .iter()
                    .enumerate()
                    .map(|(i, block)| (head_block + 1 + i as u64, block.data.as_slice()))
                    .collect();
                q.submit_write_batch(queue, &writes)?;
            }
            None => {
                for (i, block) in blocks.iter().enumerate() {
                    cache.device().write_block(head_block + 1 + i as u64, &block.data)?;
                }
            }
        }
        Ok(())
    }

    fn barrier(&self, cache: &BufferCache) -> KernelResult<()> {
        cache.flush_device()?;
        self.counters.barriers.inc();
        Ok(())
    }

    fn write_head(
        &self,
        cache: &BufferCache,
        head_block: u64,
        seq: u64,
        blocks: &[LoggedBlock],
    ) -> KernelResult<()> {
        let mut head = cache.bread(head_block)?;
        loghdr::encode_head(head.data_mut(), seq, blocks.iter().map(|b| b.home));
        head.write()
    }

    fn write_empty_head(&self, cache: &BufferCache, head_block: u64, seq: u64) -> KernelResult<()> {
        let mut head = cache.bread(head_block)?;
        loghdr::encode_clear(head.data_mut(), seq);
        head.write()
    }

    /// Replays committed transactions found in either on-disk log region at
    /// mount, oldest sequence first.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn recover(&self, cache: &BufferCache) -> KernelResult<usize> {
        let mut committed: Vec<(u64, u64, Vec<u64>)> = Vec::new();
        for region in 0..2u64 {
            let head_block = self.start + region * self.region_size as u64;
            let head = cache.bread(head_block)?;
            // parse_head rejects empty regions, over-capacity counts, and
            // torn commit-record writes (the transaction never committed).
            let Some(parsed) = loghdr::parse_head(head.data(), self.capacity) else {
                continue;
            };
            if parsed.homes.iter().any(|&h| h < self.home_range.0 || h >= self.home_range.1) {
                // Corrupt or foreign-format header: treat as clean rather
                // than install over arbitrary blocks.
                continue;
            }
            committed.push((parsed.seq, head_block, parsed.homes));
        }
        if committed.is_empty() {
            return Ok(0);
        }
        committed.sort_by_key(|&(seq, _, _)| seq);
        let mut replayed = 0usize;
        for (_, head_block, homes) in &committed {
            for (i, &home) in homes.iter().enumerate() {
                let log_block = cache.bread(head_block + 1 + i as u64)?;
                let content = log_block.data().to_vec();
                drop(log_block);
                let mut dst = cache.bread(home)?;
                dst.data_mut().copy_from_slice(&content);
                dst.write()?;
            }
            replayed += homes.len();
        }
        self.barrier(cache)?;
        for &(seq, head_block, _) in &committed {
            self.write_empty_head(cache, head_block, seq)?;
        }
        self.barrier(cache)?;
        self.counters.recoveries.inc();
        self.counters.blocks_logged.add(replayed as u64);
        Ok(replayed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::dev::RamDisk;
    use std::sync::Arc;
    use xv6fs::layout::{
        log_head_checksum, put_u32, put_u64, FSMAGIC, LOG_HEAD_CHECKSUM_OFF, LOG_HEAD_COUNT_OFF,
        LOG_HEAD_SEQ_OFF,
    };

    fn setup() -> (BufferCache, VfsLog) {
        let cache = BufferCache::new(Arc::new(RamDisk::new(4096, 1024)), 256);
        let sb = DiskSuperblock {
            magic: FSMAGIC,
            size: 1024,
            nblocks: 700,
            ninodes: 64,
            nlog: LOGSIZE as u32,
            logstart: 2,
            inodestart: 2 + LOGSIZE as u32,
            bmapstart: 2 + LOGSIZE as u32 + 2,
        };
        (cache, VfsLog::new(&sb))
    }

    #[test]
    fn basic_commit_reaches_home_blocks() {
        let (cache, log) = setup();
        log.begin_op();
        {
            let mut b = cache.bread(900).unwrap();
            b.data_mut().fill(0x3C);
            log.log_write(&b).unwrap();
        }
        log.end_op(&cache).unwrap();
        let mut raw = vec![0u8; 4096];
        cache.device().read_block(900, &mut raw).unwrap();
        assert!(raw.iter().all(|&b| b == 0x3C));
        let stats = log.stats();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.ops_committed, 1);
        assert_eq!(stats.barriers, 3, "payload, commit record, clear");
    }

    #[test]
    fn recover_is_noop_on_clean_log() {
        let (cache, log) = setup();
        assert_eq!(log.recover(&cache).unwrap(), 0);
    }

    #[test]
    fn recover_replays_from_either_region() {
        for region in 0..2u64 {
            let (cache, log) = setup();
            let half = (LOGSIZE / 2) as u64;
            let head_block = 2 + region * half;
            let target = 910u64;
            {
                let mut log_data = cache.getblk_zeroed(head_block + 1).unwrap();
                log_data.data_mut().fill(0x77);
                log_data.write().unwrap();
                drop(log_data);
                let mut head = cache.bread(head_block).unwrap();
                put_u32(head.data_mut(), LOG_HEAD_COUNT_OFF, 1);
                put_u64(head.data_mut(), LOG_HEAD_SEQ_OFF, region);
                put_u32(head.data_mut(), LOG_HEAD_BLOCKS_OFF, target as u32);
                let checksum = log_head_checksum(head.data());
                put_u64(head.data_mut(), LOG_HEAD_CHECKSUM_OFF, checksum);
                head.write().unwrap();
            }
            assert_eq!(log.recover(&cache).unwrap(), 1, "region {region}");
            let mut raw = vec![0u8; 4096];
            cache.device().read_block(target, &mut raw).unwrap();
            assert_eq!(raw[0], 0x77, "region {region}");
            assert_eq!(log.recover(&cache).unwrap(), 0, "region {region}");
        }
    }

    /// Same deterministic two-thread overlap scenario as the xv6fs
    /// integration test (`tests/two_stage_overlap.rs`), on the VFS log: a
    /// committer dwelling in a slow record barrier prefetches the group
    /// the main thread staged meanwhile.
    #[test]
    fn queued_device_overlaps_consecutive_commits() {
        use simkernel::cost::CostModel;
        use simkernel::queue::{MultiQueueDevice, QueueConfig};
        use std::time::{Duration, Instant};

        let attempt = || -> bool {
            let mut model = CostModel::zero();
            model.flush_base_ns = 25_000_000;
            model.inject_delays = true;
            let mqd = Arc::new(MultiQueueDevice::new(
                Arc::new(RamDisk::new(4096, 1024)),
                model,
                QueueConfig::new(2, 8),
            ));
            let cache = Arc::new(BufferCache::new(mqd, 256));
            let sb = DiskSuperblock {
                magic: FSMAGIC,
                size: 1024,
                nblocks: 700,
                ninodes: 64,
                nlog: LOGSIZE as u32,
                logstart: 2,
                inodestart: 2 + LOGSIZE as u32,
                bmapstart: 2 + LOGSIZE as u32 + 2,
            };
            let log = Arc::new(VfsLog::new(&sb));
            let write_one = |cache: &BufferCache, log: &VfsLog, blockno: u64, fill: u8| {
                log.begin_op();
                {
                    let mut b = cache.bread(blockno).unwrap();
                    b.data_mut().fill(fill);
                    log.log_write(&b).unwrap();
                }
                log.end_op(cache).unwrap();
            };
            let base = log.stats().barriers;
            let t = {
                let cache = Arc::clone(&cache);
                let log = Arc::clone(&log);
                std::thread::spawn(move || write_one(&cache, &log, 900, 0xAA))
            };
            let deadline = Instant::now() + Duration::from_secs(10);
            while log.stats().barriers < base + 1 {
                assert!(Instant::now() < deadline, "first commit never hit its payload barrier");
                std::thread::sleep(Duration::from_millis(1));
            }
            write_one(&cache, &log, 901, 0xBB);
            t.join().unwrap();

            let stats = log.stats();
            assert_eq!(stats.commits, 2);
            assert_eq!(stats.barriers, stats.commits * 3, "overlap must not add barriers");
            for (blockno, fill) in [(900u64, 0xAAu8), (901, 0xBB)] {
                let mut raw = vec![0u8; 4096];
                cache.device().read_block(blockno, &mut raw).unwrap();
                assert!(raw.iter().all(|&b| b == fill), "block {blockno} lost data");
            }
            stats.overlapped_commits >= 1
        };
        for _ in 0..5 {
            if attempt() {
                return;
            }
        }
        panic!("no overlapped commit observed in 5 attempts");
    }
}
